//! Cross-crate integration: behaviour under network dynamics — the
//! paper's central claims, checked end to end at reduced scale.

use digs::config::Protocol;
use digs::experiment::{run_node_failure, run_node_failure_with_victims};
use digs::network::Network;
use digs::scenarios;
use digs_sim::time::Asn;

#[test]
fn digs_survives_interference_better_than_orchestra() {
    // One flow set of the Fig. 9 scenario; shortened run. Single seeds are
    // noisy, so assert on the sum over two seeds.
    let mut digs_pdr = 0.0;
    let mut orch_pdr = 0.0;
    for seed in [3u64, 4] {
        let mut network = Network::new(scenarios::testbed_a_interference(Protocol::Digs, seed));
        network.run_secs(330);
        digs_pdr += network.results().network_pdr();
        let mut network =
            Network::new(scenarios::testbed_a_interference(Protocol::Orchestra, seed));
        network.run_secs(330);
        orch_pdr += network.results().network_pdr();
    }
    assert!(
        digs_pdr > orch_pdr - 0.15,
        "DiGS ({digs_pdr:.3}) should not trail Orchestra ({orch_pdr:.3}) under interference"
    );
    assert!(digs_pdr / 2.0 > 0.6, "DiGS jammed PDR collapsed: {:.3}", digs_pdr / 2.0);
}

#[test]
fn digs_tolerates_node_failure() {
    let mut config = scenarios::testbed_a_node_failure(Protocol::Digs, 2);
    config.faults = digs_sim::fault::FaultPlan::none();
    let outcome = run_node_failure(
        config,
        scenarios::FAILURE_START_SECS,
        scenarios::FAILURE_EACH_SECS,
        360,
        4,
    );
    assert!(!outcome.victims.is_empty(), "victims must come from live routes");
    assert!(
        outcome.results.network_pdr() > 0.85,
        "DiGS PDR under failure {:.3}",
        outcome.results.network_pdr()
    );
}

#[test]
fn same_victims_hurt_orchestra_more() {
    let mut digs_cfg = scenarios::testbed_a_node_failure(Protocol::Digs, 1);
    digs_cfg.faults = digs_sim::fault::FaultPlan::none();
    let digs = run_node_failure(digs_cfg, 120, 60, 400, 4);

    let mut orch_cfg = scenarios::testbed_a_node_failure(Protocol::Orchestra, 1);
    orch_cfg.faults = digs_sim::fault::FaultPlan::none();
    let orch = run_node_failure_with_victims(orch_cfg, &digs.victims, 120, 60, 400);

    assert!(
        digs.results.worst_flow_pdr() >= orch.worst_flow_pdr() - 0.1,
        "DiGS worst flow {:.3} vs Orchestra {:.3}",
        digs.results.worst_flow_pdr(),
        orch.worst_flow_pdr()
    );
}

#[test]
fn repair_telemetry_fires_under_jamming() {
    let mut network = Network::new(scenarios::testbed_a_jammer_sweep(Protocol::Orchestra, 3, 1));
    network.run_secs(300);
    let results = network.results();
    let after_jam = results
        .parent_change_times
        .iter()
        .filter(|t| **t >= Asn::from_secs(scenarios::JAM_START_SECS))
        .count();
    // Jamming at some point disturbs somebody's parent selection.
    assert!(after_jam > 0, "expected routing reaction to jamming");
    let repair = results.repair_time_secs(Asn::from_secs(scenarios::JAM_START_SECS), 1000);
    assert!(repair.is_some());
    assert!(repair.expect("checked") >= 0.0);
}

#[test]
fn jammed_network_still_has_a_valid_graph() {
    let mut network = Network::new(scenarios::testbed_a_interference(Protocol::Digs, 6));
    network.run_secs(300);
    let graph = network.routing_graph();
    assert!(graph.is_dag(), "interference must never create routing loops");
}

#[test]
fn disturbers_toggle_in_large_scale_scenario() {
    let config = scenarios::large_scale(Protocol::Digs, 1);
    assert_eq!(config.jammers.len(), 5);
    let j = &config.jammers[0];
    // 5-minute half period from the paper.
    assert_eq!(j.toggle_half_period, Some(300 * 100));
}

#[test]
fn rebooted_digs_relay_cold_starts_and_rejoins() {
    use digs::config::NetworkConfig;
    use digs::flows::flow_set_from_sources;
    use digs::stack::ProtocolStack;
    use digs_sim::fault::{FaultPlan, Reboot};
    use digs_sim::ids::NodeId;
    use digs_sim::topology::Topology;

    // Form first, then cold-reboot a genuine relay on the flow's live
    // forwarding path: the node must come back with factory-fresh state,
    // re-execute the join (EB scan → rank → parents), re-register with a
    // parent, and the flow must deliver again once it has.
    let topology = Topology::testbed_a();
    let source = NodeId(40);
    let mut flows = flow_set_from_sources(&[source], 500);
    flows[0].phase += 6000;
    let config = NetworkConfig::builder(topology.clone())
        .protocol(Protocol::Digs)
        .seed(21)
        .flows(flows)
        .build();
    let mut network = Network::new(config);
    network.run_secs(120);

    // Walk the source's primary-parent chain for a field-device relay.
    let mut relay = None;
    let mut node = source;
    for _hop in 0..10 {
        let (best, _) = network.stacks()[node.index()].parents();
        let Some(next) = best else { break };
        if topology.is_access_point(next) {
            break;
        }
        relay = Some(next);
        node = next;
    }
    let relay = relay.unwrap_or(source); // worst case: reboot the source itself
    {
        let ProtocolStack::Digs(s) = &network.stacks()[relay.index()] else {
            unreachable!("the run is configured for DiGS");
        };
        assert!(s.is_joined(), "the relay must be part of the formed network");
    }

    network.set_fault_plan(FaultPlan::none().with_reboot(Reboot::new(
        relay,
        Asn::from_secs(125),
        Asn::from_secs(135),
    )));
    // Just past the reboot's completion, the cold reset has fired: no
    // sync, no rank, no parents, no children — the join starts over.
    network.run_secs(16);
    {
        let ProtocolStack::Digs(s) = &network.stacks()[relay.index()] else {
            unreachable!();
        };
        assert!(!s.is_joined(), "a rebooted node must come back cold");
        assert_eq!(s.parents(), (None, None), "parents are factory-fresh");
        assert!(s.children_last_seen().is_empty(), "child table is factory-fresh");
    }

    // Given time, the reboot's join re-executes end to end.
    network.run_secs(224);
    let new_parent = {
        let ProtocolStack::Digs(s) = &network.stacks()[relay.index()] else {
            unreachable!();
        };
        assert!(s.is_joined(), "the rebooted relay must rejoin");
        let rejoined_at = s.routing().joined_at().expect("joined");
        assert!(
            rejoined_at >= Asn::from_secs(135),
            "the join must have been re-executed after the reboot, not inherited"
        );
        let (best, _) = s.parents();
        best.expect("parents re-selected")
    };

    // The relay re-registered with its (possibly new) parent: the
    // parent's child table lists it again, heard after the reboot.
    {
        let ProtocolStack::Digs(p) = &network.stacks()[new_parent.index()] else {
            unreachable!();
        };
        let children = p.children_last_seen();
        let heard = children.iter().find(|(c, _)| *c == relay);
        let (_, last_seen) = heard.expect("the parent's child table must list the rebooted relay");
        assert!(*last_seen >= Asn::from_secs(135), "registration must be post-reboot");
    }

    // And the flow delivers again: the last packets of the run arrive.
    let results = network.results();
    let flow = &results.flows[0];
    let late_delivered = (flow.generated.saturating_sub(10)..flow.generated)
        .filter(|seq| flow.seq_delivered(*seq))
        .count();
    assert!(
        late_delivered >= 7,
        "post-reboot delivery should resume: {late_delivered}/10 of the last packets"
    );
}

#[test]
fn digs_rides_through_a_primary_link_outage() {
    use digs::config::{NetworkConfig, Protocol};
    use digs::flows::flow_set_from_sources;
    use digs_sim::fault::{FaultPlan, LinkOutage};
    use digs_sim::ids::NodeId;
    use digs_sim::topology::Topology;

    // Form first to find a real primary link, then break exactly that link
    // for a minute — the backup route should keep the flow alive.
    let topology = Topology::testbed_a();
    let source = NodeId(40);
    let mut flows = flow_set_from_sources(&[source], 500);
    flows[0].phase += 6000;
    let config =
        NetworkConfig::builder(topology).protocol(Protocol::Digs).seed(21).flows(flows).build();
    let mut network = Network::new(config);
    network.run_secs(90);
    let (best, second) = network.stacks()[source.index()].parents();
    let best = best.expect("joined after 90 s");
    if second.is_none() {
        // Without a backup the scenario tests nothing; topology/seed
        // guarantee one in practice.
        panic!("expected a backup parent for the source");
    }
    network.set_fault_plan(FaultPlan::none().with_link(LinkOutage::transient(
        source,
        best,
        Asn::from_secs(120),
        Asn::from_secs(180),
    )));
    network.run_secs(210);
    let results = network.results();
    assert!(
        results.network_pdr() > 0.8,
        "backup route should carry the flow through the link outage: {:.3}",
        results.network_pdr()
    );
}
