//! Cross-crate integration: the flight recorder observing real runs —
//! deterministic export, and journey reconstruction through a scripted
//! link failure.

use digs::config::{NetworkConfig, Protocol};
use digs::flows::flow_set_from_sources;
use digs::network::Network;
use digs_sim::fault::{FaultPlan, LinkOutage};
use digs_sim::ids::NodeId;
use digs_sim::time::Asn;
use digs_sim::topology::Topology;

/// Identical seed and config must export a byte-identical JSONL trace:
/// the recorder assigns sequence numbers deterministically and the
/// exporter writes fields in a fixed order, so the whole pipeline is
/// reproducible down to the bytes.
#[test]
fn same_seed_traced_runs_export_identical_jsonl() {
    let run = || {
        let config = NetworkConfig::builder(Topology::testbed_a_half())
            .protocol(Protocol::Digs)
            .seed(5)
            .random_flows(2, 300, 5)
            .trace_cap(100_000)
            .build();
        let mut net = Network::new(config);
        net.run_secs(90);
        digs_trace::to_jsonl(&net.trace().events())
    };
    let a = run();
    let b = run();
    assert!(!a.is_empty(), "a traced run must record events");
    assert_eq!(a, b, "same seed + config must export byte-identical traces");

    // And the export round-trips losslessly through the parser.
    let parsed = digs_trace::from_jsonl(&a).expect("exported JSONL must parse");
    assert_eq!(digs_trace::to_jsonl(&parsed), a);
}

/// Break a formed flow's primary parent link and follow the packets: the
/// flight recorder must show a journey whose transmissions divert from
/// the primary to the backup parent (the paper's graph-routing claim,
/// observed packet by packet instead of through aggregate PDR).
#[test]
fn link_failure_journey_diverts_to_backup_parent() {
    let topology = Topology::testbed_a();
    let source = NodeId(40);
    let mut flows = flow_set_from_sources(&[source], 500);
    flows[0].phase += 6000;
    let config = NetworkConfig::builder(topology)
        .protocol(Protocol::Digs)
        .seed(21)
        .flows(flows)
        .trace_cap(400_000)
        .build();
    let mut network = Network::new(config);
    network.run_secs(90);
    let (best, second) = network.stacks()[source.index()].parents();
    let best = best.expect("joined after 90 s");
    let second = second.expect("expected a backup parent for the source");

    network.set_fault_plan(FaultPlan::none().with_link(LinkOutage::transient(
        source,
        best,
        Asn::from_secs(120),
        Asn::from_secs(180),
    )));
    network.run_secs(210);

    let journeys = digs_trace::journeys(&network.trace().events());
    let diverted: Vec<_> = journeys
        .iter()
        .filter(|j| {
            j.hops.iter().any(|h| {
                h.node == source.0 && h.targets.contains(&best.0) && h.targets.contains(&second.0)
            })
        })
        .collect();
    assert!(
        !diverted.is_empty(),
        "the outage must produce a journey retrying the primary {best} then \
         diverting to the backup {second} ({} journeys total)",
        journeys.len()
    );
    // The diversion is the paper's repair mechanism working: at least one
    // such journey must also have completed end to end.
    assert!(
        diverted.iter().any(|j| j.is_complete()),
        "some diverted journey must still reach the access point"
    );
    // And the aggregate agrees with the per-packet story.
    let results = network.results();
    assert!(
        results.network_pdr() > 0.8,
        "backup route should carry the flow through the link outage: {:.3}",
        results.network_pdr()
    );
}

/// The fault-plan events themselves land in the trace, bracketing the
/// routing response for the churn timeline.
#[test]
fn link_outage_appears_in_churn_timeline() {
    let topology = Topology::testbed_a();
    let source = NodeId(40);
    let mut flows = flow_set_from_sources(&[source], 500);
    flows[0].phase += 6000;
    let config = NetworkConfig::builder(topology)
        .protocol(Protocol::Digs)
        .seed(21)
        .flows(flows)
        .trace_cap(400_000)
        .build();
    let mut network = Network::new(config);
    network.run_secs(90);
    let (best, _) = network.stacks()[source.index()].parents();
    let best = best.expect("joined after 90 s");
    network.set_fault_plan(FaultPlan::none().with_link(LinkOutage::transient(
        source,
        best,
        Asn::from_secs(120),
        Asn::from_secs(180),
    )));
    network.run_secs(120);

    let churn = digs_trace::churn_timeline(&network.trace().events());
    let inject = churn
        .iter()
        .find(|e| matches!(e.kind, digs_trace::EventKind::FaultInject { .. }))
        .expect("the scripted link outage must be recorded");
    assert_eq!(inject.asn, Asn::from_secs(120).0);
    assert!(
        churn.iter().any(|e| matches!(e.kind, digs_trace::EventKind::FaultClear { .. })),
        "the outage's clearing must be recorded too"
    );
}
