//! Cross-crate integration: end-to-end data delivery and run metrics in
//! clean (interference-free) conditions.

use digs::config::{NetworkConfig, Protocol};
use digs::flows::flow_set_from_sources;
use digs::network::Network;
use digs_sim::ids::NodeId;
use digs_sim::topology::Topology;

fn clean_run(protocol: Protocol, seed: u64) -> digs::results::RunResults {
    let topology = Topology::testbed_a_half();
    let mut flows = flow_set_from_sources(&[NodeId(10), NodeId(15), NodeId(19)], 500);
    for f in &mut flows {
        f.phase += 4000; // start flows after a 40 s warm-up
    }
    let config =
        NetworkConfig::builder(topology).protocol(protocol).seed(seed).flows(flows).build();
    let mut network = Network::new(config);
    network.run_secs(240);
    network.results()
}

#[test]
fn digs_delivers_in_clean_conditions() {
    let results = clean_run(Protocol::Digs, 5);
    assert!(results.network_pdr() > 0.9, "clean-air DiGS PDR {:.3}", results.network_pdr());
}

#[test]
fn orchestra_delivers_in_clean_conditions() {
    let results = clean_run(Protocol::Orchestra, 5);
    assert!(results.network_pdr() > 0.9, "clean-air Orchestra PDR {:.3}", results.network_pdr());
}

#[test]
fn runs_are_bit_reproducible() {
    let a = clean_run(Protocol::Digs, 7);
    let b = clean_run(Protocol::Digs, 7);
    assert_eq!(a, b, "identical seeds must give identical results");
}

#[test]
fn different_seeds_differ() {
    let a = clean_run(Protocol::Digs, 7);
    let b = clean_run(Protocol::Digs, 8);
    assert_ne!(
        a.parent_change_times, b.parent_change_times,
        "different seeds should explore different realisations"
    );
}

#[test]
fn latencies_are_positive_and_bounded() {
    let results = clean_run(Protocol::Digs, 5);
    let latencies = results.all_latencies_ms();
    assert!(!latencies.is_empty());
    for l in &latencies {
        assert!(*l >= 0.0);
        assert!(*l < 120_000.0, "latency {l} ms exceeds 2 minutes");
    }
}

#[test]
fn energy_accounting_is_consistent() {
    let results = clean_run(Protocol::Digs, 5);
    for node in &results.nodes {
        assert!(node.energy_mj >= 0.0);
        assert!((0.0..=1.0).contains(&node.duty_cycle), "{:?}", node);
        // Radios cannot consume more than full-RX power.
        assert!(node.mean_power_mw <= digs_sim::energy::RX_POWER_MW + 1.0);
    }
    assert!(results.total_mean_power_mw() > 0.0);
    assert!(results.power_per_received_packet_mw().is_finite());
}

#[test]
fn delivered_never_exceeds_generated() {
    for protocol in [Protocol::Digs, Protocol::Orchestra] {
        let results = clean_run(protocol, 11);
        for flow in &results.flows {
            assert!(
                flow.delivered <= flow.generated,
                "{}: delivered {} > generated {}",
                flow.flow,
                flow.delivered,
                flow.generated
            );
            assert_eq!(flow.delivered as usize, flow.delivered_seqs.len());
            assert_eq!(flow.delivered as usize, flow.latencies_ms.len());
        }
    }
}

#[test]
fn sequence_numbers_delivered_are_within_generated_range() {
    let results = clean_run(Protocol::Digs, 5);
    for flow in &results.flows {
        if let Some(max_seq) = flow.delivered_seqs.iter().max() {
            assert!(*max_seq < flow.generated, "{}", flow.flow);
        }
    }
}
