//! Cross-crate integration: the centralized WirelessHART baseline against
//! the distributed protocols and the paper's Fig. 3 claim.

use digs_sim::link::LinkModel;
use digs_sim::rf::RfConfig;
use digs_sim::topology::Topology;
use digs_whart::{build_uplink_graph, LinkDb, NetworkManager, UpdateCostConfig};

fn manager(topology: &Topology) -> NetworkManager {
    let model = LinkModel::new(topology, RfConfig::indoor(), 3);
    let db = LinkDb::from_link_model(&model);
    NetworkManager::new(db, topology.access_points(), UpdateCostConfig::default())
}

fn sources(topology: &Topology, n: usize) -> Vec<digs_sim::ids::NodeId> {
    let mut devices = topology.field_devices();
    devices.reverse();
    devices.truncate(n);
    devices
}

#[test]
fn central_update_is_minutes_distributed_repair_is_seconds() {
    // Fig. 3's point: the centralized cycle takes minutes...
    let topology = Topology::testbed_a();
    let mut mgr = manager(&topology);
    let report = mgr.full_update(&sources(&topology, 8), 1000).expect("schedulable");
    assert!(report.total_secs() > 100.0, "centralized update {:.0}s", report.total_secs());

    // ...while the distributed protocol reacts to a failure within seconds
    // (here: the backup takes over without any global cycle at all).
    use digs::config::Protocol;
    use digs::experiment::run_node_failure;
    let mut config = digs::scenarios::testbed_a_node_failure(Protocol::Digs, 3);
    config.faults = digs_sim::fault::FaultPlan::none();
    let outcome = run_node_failure(config, 120, 60, 300, 2);
    if let Some(repair) =
        outcome.results.repair_time_secs(digs_sim::time::Asn::from_secs(120), 1000)
    {
        assert!(
            repair < report.total_secs(),
            "distributed repair ({repair:.0}s) must beat the centralized cycle"
        );
    }
}

#[test]
fn update_cost_scales_with_network_size() {
    let half = Topology::testbed_a_half();
    let full = Topology::testbed_a();
    let t_half = manager(&half).full_update(&sources(&half, 8), 1000).expect("ok").total_secs();
    let t_full = manager(&full).full_update(&sources(&full, 8), 1000).expect("ok").total_secs();
    assert!(t_full > t_half, "{t_full} vs {t_half}");
}

#[test]
fn central_and_distributed_graphs_agree_on_structure() {
    let topology = Topology::testbed_a();
    let model = LinkModel::new(&topology, RfConfig::indoor(), 3);
    let db = LinkDb::from_link_model(&model);
    let central = build_uplink_graph(&db, &topology.access_points());
    assert!(central.is_dag());
    assert!(central.all_reachable());
    assert_eq!(central.len(), topology.field_devices().len());

    // The distributed protocol, run on the same channel realisation,
    // should attach the same node set.
    use digs::config::{NetworkConfig, Protocol};
    let config = NetworkConfig::builder(topology).protocol(Protocol::Digs).seed(3).build();
    let mut network = digs::network::Network::new(config);
    network.run_secs(150);
    let distributed = network.routing_graph();
    assert!(distributed.fraction_joined() > 0.95);
}

#[test]
fn failure_forces_full_central_recompute() {
    let topology = Topology::testbed_a();
    let mut mgr = manager(&topology);
    let srcs = sources(&topology, 8);
    let first = mgr.full_update(&srcs, 1000).expect("ok");
    let victim = mgr.graph().nodes().find(|n| !srcs.contains(n)).expect("relay exists");
    let second = mgr.on_node_failure(victim, &srcs, 1000).expect("ok");
    // The whole network must be re-collected and re-disseminated again.
    assert!(second.total_secs() > first.total_secs() * 0.5);
    assert_eq!(mgr.updates_performed(), 2);
}

#[test]
fn manager_recovery_restores_the_centralized_network() {
    use digs::config::{NetworkConfig, Protocol};
    use digs::experiment::run_whart_with_recovery;

    // Pick a source whose scheduled route genuinely relays through a
    // field device, and that relay as the victim.
    let topology = Topology::testbed_a();
    let rf = digs_sim::rf::RfConfig::indoor();
    let engine = digs_sim::engine::Engine::new(topology.clone(), rf, 6);
    let db = LinkDb::from_link_model(engine.link_model());
    let graph = build_uplink_graph(&db, &topology.access_points());
    let (source, relay) = topology
        .field_devices()
        .into_iter()
        .rev()
        .find_map(|candidate| {
            let relay = graph
                .entry(candidate)
                .and_then(|e| e.best)
                .filter(|p| !topology.is_access_point(*p))?;
            Some((candidate, relay))
        })
        .expect("some flow must be multi-hop on Testbed A");

    let mut flows = digs::flows::flow_set_from_sources(&[source], 500);
    flows[0].phase += 100;
    let config = NetworkConfig::builder(topology)
        .protocol(Protocol::WirelessHart)
        .seed(6)
        .flows(flows)
        .build();

    // Long run: the ~500 s manager cycle must fit inside it with margin.
    let (results, delay) = run_whart_with_recovery(config, relay, 120, 1500)
        .expect("losing one relay on Testbed A must not partition the flow");
    assert!(delay > 60.0, "manager cycles take minutes (got {delay:.0}s)");
    let flow = &results.flows[0];
    // Packets die during the outage window but flow again after recovery:
    // overall PDR sits strictly between "unaffected" and "dead after 120s".
    let dead_fraction = delay / (1500.0 - 1.0);
    assert!(flow.pdr() < 0.99, "the outage must cost something: {:.3}", flow.pdr());
    assert!(
        flow.pdr() > 1.0 - dead_fraction - 0.25,
        "recovery must restore delivery: pdr {:.3}, outage fraction {:.3}",
        flow.pdr(),
        dead_fraction
    );
    // Concretely: the last packets (post-recovery) are delivered again.
    let late_delivered = (flow.generated.saturating_sub(10)..flow.generated)
        .filter(|seq| flow.seq_delivered(*seq))
        .count();
    assert!(
        late_delivered >= 7,
        "post-recovery delivery should resume: {late_delivered}/10 of the last packets"
    );
}
