//! Cross-crate integration: network formation on every paper topology,
//! under both protocol stacks, ending in a structurally valid routing
//! graph.

use digs::config::{NetworkConfig, Protocol};
use digs::network::Network;
use digs_sim::topology::Topology;

fn formed_network(topology: Topology, protocol: Protocol, secs: u64) -> Network {
    let config = NetworkConfig::builder(topology).protocol(protocol).seed(99).build();
    let mut network = Network::new(config);
    network.run_secs(secs);
    network
}

#[test]
fn digs_forms_on_testbed_a() {
    let network = formed_network(Topology::testbed_a(), Protocol::Digs, 150);
    let results = network.results();
    assert!(results.fraction_joined() > 0.95, "join fraction {}", results.fraction_joined());
    let graph = network.routing_graph();
    assert!(graph.is_dag(), "parent links must stay acyclic");
    assert!(graph.all_reachable(), "every joined node reaches an AP");
}

#[test]
fn digs_builds_route_diversity() {
    let network = formed_network(Topology::testbed_a(), Protocol::Digs, 150);
    let graph = network.routing_graph();
    // Rank-2 nodes can only use the *other* access point as a backup
    // (the loop rule demands a strictly lower rank), and at reduced mote
    // power the far AP is often out of range — so full coverage is not
    // attainable; half the network with backups is the structural floor
    // for this topology.
    assert!(
        graph.fraction_with_backup() > 0.45,
        "graph routing should give many nodes a backup parent, got {}",
        graph.fraction_with_backup()
    );
}

#[test]
fn orchestra_forms_on_testbed_a() {
    let network = formed_network(Topology::testbed_a(), Protocol::Orchestra, 150);
    let results = network.results();
    assert!(results.fraction_joined() > 0.95, "join fraction {}", results.fraction_joined());
    let graph = network.routing_graph();
    assert!(graph.is_dag());
    assert!(graph.all_reachable());
    // RPL never assigns backup parents.
    assert_eq!(graph.fraction_with_backup(), 0.0);
}

#[test]
fn digs_forms_across_two_floors() {
    let network = formed_network(Topology::testbed_b(), Protocol::Digs, 180);
    let results = network.results();
    assert!(
        results.fraction_joined() > 0.9,
        "two-floor join fraction {}",
        results.fraction_joined()
    );
    // Upper-floor nodes must have found multi-hop routes through the
    // floor penetration loss.
    let graph = network.routing_graph();
    assert!(graph.all_reachable());
}

#[test]
fn ranks_increase_away_from_access_points() {
    let network = formed_network(Topology::testbed_a(), Protocol::Digs, 150);
    let graph = network.routing_graph();
    for node in graph.nodes() {
        let entry = graph.entry(node).expect("recorded");
        if let Some(best) = entry.best {
            if let Some(parent_entry) = graph.entry(best) {
                assert!(
                    parent_entry.rank < entry.rank,
                    "{node}'s parent {best} must have a strictly lower rank"
                );
            }
        }
    }
}

#[test]
fn join_times_are_plausible() {
    let network = formed_network(Topology::testbed_a(), Protocol::Digs, 180);
    let results = network.results();
    let joins = results.join_times_secs();
    let field_joins: Vec<f64> = joins.into_iter().filter(|t| *t > 0.0).collect();
    assert!(!field_joins.is_empty());
    let mean = field_joins.iter().sum::<f64>() / field_joins.len() as f64;
    // The paper's Fig. 13 measures ~15 s mean joining times.
    assert!((2.0..90.0).contains(&mean), "mean join time {mean:.1}s is implausible");
}
