//! Property-based integration tests: invariants that must hold for
//! arbitrary topologies, schedules, and protocol event orders.

use digs_routing::messages::{JoinIn, ParentSlot, Rank};
use digs_routing::{DigsRouting, RoutingConfig, RoutingGraph};
use digs_scheduling::slotframe::frame_offset;
use digs_scheduling::slotframe::CellAction;
use digs_scheduling::{DigsScheduler, SlotframeLengths};
use digs_sim::ids::NodeId;
use digs_sim::rf::{initial_etx_from_rss, Dbm, RSS_MAX, RSS_MIN};
use digs_sim::time::Asn;
use digs_sim::topology::Topology;
use proptest::prelude::*;

fn join_in(rank: u16, etx_w: f64) -> JoinIn {
    JoinIn { rank: Rank(rank), etx_w, best_parent: None, second_parent: None }
}

proptest! {
    /// Algorithm 1 never selects the node itself, never selects the same
    /// node for both roles, and the second parent always has a strictly
    /// lower rank than the node.
    #[test]
    fn parent_selection_invariants(
        events in prop::collection::vec(
            (0u16..30, 1u16..6, 0.0f64..8.0, -95.0f64..-55.0),
            1..60
        )
    ) {
        let mut node = DigsRouting::new(
            NodeId(100), false, RoutingConfig::fast(), 1, Asn::ZERO
        );
        for (i, (from, rank, etx_w, rss)) in events.iter().enumerate() {
            node.on_join_in(
                NodeId(*from),
                &join_in(*rank, *etx_w),
                Dbm(*rss),
                Asn(i as u64),
            );
            prop_assert_ne!(node.best_parent(), Some(NodeId(100)));
            if let (Some(b), Some(s)) = (node.best_parent(), node.second_best_parent()) {
                prop_assert_ne!(b, s, "best and second must differ");
            }
            if node.second_best_parent().is_some() {
                prop_assert!(node.rank().is_finite());
            }
            if node.is_joined() {
                prop_assert!(node.rank() > Rank::ROOT);
                prop_assert!(node.etx_w().is_finite());
            }
        }
    }

    /// Eq. 4 transmission slots never collide between distinct
    /// (device, attempt) pairs as long as they fit in the slotframe.
    #[test]
    fn eq4_slots_are_unique(num_aps in 1u16..4, devices in 1u16..40) {
        let lengths = SlotframeLengths::paper();
        let attempts = 3u8;
        prop_assume!(u32::from(devices) * u32::from(attempts) < lengths.app);
        let s = DigsScheduler::new(NodeId(0), num_aps, lengths, attempts);
        let mut seen = std::collections::HashSet::new();
        for d in 0..devices {
            for p in 1..=attempts {
                let slot = s.tx_slot(NodeId(num_aps + d), p);
                prop_assert!(seen.insert(slot), "collision at slot {}", slot);
            }
        }
    }

    /// The Eq. 4 inverse recovers the attempt from any (node, slot) pair.
    #[test]
    fn eq4_inverse_roundtrips(device in 0u16..48, p in 1u8..=3) {
        let s = DigsScheduler::new(NodeId(2), 2, SlotframeLengths::paper(), 3);
        let node = NodeId(2 + device);
        let slot = s.tx_slot(node, p);
        prop_assert_eq!(s.infer_attempt(node, slot), Some(p));
    }

    /// A scheduler never asks an access point to transmit data upstream,
    /// for any slot.
    #[test]
    fn access_points_never_send_data(asn in 0u64..100_000) {
        let mut ap = DigsScheduler::new(NodeId(0), 2, SlotframeLengths::paper(), 3);
        ap.add_child(NodeId(5), ParentSlot::Best);
        if let Some(cell) = ap.cell(Asn(asn)) {
            let is_tx_data = matches!(cell.action, CellAction::TxData { .. });
            prop_assert!(!is_tx_data);
        }
    }

    /// Random parent assignments in which every parent has a strictly
    /// lower rank always form a DAG.
    #[test]
    fn rank_ordered_graphs_are_acyclic(
        parents in prop::collection::vec((0u16..20, 0u16..20), 1..40)
    ) {
        let mut graph = RoutingGraph::new([NodeId(0), NodeId(1)]);
        for (i, (b, s)) in parents.iter().enumerate() {
            let node = 2 + i as u16;
            // Force rank ordering: parent ids must be smaller than ours
            // (id order is a valid topological order here).
            let best = NodeId(b % node);
            let second = NodeId(s % node);
            graph.insert(
                NodeId(node),
                digs_routing::graph::GraphEntry {
                    best: Some(best),
                    second: (second != best).then_some(second),
                    rank: Rank(node),
                },
            );
        }
        prop_assert!(graph.is_dag());
    }

    /// Topology generators place the requested number of nodes and always
    /// include the access points first.
    #[test]
    fn random_topology_wellformed(n in 1usize..60, side in 50.0f64..500.0, seed in 0u64..50) {
        let topo = Topology::random_area(n, side, seed);
        prop_assert_eq!(topo.len(), n + 2);
        prop_assert_eq!(topo.num_access_points(), 2);
        prop_assert!(topo.is_access_point(NodeId(0)));
        prop_assert!(topo.is_access_point(NodeId(1)));
        for id in topo.node_ids() {
            let p = topo.position(id);
            prop_assert!(p.x >= 0.0 && p.x <= side);
            prop_assert!(p.y >= 0.0 && p.y <= side);
        }
    }

    /// The combined schedule is deterministic: equal state gives equal
    /// cells at every slot (the autonomy property of Section VI).
    #[test]
    fn schedules_need_no_negotiation(id in 2u16..50, asn in 0u64..1_000_000) {
        let mk = || {
            let mut s = DigsScheduler::new(NodeId(id), 2, SlotframeLengths::paper(), 3);
            s.set_parents(Some(NodeId(0)), Some(NodeId(1)));
            s.add_child(NodeId(id + 1), ParentSlot::Best);
            s
        };
        prop_assert_eq!(mk().cell(Asn(asn)), mk().cell(Asn(asn)));
    }

    /// Section V's RSS→initial-ETX mapping stays inside [1, 3] for any
    /// RSS and never rewards a weaker signal with a lower ETX.
    #[test]
    fn rss_etx_clamped_and_monotone(a in -120.0f64..-30.0, b in -120.0f64..-30.0) {
        let (ea, eb) = (initial_etx_from_rss(Dbm(a)), initial_etx_from_rss(Dbm(b)));
        prop_assert!((1.0..=3.0).contains(&ea), "ETX {} outside [1, 3]", ea);
        if a <= b {
            prop_assert!(ea >= eb, "weaker RSS {} got lower ETX than {}", a, b);
        }
        // The knees sit exactly at the paper's −60/−90 dBm thresholds.
        if a >= RSS_MAX.0 {
            prop_assert_eq!(ea, 1.0);
        }
        if a <= RSS_MIN.0 {
            prop_assert_eq!(ea, 3.0);
        }
    }

    /// Eq. 4 cell ownership: no two children of the same parent ever own
    /// the same application cell, so every receive slot resolves to
    /// exactly one (child, attempt) pair.
    #[test]
    fn eq4_children_own_disjoint_cells(
        children in prop::collection::vec(2u16..48, 1..12),
        asn in 0u64..100_000,
    ) {
        let lengths = SlotframeLengths::paper();
        let mut parent = DigsScheduler::new(NodeId(0), 2, lengths, 3);
        let distinct: std::collections::HashSet<u16> = children.iter().copied().collect();
        for c in &distinct {
            parent.add_child(NodeId(*c), ParentSlot::Best);
        }
        // Every application offset is claimed by at most one child.
        let off = frame_offset(Asn(asn), lengths.app);
        let owners: Vec<(u16, u8)> = distinct
            .iter()
            .flat_map(|c| (1..=3u8).map(move |p| (*c, p)))
            .filter(|(c, p)| parent.tx_slot(NodeId(*c), *p) == off)
            .collect();
        prop_assert!(owners.len() <= 1, "cell {} owned by {:?}", off, owners);
        // And the resolved cell agrees: an RxData cell exists iff some
        // unique (child, attempt) pair claims the slot.
        if let Some(cell) = parent.cell(Asn(asn)) {
            if matches!(cell.action, CellAction::RxData) {
                prop_assert_eq!(owners.len(), 1);
                let (c, p) = owners[0];
                prop_assert_eq!(cell.offset, DigsScheduler::attempt_offset(NodeId(c), p));
            }
        }
    }

    /// Slotframe wraparound: offsets stay in range, advance one slot per
    /// ASN, repeat with the slotframe period, and the combined schedule
    /// repeats with the hyper-period (product of coprime lengths).
    #[test]
    fn slotframe_wraparound(asn in 0u64..10_000_000, len in 1u32..600) {
        let off = frame_offset(Asn(asn), len);
        prop_assert!(off < len, "offset {} out of slotframe of {}", off, len);
        prop_assert_eq!(frame_offset(Asn(asn + u64::from(len)), len), off);
        prop_assert_eq!(frame_offset(Asn(asn + 1), len), (off + 1) % len);

        let lengths = SlotframeLengths::paper();
        let mut s = DigsScheduler::new(NodeId(7), 2, lengths, 3);
        s.set_parents(Some(NodeId(0)), Some(NodeId(1)));
        s.add_child(NodeId(9), ParentSlot::Best);
        prop_assert_eq!(s.cell(Asn(asn)), s.cell(Asn(asn + lengths.hyper_period())));
    }
}
