//! Quickstart: build a small DiGS network, run it for two simulated
//! minutes, and inspect what happened.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use digs::config::{NetworkConfig, Protocol};
use digs::network::Network;
use digs_sim::ids::NodeId;
use digs_sim::topology::Topology;

fn main() {
    // A 20-node topology (the paper's "Half Testbed A") with two wired
    // access points, running the DiGS stack: distributed graph routing +
    // autonomous scheduling. Two field devices source periodic flows,
    // starting 30 s in so the network has formed.
    let mut flows = digs::flows::flow_set_from_sources(&[NodeId(10), NodeId(17)], 500);
    for flow in &mut flows {
        flow.phase += 3000; // 30 s warm-up
    }
    let config = NetworkConfig::builder(Topology::testbed_a_half())
        .protocol(Protocol::Digs)
        .seed(42)
        .flows(flows)
        .build();

    let mut network = Network::new(config);
    network.run_secs(120);

    // The distributed state forms a routing graph we can snapshot and
    // validate: every joined node has a primary parent, most have a
    // backup, and the union of parent links is a DAG.
    let graph = network.routing_graph();
    println!("joined fraction : {:.2}", graph.fraction_joined());
    println!("with backup     : {:.2}", graph.fraction_with_backup());
    println!("acyclic         : {}", graph.is_dag());
    println!("all reachable   : {}", graph.all_reachable());

    let results = network.results();
    println!();
    println!("network PDR     : {:.3}", results.network_pdr());
    println!("median latency  : {:.0} ms", results.median_latency_ms().unwrap_or(f64::NAN));
    println!("power/packet    : {:.4} mW", results.power_per_received_packet_mw());
    for flow in &results.flows {
        println!(
            "  {} from {}: {}/{} delivered (PDR {:.2})",
            flow.flow,
            flow.source,
            flow.delivered,
            flow.generated,
            flow.pdr()
        );
    }
}
