//! Node-failure study (one run of the paper's Fig. 11 scenario): the
//! current relays of the data flows are switched off in turn, and the two
//! protocols' per-flow delivery is compared.
//!
//! ```sh
//! cargo run --release --example node_failure
//! ```

use digs::config::Protocol;
use digs::experiment::{run_node_failure, run_node_failure_with_victims};
use digs::scenarios::{self, FAILURE_EACH_SECS, FAILURE_START_SECS};

fn main() {
    // Derive victims from the live DiGS routing graph, then fail the same
    // nodes under both protocols (as the paper does).
    let mut digs_cfg = scenarios::testbed_a_node_failure(Protocol::Digs, 2);
    digs_cfg.faults = digs_sim::fault::FaultPlan::none();
    let digs_run = run_node_failure(digs_cfg, FAILURE_START_SECS, FAILURE_EACH_SECS, 420, 4);
    println!(
        "failing relays in turn: {:?} ({}s each, starting at {}s)",
        digs_run.victims.iter().map(|v| v.0).collect::<Vec<_>>(),
        FAILURE_EACH_SECS,
        FAILURE_START_SECS
    );

    let mut orch_cfg = scenarios::testbed_a_node_failure(Protocol::Orchestra, 2);
    orch_cfg.faults = digs_sim::fault::FaultPlan::none();
    let orch_results = run_node_failure_with_victims(
        orch_cfg,
        &digs_run.victims,
        FAILURE_START_SECS,
        FAILURE_EACH_SECS,
        420,
    );

    println!();
    println!("{:>8} | {:>8} | {:>10}", "flow", "digs", "orchestra");
    for (d, o) in digs_run.results.flows.iter().zip(&orch_results.flows) {
        println!("{:>8} | {:>8.3} | {:>10.3}", d.flow.0, d.pdr(), o.pdr());
    }
    println!();
    println!(
        "set PDR: digs {:.3} vs orchestra {:.3}",
        digs_run.results.network_pdr(),
        orch_results.network_pdr()
    );
    println!(
        "power per received packet: digs {:.4} mW vs orchestra {:.4} mW",
        digs_run.results.power_per_received_packet_mw(),
        orch_results.power_per_received_packet_mw()
    );
    println!();
    println!("expected shape (paper Fig. 11): DiGS flows keep delivering through");
    println!("their backup routes while Orchestra flows stall until RPL repairs.");
}
