//! A shortened run of the paper's 150-node large-scale simulation
//! (Fig. 12): 150 field devices + 2 access points in 300 m × 300 m,
//! 20 flows, five disturbers toggling every 5 minutes.
//!
//! ```sh
//! cargo run --release --example large_scale
//! ```

use digs::config::Protocol;
use digs::network::Network;
use digs::scenarios;

fn main() {
    for protocol in [Protocol::Digs, Protocol::Orchestra] {
        let config = scenarios::large_scale(protocol, 1);
        let mut network = Network::new(config);
        network.run_secs(600);
        let results = network.results();
        let graph = network.routing_graph();
        println!("── {} (150 nodes + 2 APs) ──", protocol.name());
        println!("  joined fraction        : {:.3}", results.fraction_joined());
        println!("  routing graph is a DAG : {}", graph.is_dag());
        println!("  flow-set PDR           : {:.3}", results.network_pdr());
        println!(
            "  median latency         : {:.0} ms",
            results.median_latency_ms().unwrap_or(f64::NAN)
        );
        println!(
            "  duty cycle / packet    : {:.5} %/pkt",
            results.duty_cycle_per_received_packet()
        );
        println!();
    }
}
