//! The paper's Fig. 6 routing example, reproduced with the real
//! [`DigsRouting`] state machines: two access points (AP1, AP2) and four
//! field devices (#3–#6) exchange join-in / joined-callback messages until
//! the routing graph of Fig. 6(b) emerges.
//!
//! ```sh
//! cargo run --release --example routing_example
//! ```

use digs_routing::messages::RoutingEvent;
use digs_routing::{DigsRouting, RoutingConfig};
use digs_sim::ids::NodeId;
use digs_sim::rf::Dbm;
use digs_sim::time::Asn;

/// Paper-style label for a node id (ids 0, 1 are AP1, AP2; devices are
/// numbered from #3 as in Fig. 6).
fn label(id: NodeId) -> String {
    match id.0 {
        0 => "AP1".to_string(),
        1 => "AP2".to_string(),
        n => format!("#{}", n + 1),
    }
}

/// Delivers a join-in from `from` to `to` over a link with the given RSS
/// and prints any parent changes.
fn deliver(nodes: &mut [DigsRouting], from: usize, to: usize, rss_dbm: f64, asn: u64) {
    let msg = nodes[from].join_in();
    let from_id = nodes[from].id();
    let events = nodes[to].on_join_in(from_id, &msg, Dbm(rss_dbm), Asn(asn));
    for event in events {
        if let RoutingEvent::ParentsChanged { best, second } = event {
            println!(
                "  {} now: best={} second={}",
                label(nodes[to].id()),
                best.map_or("-".into(), label),
                second.map_or("-".into(), label),
            );
        }
    }
}

fn main() {
    // Ids: 0 = AP1, 1 = AP2, then devices #3, #4, #5, #6 as in the figure.
    let config = RoutingConfig::default();
    let mut nodes: Vec<DigsRouting> =
        (0..6u16).map(|i| DigsRouting::new(NodeId(i), i < 2, config, 7, Asn::ZERO)).collect();
    let (ap1, ap2, n3, n4, n5, n6) = (0usize, 1, 2, 3, 4, 5);

    println!("Fig. 6: distributed route generation");
    println!("topology: #5-AP1 (strong), #5-AP2, #6-AP2 (strong), #6-AP1,");
    println!("          #4-#6 (strong), #4-#5, #3-#4 (strong), #3-#5");
    println!();

    // The APs begin broadcasting; #5 and #6 join at rank 2.
    deliver(&mut nodes, ap1, n5, -55.0, 1);
    deliver(&mut nodes, ap2, n5, -72.0, 2);
    deliver(&mut nodes, ap2, n6, -55.0, 3);
    deliver(&mut nodes, ap1, n6, -72.0, 4);
    // #5 and #6 hear each other — same rank, so the link is never used.
    deliver(&mut nodes, n5, n6, -55.0, 5);
    deliver(&mut nodes, n6, n5, -55.0, 6);
    // #4 hears both and picks #6 (smallest accumulated ETX), then #3 joins
    // through #4 with #5 as backup.
    deliver(&mut nodes, n6, n4, -55.0, 7);
    deliver(&mut nodes, n5, n4, -76.0, 8);
    deliver(&mut nodes, n4, n3, -55.0, 9);
    deliver(&mut nodes, n5, n3, -74.0, 10);

    println!();
    println!("resulting graph (cf. Fig. 6(b)):");
    for node in &nodes[2..] {
        println!(
            "  {}: rank={} primary={} backup={} ETXw={:.2}",
            label(node.id()),
            node.rank(),
            node.best_parent().map_or("-".into(), label),
            node.second_best_parent().map_or("-".into(), label),
            node.etx_w(),
        );
    }
    assert_eq!(nodes[n5].best_parent(), Some(NodeId(0)), "#5 → AP1 primary");
    assert_eq!(nodes[n6].best_parent(), Some(NodeId(1)), "#6 → AP2 primary");
    assert_eq!(nodes[n4].best_parent(), Some(NodeId(5)), "#4 → #6 primary");
    assert_eq!(nodes[n3].best_parent(), Some(NodeId(3)), "#3 → #4 primary");
    assert_eq!(nodes[n5].second_best_parent(), Some(NodeId(1)), "#5 ⇢ AP2 backup");
    assert_eq!(nodes[n6].second_best_parent(), Some(NodeId(0)), "#6 ⇢ AP1 backup");
    println!();
    println!("matches the paper's example: primary #3→#4→#6→AP2 and #5→AP1,");
    println!("backups #3⇢#5, #4⇢#5, #5⇢AP2, #6⇢AP1; the same-rank #5–#6 link is unused.");
}
