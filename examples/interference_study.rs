//! Head-to-head interference study (one flow set of the paper's Fig. 9
//! scenario): Testbed A, 8 flows, three WiFi-emulating jammers switching
//! on two minutes into the run.
//!
//! ```sh
//! cargo run --release --example interference_study
//! ```

use digs::config::Protocol;
use digs::network::Network;
use digs::scenarios;
use digs_sim::time::Asn;

fn main() {
    for protocol in [Protocol::Digs, Protocol::Orchestra] {
        let config = scenarios::testbed_a_interference(protocol, 1);
        let mut network = Network::new(config);
        network.run_secs(420);
        let results = network.results();
        println!("── {} ──", protocol.name());
        println!("  flow-set PDR      : {:.3}", results.network_pdr());
        println!("  worst flow PDR    : {:.3}", results.worst_flow_pdr());
        println!("  median latency    : {:.0} ms", results.median_latency_ms().unwrap_or(f64::NAN));
        println!("  power per packet  : {:.4} mW", results.power_per_received_packet_mw());
        let repair = results
            .repair_time_secs(Asn::from_secs(scenarios::JAM_START_SECS), 1000)
            .map_or("none needed".to_string(), |t| format!("{t:.1} s"));
        println!("  repair after jam  : {repair}");
        println!("  parent changes    : {}", results.parent_change_times.len());
        println!();
    }
    println!("expected shape (paper Fig. 9): DiGS delivers a higher PDR with");
    println!("lower, steadier latency; Orchestra pays for its single route with");
    println!("repair pauses and retry tails.");
}
