//! A whole industrial estate in one invocation: a fleet of independent
//! oil-field and factory-floor networks plus one spatially sharded
//! 2000-device campus network, reduced into a single fleet SLO report.
//!
//! This is the `digs-fleet` subsystem end to end — template stamping
//! ([`digs_fleet::FleetSpec`]), the shared worker pool, shard
//! boundary-interference exchange, and `LogHistogram`-based latency
//! aggregation — the same pipeline `digs-cli fleet run` drives.
//!
//! ```sh
//! cargo run --release --example plant_campus
//! ```
//!
//! The run is deterministic: same spec, same report, regardless of
//! worker count (set `DIGS_FLEET_JOBS` to check).

use digs_fleet::{aggregate, run_fleet, FleetSpec, ShardedSpec, SloPolicy, Template};

fn main() {
    // Eight oil fields, eight factory floors, and one sharded campus:
    // 2000 devices in 100-device shards that exchange boundary
    // interference at slotframe-window edges.
    let spec = FleetSpec::new()
        .group(Template::OilField, 8, 1)
        .group(Template::FactoryFloor, 8, 1)
        .sharded(ShardedSpec::sized("campus-2000", 2000, 42));

    println!(
        "plant campus: {} networks, {} nodes, {} s simulated each",
        spec.networks(),
        spec.total_nodes(),
        spec.secs
    );

    let jobs = std::env::var("DIGS_FLEET_JOBS").ok().and_then(|s| s.parse().ok());
    let outcome = run_fleet(&spec, jobs);

    let report = aggregate(&outcome.summaries, spec.secs);
    let policy = SloPolicy::default();
    println!("\n{}", report.render(&policy));

    // Shard utilization: how evenly the windowed shard loop kept its
    // workers busy (the slowest shard sets each window's pace).
    for (name, busy) in &outcome.shard_busy {
        let max = busy.iter().map(|d| d.as_secs_f64()).fold(1e-9_f64, f64::max);
        let util: Vec<String> =
            busy.iter().map(|d| format!("{:.0}%", 100.0 * d.as_secs_f64() / max)).collect();
        println!("shard utilization `{name}`: [{}]", util.join(", "));
    }
    println!(
        "simulated {} node-seconds in {:.1} s of wall clock ({:.0} node-sec/core-sec)",
        outcome.node_secs,
        outcome.wall.as_secs_f64(),
        outcome.node_secs as f64 / outcome.serial_equivalent.as_secs_f64().max(1e-9)
    );

    if !report.breaches(&policy).is_empty() {
        std::process::exit(1);
    }
}
