//! Domain example from the paper's introduction: "hundreds of devices over
//! an oil field" — wellhead clusters strung along a pipeline with the
//! gateway (two access points) at the processing facility.
//!
//! The topology and scenario live in [`digs::scenarios`] (the fleet runner
//! instantiates them by the thousand); this example sanity-checks the
//! deployment with [`TopologyAnalysis`] before running anything, then runs
//! DiGS on a genuinely deep (5+ hop) industrial network.
//!
//! ```sh
//! cargo run --release --example oil_field
//! ```

use digs::config::Protocol;
use digs::network::Network;
use digs::scenarios;
use digs_sim::analysis::TopologyAnalysis;

fn main() {
    // Monitor flows from the far wellhead clusters, one packet per 5 s,
    // starting after a one-minute network-formation window; devices at
    // full CC2420 power (0 dBm) — the open-area pipeline needs the link
    // margin, and the pump-station access points a third of the way
    // along keep every cluster within a few hops.
    let config = scenarios::oil_field(Protocol::Digs, 11);

    // Pre-flight: is the deployment even connected at this power, and how
    // deep is it? Which devices are single points of failure?
    let analysis = TopologyAnalysis::new(&config.topology, &config.rf);
    println!("deployment      : {} devices", config.topology.len());
    println!("connected       : {}", analysis.is_connected());
    println!("network depth   : {:?} hops", analysis.depth());
    println!("mean degree     : {:.1}", analysis.mean_degree());
    println!("hop histogram   : {:?}", analysis.hop_histogram());
    let cut_points = analysis.articulation_points();
    println!(
        "critical relays : {:?} (their failure would partition the field)",
        cut_points.iter().map(|n| n.0).collect::<Vec<_>>()
    );

    let mut network = Network::new(config);
    network.run_secs(420);

    let results = network.results();
    let graph = network.routing_graph();
    println!();
    println!("after 7 simulated minutes of DiGS:");
    println!("  joined          : {:.0}%", results.fraction_joined() * 100.0);
    println!("  backup coverage : {:.0}%", graph.fraction_with_backup() * 100.0);
    println!("  network PDR     : {:.3}", results.network_pdr());
    println!("  median latency  : {:.0} ms", results.median_latency_ms().unwrap_or(f64::NAN));
    println!(
        "  drops           : {} retry-exhausted, {} queue-overflow",
        results.retry_drops, results.queue_drops
    );
    for flow in &results.flows {
        let hops = analysis.hops_to_ap(flow.source).unwrap_or(0);
        println!("  {} from {} ({} hops): PDR {:.2}", flow.flow, flow.source, hops, flow.pdr());
    }
}
