//! Domain example from the paper's introduction: "hundreds of devices over
//! an oil field" — here, wellhead clusters strung along a pipeline with the
//! gateway (two access points) at the processing facility.
//!
//! Shows how to build a custom [`Topology`], sanity-check it with
//! [`TopologyAnalysis`] before running anything, and then run DiGS on a
//! genuinely deep (5+ hop) industrial deployment.
//!
//! ```sh
//! cargo run --release --example oil_field
//! ```

use digs::config::{NetworkConfig, Protocol};
use digs::network::Network;
use digs_scheduling::SlotframeLengths;
use digs_sim::analysis::TopologyAnalysis;
use digs_sim::ids::NodeId;
use digs_sim::position::Position;
use digs_sim::rf::RfConfig;
use digs_sim::topology::{Role, Topology};

/// Five wellhead clusters of six devices each, spaced 25 m along a
/// pipeline, plus a pressure sensor every 12 m between clusters. The two
/// access points sit at the processing facility (west end).
fn oil_field() -> Topology {
    let mut positions = vec![Position::new(0.0, 4.0), Position::new(0.0, -4.0)];
    let mut roles = vec![Role::AccessPoint, Role::AccessPoint];
    // Pipeline pressure sensors: every 12 m for 180 m.
    for i in 1..=15 {
        positions.push(Position::new(12.0 * f64::from(i), 0.0));
        roles.push(Role::FieldDevice);
    }
    // Wellhead clusters hanging off the pipeline.
    for cluster in 0..5 {
        let base_x = 30.0 + 36.0 * f64::from(cluster);
        for k in 0..6 {
            let dx = f64::from(k % 3) * 5.0;
            let dy = 8.0 + f64::from(k / 3) * 6.0;
            let side = if cluster % 2 == 0 { 1.0 } else { -1.0 };
            positions.push(Position::new(base_x + dx, side * dy));
            roles.push(Role::FieldDevice);
        }
    }
    Topology::new("oil-field", positions, roles)
}

fn main() {
    let topology = oil_field();
    // Run the field devices at reduced power (-10 dBm): links stay short
    // and reliable (the paper's RSS→ETX mapping caps weak links at ETX 3,
    // which makes long marginal links look cheaper than they are — short
    // hops avoid that trap and save energy).
    let rf = RfConfig { tx_power: digs_sim::rf::Dbm(-10.0), ..RfConfig::open_area() };

    // Pre-flight: is the deployment even connected at this power, and how
    // deep is it? Which devices are single points of failure?
    let analysis = TopologyAnalysis::new(&topology, &rf);
    println!("deployment      : {} devices", topology.len());
    println!("connected       : {}", analysis.is_connected());
    println!("network depth   : {:?} hops", analysis.depth());
    println!("mean degree     : {:.1}", analysis.mean_degree());
    println!("hop histogram   : {:?}", analysis.hop_histogram());
    let cut_points = analysis.articulation_points();
    println!(
        "critical relays : {:?} (their failure would partition the field)",
        cut_points.iter().map(|n| n.0).collect::<Vec<_>>()
    );

    // Monitor flows from the far wellhead clusters, one packet per 5 s,
    // starting after a one-minute network-formation window. The deepest
    // clusters need A·devices distinct Eq. 4 cells, so size the
    // application slotframe accordingly (149 is prime: 45 devices × 3
    // attempts = 135 cells fit).
    let far_sources: Vec<NodeId> = topology.field_devices().into_iter().rev().take(6).collect();
    let mut flows = digs::flows::flow_set_from_sources(&far_sources, 500);
    for f in &mut flows {
        f.phase += 6000;
    }
    let config = NetworkConfig::builder(topology)
        .protocol(Protocol::Digs)
        .rf(rf)
        .slotframes(SlotframeLengths { app: 149, ..SlotframeLengths::paper() })
        .seed(11)
        .flows(flows)
        .build();
    let mut network = Network::new(config);
    network.run_secs(420);

    let results = network.results();
    let graph = network.routing_graph();
    println!();
    println!("after 7 simulated minutes of DiGS:");
    println!("  joined          : {:.0}%", results.fraction_joined() * 100.0);
    println!("  backup coverage : {:.0}%", graph.fraction_with_backup() * 100.0);
    println!("  network PDR     : {:.3}", results.network_pdr());
    println!("  median latency  : {:.0} ms", results.median_latency_ms().unwrap_or(f64::NAN));
    println!(
        "  drops           : {} retry-exhausted, {} queue-overflow",
        results.retry_drops, results.queue_drops
    );
    for flow in &results.flows {
        let hops = analysis.hops_to_ap(flow.source).unwrap_or(0);
        println!("  {} from {} ({} hops): PDR {:.2}", flow.flow, flow.source, hops, flow.pdr());
    }
}
