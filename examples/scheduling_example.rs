//! The paper's Fig. 7 scheduling example: two access points (#1, #2 →
//! ids 0, 1) and two field devices (#3, #4 → ids 2, 3) with slotframe
//! lengths 61 / 11 / 7, showing how each node combines its three
//! autonomous schedules into one — with no negotiation whatsoever.
//!
//! ```sh
//! cargo run --release --example scheduling_example
//! ```

use digs_routing::messages::ParentSlot;
use digs_scheduling::slotframe::CellAction;
use digs_scheduling::{DigsScheduler, SlotframeLengths};
use digs_sim::ids::NodeId;
use digs_sim::time::Asn;

fn cell_glyph(action: Option<CellAction>) -> &'static str {
    match action {
        None => "  .  ",
        Some(CellAction::TxBeacon) => " EB↑ ",
        Some(CellAction::RxBeacon { .. }) => " EB↓ ",
        Some(CellAction::Shared) => " SHR ",
        Some(CellAction::TxData { .. }) => " TX  ",
        Some(CellAction::RxData) => " RX  ",
    }
}

fn main() {
    let lengths = SlotframeLengths::example();
    println!(
        "Fig. 7: slotframes sync={} routing={} app={} (hyper-period {})",
        lengths.sync,
        lengths.routing,
        lengths.app,
        lengths.hyper_period()
    );

    // Graph routes of Fig. 7(a): primary #3→#1 and #4→#2; backups #3⇢#2
    // and #4⇢#1.
    let mut schedulers: Vec<DigsScheduler> =
        (0..4u16).map(|i| DigsScheduler::new(NodeId(i), 2, lengths, 3)).collect();
    schedulers[2].set_parents(Some(NodeId(0)), Some(NodeId(1)));
    schedulers[3].set_parents(Some(NodeId(1)), Some(NodeId(0)));
    // Parents learn their children (in the full stack this happens via
    // joined-callbacks and join-in piggybacks).
    schedulers[0].add_child(NodeId(2), ParentSlot::Best);
    schedulers[0].add_child(NodeId(3), ParentSlot::SecondBest);
    schedulers[1].add_child(NodeId(3), ParentSlot::Best);
    schedulers[1].add_child(NodeId(2), ParentSlot::SecondBest);

    // Eq. 4 check against the paper: #3's attempts land in app slots
    // 1, 2, 3 and #4's in 4, 5, 6.
    for (node, expect) in [(2u16, [1, 2, 3]), (3, [4, 5, 6])] {
        let s = &schedulers[node as usize];
        let slots: Vec<u32> = (1..=3).map(|p| s.tx_slot(NodeId(node), p)).collect();
        println!("  node #{} attempt slots (Eq. 4): {:?}", node + 1, slots);
        assert_eq!(slots, expect);
    }

    println!();
    println!("combined schedules for the first 22 slots (cf. Fig. 7(e)):");
    print!("{:>6}", "ASN");
    for node in 0..4 {
        print!(" | node {:>2}", node + 1);
    }
    println!();
    for asn in 0..22u64 {
        print!("{asn:>6}");
        for s in &schedulers {
            print!(" |  {} ", cell_glyph(s.cell(Asn(asn)).map(|c| c.action)));
        }
        println!();
    }
    println!();
    println!("legend: EB↑ beacon tx, EB↓ beacon rx, SHR shared routing slot,");
    println!("        TX data tx, RX data rx, . sleep");
    println!();
    println!("note how slot 0 resolves per-node by priority: nodes whose sync");
    println!("schedule claims it use it for sync; the others fall back to the");
    println!("shared routing slot — no traffic class is permanently blocked");
    println!("because the three slotframe lengths are coprime.");
}
