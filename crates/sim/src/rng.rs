//! Deterministic randomness helpers.
//!
//! The simulator must be fully reproducible under a seed: per-link shadowing
//! and per-channel fading are *frozen* functions of (seed, link, channel)
//! computed by hashing, while per-transmission noise uses a single
//! [`SmallRng`] owned by the engine.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Creates the engine's RNG from a user seed.
pub fn engine_rng(seed: u64) -> SmallRng {
    SmallRng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15)
}

/// A deterministic 64-bit mix of the inputs (SplitMix64 finalizer), used to
/// derive frozen per-link randomness without storing it.
pub fn mix(seed: u64, a: u64, b: u64, c: u64) -> u64 {
    let mut z = seed
        .wrapping_add(a.wrapping_mul(0x9e37_79b9_7f4a_7c15))
        .wrapping_add(b.wrapping_mul(0xbf58_476d_1ce4_e5b9))
        .wrapping_add(c.wrapping_mul(0x94d0_49bb_1331_11eb));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A uniform sample in `[0, 1)` derived deterministically from the inputs.
pub fn uniform01(seed: u64, a: u64, b: u64, c: u64) -> f64 {
    // 53 high bits → uniform double in [0, 1).
    (mix(seed, a, b, c) >> 11) as f64 / (1u64 << 53) as f64
}

/// A standard-normal sample derived deterministically from the inputs
/// (Box–Muller over two mixed uniforms).
pub fn standard_normal(seed: u64, a: u64, b: u64, c: u64) -> f64 {
    let u1 = uniform01(seed, a, b, c).max(1e-12);
    let u2 = uniform01(seed ^ 0x5851_f42d_4c95_7f2d, a, b, c);
    (-2.0 * u1.ln()).sqrt() * (core::f64::consts::TAU * u2).cos()
}

/// Samples a standard-normal value from a live RNG.
pub fn sample_normal(rng: &mut SmallRng) -> f64 {
    let u1 = rng.gen_range(1e-12..1.0f64);
    let u2 = rng.gen_range(0.0..1.0f64);
    (-2.0 * u1.ln()).sqrt() * (core::f64::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_is_deterministic() {
        assert_eq!(mix(1, 2, 3, 4), mix(1, 2, 3, 4));
        assert_ne!(mix(1, 2, 3, 4), mix(1, 2, 3, 5));
        assert_ne!(mix(1, 2, 3, 4), mix(2, 2, 3, 4));
    }

    #[test]
    fn uniform01_in_range() {
        for i in 0..1000 {
            let u = uniform01(42, i, i * 7, i * 13);
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn uniform01_is_roughly_uniform() {
        let n = 10_000u64;
        let mean: f64 = (0..n).map(|i| uniform01(7, i, 0, 0)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn standard_normal_moments() {
        let n = 20_000u64;
        let samples: Vec<f64> = (0..n).map(|i| standard_normal(11, i, 1, 2)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn engine_rng_reproducible() {
        let mut a = engine_rng(9);
        let mut b = engine_rng(9);
        for _ in 0..10 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn live_normal_moments() {
        let mut rng = engine_rng(3);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| sample_normal(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
    }
}
