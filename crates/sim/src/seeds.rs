//! Seed-sweep specifications for statistical evaluation.
//!
//! Every paper figure is a distribution over seeded flow sets, and the
//! conformance gate runs whole scenario × seed matrices. A [`SeedSpec`]
//! is the canonical way callers name such a sweep: a count (`"8"` means
//! seeds `1..=8`), an inclusive range (`"3-10"`), or an explicit list
//! (`"1,4,9"`). Seeds are deterministic identifiers, never entropy — the
//! same spec always yields the same runs.

use core::fmt;

/// A parsed seed sweep.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SeedSpec {
    seeds: Vec<u64>,
}

/// Error from [`SeedSpec::parse`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SeedSpecError(String);

impl fmt::Display for SeedSpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bad seed spec: {} (use N, LO-HI, or a,b,c)", self.0)
    }
}

impl std::error::Error for SeedSpecError {}

impl SeedSpec {
    /// Seeds `1..=n`, the conventional sweep over `n` flow sets.
    pub fn first(n: u64) -> SeedSpec {
        SeedSpec { seeds: (1..=n).collect() }
    }

    /// Parses `"8"` (seeds 1–8), `"3-10"` (inclusive range), or
    /// `"1,4,9"` (explicit list, deduplicated, order preserved).
    ///
    /// # Errors
    ///
    /// Returns [`SeedSpecError`] on empty, unparsable, or inverted input.
    pub fn parse(spec: &str) -> Result<SeedSpec, SeedSpecError> {
        let spec = spec.trim();
        let err = || SeedSpecError(spec.to_string());
        if spec.is_empty() {
            return Err(err());
        }
        if spec.contains(',') {
            let mut seeds = Vec::new();
            for part in spec.split(',') {
                let s: u64 = part.trim().parse().map_err(|_| err())?;
                if !seeds.contains(&s) {
                    seeds.push(s);
                }
            }
            return Ok(SeedSpec { seeds });
        }
        if let Some((lo, hi)) = spec.split_once('-') {
            let lo: u64 = lo.trim().parse().map_err(|_| err())?;
            let hi: u64 = hi.trim().parse().map_err(|_| err())?;
            if lo > hi {
                return Err(err());
            }
            return Ok(SeedSpec { seeds: (lo..=hi).collect() });
        }
        let n: u64 = spec.parse().map_err(|_| err())?;
        Ok(SeedSpec::first(n))
    }

    /// The seeds, in sweep order.
    pub fn seeds(&self) -> &[u64] {
        &self.seeds
    }

    /// Number of seeds in the sweep.
    pub fn len(&self) -> usize {
        self.seeds.len()
    }

    /// Whether the sweep is empty.
    pub fn is_empty(&self) -> bool {
        self.seeds.is_empty()
    }
}

impl fmt::Display for SeedSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Print the densest form: a contiguous run as LO-HI, else a list.
        let contiguous = self.seeds.windows(2).all(|w| w[1] == w[0] + 1);
        match (self.seeds.first(), self.seeds.last()) {
            (Some(lo), Some(hi)) if contiguous && lo != hi => write!(f, "{lo}-{hi}"),
            _ => {
                for (i, s) in self.seeds.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{s}")?;
                }
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn count_form_starts_at_one() {
        assert_eq!(SeedSpec::parse("3").unwrap().seeds(), &[1, 2, 3]);
    }

    #[test]
    fn range_form_is_inclusive() {
        assert_eq!(SeedSpec::parse("5-8").unwrap().seeds(), &[5, 6, 7, 8]);
        assert_eq!(SeedSpec::parse("4-4").unwrap().seeds(), &[4]);
    }

    #[test]
    fn list_form_dedups_and_keeps_order() {
        assert_eq!(SeedSpec::parse("9, 2, 9,5").unwrap().seeds(), &[9, 2, 5]);
    }

    #[test]
    fn bad_specs_error() {
        for bad in ["", "x", "5-2", "1..3", "-3", "1,,2"] {
            assert!(SeedSpec::parse(bad).is_err(), "{bad} should be rejected");
        }
    }

    #[test]
    fn display_round_trips() {
        for spec in ["1-8", "3-10", "9,2,5", "7"] {
            let parsed = SeedSpec::parse(spec).unwrap();
            assert_eq!(SeedSpec::parse(&parsed.to_string()).unwrap(), parsed);
        }
    }
}
