//! Topology analysis: connectivity structure of a deployment before any
//! protocol runs.
//!
//! Used by the harness to sanity-check generated layouts (is the network
//! connected at the configured power? how deep is it?) and to find
//! structurally critical relays (articulation points — the nodes whose
//! failure partitions the network, the hardest victims for Fig. 11-style
//! experiments).

use crate::ids::NodeId;
use crate::rf::{RfConfig, RSS_MIN};
use crate::topology::Topology;
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Static connectivity analysis of a topology under an RF configuration.
///
/// A link is considered usable when its mean RSS is at least the paper's
/// `RSSmin` (−90 dBm) — the same eligibility bar the routing layer applies.
#[derive(Debug, Clone)]
pub struct TopologyAnalysis {
    n: usize,
    adjacency: Vec<Vec<NodeId>>,
    hops_from_ap: Vec<Option<u32>>,
}

impl TopologyAnalysis {
    /// Analyses a topology under the given RF configuration.
    pub fn new(topology: &Topology, rf: &RfConfig) -> TopologyAnalysis {
        let n = topology.len();
        let mut adjacency = vec![Vec::new(); n];
        for a in topology.node_ids() {
            for b in topology.node_ids() {
                if a < b {
                    let mut loss = rf.path_loss_db(topology.distance(a, b));
                    loss += f64::from(
                        topology
                            .position(a)
                            .floors_between(&topology.position(b), rf.floor_height_m),
                    ) * rf.floor_attenuation_db;
                    if rf.tx_power.dbm() - loss >= RSS_MIN.dbm() {
                        adjacency[a.index()].push(b);
                        adjacency[b.index()].push(a);
                    }
                }
            }
        }
        // BFS hop counts from the access points.
        let mut hops_from_ap = vec![None; n];
        let mut queue = VecDeque::new();
        for ap in topology.access_points() {
            hops_from_ap[ap.index()] = Some(0);
            queue.push_back(ap);
        }
        while let Some(u) = queue.pop_front() {
            let d = hops_from_ap[u.index()].expect("enqueued with distance");
            for v in &adjacency[u.index()] {
                if hops_from_ap[v.index()].is_none() {
                    hops_from_ap[v.index()] = Some(d + 1);
                    queue.push_back(*v);
                }
            }
        }
        TopologyAnalysis { n, adjacency, hops_from_ap }
    }

    /// Usable-link neighbors of a node.
    pub fn neighbors(&self, node: NodeId) -> &[NodeId] {
        &self.adjacency[node.index()]
    }

    /// Degree (usable-link neighbor count) of a node.
    pub fn degree(&self, node: NodeId) -> usize {
        self.adjacency[node.index()].len()
    }

    /// Mean degree over all nodes.
    pub fn mean_degree(&self) -> f64 {
        let total: usize = self.adjacency.iter().map(Vec::len).sum();
        total as f64 / self.n as f64
    }

    /// Minimum hop distance from a node to any access point (`None` if the
    /// node is disconnected from the APs).
    pub fn hops_to_ap(&self, node: NodeId) -> Option<u32> {
        self.hops_from_ap[node.index()]
    }

    /// Whether every node can reach an access point over usable links.
    pub fn is_connected(&self) -> bool {
        self.hops_from_ap.iter().all(Option::is_some)
    }

    /// The deepest hop count in the network (`None` if disconnected).
    pub fn depth(&self) -> Option<u32> {
        if !self.is_connected() {
            return None;
        }
        self.hops_from_ap.iter().map(|h| h.expect("connected")).max()
    }

    /// Histogram of hop distances: `histogram[d]` = number of nodes at
    /// depth `d` (disconnected nodes are not counted).
    pub fn hop_histogram(&self) -> Vec<usize> {
        let mut hist = Vec::new();
        for h in self.hops_from_ap.iter().flatten() {
            let idx = *h as usize;
            if hist.len() <= idx {
                hist.resize(idx + 1, 0);
            }
            hist[idx] += 1;
        }
        hist
    }

    /// Articulation points: nodes whose removal disconnects some currently
    /// connected pair (classic Tarjan low-link computation, iterative).
    /// These are the structurally critical relays.
    pub fn articulation_points(&self) -> Vec<NodeId> {
        let n = self.n;
        let mut disc = vec![0usize; n];
        let mut low = vec![0usize; n];
        let mut visited = vec![false; n];
        let mut is_ap = vec![false; n];
        let mut timer = 1usize;

        for start in 0..n {
            if visited[start] {
                continue;
            }
            // Iterative DFS: stack of (node, parent, next-neighbor-index).
            let mut stack: Vec<(usize, usize, usize)> = vec![(start, usize::MAX, 0)];
            visited[start] = true;
            disc[start] = timer;
            low[start] = timer;
            timer += 1;
            let mut root_children = 0usize;
            while let Some(&mut (u, parent, ref mut next)) = stack.last_mut() {
                if *next < self.adjacency[u].len() {
                    let v = self.adjacency[u][*next].index();
                    *next += 1;
                    if !visited[v] {
                        visited[v] = true;
                        disc[v] = timer;
                        low[v] = timer;
                        timer += 1;
                        if u == start {
                            root_children += 1;
                        }
                        stack.push((v, u, 0));
                    } else if v != parent {
                        low[u] = low[u].min(disc[v]);
                    }
                } else {
                    stack.pop();
                    if let Some(&mut (p, _, _)) = stack.last_mut() {
                        low[p] = low[p].min(low[u]);
                        if p != start && low[u] >= disc[p] {
                            is_ap[p] = true;
                        }
                    }
                }
            }
            if root_children > 1 {
                is_ap[start] = true;
            }
        }
        (0..n).filter(|i| is_ap[*i]).map(|i| NodeId(i as u16)).collect()
    }

    /// The nodes most traffic must pass through: for each node, the number
    /// of other nodes whose *only shortest paths* to the APs run through
    /// it (a cheap betweenness proxy: count of descendants in the BFS
    /// shortest-path DAG when the node is their unique predecessor).
    pub fn bottleneck_scores(&self) -> BTreeMap<NodeId, usize> {
        let mut scores = BTreeMap::new();
        for v in 0..self.n {
            let Some(dv) = self.hops_from_ap[v] else { continue };
            if dv == 0 {
                continue;
            }
            // Unique predecessor?
            let preds: Vec<usize> = self.adjacency[v]
                .iter()
                .filter(|u| self.hops_from_ap[u.index()] == Some(dv - 1))
                .map(|u| u.index())
                .collect();
            if preds.len() == 1 && self.hops_from_ap[preds[0]].is_some_and(|d| d > 0) {
                *scores.entry(NodeId(preds[0] as u16)).or_insert(0) += 1;
            }
        }
        scores
    }

    /// Nodes disconnected from every access point.
    pub fn disconnected_nodes(&self) -> Vec<NodeId> {
        let connected: BTreeSet<usize> = self
            .hops_from_ap
            .iter()
            .enumerate()
            .filter(|(_, h)| h.is_some())
            .map(|(i, _)| i)
            .collect();
        (0..self.n).filter(|i| !connected.contains(i)).map(|i| NodeId(i as u16)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::position::Position;
    use crate::topology::Role;

    /// AP — a — b — c chain with 12 m spacing (usable at indoor defaults).
    fn chain() -> Topology {
        Topology::new(
            "chain",
            (0..4).map(|i| Position::new(12.0 * f64::from(i), 0.0)).collect(),
            vec![Role::AccessPoint, Role::FieldDevice, Role::FieldDevice, Role::FieldDevice],
        )
    }

    #[test]
    fn chain_hops_and_depth() {
        let a = TopologyAnalysis::new(&chain(), &RfConfig::deterministic());
        assert!(a.is_connected());
        assert_eq!(a.hops_to_ap(NodeId(0)), Some(0));
        assert_eq!(a.hops_to_ap(NodeId(1)), Some(1));
        assert_eq!(a.hops_to_ap(NodeId(3)), Some(3));
        assert_eq!(a.depth(), Some(3));
        assert_eq!(a.hop_histogram(), vec![1, 1, 1, 1]);
    }

    #[test]
    fn chain_interior_nodes_are_articulation_points() {
        let a = TopologyAnalysis::new(&chain(), &RfConfig::deterministic());
        let aps = a.articulation_points();
        assert!(aps.contains(&NodeId(1)));
        assert!(aps.contains(&NodeId(2)));
        assert!(!aps.contains(&NodeId(0)), "chain end is not an articulation point");
        assert!(!aps.contains(&NodeId(3)));
    }

    #[test]
    fn chain_bottlenecks_count_descendants() {
        let a = TopologyAnalysis::new(&chain(), &RfConfig::deterministic());
        let scores = a.bottleneck_scores();
        // Node 1 is the unique predecessor of node 2; node 2 of node 3.
        assert_eq!(scores.get(&NodeId(1)), Some(&1));
        assert_eq!(scores.get(&NodeId(2)), Some(&1));
    }

    #[test]
    fn disconnected_node_detected() {
        let topo = Topology::new(
            "island",
            vec![Position::new(0.0, 0.0), Position::new(12.0, 0.0), Position::new(500.0, 500.0)],
            vec![Role::AccessPoint, Role::FieldDevice, Role::FieldDevice],
        );
        let a = TopologyAnalysis::new(&topo, &RfConfig::deterministic());
        assert!(!a.is_connected());
        assert_eq!(a.depth(), None);
        assert_eq!(a.disconnected_nodes(), vec![NodeId(2)]);
    }

    #[test]
    fn testbed_a_is_connected_and_shallow() {
        let a = TopologyAnalysis::new(&Topology::testbed_a(), &RfConfig::deterministic());
        assert!(a.is_connected());
        let depth = a.depth().expect("connected");
        assert!((1..=6).contains(&depth), "depth {depth}");
        assert!(a.mean_degree() > 4.0);
    }

    #[test]
    fn dense_testbed_has_no_articulation_points_in_core() {
        // A 50-node office floor is redundant enough that few (often no)
        // field devices are single points of failure.
        let a = TopologyAnalysis::new(&Topology::testbed_a(), &RfConfig::deterministic());
        assert!(a.articulation_points().len() <= 5);
    }

    #[test]
    fn two_floor_building_crosses_floors() {
        let a = TopologyAnalysis::new(&Topology::testbed_b(), &RfConfig::deterministic());
        assert!(a.is_connected(), "floor penetration must not partition Testbed B");
        assert!(a.depth().expect("connected") >= 2);
    }
}
