//! Identifier newtypes shared across the workspace.

use core::fmt;

/// Identifier of a network device (access point or field device).
///
/// Node ids are dense `u16` indices assigned by the [`crate::topology::Topology`];
/// access points occupy the lowest ids. The DiGS autonomous scheduler derives
/// transmission slots directly from this id (paper Eq. 4), mirroring how the
/// real system derives them from the MAC address.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, serde::Serialize, serde::Deserialize,
)]
pub struct NodeId(pub u16);

impl NodeId {
    /// Returns the raw index.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl From<u16> for NodeId {
    fn from(v: u16) -> Self {
        NodeId(v)
    }
}

impl From<NodeId> for u16 {
    fn from(v: NodeId) -> Self {
        v.0
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// Identifier of an end-to-end data flow (source field device → access points).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, serde::Serialize, serde::Deserialize,
)]
pub struct FlowId(pub u16);

impl FlowId {
    /// Returns the raw index.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl From<u16> for FlowId {
    fn from(v: u16) -> Self {
        FlowId(v)
    }
}

impl fmt::Display for FlowId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "flow{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_roundtrip() {
        let id = NodeId::from(7u16);
        assert_eq!(u16::from(id), 7);
        assert_eq!(id.index(), 7);
        assert_eq!(id.to_string(), "#7");
    }

    #[test]
    fn flow_id_display() {
        assert_eq!(FlowId(3).to_string(), "flow3");
        assert_eq!(FlowId::from(3u16).index(), 3);
    }

    #[test]
    fn ids_are_ordered() {
        assert!(NodeId(1) < NodeId(2));
        assert!(FlowId(0) < FlowId(10));
    }
}
