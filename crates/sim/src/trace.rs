//! Aggregate simulation statistics collected by the engine.

use crate::packet::FrameKind;
use core::fmt;

/// Counters the engine maintains while running, broken down by traffic class.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct KindCounters {
    /// Frames put on the air.
    pub transmitted: u64,
    /// Frame receptions delivered to a stack (one per successful listener).
    pub received: u64,
    /// Unicast transmissions that were acknowledged.
    pub acked: u64,
    /// Unicast transmissions that were not acknowledged.
    pub unacked: u64,
}

/// Engine-level statistics across all nodes and traffic classes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct EngineStats {
    /// Beacon traffic counters.
    pub beacon: KindCounters,
    /// Routing traffic counters.
    pub routing: KindCounters,
    /// Application data counters.
    pub data: KindCounters,
    /// Management (centralized dissemination) counters.
    pub management: KindCounters,
    /// Transmissions deferred by a busy CCA in shared slots.
    pub cca_deferrals: u64,
    /// Unicast DATA transmissions that failed because the addressee was not
    /// listening on the transmit channel at all (schedule mismatch), as
    /// opposed to frame/ACK loss.
    pub unacked_no_listener: u64,
    /// Slots simulated.
    pub slots: u64,
    /// Committed transmissions per physical channel (index = channel
    /// number, 0..NUM_CHANNELS) — the occupancy signal behind the
    /// telemetry per-channel time series.
    pub channel_tx: [u64; 16],
    /// Receptions lost to the PRR roll with no co-channel contender
    /// (noise / weak signal).
    pub noise_drops: u64,
    /// Receptions lost to the PRR roll while at least one other frame
    /// contended on the same channel (interference-degraded SINR).
    pub collision_drops: u64,
    /// Slots in which an adaptive jammer emitted on at least one of its
    /// learned target cells (selective jamming activity).
    pub adaptive_jam_slots: u64,
    /// Adaptive-jammer target cells that saw a victim transmission while
    /// being jammed (the attacker's successful predictions).
    pub adaptive_jam_hits: u64,
    /// Adaptive-jammer target-cell activations (jammed cells, hit or not) —
    /// the denominator of the attacker hit-rate.
    pub adaptive_jam_opportunities: u64,
    /// Times an adaptive jammer finished a learning window and (re)selected
    /// its top-K victim cells.
    pub adaptive_retargets: u64,
    /// Times an adaptive jammer abandoned a stale target set because its
    /// hit-rate decayed below threshold and went back to learning.
    pub adaptive_relearns: u64,
}

impl EngineStats {
    /// Mutable counters for a traffic class.
    pub fn kind_mut(&mut self, kind: FrameKind) -> &mut KindCounters {
        match kind {
            FrameKind::Beacon => &mut self.beacon,
            FrameKind::Routing => &mut self.routing,
            FrameKind::Data => &mut self.data,
            FrameKind::Management => &mut self.management,
        }
    }

    /// Counters for a traffic class.
    pub fn kind(&self, kind: FrameKind) -> &KindCounters {
        match kind {
            FrameKind::Beacon => &self.beacon,
            FrameKind::Routing => &self.routing,
            FrameKind::Data => &self.data,
            FrameKind::Management => &self.management,
        }
    }

    /// Total frames transmitted across classes.
    pub fn total_transmitted(&self) -> u64 {
        self.beacon.transmitted
            + self.routing.transmitted
            + self.data.transmitted
            + self.management.transmitted
    }

    /// Link-layer delivery ratio for unicast data frames
    /// (acked / (acked + unacked)), or `None` if no unicast data was sent.
    pub fn data_link_delivery_ratio(&self) -> Option<f64> {
        let total = self.data.acked + self.data.unacked;
        if total == 0 {
            None
        } else {
            Some(self.data.acked as f64 / total as f64)
        }
    }
}

impl fmt::Display for EngineStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "slots {}: tx {} (beacon {}, routing {}, data {}, mgmt {}), cca-deferrals {}",
            self.slots,
            self.total_transmitted(),
            self.beacon.transmitted,
            self.routing.transmitted,
            self.data.transmitted,
            self.management.transmitted,
            self.cca_deferrals
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_mut_routes_to_right_counter() {
        let mut s = EngineStats::default();
        s.kind_mut(FrameKind::Data).transmitted += 2;
        s.kind_mut(FrameKind::Beacon).transmitted += 1;
        assert_eq!(s.data.transmitted, 2);
        assert_eq!(s.beacon.transmitted, 1);
        assert_eq!(s.total_transmitted(), 3);
        assert_eq!(s.kind(FrameKind::Data).transmitted, 2);
    }

    #[test]
    fn link_delivery_ratio() {
        let mut s = EngineStats::default();
        assert_eq!(s.data_link_delivery_ratio(), None);
        s.data.acked = 3;
        s.data.unacked = 1;
        assert_eq!(s.data_link_delivery_ratio(), Some(0.75));
    }
}
