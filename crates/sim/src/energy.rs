//! CC2420 radio energy model.
//!
//! The paper estimates power from radio-activity timestamps and the CC2420
//! data sheet; we do the same. Currents at 3 V supply:
//!
//! | State | Current | Power |
//! |-------|---------|-------|
//! | TX (0 dBm) | 17.4 mA | 52.2 mW |
//! | RX / listen | 18.8 mA | 56.4 mW |
//! | Idle (radio off, MCU sleeping) | ~0.426 mA | 1.28 mW |
//!
//! The meter accumulates microseconds per state and converts to millijoules.

use core::fmt;

/// CC2420 transmit power draw at 0 dBm, in milliwatts (17.4 mA × 3 V).
pub const TX_POWER_MW: f64 = 52.2;
/// CC2420 receive/listen power draw, in milliwatts (18.8 mA × 3 V).
pub const RX_POWER_MW: f64 = 56.4;
/// Sleep power draw, in milliwatts.
pub const SLEEP_POWER_MW: f64 = 0.0013;

/// Time the radio stays in RX waiting for a frame in a listen slot when
/// nothing (or nothing decodable) arrives, in microseconds. TSCH guard time
/// plus the maximum frame wait.
pub const IDLE_LISTEN_US: u32 = 2200;

/// Turnaround + ACK-wait time charged to a unicast transmitter, in
/// microseconds (RX state).
pub const ACK_WAIT_US: u32 = 1000;

/// Per-node accumulator of radio-on time.
#[derive(Debug, Clone, Copy, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct EnergyMeter {
    /// Microseconds spent transmitting.
    pub tx_us: u64,
    /// Microseconds spent in receive/listen.
    pub rx_us: u64,
    /// Total slots observed (for duty-cycle denominators).
    pub slots: u64,
}

impl EnergyMeter {
    /// Creates an empty meter.
    pub fn new() -> EnergyMeter {
        EnergyMeter::default()
    }

    /// Charges transmit airtime.
    pub fn charge_tx(&mut self, us: u32) {
        self.tx_us += u64::from(us);
    }

    /// Charges receive/listen airtime.
    pub fn charge_rx(&mut self, us: u32) {
        self.rx_us += u64::from(us);
    }

    /// Notes that one slot elapsed (alive, whether or not the radio was on).
    pub fn tick_slot(&mut self) {
        self.slots += 1;
    }

    /// Total radio energy consumed, in millijoules. Sleep energy for the
    /// radio-off remainder is included.
    pub fn energy_mj(&self) -> f64 {
        let tx_s = self.tx_us as f64 / 1e6;
        let rx_s = self.rx_us as f64 / 1e6;
        let total_s = self.slots as f64 * crate::time::SLOT_MS as f64 / 1e3;
        let sleep_s = (total_s - tx_s - rx_s).max(0.0);
        (tx_s * TX_POWER_MW + rx_s * RX_POWER_MW + sleep_s * SLEEP_POWER_MW) * 1e3 / 1e3
    }

    /// Mean radio power over the observed interval, in milliwatts.
    pub fn mean_power_mw(&self) -> f64 {
        let total_s = self.slots as f64 * crate::time::SLOT_MS as f64 / 1e3;
        if total_s == 0.0 {
            0.0
        } else {
            self.energy_mj() / total_s
        }
    }

    /// Fraction of time the radio was on (TX or RX), in `[0, 1]`.
    pub fn duty_cycle(&self) -> f64 {
        let total_us = self.slots as f64 * crate::time::SLOT_MS as f64 * 1e3;
        if total_us == 0.0 {
            0.0
        } else {
            ((self.tx_us + self.rx_us) as f64 / total_us).min(1.0)
        }
    }

    /// Merges another meter into this one.
    pub fn merge(&mut self, other: &EnergyMeter) {
        self.tx_us += other.tx_us;
        self.rx_us += other.rx_us;
        self.slots += other.slots;
    }
}

impl fmt::Display for EnergyMeter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:.2} mJ (tx {:.1} ms, rx {:.1} ms, duty {:.3}%)",
            self.energy_mj(),
            self.tx_us as f64 / 1e3,
            self.rx_us as f64 / 1e3,
            self.duty_cycle() * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_meter_is_zero() {
        let m = EnergyMeter::new();
        assert_eq!(m.energy_mj(), 0.0);
        assert_eq!(m.duty_cycle(), 0.0);
        assert_eq!(m.mean_power_mw(), 0.0);
    }

    #[test]
    fn one_second_of_rx() {
        let mut m = EnergyMeter::new();
        m.charge_rx(1_000_000);
        m.slots = 100; // 1 s of slots
                       // All time in RX: energy = 56.4 mW × 1 s = 56.4 mJ.
        assert!((m.energy_mj() - RX_POWER_MW).abs() < 1e-9);
        assert!((m.duty_cycle() - 1.0).abs() < 1e-9);
        assert!((m.mean_power_mw() - RX_POWER_MW).abs() < 1e-9);
    }

    #[test]
    fn tx_cheaper_than_rx_per_unit_time() {
        let mut tx = EnergyMeter::new();
        tx.charge_tx(500_000);
        tx.slots = 100;
        let mut rx = EnergyMeter::new();
        rx.charge_rx(500_000);
        rx.slots = 100;
        assert!(tx.energy_mj() < rx.energy_mj());
    }

    #[test]
    fn duty_cycle_counts_both_states() {
        let mut m = EnergyMeter::new();
        m.charge_tx(5_000);
        m.charge_rx(5_000);
        m.slots = 100; // 1 s
        assert!((m.duty_cycle() - 0.01).abs() < 1e-9);
    }

    #[test]
    fn merge_adds() {
        let mut a = EnergyMeter::new();
        a.charge_tx(10);
        a.tick_slot();
        let mut b = EnergyMeter::new();
        b.charge_rx(20);
        b.tick_slot();
        a.merge(&b);
        assert_eq!(a.tx_us, 10);
        assert_eq!(a.rx_us, 20);
        assert_eq!(a.slots, 2);
    }

    #[test]
    fn sleeping_node_consumes_little() {
        let mut m = EnergyMeter::new();
        m.slots = 360_000; // one hour
        assert!(m.energy_mj() < 10.0, "sleep energy should be tiny: {}", m.energy_mj());
    }
}
