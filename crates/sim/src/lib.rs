//! # digs-sim — WSAN simulation substrate
//!
//! A slot-synchronous discrete-event simulator for IEEE 802.15.4 / TSCH
//! wireless sensor-actuator networks, built as the evaluation substrate for
//! the DiGS (ICDCS 2018) reproduction. It stands in for the paper's two
//! TelosB testbeds and the Cooja simulator.
//!
//! The simulator models:
//!
//! - **Time** as 10 ms TSCH slots identified by an absolute slot number
//!   ([`Asn`]); see [`time`].
//! - **Radio propagation** with a log-distance path-loss model, per-channel
//!   frequency-selective fading, and additive white Gaussian noise; see
//!   [`rf`] and [`link`].
//! - **Channel hopping** over the 16 IEEE 802.15.4 channels; see [`channel`].
//! - **Interference** from jammers emulating WiFi streaming or Bluetooth
//!   traffic (the paper's JamLab setup) and Cooja-style disturber nodes; see
//!   [`interference`].
//! - **Energy** with a CC2420 radio state model; see [`energy`].
//! - **Faults** as scripted node failures and recoveries; see [`fault`].
//!
//! Protocol stacks plug into the [`engine::Engine`] through the
//! [`engine::NodeStack`] trait: each slot, every alive node declares a
//! [`engine::SlotIntent`] (sleep, listen, or transmit on a channel offset)
//! and the engine resolves propagation, contention, collisions, and
//! acknowledgements, then reports outcomes back to the stacks.
//!
//! # Example
//!
//! ```
//! use digs_sim::topology::Topology;
//! use digs_sim::rf::RfConfig;
//!
//! // A 50-node topology mimicking the paper's Testbed A.
//! let topo = Topology::testbed_a();
//! assert_eq!(topo.len(), 50);
//!
//! // Links within a few meters are strong, cross-building ones are weak.
//! let rf = RfConfig::indoor();
//! let near = rf.mean_rss(5.0);
//! let far = rf.mean_rss(topo.distance(0.into(), 1.into()));
//! assert!(near.dbm() > -75.0);
//! assert!(far.dbm() < near.dbm());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod channel;
pub mod energy;
pub mod engine;
pub mod fault;
pub mod ids;
pub mod interference;
pub mod link;
pub mod packet;
pub mod position;
pub mod rf;
pub mod rng;
pub mod seeds;
pub mod time;
pub mod topology;
pub mod trace;

pub use channel::{ChannelOffset, PhysChannel};
pub use engine::{Engine, NodeStack, SlotIntent, TxOutcome};
pub use ids::{FlowId, NodeId};
pub use packet::{Frame, FrameKind};
pub use time::Asn;
