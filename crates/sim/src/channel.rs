//! IEEE 802.15.4 channels and TSCH channel hopping.

use crate::time::Asn;
use core::fmt;

/// Number of channels in the 2.4 GHz IEEE 802.15.4 band.
pub const NUM_CHANNELS: u8 = 16;

/// Lowest 802.15.4 channel number in the 2.4 GHz band.
pub const FIRST_CHANNEL: u8 = 11;

/// A logical TSCH channel offset (0–15); the physical channel it maps to
/// changes every slot via the hopping function.
#[derive(
    Debug,
    Clone,
    Copy,
    PartialEq,
    Eq,
    PartialOrd,
    Ord,
    Hash,
    Default,
    serde::Serialize,
    serde::Deserialize,
)]
pub struct ChannelOffset(pub u8);

impl ChannelOffset {
    /// Creates a channel offset, wrapping into `0..NUM_CHANNELS`.
    pub const fn new(offset: u8) -> ChannelOffset {
        ChannelOffset(offset % NUM_CHANNELS)
    }

    /// The TSCH hopping function: maps this offset to a physical channel at
    /// the given ASN, `phys = (ASN + offset) mod 16`.
    pub fn hop(self, asn: Asn) -> PhysChannel {
        PhysChannel(((asn.0 + u64::from(self.0)) % u64::from(NUM_CHANNELS)) as u8)
    }
}

impl fmt::Display for ChannelOffset {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "chOff:{}", self.0)
    }
}

/// A physical 802.15.4 channel, stored as an index 0–15 (channel 11–26).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, serde::Serialize, serde::Deserialize,
)]
pub struct PhysChannel(pub u8);

impl PhysChannel {
    /// The IEEE channel number (11–26).
    pub const fn ieee_number(self) -> u8 {
        FIRST_CHANNEL + self.0
    }

    /// Center frequency in MHz: 2405 + 5 × (channel − 11).
    pub const fn center_freq_mhz(self) -> u32 {
        2405 + 5 * self.0 as u32
    }

    /// All sixteen physical channels.
    pub fn all() -> impl Iterator<Item = PhysChannel> {
        (0..NUM_CHANNELS).map(PhysChannel)
    }
}

impl fmt::Display for PhysChannel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ch{}", self.ieee_number())
    }
}

/// The set of 802.15.4 channels overlapped by a 20 MHz-wide WiFi carrier at
/// the given WiFi channel number (1–13). Each WiFi channel blankets four
/// consecutive 802.15.4 channels — this is how the JamLab WiFi emulation is
/// mapped onto the simulator.
pub fn wifi_overlap(wifi_channel: u8) -> Vec<PhysChannel> {
    assert!((1..=13).contains(&wifi_channel), "WiFi channel must be 1–13, got {wifi_channel}");
    // WiFi channel c is centered at 2412 + 5(c-1) MHz; its occupied OFDM
    // bandwidth meaningfully overlaps 802.15.4 channels whose 2 MHz carriers
    // fall within ±9 MHz of the WiFi center — exactly four of them.
    let center = i64::from(2412 + 5 * (u32::from(wifi_channel) - 1));
    PhysChannel::all().filter(|ch| (i64::from(ch.center_freq_mhz()) - center).abs() <= 9).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hopping_cycles_all_channels() {
        let off = ChannelOffset::new(0);
        let mut seen = std::collections::HashSet::new();
        for s in 0..16u64 {
            seen.insert(off.hop(Asn(s)));
        }
        assert_eq!(seen.len(), 16);
    }

    #[test]
    fn hop_is_offset_plus_asn() {
        assert_eq!(ChannelOffset::new(3).hop(Asn(5)), PhysChannel(8));
        assert_eq!(ChannelOffset::new(15).hop(Asn(1)), PhysChannel(0));
    }

    #[test]
    fn offset_wraps() {
        assert_eq!(ChannelOffset::new(16), ChannelOffset(0));
        assert_eq!(ChannelOffset::new(17), ChannelOffset(1));
    }

    #[test]
    fn ieee_numbers() {
        assert_eq!(PhysChannel(0).ieee_number(), 11);
        assert_eq!(PhysChannel(15).ieee_number(), 26);
        assert_eq!(PhysChannel(0).center_freq_mhz(), 2405);
        assert_eq!(PhysChannel(15).center_freq_mhz(), 2480);
    }

    #[test]
    fn wifi_channel_one_overlaps_low_band() {
        let chans = wifi_overlap(1);
        // WiFi ch.1 (2401–2423 MHz) covers 802.15.4 channels 11–14.
        let nums: Vec<u8> = chans.iter().map(|c| c.ieee_number()).collect();
        assert_eq!(nums, vec![11, 12, 13, 14]);
    }

    #[test]
    fn wifi_channel_six_overlaps_mid_band() {
        let nums: Vec<u8> = wifi_overlap(6).iter().map(|c| c.ieee_number()).collect();
        assert_eq!(nums, vec![16, 17, 18, 19]);
    }

    #[test]
    #[should_panic(expected = "WiFi channel must be 1–13")]
    fn invalid_wifi_channel_panics() {
        let _ = wifi_overlap(14);
    }
}
