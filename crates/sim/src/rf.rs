//! Radio-frequency propagation: path loss, received signal strength, and
//! packet reception probability.
//!
//! The model is a standard indoor log-distance path-loss model with
//! per-floor attenuation, combined with a logistic PRR-vs-SINR curve fitted
//! to the CC2420's published sensitivity (-94 dBm, ~85% PRR at -91 dBm).
//! The paper's empirical RSS→ETX initialisation (-90 dBm → ETX 3,
//! -60 dBm → ETX 1) is also implemented here so the routing crate and the
//! simulator agree on link-quality semantics.

use core::fmt;
use core::ops::{Add, Sub};

/// A signal power in dBm.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, serde::Serialize, serde::Deserialize)]
pub struct Dbm(pub f64);

impl Dbm {
    /// Returns the raw dBm value.
    pub const fn dbm(self) -> f64 {
        self.0
    }

    /// Converts to linear milliwatts.
    pub fn to_milliwatts(self) -> f64 {
        10f64.powf(self.0 / 10.0)
    }

    /// Creates from linear milliwatts.
    ///
    /// # Panics
    ///
    /// Panics if `mw` is not positive.
    pub fn from_milliwatts(mw: f64) -> Dbm {
        assert!(mw > 0.0, "power in milliwatts must be positive");
        Dbm(10.0 * mw.log10())
    }
}

impl Add<f64> for Dbm {
    type Output = Dbm;

    fn add(self, rhs: f64) -> Dbm {
        Dbm(self.0 + rhs)
    }
}

impl Sub<Dbm> for Dbm {
    type Output = f64;

    /// Difference in dB.
    fn sub(self, rhs: Dbm) -> f64 {
        self.0 - rhs.0
    }
}

impl fmt::Display for Dbm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.1} dBm", self.0)
    }
}

/// RSS above which the paper initialises a link's ETX to 1.
pub const RSS_MAX: Dbm = Dbm(-60.0);
/// RSS below which the paper initialises a link's ETX to 3.
pub const RSS_MIN: Dbm = Dbm(-90.0);

/// Initial ETX for a link with the given mean RSS, per the paper
/// (Section V): 1 above -60 dBm, 3 below -90 dBm, linear in between.
pub fn initial_etx_from_rss(rss: Dbm) -> f64 {
    if rss >= RSS_MAX {
        1.0
    } else if rss <= RSS_MIN {
        3.0
    } else {
        // Scale proportionally between 1 and 3 over the [-90, -60] range.
        1.0 + 2.0 * (RSS_MAX - rss) / (RSS_MAX - RSS_MIN)
    }
}

/// Static propagation parameters for a deployment site.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct RfConfig {
    /// Transmit power (TelosB/CC2420 at 0 dBm by default).
    pub tx_power: Dbm,
    /// Path loss at the 1 m reference distance, in dB.
    pub path_loss_ref_db: f64,
    /// Path-loss exponent (≈3.0 indoors with obstructions).
    pub path_loss_exponent: f64,
    /// Log-normal shadowing standard deviation, in dB (frozen per link).
    pub shadowing_sigma_db: f64,
    /// Per-channel frequency-selective fading standard deviation, in dB.
    pub fading_sigma_db: f64,
    /// Fast (per-transmission) fading standard deviation, in dB.
    pub fast_fading_sigma_db: f64,
    /// Thermal noise floor.
    pub noise_floor: Dbm,
    /// Attenuation per floor boundary, in dB.
    pub floor_attenuation_db: f64,
    /// Height of one building floor, in meters.
    pub floor_height_m: f64,
}

impl RfConfig {
    /// Indoor office parameters matching the paper's testbed buildings.
    /// Motes run at reduced transmit power (-10 dBm), the usual testbed
    /// configuration that turns one building floor into a multi-hop
    /// network — and the reason the paper's 0 dBm JamLab jammers count as
    /// "higher transmission power".
    pub fn indoor() -> RfConfig {
        RfConfig {
            tx_power: Dbm(-10.0),
            path_loss_ref_db: 40.0,
            path_loss_exponent: 3.0,
            shadowing_sigma_db: 4.0,
            fading_sigma_db: 3.0,
            fast_fading_sigma_db: 1.0,
            noise_floor: Dbm(-98.0),
            floor_attenuation_db: 18.0,
            floor_height_m: 4.0,
        }
    }

    /// Open-area parameters for the 300 m × 300 m Cooja-scale simulation
    /// (lower exponent, no floors). Motes run at full CC2420 power
    /// (0 dBm), as Cooja's default radio mediums assume — covering 300 m
    /// in a handful of hops.
    pub fn open_area() -> RfConfig {
        RfConfig {
            tx_power: Dbm(0.0),
            path_loss_ref_db: 40.0,
            path_loss_exponent: 2.6,
            shadowing_sigma_db: 3.0,
            fading_sigma_db: 2.5,
            fast_fading_sigma_db: 1.0,
            noise_floor: Dbm(-98.0),
            floor_attenuation_db: 0.0,
            floor_height_m: 4.0,
        }
    }

    /// Deterministic (no shadowing/fading) variant, useful in tests.
    pub fn deterministic() -> RfConfig {
        RfConfig {
            shadowing_sigma_db: 0.0,
            fading_sigma_db: 0.0,
            fast_fading_sigma_db: 0.0,
            ..RfConfig::indoor()
        }
    }

    /// Mean path loss in dB at `distance_m` meters (log-distance model).
    pub fn path_loss_db(&self, distance_m: f64) -> f64 {
        let d = distance_m.max(0.1);
        self.path_loss_ref_db + 10.0 * self.path_loss_exponent * d.log10()
    }

    /// Mean received signal strength at `distance_m` meters, before
    /// shadowing, fading, and floor penetration.
    pub fn mean_rss(&self, distance_m: f64) -> Dbm {
        Dbm(self.tx_power.0 - self.path_loss_db(distance_m))
    }
}

/// Packet reception ratio for a given signal-to-interference-plus-noise
/// ratio, in dB.
///
/// Logistic curve calibrated so that PRR ≈ 0.5 at 4 dB SINR and ≈ 0.99 at
/// 8 dB, approximating the CC2420's PRR waterfall for full-size frames.
pub fn prr_from_sinr_db(sinr_db: f64) -> f64 {
    let p = 1.0 / (1.0 + (-(sinr_db - 4.0) * 1.6).exp());
    // Clamp away the extreme tails: even excellent links occasionally lose a
    // frame (CRC, preamble miss), and terrible links occasionally get lucky.
    p.clamp(0.0, 0.999)
}

/// Capture threshold in dB: a frame survives interference from a concurrent
/// transmission if it is at least this much stronger.
pub const CAPTURE_THRESHOLD_DB: f64 = 3.0;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dbm_milliwatt_roundtrip() {
        let p = Dbm(-30.0);
        assert!((p.to_milliwatts() - 0.001).abs() < 1e-9);
        let q = Dbm::from_milliwatts(0.001);
        assert!((q.0 - -30.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn from_negative_milliwatts_panics() {
        let _ = Dbm::from_milliwatts(-1.0);
    }

    #[test]
    fn etx_initialisation_matches_paper() {
        assert_eq!(initial_etx_from_rss(Dbm(-50.0)), 1.0);
        assert_eq!(initial_etx_from_rss(Dbm(-60.0)), 1.0);
        assert_eq!(initial_etx_from_rss(Dbm(-90.0)), 3.0);
        assert_eq!(initial_etx_from_rss(Dbm(-100.0)), 3.0);
        // Midpoint scales linearly.
        let mid = initial_etx_from_rss(Dbm(-75.0));
        assert!((mid - 2.0).abs() < 1e-12, "got {mid}");
    }

    #[test]
    fn path_loss_grows_with_distance() {
        let rf = RfConfig::indoor();
        assert!(rf.path_loss_db(10.0) > rf.path_loss_db(5.0));
        assert!(rf.mean_rss(5.0).0 > rf.mean_rss(50.0).0);
    }

    #[test]
    fn path_loss_clamps_tiny_distances() {
        let rf = RfConfig::indoor();
        // Distances below 10 cm don't produce unbounded signal strength.
        assert_eq!(rf.path_loss_db(0.0), rf.path_loss_db(0.1));
    }

    #[test]
    fn prr_waterfall_shape() {
        assert!(prr_from_sinr_db(-10.0) < 0.01);
        let mid = prr_from_sinr_db(4.0);
        assert!((mid - 0.5).abs() < 0.01, "got {mid}");
        assert!(prr_from_sinr_db(12.0) > 0.99 - 1e-9);
        // Monotone non-decreasing.
        let mut prev = 0.0;
        for i in -20..30 {
            let p = prr_from_sinr_db(f64::from(i));
            assert!(p >= prev);
            prev = p;
        }
    }

    #[test]
    fn good_indoor_link_is_reliable() {
        let rf = RfConfig::indoor();
        let rss = rf.mean_rss(8.0);
        let sinr = rss - rf.noise_floor;
        assert!(prr_from_sinr_db(sinr) > 0.95, "8 m link should be strong");
    }
}
