//! Network topologies: node placements and deterministic testbed layouts.
//!
//! The paper evaluates on two physical testbeds and one Cooja-scale layout:
//!
//! - **Testbed A**: 50 TelosB motes on the second floor of a building at
//!   SUNY Binghamton.
//! - **Testbed B**: 44 TelosB motes spanning two floors at Washington
//!   University in St. Louis.
//! - **Cooja layout**: 150 nodes + 2 access points in a 300 m × 300 m area.
//!
//! We do not have the buildings' floor plans, so the layouts here are
//! deterministic synthetic equivalents: office-corridor grids with the same
//! node counts, two wired access points, and enough density that every node
//! has several plausible parents — the property the evaluation actually
//! depends on.

use crate::ids::NodeId;
use crate::position::Position;
use crate::rng;

/// The role a device plays in the network.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum Role {
    /// Wired access point (WirelessHART gateway attachment); roots the
    /// routing graph. The paper uses two per network.
    AccessPoint,
    /// Battery-powered field device (sensor or actuator).
    FieldDevice,
}

/// An immutable network topology: device roles and physical placement.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Topology {
    name: String,
    positions: Vec<Position>,
    roles: Vec<Role>,
}

impl Topology {
    /// Builds a topology from explicit placements.
    ///
    /// # Panics
    ///
    /// Panics if `positions` and `roles` have different lengths, if there are
    /// no access points, or if there are more than `u16::MAX` nodes.
    pub fn new(name: impl Into<String>, positions: Vec<Position>, roles: Vec<Role>) -> Topology {
        assert_eq!(positions.len(), roles.len(), "positions/roles length mismatch");
        assert!(positions.len() <= usize::from(u16::MAX), "too many nodes");
        assert!(roles.contains(&Role::AccessPoint), "topology needs at least one access point");
        Topology { name: name.into(), positions, roles }
    }

    /// Human-readable layout name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Total number of devices (access points + field devices).
    pub fn len(&self) -> usize {
        self.positions.len()
    }

    /// Returns `true` if the topology has no devices (never true for
    /// constructed topologies, which require an access point).
    pub fn is_empty(&self) -> bool {
        self.positions.is_empty()
    }

    /// Position of a node.
    pub fn position(&self, id: NodeId) -> Position {
        self.positions[id.index()]
    }

    /// Role of a node.
    pub fn role(&self, id: NodeId) -> Role {
        self.roles[id.index()]
    }

    /// Whether `id` is an access point.
    pub fn is_access_point(&self, id: NodeId) -> bool {
        self.roles[id.index()] == Role::AccessPoint
    }

    /// All node ids.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.positions.len() as u16).map(NodeId)
    }

    /// Ids of the access points.
    pub fn access_points(&self) -> Vec<NodeId> {
        self.node_ids().filter(|id| self.is_access_point(*id)).collect()
    }

    /// Ids of the field devices.
    pub fn field_devices(&self) -> Vec<NodeId> {
        self.node_ids().filter(|id| !self.is_access_point(*id)).collect()
    }

    /// Number of access points.
    pub fn num_access_points(&self) -> usize {
        self.roles.iter().filter(|r| **r == Role::AccessPoint).count()
    }

    /// Euclidean distance between two nodes, in meters.
    pub fn distance(&self, a: NodeId, b: NodeId) -> f64 {
        self.positions[a.index()].distance(&self.positions[b.index()])
    }

    /// The paper's Testbed A stand-in: 50 motes (2 access points + 48 field
    /// devices) on one floor of a 60 m × 30 m office building.
    pub fn testbed_a() -> Topology {
        Self::office_floor("testbed-a", 50, 60.0, 30.0, 0xA)
    }

    /// The first-floor half of Testbed A used in the empirical study
    /// (20 nodes).
    pub fn testbed_a_half() -> Topology {
        Self::office_floor("testbed-a-half", 20, 30.0, 30.0, 0xA)
    }

    /// The paper's Testbed B stand-in: 44 motes spanning two floors of a
    /// 45 m × 25 m building (2 access points on the lower floor).
    pub fn testbed_b() -> Topology {
        Self::two_floor_building("testbed-b", 44, 45.0, 25.0, 0xB)
    }

    /// The one-floor half of Testbed B used in the empirical study (19 nodes).
    pub fn testbed_b_half() -> Topology {
        Self::office_floor("testbed-b-half", 19, 30.0, 25.0, 0xB)
    }

    /// The Cooja-scale layout: `n` nodes + 2 access points placed uniformly
    /// at random (deterministically from `seed`) in a `side` × `side` meter
    /// area, with the access points near the center-west and center-east.
    pub fn random_area(n: usize, side: f64, seed: u64) -> Topology {
        assert!(n >= 1, "need at least one field device");
        let mut positions =
            vec![Position::new(side * 0.25, side * 0.5), Position::new(side * 0.75, side * 0.5)];
        let mut roles = vec![Role::AccessPoint, Role::AccessPoint];
        for i in 0..n {
            let x = rng::uniform01(seed, i as u64, 1, 0) * side;
            let y = rng::uniform01(seed, i as u64, 2, 0) * side;
            positions.push(Position::new(x, y));
            roles.push(Role::FieldDevice);
        }
        Topology::new(format!("random-{}x{:.0}m", n, side), positions, roles)
    }

    /// The paper's 150-node Cooja simulation layout (300 m × 300 m).
    pub fn cooja_150(seed: u64) -> Topology {
        Self::random_area(150, 300.0, seed)
    }

    /// Deterministic single-floor office layout: nodes along corridor rows
    /// with mild per-node jitter; access points at the two ends of the main
    /// corridor (maximising the radio diversity the two APs provide).
    fn office_floor(name: &str, total: usize, width: f64, depth: f64, salt: u64) -> Topology {
        assert!(total >= 3, "need 2 APs + at least one device");
        let mut positions = vec![
            Position::new(width * 0.08, depth * 0.5),
            Position::new(width * 0.92, depth * 0.5),
        ];
        let mut roles = vec![Role::AccessPoint, Role::AccessPoint];
        let devices = total - 2;
        // Rows of offices along corridors.
        let rows = ((devices as f64).sqrt() * (depth / width).sqrt()).round().max(1.0) as usize;
        let cols = devices.div_ceil(rows);
        let mut placed = 0;
        'outer: for r in 0..rows {
            for c in 0..cols {
                if placed == devices {
                    break 'outer;
                }
                let jitter_x = (rng::uniform01(salt, r as u64, c as u64, 1) - 0.5) * 2.0;
                let jitter_y = (rng::uniform01(salt, r as u64, c as u64, 2) - 0.5) * 2.0;
                let x = width * (0.5 + c as f64) / cols as f64 + jitter_x;
                let y = depth * (0.5 + r as f64) / rows as f64 + jitter_y;
                positions.push(Position::new(x.clamp(0.0, width), y.clamp(0.0, depth)));
                roles.push(Role::FieldDevice);
                placed += 1;
            }
        }
        Topology::new(name, positions, roles)
    }

    /// Deterministic two-floor layout (Testbed B spans two floors); both
    /// access points sit near the stairwell on the lower floor so upper-floor
    /// traffic must cross the floor boundary.
    fn two_floor_building(name: &str, total: usize, width: f64, depth: f64, salt: u64) -> Topology {
        assert!(total >= 4, "need 2 APs + devices on both floors");
        let mut positions =
            vec![Position::new(width * 0.1, depth * 0.5), Position::new(width * 0.9, depth * 0.5)];
        let mut roles = vec![Role::AccessPoint, Role::AccessPoint];
        let devices = total - 2;
        let lower = devices / 2;
        for i in 0..devices {
            let (floor_z, k) = if i < lower { (0.0, i) } else { (4.0, i - lower) };
            let per_floor = if i < lower { lower } else { devices - lower };
            let cols = per_floor.div_ceil(3).max(1);
            let r = k / cols;
            let c = k % cols;
            let jitter_x = (rng::uniform01(salt, i as u64, 3, 1) - 0.5) * 2.0;
            let jitter_y = (rng::uniform01(salt, i as u64, 4, 2) - 0.5) * 2.0;
            let x = width * (0.5 + c as f64) / cols as f64 + jitter_x;
            let y = depth * (0.5 + r as f64) / 3.0 + jitter_y;
            positions.push(Position::with_height(
                x.clamp(0.0, width),
                y.clamp(0.0, depth),
                floor_z,
            ));
            roles.push(Role::FieldDevice);
        }
        Topology::new(name, positions, roles)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn testbed_a_has_fifty_nodes_two_aps() {
        let t = Topology::testbed_a();
        assert_eq!(t.len(), 50);
        assert_eq!(t.num_access_points(), 2);
        assert_eq!(t.field_devices().len(), 48);
        assert_eq!(t.access_points(), vec![NodeId(0), NodeId(1)]);
    }

    #[test]
    fn testbed_b_spans_two_floors() {
        let t = Topology::testbed_b();
        assert_eq!(t.len(), 44);
        let upper = t.node_ids().filter(|id| t.position(*id).z > 1.0).count();
        let lower = t.len() - upper;
        assert!(upper >= 15, "expected a populated upper floor, got {upper}");
        assert!(lower >= 15, "expected a populated lower floor, got {lower}");
        // Both APs on the lower floor.
        for ap in t.access_points() {
            assert_eq!(t.position(ap).z, 0.0);
        }
    }

    #[test]
    fn half_testbeds_match_paper_sizes() {
        assert_eq!(Topology::testbed_a_half().len(), 20);
        assert_eq!(Topology::testbed_b_half().len(), 19);
    }

    #[test]
    fn cooja_layout_is_deterministic() {
        let a = Topology::cooja_150(1);
        let b = Topology::cooja_150(1);
        let c = Topology::cooja_150(2);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.len(), 152);
        assert_eq!(a.num_access_points(), 2);
    }

    #[test]
    fn cooja_positions_inside_area() {
        let t = Topology::cooja_150(99);
        for id in t.node_ids() {
            let p = t.position(id);
            assert!((0.0..=300.0).contains(&p.x));
            assert!((0.0..=300.0).contains(&p.y));
        }
    }

    #[test]
    fn distance_symmetry() {
        let t = Topology::testbed_a();
        assert_eq!(t.distance(NodeId(3), NodeId(7)), t.distance(NodeId(7), NodeId(3)));
    }

    #[test]
    #[should_panic(expected = "at least one access point")]
    fn topology_requires_access_point() {
        let _ = Topology::new("bad", vec![Position::new(0.0, 0.0)], vec![Role::FieldDevice]);
    }

    #[test]
    fn nodes_are_spread_out() {
        // No two Testbed A nodes should be at the exact same spot.
        let t = Topology::testbed_a();
        for a in t.node_ids() {
            for b in t.node_ids() {
                if a != b {
                    assert!(t.distance(a, b) > 0.01, "{a} and {b} overlap");
                }
            }
        }
    }
}
