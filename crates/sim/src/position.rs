//! Physical device placement in meters.

use core::fmt;

/// A device position in meters. `z` encodes the floor height for multi-floor
/// deployments such as the paper's Testbed B.
#[derive(Debug, Clone, Copy, PartialEq, Default, serde::Serialize, serde::Deserialize)]
pub struct Position {
    /// East-west coordinate in meters.
    pub x: f64,
    /// North-south coordinate in meters.
    pub y: f64,
    /// Height in meters (floors are typically 4 m apart).
    pub z: f64,
}

impl Position {
    /// Creates a position on the ground floor.
    pub const fn new(x: f64, y: f64) -> Position {
        Position { x, y, z: 0.0 }
    }

    /// Creates a position with an explicit height.
    pub const fn with_height(x: f64, y: f64, z: f64) -> Position {
        Position { x, y, z }
    }

    /// Euclidean distance to another position, in meters.
    pub fn distance(&self, other: &Position) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        let dz = self.z - other.z;
        (dx * dx + dy * dy + dz * dz).sqrt()
    }

    /// Number of floor boundaries between two positions, assuming `floor_height`
    /// meters per floor. Used by the indoor propagation model to charge
    /// per-floor attenuation.
    pub fn floors_between(&self, other: &Position, floor_height: f64) -> u32 {
        assert!(floor_height > 0.0, "floor height must be positive");
        let fa = (self.z / floor_height).floor() as i64;
        let fb = (other.z / floor_height).floor() as i64;
        (fa - fb).unsigned_abs() as u32
    }
}

impl fmt::Display for Position {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.1}, {:.1}, {:.1})m", self.x, self.y, self.z)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_is_euclidean() {
        let a = Position::new(0.0, 0.0);
        let b = Position::new(3.0, 4.0);
        assert!((a.distance(&b) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn distance_is_symmetric() {
        let a = Position::with_height(1.0, 2.0, 3.0);
        let b = Position::with_height(-4.0, 0.5, 7.0);
        assert!((a.distance(&b) - b.distance(&a)).abs() < 1e-12);
    }

    #[test]
    fn floors_between_counts_boundaries() {
        let ground = Position::new(0.0, 0.0);
        let second = Position::with_height(0.0, 0.0, 4.0);
        assert_eq!(ground.floors_between(&second, 4.0), 1);
        assert_eq!(ground.floors_between(&ground, 4.0), 0);
        assert_eq!(second.floors_between(&ground, 4.0), 1);
    }

    #[test]
    fn zero_distance() {
        let a = Position::new(2.0, 2.0);
        assert_eq!(a.distance(&a), 0.0);
    }
}
