//! TSCH time: 10 ms slots addressed by absolute slot number.

use core::fmt;
use core::ops::{Add, AddAssign, Sub};

/// Duration of one TSCH time slot in milliseconds (WirelessHART / 802.15.4e).
pub const SLOT_MS: u64 = 10;

/// Number of TSCH slots per second.
pub const SLOTS_PER_SECOND: u64 = 1000 / SLOT_MS;

/// Absolute slot number: the global TSCH time base.
///
/// All devices in a TSCH network share the ASN once synchronized; the
/// channel-hopping function and every slotframe offset are derived from it.
#[derive(
    Debug,
    Clone,
    Copy,
    PartialEq,
    Eq,
    PartialOrd,
    Ord,
    Hash,
    Default,
    serde::Serialize,
    serde::Deserialize,
)]
pub struct Asn(pub u64);

impl Asn {
    /// The first slot of the simulation.
    pub const ZERO: Asn = Asn(0);

    /// Converts a wall-clock duration in seconds to the equivalent ASN.
    pub const fn from_secs(secs: u64) -> Asn {
        Asn(secs * SLOTS_PER_SECOND)
    }

    /// Converts a wall-clock duration in milliseconds (rounded down to slots).
    pub const fn from_millis(ms: u64) -> Asn {
        Asn(ms / SLOT_MS)
    }

    /// Elapsed milliseconds since ASN 0.
    pub const fn as_millis(self) -> u64 {
        self.0 * SLOT_MS
    }

    /// Elapsed seconds since ASN 0 (fractional).
    pub fn as_secs_f64(self) -> f64 {
        self.as_millis() as f64 / 1000.0
    }

    /// Offset of this slot within a slotframe of `len` slots.
    ///
    /// # Panics
    ///
    /// Panics if `len` is zero.
    pub fn slotframe_offset(self, len: u32) -> u32 {
        assert!(len > 0, "slotframe length must be positive");
        (self.0 % u64::from(len)) as u32
    }

    /// The next slot.
    pub const fn next(self) -> Asn {
        Asn(self.0 + 1)
    }
}

impl Add<u64> for Asn {
    type Output = Asn;

    fn add(self, rhs: u64) -> Asn {
        Asn(self.0 + rhs)
    }
}

impl AddAssign<u64> for Asn {
    fn add_assign(&mut self, rhs: u64) {
        self.0 += rhs;
    }
}

impl Sub<Asn> for Asn {
    type Output = u64;

    /// Number of slots between two ASNs.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `rhs` is later than `self`.
    fn sub(self, rhs: Asn) -> u64 {
        self.0 - rhs.0
    }
}

impl fmt::Display for Asn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "asn:{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seconds_conversion_roundtrips() {
        let asn = Asn::from_secs(5);
        assert_eq!(asn, Asn(500));
        assert_eq!(asn.as_millis(), 5000);
        assert!((asn.as_secs_f64() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn millis_round_down_to_slots() {
        assert_eq!(Asn::from_millis(95), Asn(9));
        assert_eq!(Asn::from_millis(100), Asn(10));
    }

    #[test]
    fn slotframe_offset_wraps() {
        assert_eq!(Asn(0).slotframe_offset(7), 0);
        assert_eq!(Asn(6).slotframe_offset(7), 6);
        assert_eq!(Asn(7).slotframe_offset(7), 0);
        assert_eq!(Asn(61 * 11 * 7).slotframe_offset(61), 0);
    }

    #[test]
    #[should_panic(expected = "slotframe length must be positive")]
    fn zero_slotframe_panics() {
        let _ = Asn(1).slotframe_offset(0);
    }

    #[test]
    fn arithmetic() {
        let a = Asn(10);
        assert_eq!(a + 5, Asn(15));
        assert_eq!(Asn(15) - a, 5);
        assert_eq!(a.next(), Asn(11));
        let mut b = a;
        b += 2;
        assert_eq!(b, Asn(12));
    }
}
