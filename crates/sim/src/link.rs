//! The link model: per-link received signal strength with frozen shadowing,
//! per-channel frequency-selective fading, and per-slot fast fading.

use crate::channel::PhysChannel;
use crate::ids::NodeId;
use crate::rf::{Dbm, RfConfig};
use crate::rng;
use crate::time::Asn;
use crate::topology::Topology;

/// Computes received signal strength for any (transmitter, receiver,
/// channel, slot) tuple, deterministically under a seed.
///
/// The RSS decomposes as
///
/// ```text
/// RSS = TXpower − PL(d) − floors·att + shadow(link) + fade(link, ch) + fast(link, ch, asn)
/// ```
///
/// where `shadow` is frozen log-normal shadowing (symmetric per link),
/// `fade` is frozen per-channel frequency-selective fading — the reason TSCH
/// hops channels — and `fast` is small per-slot variation.
#[derive(Debug, Clone)]
pub struct LinkModel {
    rf: RfConfig,
    seed: u64,
    /// Cached per-pair static component (path loss + floors + shadowing),
    /// indexed `tx * n + rx`.
    static_rss: Vec<f64>,
    n: usize,
}

impl LinkModel {
    /// Builds the model for a topology.
    pub fn new(topology: &Topology, rf: RfConfig, seed: u64) -> LinkModel {
        let n = topology.len();
        let mut static_rss = vec![f64::NEG_INFINITY; n * n];
        for a in 0..n {
            for b in 0..n {
                if a == b {
                    continue;
                }
                let (lo, hi) = (a.min(b), a.max(b));
                let pa = topology.position(NodeId(a as u16));
                let pb = topology.position(NodeId(b as u16));
                let d = pa.distance(&pb);
                let floors = pa.floors_between(&pb, rf.floor_height_m);
                let shadow =
                    rng::standard_normal(seed, lo as u64, hi as u64, 0) * rf.shadowing_sigma_db;
                static_rss[a * n + b] = rf.tx_power.dbm()
                    - rf.path_loss_db(d)
                    - f64::from(floors) * rf.floor_attenuation_db
                    + shadow;
            }
        }
        LinkModel { rf, seed, static_rss, n }
    }

    /// The RF configuration the model was built with.
    pub fn rf(&self) -> &RfConfig {
        &self.rf
    }

    /// Static (time- and channel-independent) RSS component of a link.
    ///
    /// # Panics
    ///
    /// Panics if `tx == rx` or either id is out of range.
    pub fn static_rss(&self, tx: NodeId, rx: NodeId) -> Dbm {
        assert_ne!(tx, rx, "a node cannot transmit to itself");
        Dbm(self.static_rss[tx.index() * self.n + rx.index()])
    }

    /// Full instantaneous RSS on a physical channel at a slot.
    pub fn rss(&self, tx: NodeId, rx: NodeId, channel: PhysChannel, asn: Asn) -> Dbm {
        let base = self.static_rss(tx, rx).dbm();
        let (lo, hi) = (tx.index().min(rx.index()), tx.index().max(rx.index()));
        let key = (lo * self.n + hi) as u64;
        let fade = rng::standard_normal(self.seed ^ 0xfade, key, u64::from(channel.0), 1)
            * self.rf.fading_sigma_db;
        let fast = rng::standard_normal(self.seed ^ 0xfa57, key, u64::from(channel.0), asn.0 + 2)
            * self.rf.fast_fading_sigma_db;
        Dbm(base + fade + fast)
    }

    /// Expected RSS averaged over channels (used for ETX initialisation and
    /// by the centralized manager's link-state database).
    pub fn mean_rss(&self, tx: NodeId, rx: NodeId) -> Dbm {
        self.static_rss(tx, rx)
    }

    /// Whether a transmitter is within carrier-sense range of a listener:
    /// its static signal exceeds the CCA threshold (-85 dBm, CC2420 default).
    pub fn in_carrier_sense_range(&self, a: NodeId, b: NodeId) -> bool {
        self.static_rss(a, b).dbm() > -85.0
    }

    /// Number of nodes the model covers.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the model is empty (no nodes).
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::Topology;

    fn model() -> LinkModel {
        LinkModel::new(&Topology::testbed_a(), RfConfig::indoor(), 42)
    }

    #[test]
    fn static_rss_is_symmetric() {
        let m = model();
        let a = NodeId(3);
        let b = NodeId(17);
        // Path loss and shadowing are symmetric by construction.
        assert!((m.static_rss(a, b).dbm() - m.static_rss(b, a).dbm()).abs() < 1e-9);
    }

    #[test]
    fn rss_deterministic_per_seed() {
        let m1 = model();
        let m2 = model();
        let r1 = m1.rss(NodeId(2), NodeId(9), PhysChannel(4), Asn(100));
        let r2 = m2.rss(NodeId(2), NodeId(9), PhysChannel(4), Asn(100));
        assert_eq!(r1.dbm(), r2.dbm());
    }

    #[test]
    fn rss_varies_across_channels() {
        let m = model();
        let r1 = m.rss(NodeId(2), NodeId(9), PhysChannel(0), Asn(0));
        let r2 = m.rss(NodeId(2), NodeId(9), PhysChannel(8), Asn(0));
        assert_ne!(r1.dbm(), r2.dbm(), "frequency-selective fading expected");
    }

    #[test]
    fn rss_varies_over_time_slightly() {
        let m = model();
        let r1 = m.rss(NodeId(2), NodeId(9), PhysChannel(0), Asn(0));
        let r2 = m.rss(NodeId(2), NodeId(9), PhysChannel(0), Asn(1));
        assert_ne!(r1.dbm(), r2.dbm());
        // Fast fading is small.
        assert!((r1.dbm() - r2.dbm()).abs() < 10.0);
    }

    #[test]
    fn nearby_link_stronger_than_far_link() {
        let topo = Topology::testbed_a();
        let m = LinkModel::new(&topo, RfConfig::deterministic(), 1);
        // Find nearest and farthest neighbors of node 5.
        let me = NodeId(5);
        let mut best = (NodeId(0), f64::MAX);
        let mut worst = (NodeId(0), 0.0f64);
        for other in topo.node_ids() {
            if other == me {
                continue;
            }
            let d = topo.distance(me, other);
            if d < best.1 {
                best = (other, d);
            }
            if d > worst.1 {
                worst = (other, d);
            }
        }
        assert!(m.static_rss(me, best.0).dbm() > m.static_rss(me, worst.0).dbm());
    }

    #[test]
    fn floor_penetration_attenuates() {
        let topo = Topology::testbed_b();
        let m = LinkModel::new(&topo, RfConfig::deterministic(), 1);
        // Pick an upper-floor node and compare same-distance-ish links.
        let upper = topo
            .node_ids()
            .find(|id| topo.position(*id).z > 1.0)
            .expect("testbed B has an upper floor");
        let ap = NodeId(0);
        let d = topo.distance(upper, ap);
        let rss_through_floor = m.static_rss(upper, ap).dbm();
        let expected_same_floor = m.rf().tx_power.dbm() - m.rf().path_loss_db(d);
        assert!(
            rss_through_floor < expected_same_floor - 10.0,
            "floor attenuation should cost ≥ 10 dB"
        );
    }

    #[test]
    #[should_panic(expected = "cannot transmit to itself")]
    fn self_link_panics() {
        let m = model();
        let _ = m.static_rss(NodeId(1), NodeId(1));
    }
}
