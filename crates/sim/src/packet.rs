//! Frames exchanged over the air.
//!
//! The simulator is protocol-agnostic: the payload type `P` is supplied by
//! the protocol stack crate. The engine only needs addressing, a coarse
//! frame kind (for acknowledgement policy and statistics), and the on-air
//! size (for airtime and energy accounting).

use crate::ids::NodeId;
use core::fmt;

/// Destination of a frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum Dest {
    /// Link-layer unicast to one neighbor; acknowledged.
    Unicast(NodeId),
    /// Link-layer broadcast; never acknowledged.
    Broadcast,
}

impl Dest {
    /// Whether this destination expects a link-layer acknowledgement.
    pub fn expects_ack(self) -> bool {
        matches!(self, Dest::Unicast(_))
    }

    /// Whether a frame with this destination is addressed to `node`.
    pub fn addressed_to(self, node: NodeId) -> bool {
        match self {
            Dest::Unicast(d) => d == node,
            Dest::Broadcast => true,
        }
    }
}

impl fmt::Display for Dest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Dest::Unicast(d) => write!(f, "→{d}"),
            Dest::Broadcast => write!(f, "→*"),
        }
    }
}

/// Coarse traffic class of a frame, mirroring the paper's three traffic
/// types plus network-layer signalling used by the centralized baseline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum FrameKind {
    /// Enhanced Beacon: time-synchronization traffic.
    Beacon,
    /// Routing signalling (join-in, joined-callback, DIO, health reports).
    Routing,
    /// Application data.
    Data,
    /// Centralized manager dissemination (routes/schedule updates).
    Management,
}

impl FrameKind {
    /// The flight-recorder traffic class of this frame kind.
    pub fn traffic_class(self) -> digs_trace::TrafficClass {
        match self {
            FrameKind::Beacon => digs_trace::TrafficClass::Beacon,
            FrameKind::Routing => digs_trace::TrafficClass::Routing,
            FrameKind::Data => digs_trace::TrafficClass::Data,
            FrameKind::Management => digs_trace::TrafficClass::Management,
        }
    }
}

impl fmt::Display for FrameKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            FrameKind::Beacon => "beacon",
            FrameKind::Routing => "routing",
            FrameKind::Data => "data",
            FrameKind::Management => "mgmt",
        };
        f.write_str(s)
    }
}

/// A link-layer frame carrying a protocol-defined payload.
#[derive(Debug, Clone, PartialEq)]
pub struct Frame<P> {
    /// Transmitting node.
    pub src: NodeId,
    /// Link-layer destination.
    pub dst: Dest,
    /// Traffic class.
    pub kind: FrameKind,
    /// On-air size in bytes, including MAC header and CRC (max 127 for
    /// 802.15.4).
    pub size_bytes: u16,
    /// Protocol payload.
    pub payload: P,
    /// Flight-recorder identity of the application packet this frame
    /// carries, if any. The engine is payload-agnostic; stacks set this on
    /// data frames so TX/RX/ACK trace events can be attributed to an
    /// end-to-end packet journey. `None` costs nothing when tracing is off.
    pub trace_id: Option<digs_trace::PacketId>,
}

impl<P> Frame<P> {
    /// Creates a frame, clamping the size to the 802.15.4 maximum of 127
    /// bytes and a minimum of the 23-byte MAC overhead.
    pub fn new(src: NodeId, dst: Dest, kind: FrameKind, size_bytes: u16, payload: P) -> Frame<P> {
        Frame { src, dst, kind, size_bytes: size_bytes.clamp(23, 127), payload, trace_id: None }
    }

    /// Attaches a flight-recorder packet identity (builder style).
    pub fn with_trace_id(mut self, id: digs_trace::PacketId) -> Frame<P> {
        self.trace_id = Some(id);
        self
    }

    /// Airtime of the frame in microseconds at the 802.15.4 rate of
    /// 250 kbit/s, including the 6-byte synchronization header.
    pub fn airtime_us(&self) -> u32 {
        // (size + preamble/SFD/len = 6 bytes) * 8 bits / 250 kbps = 32 µs/byte
        (u32::from(self.size_bytes) + 6) * 32
    }
}

/// Airtime of an 802.15.4 acknowledgement frame in microseconds.
pub const ACK_AIRTIME_US: u32 = (11 + 6) * 32;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dest_ack_policy() {
        assert!(Dest::Unicast(NodeId(1)).expects_ack());
        assert!(!Dest::Broadcast.expects_ack());
    }

    #[test]
    fn dest_addressing() {
        assert!(Dest::Unicast(NodeId(1)).addressed_to(NodeId(1)));
        assert!(!Dest::Unicast(NodeId(1)).addressed_to(NodeId(2)));
        assert!(Dest::Broadcast.addressed_to(NodeId(7)));
    }

    #[test]
    fn frame_size_clamped() {
        let f = Frame::new(NodeId(0), Dest::Broadcast, FrameKind::Beacon, 500, ());
        assert_eq!(f.size_bytes, 127);
        let g = Frame::new(NodeId(0), Dest::Broadcast, FrameKind::Beacon, 1, ());
        assert_eq!(g.size_bytes, 23);
    }

    #[test]
    fn airtime_of_full_frame() {
        let f = Frame::new(NodeId(0), Dest::Broadcast, FrameKind::Data, 127, ());
        // 133 bytes * 32 µs = 4256 µs, the canonical 802.15.4 max airtime.
        assert_eq!(f.airtime_us(), 4256);
    }

    #[test]
    fn ack_airtime() {
        assert_eq!(ACK_AIRTIME_US, 544);
    }
}
