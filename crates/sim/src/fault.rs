//! Scripted node failures.
//!
//! The paper's failure experiment turns off four nodes on the routing graph
//! in turn (Section VII-B). A [`FaultPlan`] holds the schedule of outages;
//! the engine consults it each slot and simply stops invoking a dead node's
//! stack (the radio falls silent, exactly like pulling a mote's battery).

use crate::ids::NodeId;
use crate::time::Asn;

/// One scheduled outage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct Outage {
    /// Node that fails.
    pub node: NodeId,
    /// First slot in which the node is dead.
    pub from: Asn,
    /// First slot in which the node is alive again (`None` = never recovers).
    pub until: Option<Asn>,
}

impl Outage {
    /// A permanent failure starting at `from`.
    pub fn permanent(node: NodeId, from: Asn) -> Outage {
        Outage { node, from, until: None }
    }

    /// A transient failure over `[from, until)`.
    ///
    /// # Panics
    ///
    /// Panics if `until <= from`.
    pub fn transient(node: NodeId, from: Asn, until: Asn) -> Outage {
        assert!(until > from, "outage must end after it starts");
        Outage { node, from, until: Some(until) }
    }

    /// Whether this outage covers `asn`.
    pub fn covers(&self, asn: Asn) -> bool {
        asn >= self.from && self.until.is_none_or(|u| asn < u)
    }
}

/// One scheduled *link* outage: the radio path between two nodes is
/// obstructed (in both directions) for a window — e.g. a vehicle parked in
/// front of an antenna, or a door closing on a corridor path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct LinkOutage {
    /// One endpoint.
    pub a: NodeId,
    /// The other endpoint.
    pub b: NodeId,
    /// First slot in which the link is down.
    pub from: Asn,
    /// First slot in which the link works again (`None` = never).
    pub until: Option<Asn>,
}

impl LinkOutage {
    /// A permanent link break starting at `from`.
    ///
    /// # Panics
    ///
    /// Panics if `a == b`.
    pub fn permanent(a: NodeId, b: NodeId, from: Asn) -> LinkOutage {
        assert_ne!(a, b, "a link needs two distinct endpoints");
        LinkOutage { a, b, from, until: None }
    }

    /// A transient link break over `[from, until)`.
    ///
    /// # Panics
    ///
    /// Panics if `a == b` or `until <= from`.
    pub fn transient(a: NodeId, b: NodeId, from: Asn, until: Asn) -> LinkOutage {
        assert_ne!(a, b, "a link needs two distinct endpoints");
        assert!(until > from, "outage must end after it starts");
        LinkOutage { a, b, from, until: Some(until) }
    }

    /// Whether this outage affects the (unordered) pair at `asn`.
    pub fn covers(&self, x: NodeId, y: NodeId, asn: Asn) -> bool {
        let same_pair = (self.a == x && self.b == y) || (self.a == y && self.b == x);
        same_pair && asn >= self.from && self.until.is_none_or(|u| asn < u)
    }
}

/// The full failure schedule for a simulation run.
#[derive(Debug, Clone, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct FaultPlan {
    outages: Vec<Outage>,
    link_outages: Vec<LinkOutage>,
}

impl FaultPlan {
    /// An empty plan: every node is alive for the whole run.
    pub fn none() -> FaultPlan {
        FaultPlan::default()
    }

    /// Adds an outage to the plan.
    pub fn with(mut self, outage: Outage) -> FaultPlan {
        self.outages.push(outage);
        self
    }

    /// Adds an outage in place.
    pub fn push(&mut self, outage: Outage) {
        self.outages.push(outage);
    }

    /// Adds a link outage to the plan.
    pub fn with_link(mut self, outage: LinkOutage) -> FaultPlan {
        self.link_outages.push(outage);
        self
    }

    /// Adds a link outage in place.
    pub fn push_link(&mut self, outage: LinkOutage) {
        self.link_outages.push(outage);
    }

    /// Whether `node` is alive at `asn`.
    pub fn is_alive(&self, node: NodeId, asn: Asn) -> bool {
        !self.outages.iter().any(|o| o.node == node && o.covers(asn))
    }

    /// Whether the radio path between `a` and `b` is usable at `asn`.
    pub fn is_link_up(&self, a: NodeId, b: NodeId, asn: Asn) -> bool {
        !self.link_outages.iter().any(|o| o.covers(a, b, asn))
    }

    /// Whether the plan contains any link outages (fast path for the
    /// engine's per-candidate check).
    pub fn has_link_outages(&self) -> bool {
        !self.link_outages.is_empty()
    }

    /// All outages in the plan.
    pub fn outages(&self) -> &[Outage] {
        &self.outages
    }

    /// All link outages in the plan.
    pub fn link_outages(&self) -> &[LinkOutage] {
        &self.link_outages
    }

    /// The paper's Fig. 11 scenario: turn off the given nodes *in turn*,
    /// each for `each_secs` seconds, starting at `start`, one after another.
    pub fn in_turn(nodes: &[NodeId], start: Asn, each_secs: u64) -> FaultPlan {
        let mut plan = FaultPlan::none();
        let each = Asn::from_secs(each_secs).0;
        for (i, node) in nodes.iter().enumerate() {
            let from = Asn(start.0 + i as u64 * each);
            plan.push(Outage::transient(*node, from, Asn(from.0 + each)));
        }
        plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_everyone_alive() {
        let p = FaultPlan::none();
        assert!(p.is_alive(NodeId(3), Asn(12345)));
    }

    #[test]
    fn permanent_outage() {
        let p = FaultPlan::none().with(Outage::permanent(NodeId(2), Asn(100)));
        assert!(p.is_alive(NodeId(2), Asn(99)));
        assert!(!p.is_alive(NodeId(2), Asn(100)));
        assert!(!p.is_alive(NodeId(2), Asn(1_000_000)));
        assert!(p.is_alive(NodeId(3), Asn(100)));
    }

    #[test]
    fn transient_outage_ends() {
        let p = FaultPlan::none().with(Outage::transient(NodeId(1), Asn(10), Asn(20)));
        assert!(p.is_alive(NodeId(1), Asn(9)));
        assert!(!p.is_alive(NodeId(1), Asn(10)));
        assert!(!p.is_alive(NodeId(1), Asn(19)));
        assert!(p.is_alive(NodeId(1), Asn(20)));
    }

    #[test]
    #[should_panic(expected = "must end after it starts")]
    fn inverted_outage_panics() {
        let _ = Outage::transient(NodeId(0), Asn(20), Asn(10));
    }

    #[test]
    fn in_turn_staggers_failures() {
        let nodes = [NodeId(5), NodeId(6)];
        let p = FaultPlan::in_turn(&nodes, Asn::from_secs(10), 30);
        // Node 5 dead during [10 s, 40 s), node 6 during [40 s, 70 s).
        assert!(!p.is_alive(NodeId(5), Asn::from_secs(15)));
        assert!(p.is_alive(NodeId(6), Asn::from_secs(15)));
        assert!(p.is_alive(NodeId(5), Asn::from_secs(45)));
        assert!(!p.is_alive(NodeId(6), Asn::from_secs(45)));
        assert!(p.is_alive(NodeId(5), Asn::from_secs(75)));
        assert!(p.is_alive(NodeId(6), Asn::from_secs(75)));
    }

    #[test]
    fn overlapping_outages_union() {
        let p = FaultPlan::none()
            .with(Outage::transient(NodeId(1), Asn(0), Asn(10)))
            .with(Outage::transient(NodeId(1), Asn(5), Asn(15)));
        assert!(!p.is_alive(NodeId(1), Asn(12)));
        assert!(p.is_alive(NodeId(1), Asn(15)));
    }
}

#[cfg(test)]
mod link_tests {
    use super::*;

    #[test]
    fn link_outage_symmetric_window() {
        let p = FaultPlan::none()
            .with_link(LinkOutage::transient(NodeId(1), NodeId(2), Asn(10), Asn(20)));
        assert!(p.is_link_up(NodeId(1), NodeId(2), Asn(9)));
        assert!(!p.is_link_up(NodeId(1), NodeId(2), Asn(10)));
        assert!(!p.is_link_up(NodeId(2), NodeId(1), Asn(15)), "both directions break");
        assert!(p.is_link_up(NodeId(1), NodeId(2), Asn(20)));
        // Unrelated pairs are untouched.
        assert!(p.is_link_up(NodeId(1), NodeId(3), Asn(15)));
        assert!(p.has_link_outages());
    }

    #[test]
    fn permanent_link_break_never_recovers() {
        let p = FaultPlan::none().with_link(LinkOutage::permanent(NodeId(4), NodeId(5), Asn(0)));
        assert!(!p.is_link_up(NodeId(5), NodeId(4), Asn(1_000_000)));
    }

    #[test]
    #[should_panic(expected = "two distinct endpoints")]
    fn self_link_outage_panics() {
        let _ = LinkOutage::permanent(NodeId(3), NodeId(3), Asn(0));
    }

    #[test]
    fn empty_plan_has_no_link_outages() {
        assert!(!FaultPlan::none().has_link_outages());
        assert!(FaultPlan::none().is_link_up(NodeId(0), NodeId(1), Asn(5)));
    }
}
