//! Scripted node failures.
//!
//! The paper's failure experiment turns off four nodes on the routing graph
//! in turn (Section VII-B). A [`FaultPlan`] holds the schedule of outages;
//! the engine consults it each slot and simply stops invoking a dead node's
//! stack (the radio falls silent, exactly like pulling a mote's battery).

use crate::ids::NodeId;
use crate::interference::{Jammer, JammerKind};
use crate::position::Position;
use crate::rf::Dbm;
use crate::rng;
use crate::time::Asn;
use crate::topology::Topology;

/// One scheduled outage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct Outage {
    /// Node that fails.
    pub node: NodeId,
    /// First slot in which the node is dead.
    pub from: Asn,
    /// First slot in which the node is alive again (`None` = never recovers).
    pub until: Option<Asn>,
}

impl Outage {
    /// A permanent failure starting at `from`.
    pub fn permanent(node: NodeId, from: Asn) -> Outage {
        Outage { node, from, until: None }
    }

    /// A transient failure over `[from, until)`.
    ///
    /// # Panics
    ///
    /// Panics if `until <= from`.
    pub fn transient(node: NodeId, from: Asn, until: Asn) -> Outage {
        assert!(until > from, "outage must end after it starts");
        Outage { node, from, until: Some(until) }
    }

    /// Whether this outage covers `asn`.
    pub fn covers(&self, asn: Asn) -> bool {
        asn >= self.from && self.until.is_none_or(|u| asn < u)
    }
}

/// One scheduled *link* outage: the radio path between two nodes is
/// obstructed (in both directions) for a window — e.g. a vehicle parked in
/// front of an antenna, or a door closing on a corridor path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct LinkOutage {
    /// One endpoint.
    pub a: NodeId,
    /// The other endpoint.
    pub b: NodeId,
    /// First slot in which the link is down.
    pub from: Asn,
    /// First slot in which the link works again (`None` = never).
    pub until: Option<Asn>,
}

impl LinkOutage {
    /// A permanent link break starting at `from`.
    ///
    /// # Panics
    ///
    /// Panics if `a == b`.
    pub fn permanent(a: NodeId, b: NodeId, from: Asn) -> LinkOutage {
        assert_ne!(a, b, "a link needs two distinct endpoints");
        LinkOutage { a, b, from, until: None }
    }

    /// A transient link break over `[from, until)`.
    ///
    /// # Panics
    ///
    /// Panics if `a == b` or `until <= from`.
    pub fn transient(a: NodeId, b: NodeId, from: Asn, until: Asn) -> LinkOutage {
        assert_ne!(a, b, "a link needs two distinct endpoints");
        assert!(until > from, "outage must end after it starts");
        LinkOutage { a, b, from, until: Some(until) }
    }

    /// Whether this outage affects the (unordered) pair at `asn`.
    pub fn covers(&self, x: NodeId, y: NodeId, asn: Asn) -> bool {
        let same_pair = (self.a == x && self.b == y) || (self.a == y && self.b == x);
        same_pair && asn >= self.from && self.until.is_none_or(|u| asn < u)
    }
}

/// One scheduled *reboot*: the node is dead over `[from, until)` and comes
/// back with **cold** stack state — no routes, no schedule, no sync. Unlike a
/// plain transient [`Outage`] (battery pulled and re-inserted fast enough
/// that RAM state survives, which is how the engine models recovery from an
/// `Outage`), a reboot models a watchdog reset or firmware crash: the engine
/// invokes the stack's reset hook at `until` and the node must rejoin from
/// scratch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct Reboot {
    /// Node that reboots.
    pub node: NodeId,
    /// First slot in which the node is down.
    pub from: Asn,
    /// First slot in which the node is back up (with cold state).
    pub until: Asn,
}

impl Reboot {
    /// A reboot with downtime `[from, until)`.
    ///
    /// # Panics
    ///
    /// Panics if `until <= from`.
    pub fn new(node: NodeId, from: Asn, until: Asn) -> Reboot {
        assert!(until > from, "reboot must end after it starts");
        Reboot { node, from, until }
    }

    /// Whether the node is down because of this reboot at `asn`.
    pub fn covers(&self, asn: Asn) -> bool {
        asn >= self.from && asn < self.until
    }
}

/// One scheduled *clock desynchronization*: at `at`, the node's TSCH clock
/// drifts past the guard time and it loses slot alignment. Routing state and
/// queues survive, but the node must re-associate time-wise via enhanced
/// beacons before it can communicate again.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct ClockDesync {
    /// Node whose clock slips.
    pub node: NodeId,
    /// Slot at which sync is lost.
    pub at: Asn,
}

impl ClockDesync {
    /// A desync event for `node` at `at`.
    pub fn new(node: NodeId, at: Asn) -> ClockDesync {
        ClockDesync { node, at }
    }
}

/// The full failure schedule for a simulation run.
#[derive(Debug, Clone, Default, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct FaultPlan {
    outages: Vec<Outage>,
    link_outages: Vec<LinkOutage>,
    reboots: Vec<Reboot>,
    desyncs: Vec<ClockDesync>,
}

impl FaultPlan {
    /// An empty plan: every node is alive for the whole run.
    pub fn none() -> FaultPlan {
        FaultPlan::default()
    }

    /// Adds an outage to the plan.
    pub fn with(mut self, outage: Outage) -> FaultPlan {
        self.outages.push(outage);
        self
    }

    /// Adds an outage in place.
    pub fn push(&mut self, outage: Outage) {
        self.outages.push(outage);
    }

    /// Adds a link outage to the plan.
    pub fn with_link(mut self, outage: LinkOutage) -> FaultPlan {
        self.link_outages.push(outage);
        self
    }

    /// Adds a link outage in place.
    pub fn push_link(&mut self, outage: LinkOutage) {
        self.link_outages.push(outage);
    }

    /// Adds a reboot to the plan.
    pub fn with_reboot(mut self, reboot: Reboot) -> FaultPlan {
        self.reboots.push(reboot);
        self
    }

    /// Adds a reboot in place.
    pub fn push_reboot(&mut self, reboot: Reboot) {
        self.reboots.push(reboot);
    }

    /// Adds a clock-desync event to the plan.
    pub fn with_desync(mut self, desync: ClockDesync) -> FaultPlan {
        self.desyncs.push(desync);
        self
    }

    /// Adds a clock-desync event in place.
    pub fn push_desync(&mut self, desync: ClockDesync) {
        self.desyncs.push(desync);
    }

    /// Whether `node` is alive at `asn` (neither in an outage nor mid-reboot).
    pub fn is_alive(&self, node: NodeId, asn: Asn) -> bool {
        !self.outages.iter().any(|o| o.node == node && o.covers(asn))
            && !self.reboots.iter().any(|r| r.node == node && r.covers(asn))
    }

    /// Whether `node` is alive at *every* slot of `[from, to]` — i.e. no
    /// outage or reboot window overlaps the range. Used by the runtime
    /// auditor to tell whether a node's housekeeping has actually had a
    /// chance to run recently (a powered-off node executes nothing).
    pub fn alive_throughout(&self, node: NodeId, from: Asn, to: Asn) -> bool {
        let overlaps =
            |start: Asn, until: Option<Asn>| start <= to && until.is_none_or(|u| u > from);
        !self.outages.iter().any(|o| o.node == node && overlaps(o.from, o.until))
            && !self.reboots.iter().any(|r| r.node == node && overlaps(r.from, Some(r.until)))
    }

    /// Whether a reboot of `node` completes exactly at `asn` (its first
    /// scheduled slot back up). The engine cold-resets the stack at this
    /// instant, provided no other fault still keeps the node down (it
    /// additionally checks [`FaultPlan::is_alive`]).
    pub fn reboot_completing_at(&self, node: NodeId, asn: Asn) -> bool {
        self.reboots.iter().any(|r| r.node == node && r.until == asn)
    }

    /// Whether `node` loses TSCH time synchronization exactly at `asn`.
    pub fn desync_at(&self, node: NodeId, asn: Asn) -> bool {
        self.desyncs.iter().any(|d| d.node == node && d.at == asn)
    }

    /// Whether the plan contains any reboots (fast path for the engine).
    pub fn has_reboots(&self) -> bool {
        !self.reboots.is_empty()
    }

    /// Whether the plan contains any desync events (fast path for the
    /// engine).
    pub fn has_desyncs(&self) -> bool {
        !self.desyncs.is_empty()
    }

    /// Whether the radio path between `a` and `b` is usable at `asn`.
    pub fn is_link_up(&self, a: NodeId, b: NodeId, asn: Asn) -> bool {
        !self.link_outages.iter().any(|o| o.covers(a, b, asn))
    }

    /// Whether the plan contains any link outages (fast path for the
    /// engine's per-candidate check).
    pub fn has_link_outages(&self) -> bool {
        !self.link_outages.is_empty()
    }

    /// All outages in the plan.
    pub fn outages(&self) -> &[Outage] {
        &self.outages
    }

    /// All link outages in the plan.
    pub fn link_outages(&self) -> &[LinkOutage] {
        &self.link_outages
    }

    /// All reboots in the plan.
    pub fn reboots(&self) -> &[Reboot] {
        &self.reboots
    }

    /// All clock-desync events in the plan.
    pub fn desyncs(&self) -> &[ClockDesync] {
        &self.desyncs
    }

    /// Fault boundaries crossing exactly `asn`, for the flight recorder:
    /// each entry is `(node, kind, peer, injected)` where `injected` is
    /// `true` at fault onset and `false` at clearance. Link outages report
    /// one entry per endpoint with the other endpoint as `peer`. Desyncs
    /// are not reported here — the engine records them at the stack
    /// callback. Permanent faults never produce a clearance entry.
    pub fn transitions_at(
        &self,
        asn: Asn,
    ) -> Vec<(NodeId, digs_trace::FaultKind, Option<NodeId>, bool)> {
        use digs_trace::FaultKind;
        let mut out = Vec::new();
        for o in &self.outages {
            if o.from == asn {
                out.push((o.node, FaultKind::Outage, None, true));
            }
            if o.until == Some(asn) {
                out.push((o.node, FaultKind::Outage, None, false));
            }
        }
        for r in &self.reboots {
            if r.from == asn {
                out.push((r.node, FaultKind::Reboot, None, true));
            }
            if r.until == asn {
                out.push((r.node, FaultKind::Reboot, None, false));
            }
        }
        for l in &self.link_outages {
            if l.from == asn {
                out.push((l.a, FaultKind::LinkOutage, Some(l.b), true));
                out.push((l.b, FaultKind::LinkOutage, Some(l.a), true));
            }
            if l.until == Some(asn) {
                out.push((l.a, FaultKind::LinkOutage, Some(l.b), false));
                out.push((l.b, FaultKind::LinkOutage, Some(l.a), false));
            }
        }
        out
    }

    /// The paper's Fig. 11 scenario: turn off the given nodes *in turn*,
    /// each for `each_secs` seconds, starting at `start`, one after another.
    pub fn in_turn(nodes: &[NodeId], start: Asn, each_secs: u64) -> FaultPlan {
        let mut plan = FaultPlan::none();
        let each = Asn::from_secs(each_secs).0;
        for (i, node) in nodes.iter().enumerate() {
            let from = Asn(start.0 + i as u64 * each);
            plan.push(Outage::transient(*node, from, Asn(from.0 + each)));
        }
        plan
    }
}

/// Event rates and severity for randomized chaos generation.
///
/// Rates are expected events per minute of chaos window; each stream is an
/// independent Poisson-like process realized deterministically from the run
/// seed. `intensity` scales every event's *duration* (outage length, reboot
/// downtime, link-flap length, jammer-burst length) without changing how
/// often events fire.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ChaosConfig {
    /// First slot of the chaos window.
    pub start: Asn,
    /// Length of the chaos window in seconds; events start inside it (their
    /// effects may outlast it).
    pub duration_secs: u64,
    /// Transient node outages (warm state survives) per minute.
    pub churn_per_min: f64,
    /// Cold reboots per minute.
    pub reboot_per_min: f64,
    /// Link flaps (transient link outages) per minute.
    pub link_flap_per_min: f64,
    /// Clock-desync events per minute.
    pub desync_per_min: f64,
    /// Jammer bursts (a disturber switching on near a random node) per
    /// minute.
    pub jammer_burst_per_min: f64,
    /// Duration multiplier applied to every event (1.0 = nominal).
    pub intensity: f64,
}

impl ChaosConfig {
    /// A moderate default: roughly one fault of some kind every ~20 s of
    /// chaos at nominal intensity.
    pub fn moderate(start: Asn, duration_secs: u64) -> ChaosConfig {
        ChaosConfig {
            start,
            duration_secs,
            churn_per_min: 1.0,
            reboot_per_min: 0.5,
            link_flap_per_min: 1.0,
            desync_per_min: 0.5,
            jammer_burst_per_min: 0.5,
            intensity: 1.0,
        }
    }

    /// A harsher profile: double the moderate rates at 1.5× intensity.
    pub fn harsh(start: Asn, duration_secs: u64) -> ChaosConfig {
        ChaosConfig {
            churn_per_min: 2.0,
            reboot_per_min: 1.0,
            link_flap_per_min: 2.0,
            desync_per_min: 1.0,
            jammer_burst_per_min: 1.0,
            intensity: 1.5,
            ..ChaosConfig::moderate(start, duration_secs)
        }
    }

    /// Overrides the intensity multiplier.
    pub fn with_intensity(mut self, intensity: f64) -> ChaosConfig {
        assert!(intensity > 0.0, "intensity must be positive");
        self.intensity = intensity;
        self
    }
}

/// What kind of chaos event was injected (for the convergence watchdog).
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum ChaosEventKind {
    /// Transient node outage; RAM state survives.
    Churn,
    /// Cold reboot; the node rejoins from scratch.
    Reboot,
    /// Transient bidirectional link outage.
    LinkFlap,
    /// Loss of TSCH time synchronization.
    Desync,
    /// A disturber jammer switching on near a node.
    JammerBurst,
}

/// One injected chaos event, in the order faults hit the network.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ChaosEvent {
    /// Event kind.
    pub kind: ChaosEventKind,
    /// Affected node (link flaps name one endpoint here, the other in
    /// `peer`; jammer bursts name the node the jammer is placed next to).
    pub node: NodeId,
    /// Second endpoint for link flaps.
    pub peer: Option<NodeId>,
    /// Slot at which the fault hits.
    pub from: Asn,
    /// Slot at which the fault clears (`None` for instantaneous desyncs).
    pub until: Option<Asn>,
}

/// A generated chaos schedule: the [`FaultPlan`] to install into the engine,
/// the extra jammers to add, and the ordered event list for the watchdog.
///
/// Generation is a pure function of `(config, topology, seed)` — the same
/// inputs always produce the same plan, so chaos soaks are reproducible.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ChaosPlan {
    faults: FaultPlan,
    jammers: Vec<Jammer>,
    events: Vec<ChaosEvent>,
}

/// Nominal duration bounds in seconds per event kind (scaled by intensity).
const CHURN_SECS: (f64, f64) = (10.0, 40.0);
const REBOOT_SECS: (f64, f64) = (5.0, 15.0);
const LINK_FLAP_SECS: (f64, f64) = (5.0, 30.0);
const JAMMER_SECS: (f64, f64) = (10.0, 60.0);

/// Hash-stream salts, one per event kind.
const STREAM_CHURN: u64 = 1;
const STREAM_REBOOT: u64 = 2;
const STREAM_LINK: u64 = 3;
const STREAM_DESYNC: u64 = 4;
const STREAM_JAMMER: u64 = 5;

impl ChaosPlan {
    /// Generates a chaos schedule for `topology` under `seed`.
    ///
    /// Access points are never churned, rebooted, or desynced (the paper's
    /// APs are wired infrastructure); they can still be an endpoint of a
    /// link flap or sit near a jammer burst. Event counts per stream are
    /// `floor(rate × minutes)` plus a Bernoulli trial on the fraction, so
    /// fractional expected counts are honoured on average while staying
    /// deterministic under the seed.
    ///
    /// # Panics
    ///
    /// Panics if the topology has no field devices, or fewer than two nodes
    /// (nothing to flap), or `config.duration_secs` is zero.
    pub fn generate(config: &ChaosConfig, topology: &Topology, seed: u64) -> ChaosPlan {
        assert!(config.duration_secs > 0, "chaos window must be non-empty");
        assert!(topology.len() >= 2, "chaos needs at least two nodes");
        let field: Vec<NodeId> =
            topology.node_ids().filter(|id| !topology.is_access_point(*id)).collect();
        assert!(!field.is_empty(), "chaos needs at least one field device");
        let all: Vec<NodeId> = topology.node_ids().collect();

        let window = Asn::from_secs(config.duration_secs).0;
        let minutes = config.duration_secs as f64 / 60.0;
        let chaos_seed = rng::mix(seed, 0x000c_4a05, 0, 0);
        let count = |stream: u64, rate: f64| -> u64 {
            let expected = rate * minutes;
            let whole = expected.floor() as u64;
            let frac = expected - expected.floor();
            whole + u64::from(rng::uniform01(chaos_seed, stream, u64::MAX, 0) < frac)
        };
        let at = |stream: u64, i: u64| -> Asn {
            let offset = (rng::uniform01(chaos_seed, stream, i, 1) * window as f64) as u64;
            Asn(config.start.0 + offset.min(window - 1))
        };
        let pick = |nodes: &[NodeId], stream: u64, i: u64, field_id: u64| -> NodeId {
            nodes[(rng::mix(chaos_seed, stream, i, field_id) % nodes.len() as u64) as usize]
        };
        let span = |bounds: (f64, f64), stream: u64, i: u64| -> u64 {
            let u = rng::uniform01(chaos_seed, stream, i, 2);
            let secs = (bounds.0 + u * (bounds.1 - bounds.0)) * config.intensity;
            Asn::from_secs(secs.max(1.0).round() as u64).0
        };

        let mut plan = FaultPlan::none();
        let mut jammers = Vec::new();
        let mut events = Vec::new();

        for i in 0..count(STREAM_CHURN, config.churn_per_min) {
            let node = pick(&field, STREAM_CHURN, i, 3);
            let from = at(STREAM_CHURN, i);
            let until = Asn(from.0 + span(CHURN_SECS, STREAM_CHURN, i));
            plan.push(Outage::transient(node, from, until));
            events.push(ChaosEvent {
                kind: ChaosEventKind::Churn,
                node,
                peer: None,
                from,
                until: Some(until),
            });
        }
        for i in 0..count(STREAM_REBOOT, config.reboot_per_min) {
            let node = pick(&field, STREAM_REBOOT, i, 3);
            let from = at(STREAM_REBOOT, i);
            let until = Asn(from.0 + span(REBOOT_SECS, STREAM_REBOOT, i));
            plan.push_reboot(Reboot::new(node, from, until));
            events.push(ChaosEvent {
                kind: ChaosEventKind::Reboot,
                node,
                peer: None,
                from,
                until: Some(until),
            });
        }
        for i in 0..count(STREAM_LINK, config.link_flap_per_min) {
            let a = pick(&all, STREAM_LINK, i, 3);
            // Pick the peer from the remaining nodes so a != b.
            let b = {
                let idx =
                    (rng::mix(chaos_seed, STREAM_LINK, i, 4) % (all.len() as u64 - 1)) as usize;
                let candidate = all[idx];
                if candidate == a {
                    all[all.len() - 1]
                } else {
                    candidate
                }
            };
            let from = at(STREAM_LINK, i);
            let until = Asn(from.0 + span(LINK_FLAP_SECS, STREAM_LINK, i));
            plan.push_link(LinkOutage::transient(a, b, from, until));
            events.push(ChaosEvent {
                kind: ChaosEventKind::LinkFlap,
                node: a,
                peer: Some(b),
                from,
                until: Some(until),
            });
        }
        for i in 0..count(STREAM_DESYNC, config.desync_per_min) {
            let node = pick(&field, STREAM_DESYNC, i, 3);
            let from = at(STREAM_DESYNC, i);
            plan.push_desync(ClockDesync::new(node, from));
            events.push(ChaosEvent {
                kind: ChaosEventKind::Desync,
                node,
                peer: None,
                from,
                until: None,
            });
        }
        for i in 0..count(STREAM_JAMMER, config.jammer_burst_per_min) {
            let node = pick(&all, STREAM_JAMMER, i, 3);
            let from = at(STREAM_JAMMER, i);
            let until = Asn(from.0 + span(JAMMER_SECS, STREAM_JAMMER, i));
            let near = topology.position(node);
            jammers.push(Jammer {
                position: Position::with_height(near.x + 2.0, near.y + 2.0, near.z),
                tx_power: Dbm(0.0),
                kind: JammerKind::Disturber,
                start: from,
                stop: Some(until),
                toggle_half_period: None,
                salt: rng::mix(chaos_seed, STREAM_JAMMER, i, 5),
            });
            events.push(ChaosEvent {
                kind: ChaosEventKind::JammerBurst,
                node,
                peer: None,
                from,
                until: Some(until),
            });
        }

        events.sort_by_key(|e| (e.from, e.kind as u8, e.node));
        ChaosPlan { faults: plan, jammers, events }
    }

    /// The fault schedule to install into the engine.
    pub fn faults(&self) -> &FaultPlan {
        &self.faults
    }

    /// Extra jammers to add to the engine.
    pub fn jammers(&self) -> &[Jammer] {
        &self.jammers
    }

    /// All injected events, ordered by onset time.
    pub fn events(&self) -> &[ChaosEvent] {
        &self.events
    }

    /// Consumes the plan into its parts `(faults, jammers, events)`.
    pub fn into_parts(self) -> (FaultPlan, Vec<Jammer>, Vec<ChaosEvent>) {
        (self.faults, self.jammers, self.events)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_everyone_alive() {
        let p = FaultPlan::none();
        assert!(p.is_alive(NodeId(3), Asn(12345)));
    }

    #[test]
    fn permanent_outage() {
        let p = FaultPlan::none().with(Outage::permanent(NodeId(2), Asn(100)));
        assert!(p.is_alive(NodeId(2), Asn(99)));
        assert!(!p.is_alive(NodeId(2), Asn(100)));
        assert!(!p.is_alive(NodeId(2), Asn(1_000_000)));
        assert!(p.is_alive(NodeId(3), Asn(100)));
    }

    #[test]
    fn transient_outage_ends() {
        let p = FaultPlan::none().with(Outage::transient(NodeId(1), Asn(10), Asn(20)));
        assert!(p.is_alive(NodeId(1), Asn(9)));
        assert!(!p.is_alive(NodeId(1), Asn(10)));
        assert!(!p.is_alive(NodeId(1), Asn(19)));
        assert!(p.is_alive(NodeId(1), Asn(20)));
    }

    #[test]
    #[should_panic(expected = "must end after it starts")]
    fn inverted_outage_panics() {
        let _ = Outage::transient(NodeId(0), Asn(20), Asn(10));
    }

    #[test]
    fn in_turn_staggers_failures() {
        let nodes = [NodeId(5), NodeId(6)];
        let p = FaultPlan::in_turn(&nodes, Asn::from_secs(10), 30);
        // Node 5 dead during [10 s, 40 s), node 6 during [40 s, 70 s).
        assert!(!p.is_alive(NodeId(5), Asn::from_secs(15)));
        assert!(p.is_alive(NodeId(6), Asn::from_secs(15)));
        assert!(p.is_alive(NodeId(5), Asn::from_secs(45)));
        assert!(!p.is_alive(NodeId(6), Asn::from_secs(45)));
        assert!(p.is_alive(NodeId(5), Asn::from_secs(75)));
        assert!(p.is_alive(NodeId(6), Asn::from_secs(75)));
    }

    #[test]
    fn overlapping_outages_union() {
        let p = FaultPlan::none()
            .with(Outage::transient(NodeId(1), Asn(0), Asn(10)))
            .with(Outage::transient(NodeId(1), Asn(5), Asn(15)));
        assert!(!p.is_alive(NodeId(1), Asn(12)));
        assert!(p.is_alive(NodeId(1), Asn(15)));
    }
}

#[cfg(test)]
mod link_tests {
    use super::*;

    #[test]
    fn link_outage_symmetric_window() {
        let p = FaultPlan::none().with_link(LinkOutage::transient(
            NodeId(1),
            NodeId(2),
            Asn(10),
            Asn(20),
        ));
        assert!(p.is_link_up(NodeId(1), NodeId(2), Asn(9)));
        assert!(!p.is_link_up(NodeId(1), NodeId(2), Asn(10)));
        assert!(!p.is_link_up(NodeId(2), NodeId(1), Asn(15)), "both directions break");
        assert!(p.is_link_up(NodeId(1), NodeId(2), Asn(20)));
        // Unrelated pairs are untouched.
        assert!(p.is_link_up(NodeId(1), NodeId(3), Asn(15)));
        assert!(p.has_link_outages());
    }

    #[test]
    fn permanent_link_break_never_recovers() {
        let p = FaultPlan::none().with_link(LinkOutage::permanent(NodeId(4), NodeId(5), Asn(0)));
        assert!(!p.is_link_up(NodeId(5), NodeId(4), Asn(1_000_000)));
    }

    #[test]
    #[should_panic(expected = "two distinct endpoints")]
    fn self_link_outage_panics() {
        let _ = LinkOutage::permanent(NodeId(3), NodeId(3), Asn(0));
    }

    #[test]
    fn empty_plan_has_no_link_outages() {
        assert!(!FaultPlan::none().has_link_outages());
        assert!(FaultPlan::none().is_link_up(NodeId(0), NodeId(1), Asn(5)));
    }
}

#[cfg(test)]
mod reboot_tests {
    use super::*;

    #[test]
    fn reboot_window_kills_node() {
        let p = FaultPlan::none().with_reboot(Reboot::new(NodeId(7), Asn(100), Asn(200)));
        assert!(p.is_alive(NodeId(7), Asn(99)));
        assert!(!p.is_alive(NodeId(7), Asn(100)));
        assert!(!p.is_alive(NodeId(7), Asn(199)));
        assert!(p.is_alive(NodeId(7), Asn(200)));
        assert!(p.has_reboots());
    }

    #[test]
    fn reboot_completion_fires_once_at_until() {
        let p = FaultPlan::none().with_reboot(Reboot::new(NodeId(7), Asn(100), Asn(200)));
        assert!(!p.reboot_completing_at(NodeId(7), Asn(199)));
        assert!(p.reboot_completing_at(NodeId(7), Asn(200)));
        assert!(!p.reboot_completing_at(NodeId(7), Asn(201)));
        assert!(!p.reboot_completing_at(NodeId(8), Asn(200)));
    }

    #[test]
    #[should_panic(expected = "must end after it starts")]
    fn inverted_reboot_panics() {
        let _ = Reboot::new(NodeId(0), Asn(20), Asn(20));
    }

    #[test]
    fn desync_is_instantaneous() {
        let p = FaultPlan::none().with_desync(ClockDesync::new(NodeId(3), Asn(500)));
        assert!(p.is_alive(NodeId(3), Asn(500)), "desync does not kill the node");
        assert!(p.desync_at(NodeId(3), Asn(500)));
        assert!(!p.desync_at(NodeId(3), Asn(501)));
        assert!(!p.desync_at(NodeId(4), Asn(500)));
        assert!(p.has_desyncs());
        assert!(!p.has_reboots());
    }
}

#[cfg(test)]
mod chaos_tests {
    use super::*;
    use crate::topology::Topology;

    fn config() -> ChaosConfig {
        ChaosConfig::moderate(Asn::from_secs(60), 600)
    }

    #[test]
    fn generation_is_deterministic_under_seed() {
        let topo = Topology::testbed_a();
        let a = ChaosPlan::generate(&config(), &topo, 42);
        let b = ChaosPlan::generate(&config(), &topo, 42);
        assert_eq!(a, b);
        let c = ChaosPlan::generate(&config(), &topo, 43);
        assert_ne!(a, c, "different seeds should differ");
    }

    #[test]
    fn moderate_profile_emits_every_stream() {
        let topo = Topology::testbed_a();
        let plan = ChaosPlan::generate(&config(), &topo, 7);
        // 10 chaos minutes at the moderate rates: expect ~10 churns,
        // ~5 reboots, ~10 flaps, ~5 desyncs, ~5 jammer bursts.
        assert!(!plan.faults().outages().is_empty());
        assert!(!plan.faults().reboots().is_empty());
        assert!(!plan.faults().link_outages().is_empty());
        assert!(!plan.faults().desyncs().is_empty());
        assert!(!plan.jammers().is_empty());
        let total = plan.faults().outages().len()
            + plan.faults().reboots().len()
            + plan.faults().link_outages().len()
            + plan.faults().desyncs().len()
            + plan.jammers().len();
        assert_eq!(plan.events().len(), total, "one event per injected fault");
    }

    #[test]
    fn events_start_inside_window_and_are_ordered() {
        let topo = Topology::testbed_a();
        let cfg = config();
        let plan = ChaosPlan::generate(&cfg, &topo, 99);
        let window_end = Asn(cfg.start.0 + Asn::from_secs(cfg.duration_secs).0);
        for event in plan.events() {
            assert!(event.from >= cfg.start, "event before window: {event:?}");
            assert!(event.from < window_end, "event after window: {event:?}");
            if let Some(until) = event.until {
                assert!(until > event.from);
            }
        }
        for pair in plan.events().windows(2) {
            assert!(pair[0].from <= pair[1].from, "events must be onset-ordered");
        }
    }

    #[test]
    fn access_points_are_never_churned_rebooted_or_desynced() {
        let topo = Topology::testbed_a();
        for seed in 0..20 {
            let plan = ChaosPlan::generate(&config(), &topo, seed);
            for outage in plan.faults().outages() {
                assert!(!topo.is_access_point(outage.node));
            }
            for reboot in plan.faults().reboots() {
                assert!(!topo.is_access_point(reboot.node));
            }
            for desync in plan.faults().desyncs() {
                assert!(!topo.is_access_point(desync.node));
            }
        }
    }

    #[test]
    fn link_flaps_have_distinct_endpoints() {
        let topo = Topology::testbed_a();
        for seed in 0..50 {
            let plan = ChaosPlan::generate(&config(), &topo, seed);
            for flap in plan.faults().link_outages() {
                assert_ne!(flap.a, flap.b);
            }
        }
    }

    #[test]
    fn intensity_stretches_event_durations() {
        let topo = Topology::testbed_a();
        let mild = ChaosPlan::generate(&config().with_intensity(0.5), &topo, 5);
        let harsh = ChaosPlan::generate(&config().with_intensity(2.0), &topo, 5);
        let mean_len = |plan: &ChaosPlan| {
            let lens: Vec<u64> = plan
                .faults()
                .outages()
                .iter()
                .map(|o| o.until.expect("chaos churn is transient").0 - o.from.0)
                .collect();
            lens.iter().sum::<u64>() as f64 / lens.len() as f64
        };
        assert!(mean_len(&harsh) > mean_len(&mild), "harsher intensity should mean longer outages");
    }
}
