//! The slot-synchronous simulation engine.
//!
//! Each TSCH slot, every alive node's protocol stack declares a
//! [`SlotIntent`]; the engine then:
//!
//! 1. commits dedicated-cell transmissions unconditionally,
//! 2. runs slotted CSMA/CA for shared-cell (contention) transmissions —
//!    a contender defers if a committed transmitter or a jammer is audible
//!    above the CCA threshold at its own position,
//! 3. for every listener, picks the strongest committed frame on its
//!    physical channel and decodes it with probability given by the
//!    PRR-vs-SINR curve, where the interference term sums every other
//!    concurrent transmission and all active jammers,
//! 4. generates link-layer acknowledgements for unicast frames (the ACK
//!    itself traverses the reverse link and can be lost),
//! 5. charges the CC2420 energy model for every radio activity,
//! 6. reports a [`TxOutcome`] to each transmitter.
//!
//! The engine is deterministic under its seed: nodes are visited in id
//! order and all randomness flows from one [`rand::rngs::SmallRng`] plus the
//! frozen hash-derived link/fading values.

use crate::channel::ChannelOffset;
use crate::energy::{EnergyMeter, ACK_WAIT_US, IDLE_LISTEN_US};
use crate::fault::FaultPlan;
use crate::ids::NodeId;
use crate::interference::{total_interference_mw, Jammer};
use crate::link::LinkModel;
use crate::packet::{Frame, ACK_AIRTIME_US};
use crate::rf::{prr_from_sinr_db, Dbm, RfConfig};
use crate::rng;
use crate::time::Asn;
use crate::topology::Topology;
use crate::trace::EngineStats;
use digs_trace::{DropReason, EventKind, TraceHandle};
use rand::rngs::SmallRng;
use rand::Rng;

/// CCA threshold: a contender defers if it senses energy above this level.
pub const CCA_THRESHOLD: Dbm = Dbm(-85.0);

/// Receive sensitivity: frames arriving below this level are never decoded
/// and do not contribute interference worth modelling.
pub const SENSITIVITY: Dbm = Dbm(-94.0);

/// What a node does with its radio during one slot.
#[derive(Debug, Clone)]
pub enum SlotIntent<P> {
    /// Radio off.
    Sleep,
    /// Listen on a channel offset (receive cell).
    Listen {
        /// TSCH channel offset to listen on.
        offset: ChannelOffset,
    },
    /// Transmit a frame on a channel offset.
    Transmit {
        /// TSCH channel offset to transmit on.
        offset: ChannelOffset,
        /// The frame to send.
        frame: Frame<P>,
        /// `true` in shared cells: run CSMA/CA and defer on busy channel.
        contention: bool,
    },
}

/// Result of a transmission attempt, reported back to the stack.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum TxOutcome {
    /// Unicast frame delivered and acknowledged.
    Acked,
    /// Unicast frame sent but no acknowledgement arrived (frame lost,
    /// destination not listening, or ACK lost).
    NoAck,
    /// Broadcast frame put on the air (no feedback).
    SentBroadcast,
    /// CSMA found the channel busy; the frame was not transmitted.
    DeferredCca,
}

/// A protocol stack driven by the engine, one instance per node.
///
/// Implementations live in the `digs` crate (DiGS, Orchestra, and
/// WirelessHART stacks). All callbacks receive the current ASN; the engine
/// guarantees `slot_intent` is called exactly once per slot per alive node,
/// then zero or more `on_frame` deliveries, then at most one
/// `on_tx_outcome`.
pub trait NodeStack {
    /// Protocol-defined frame payload.
    type Payload: Clone;

    /// Declares the node's radio activity for this slot.
    fn slot_intent(&mut self, asn: Asn) -> SlotIntent<Self::Payload>;

    /// Delivers a successfully decoded frame (promiscuous: the stack must
    /// filter on `frame.dst` if it only wants frames addressed to it;
    /// overhearing broadcasts such as EBs is how joining works).
    fn on_frame(&mut self, asn: Asn, frame: &Frame<Self::Payload>, rss: Dbm);

    /// Reports the outcome of this slot's transmission, if one was declared.
    fn on_tx_outcome(&mut self, asn: Asn, outcome: TxOutcome);

    /// Cold-restarts the stack: the node just finished a
    /// [`Reboot`](crate::fault::Reboot) and comes back with factory state —
    /// no routes, no schedule, no time sync. Invoked by the engine at the
    /// first slot the node is alive again. The default is a no-op so simple
    /// test stacks need not care.
    fn reset(&mut self, _asn: Asn) {}

    /// Notifies the stack that its TSCH clock slipped past the guard time
    /// (a [`ClockDesync`](crate::fault::ClockDesync) event): the node keeps
    /// its routing state but must re-acquire slot alignment from enhanced
    /// beacons. Default no-op.
    fn desync(&mut self, _asn: Asn) {}
}

struct CommittedTx<P> {
    node: NodeId,
    frame: Frame<P>,
}

/// The simulation engine. See the [module documentation](self) for the slot
/// resolution algorithm.
#[derive(Debug)]
pub struct Engine {
    topology: Topology,
    link: LinkModel,
    jammers: Vec<Jammer>,
    /// Ambient (cross-network) interference sources: boundary load
    /// installed by the fleet's shard exchange. Kept apart from
    /// `jammers` so scenario-owned adversaries and fleet-owned boundary
    /// state can be replaced independently between slotframe windows.
    ambient: Vec<Jammer>,
    faults: FaultPlan,
    rng: SmallRng,
    asn: Asn,
    energy: Vec<EnergyMeter>,
    stats: EngineStats,
    /// Nodes whose reboot downtime has elapsed but whose cold reset has not
    /// fired yet (an overlapping outage can keep a node down past the end of
    /// its reboot window; the reset fires at the first slot it is alive).
    pending_reset: Vec<bool>,
    /// Flight recorder; off by default (one branch per potential event).
    trace: TraceHandle,
}

impl Engine {
    /// Creates an engine over a topology with the given RF environment and
    /// seed. The seed controls the frozen link realisation *and* all
    /// per-slot randomness.
    pub fn new(topology: Topology, rf: RfConfig, seed: u64) -> Engine {
        let link = LinkModel::new(&topology, rf, seed);
        let n = topology.len();
        Engine {
            topology,
            link,
            jammers: Vec::new(),
            ambient: Vec::new(),
            faults: FaultPlan::none(),
            rng: rng::engine_rng(seed),
            asn: Asn::ZERO,
            energy: vec![EnergyMeter::new(); n],
            stats: EngineStats::default(),
            pending_reset: vec![false; n],
            trace: TraceHandle::off(),
        }
    }

    /// Installs a flight-recorder handle (pass [`TraceHandle::off`] to
    /// disable tracing again).
    pub fn set_trace(&mut self, trace: TraceHandle) {
        self.trace = trace;
    }

    /// The flight-recorder handle (clone it to share with stacks).
    pub fn trace(&self) -> &TraceHandle {
        &self.trace
    }

    /// The simulated topology.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// The link model (useful for oracle computations in tests and for the
    /// centralized manager's link-state database).
    pub fn link_model(&self) -> &LinkModel {
        &self.link
    }

    /// Current absolute slot number (the next slot to be simulated).
    pub fn asn(&self) -> Asn {
        self.asn
    }

    /// Adds an interference source.
    pub fn add_jammer(&mut self, jammer: Jammer) {
        self.jammers.push(jammer);
    }

    /// The configured interference sources.
    pub fn jammers(&self) -> &[Jammer] {
        &self.jammers
    }

    /// Replaces the ambient (cross-network) interference set wholesale.
    /// The fleet's shard exchange calls this at slotframe-window edges
    /// with fresh boundary-load estimates; emission is hash-gated on
    /// `(salt, asn, channel)`, so swapping the set never perturbs the
    /// engine's random stream.
    pub fn set_ambient_jammers(&mut self, ambient: Vec<Jammer>) {
        self.ambient = ambient;
    }

    /// The currently installed ambient interference sources.
    pub fn ambient_jammers(&self) -> &[Jammer] {
        &self.ambient
    }

    /// Installs the failure schedule.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.faults = plan;
    }

    /// The currently installed failure schedule.
    pub fn fault_plan(&self) -> &FaultPlan {
        &self.faults
    }

    /// Whether a node is alive in the current slot.
    pub fn is_alive(&self, node: NodeId) -> bool {
        self.faults.is_alive(node, self.asn)
    }

    /// Per-node energy meter.
    pub fn energy(&self, node: NodeId) -> &EnergyMeter {
        &self.energy[node.index()]
    }

    /// All energy meters, indexed by node.
    pub fn energy_meters(&self) -> &[EnergyMeter] {
        &self.energy
    }

    /// Aggregate statistics.
    pub fn stats(&self) -> &EngineStats {
        &self.stats
    }

    /// Runs `slots` slots.
    ///
    /// # Panics
    ///
    /// Panics if `stacks.len()` differs from the topology size.
    pub fn run<S: NodeStack>(&mut self, stacks: &mut [S], slots: u64) {
        for _ in 0..slots {
            self.step(stacks);
        }
    }

    /// Simulates one slot.
    ///
    /// # Panics
    ///
    /// Panics if `stacks.len()` differs from the topology size.
    pub fn step<S: NodeStack>(&mut self, stacks: &mut [S]) {
        let n = self.topology.len();
        assert_eq!(stacks.len(), n, "one stack per topology node required");
        let asn = self.asn;
        let rf = self.link.rf().clone();
        let tracing = self.trace.is_on();
        if tracing {
            self.trace.record_network(asn.0, EventKind::SlotStart);
            for (node, fault, peer, injected) in self.faults.transitions_at(asn) {
                let kind = if injected {
                    EventKind::FaultInject { fault, peer: peer.map(|p| p.0) }
                } else {
                    EventKind::FaultClear { fault, peer: peer.map(|p| p.0) }
                };
                self.trace.record(asn.0, node.0, kind);
            }
        }

        // Phase 1: collect intents from alive nodes.
        let mut listeners: Vec<(NodeId, ChannelOffset)> = Vec::new();
        let mut dedicated: Vec<(NodeId, ChannelOffset, Frame<S::Payload>)> = Vec::new();
        let mut contenders: Vec<(NodeId, ChannelOffset, Frame<S::Payload>)> = Vec::new();
        for (i, stack) in stacks.iter_mut().enumerate() {
            let id = NodeId(i as u16);
            if self.faults.has_reboots() && self.faults.reboot_completing_at(id, asn) {
                self.pending_reset[i] = true;
            }
            if !self.faults.is_alive(id, asn) {
                continue;
            }
            if self.pending_reset[i] {
                self.pending_reset[i] = false;
                if tracing {
                    self.trace.record(asn.0, id.0, EventKind::NodeReset);
                }
                stack.reset(asn);
            }
            if self.faults.has_desyncs() && self.faults.desync_at(id, asn) {
                if tracing {
                    self.trace.record(asn.0, id.0, EventKind::ClockDesync);
                }
                stack.desync(asn);
            }
            self.energy[i].tick_slot();
            match stack.slot_intent(asn) {
                SlotIntent::Sleep => {}
                SlotIntent::Listen { offset } => listeners.push((id, offset)),
                SlotIntent::Transmit { offset, frame, contention } => {
                    debug_assert_eq!(frame.src, id, "frame src must be the transmitting node");
                    if contention {
                        contenders.push((id, offset, frame));
                    } else {
                        dedicated.push((id, offset, frame));
                    }
                }
            }
        }

        // Phase 2: commit transmissions. Dedicated cells transmit
        // unconditionally; shared cells run CSMA/CA in a random order.
        let mut committed: Vec<CommittedTx<S::Payload>> = Vec::new();
        let mut committed_channels = Vec::new();
        let mut committed_contention = Vec::new();
        let mut deferred: Vec<NodeId> = Vec::new();
        for (id, offset, frame) in dedicated {
            committed_channels.push(offset.hop(asn));
            committed_contention.push(false);
            committed.push(CommittedTx { node: id, frame });
        }
        // Random backoff order, deterministic under the engine seed.
        let mut order: Vec<usize> = (0..contenders.len()).collect();
        for i in (1..order.len()).rev() {
            let j = self.rng.gen_range(0..=i);
            order.swap(i, j);
        }
        for idx in order {
            let (id, offset, frame) = contenders[idx].clone();
            let ch = offset.hop(asn);
            // CCA: busy if any committed 802.15.4 transmitter on this
            // channel is audible. Jammers do NOT trip CCA: the emulated
            // WiFi/Bluetooth bursts are microseconds long and use a foreign
            // modulation, which 802.15.4 carrier sense does not reliably
            // detect — nodes transmit into the jam and lose frames, as on
            // the paper's testbeds.
            let busy = committed.iter().zip(&committed_channels).any(|(tx, tx_ch)| {
                *tx_ch == ch
                    && tx.node != id
                    && self.link.static_rss(tx.node, id).dbm() > CCA_THRESHOLD.dbm()
            });
            if busy {
                deferred.push(id);
                self.stats.cca_deferrals += 1;
                if tracing {
                    self.trace.record(asn.0, id.0, EventKind::CcaDefer);
                }
                // A deferring node keeps its radio in RX for the rest of
                // the slot — it hears the winning frame like any listener.
                listeners.push((id, offset));
            } else {
                committed_channels.push(ch);
                committed_contention.push(true);
                committed.push(CommittedTx { node: id, frame });
            }
        }

        // Phase 3: reception. For each listener, decode the strongest
        // committed frame on its physical channel against the sum of all
        // other signals, jammers, and thermal noise.
        // deliveries: (listener, committed_idx, rss); ack_map: committed_idx -> acked
        let mut deliveries: Vec<(NodeId, usize, Dbm)> = Vec::new();
        let mut acked = vec![false; committed.len()];
        for (rx_id, offset) in &listeners {
            let ch = offset.hop(asn);
            let rx_pos = self.topology.position(*rx_id);
            // Candidate signals on this channel audible at the listener.
            let mut cands: Vec<(usize, Dbm)> = committed
                .iter()
                .enumerate()
                .filter(|(k, tx)| {
                    tx.node != *rx_id
                        && committed_channels[*k] == ch
                        && (!self.faults.has_link_outages()
                            || self.faults.is_link_up(tx.node, *rx_id, asn))
                })
                .map(|(k, tx)| (k, self.link.rss(tx.node, *rx_id, ch, asn)))
                .filter(|(_, rss)| rss.dbm() > SENSITIVITY.dbm())
                .collect();
            if cands.is_empty() {
                self.energy[rx_id.index()].charge_rx(IDLE_LISTEN_US);
                continue;
            }
            cands.sort_by(|a, b| b.1.dbm().total_cmp(&a.1.dbm()));
            let (best_idx, best_rss) = cands[0];
            let mut interference_mw = total_interference_mw(&self.jammers, &rx_pos, ch, asn, &rf)
                + total_interference_mw(&self.ambient, &rx_pos, ch, asn, &rf)
                + rf.noise_floor.to_milliwatts();
            for (_, rss) in &cands[1..] {
                interference_mw += rss.to_milliwatts();
            }
            let sinr_db = best_rss.dbm() - 10.0 * interference_mw.log10();
            let frame = &committed[best_idx].frame;
            // The radio stays in RX for the frame airtime whether or not the
            // CRC ultimately passes.
            self.energy[rx_id.index()].charge_rx(frame.airtime_us());
            if self.rng.gen::<f64>() < prr_from_sinr_db(sinr_db) {
                deliveries.push((*rx_id, best_idx, best_rss));
                if frame.dst.expects_ack() && frame.dst.addressed_to(*rx_id) {
                    // The receiver transmits an ACK on the reverse link.
                    self.energy[rx_id.index()].charge_tx(ACK_AIRTIME_US);
                    let tx_id = frame.src;
                    let tx_pos = self.topology.position(tx_id);
                    let link_up = !self.faults.has_link_outages()
                        || self.faults.is_link_up(*rx_id, tx_id, asn);
                    let ack_rss = self.link.rss(*rx_id, tx_id, ch, asn);
                    let ack_inter = total_interference_mw(&self.jammers, &tx_pos, ch, asn, &rf)
                        + total_interference_mw(&self.ambient, &tx_pos, ch, asn, &rf)
                        + rf.noise_floor.to_milliwatts();
                    let ack_sinr = ack_rss.dbm() - 10.0 * ack_inter.log10();
                    if link_up && self.rng.gen::<f64>() < prr_from_sinr_db(ack_sinr) {
                        acked[best_idx] = true;
                    }
                }
            } else if cands.len() > 1 {
                self.stats.collision_drops += 1;
            } else {
                self.stats.noise_drops += 1;
            }
        }

        // Phase 4: stats + energy for transmitters.
        for (k, tx) in committed.iter().enumerate() {
            self.stats.channel_tx[committed_channels[k].0 as usize] += 1;
            let meter = &mut self.energy[tx.node.index()];
            meter.charge_tx(tx.frame.airtime_us());
            if tx.frame.dst.expects_ack() {
                meter.charge_rx(ACK_WAIT_US);
            }
            let counters = self.stats.kind_mut(tx.frame.kind);
            counters.transmitted += 1;
            if tx.frame.dst.expects_ack() {
                if acked[k] {
                    counters.acked += 1;
                } else {
                    counters.unacked += 1;
                    if let crate::packet::Dest::Unicast(dst) = tx.frame.dst {
                        let ch = committed_channels[k];
                        let dst_listening =
                            listeners.iter().any(|(id, off)| *id == dst && off.hop(asn) == ch);
                        if !dst_listening && tx.frame.kind == crate::packet::FrameKind::Data {
                            self.stats.unacked_no_listener += 1;
                        }
                    }
                }
            }
        }
        for (_, k, _) in &deliveries {
            self.stats.kind_mut(committed[*k].frame.kind).received += 1;
        }
        self.stats.slots += 1;

        // Adaptive jammers passively observe this slot's committed physical
        // channels and advance their learn/jam state machines. The sniffer
        // consumes no engine randomness, so determinism is untouched; the
        // engine-level counters are cumulative sums over all jammers.
        let mut any_adaptive = false;
        for jammer in &mut self.jammers {
            if let Some(t) = jammer.observe_slot(asn, &committed_channels) {
                if tracing {
                    self.trace.record_network(
                        asn.0,
                        EventKind::AttackPhase {
                            jamming: t.jamming,
                            targets: t.targets,
                            hit_rate_bp: t.hit_rate_bp,
                        },
                    );
                }
            }
            any_adaptive |= jammer.adaptive_counters().is_some();
        }
        if any_adaptive {
            let mut sum = crate::interference::AdaptiveCounters::default();
            for c in self.jammers.iter().filter_map(Jammer::adaptive_counters) {
                sum.jam_slots += c.jam_slots;
                sum.hits += c.hits;
                sum.opportunities += c.opportunities;
                sum.retargets += c.retargets;
                sum.relearns += c.relearns;
            }
            self.stats.adaptive_jam_slots = sum.jam_slots;
            self.stats.adaptive_jam_hits = sum.hits;
            self.stats.adaptive_jam_opportunities = sum.opportunities;
            self.stats.adaptive_retargets = sum.retargets;
            self.stats.adaptive_relearns = sum.relearns;
        }

        // Phase 5: callbacks — deliveries first, then outcomes, in id order.
        deliveries.sort_by_key(|(rx, _, _)| *rx);
        for (rx_id, k, rss) in &deliveries {
            if tracing {
                let frame = &committed[*k].frame;
                self.trace.record(
                    asn.0,
                    rx_id.0,
                    EventKind::Rx {
                        src: frame.src.0,
                        class: frame.kind.traffic_class(),
                        packet: frame.trace_id,
                    },
                );
            }
            stacks[rx_id.index()].on_frame(asn, &committed[*k].frame, *rss);
        }
        for (k, tx) in committed.iter().enumerate() {
            let outcome = if !tx.frame.dst.expects_ack() {
                TxOutcome::SentBroadcast
            } else if acked[k] {
                TxOutcome::Acked
            } else {
                TxOutcome::NoAck
            };
            if tracing {
                let dst = match tx.frame.dst {
                    crate::packet::Dest::Unicast(d) => Some(d.0),
                    crate::packet::Dest::Broadcast => None,
                };
                self.trace.record(
                    asn.0,
                    tx.node.0,
                    EventKind::Tx {
                        dst,
                        class: tx.frame.kind.traffic_class(),
                        channel: committed_channels[k].0,
                        contention: committed_contention[k],
                        packet: tx.frame.trace_id,
                    },
                );
                match (outcome, dst) {
                    (TxOutcome::Acked, Some(d)) => {
                        self.trace.record(
                            asn.0,
                            tx.node.0,
                            EventKind::Ack { dst: d, packet: tx.frame.trace_id },
                        );
                    }
                    (TxOutcome::NoAck, Some(d)) => {
                        // Diagnose the loss: the frame was decoded by the
                        // addressee but the ACK died on the way back; the
                        // destination never had its radio on this channel;
                        // or the frame itself was lost on the air.
                        let decoded_by_dst =
                            deliveries.iter().any(|(rx, kk, _)| *kk == k && rx.0 == d);
                        let reason = if decoded_by_dst {
                            DropReason::AckLost
                        } else {
                            let ch = committed_channels[k];
                            let dst_listening =
                                listeners.iter().any(|(id, off)| id.0 == d && off.hop(asn) == ch);
                            if dst_listening {
                                DropReason::FrameLost
                            } else {
                                DropReason::NoListener
                            }
                        };
                        self.trace.record(
                            asn.0,
                            tx.node.0,
                            EventKind::Nack { dst: d, reason, packet: tx.frame.trace_id },
                        );
                    }
                    _ => {}
                }
            }
            stacks[tx.node.index()].on_tx_outcome(asn, outcome);
        }
        for id in deferred {
            stacks[id.index()].on_tx_outcome(asn, TxOutcome::DeferredCca);
        }

        self.asn = asn.next();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{Dest, FrameKind};
    use crate::position::Position;
    use crate::topology::{Role, Topology};

    /// A scriptable test stack.
    #[derive(Default)]
    struct TestStack {
        plan: std::collections::HashMap<u64, SlotIntent<u32>>,
        received: Vec<(u64, u32, f64)>,
        outcomes: Vec<(u64, TxOutcome)>,
        resets: Vec<u64>,
        desyncs: Vec<u64>,
    }

    impl NodeStack for TestStack {
        type Payload = u32;

        fn slot_intent(&mut self, asn: Asn) -> SlotIntent<u32> {
            self.plan.remove(&asn.0).unwrap_or(SlotIntent::Sleep)
        }

        fn on_frame(&mut self, asn: Asn, frame: &Frame<u32>, rss: Dbm) {
            self.received.push((asn.0, frame.payload, rss.dbm()));
        }

        fn on_tx_outcome(&mut self, asn: Asn, outcome: TxOutcome) {
            self.outcomes.push((asn.0, outcome));
        }

        fn reset(&mut self, asn: Asn) {
            self.resets.push(asn.0);
        }

        fn desync(&mut self, asn: Asn) {
            self.desyncs.push(asn.0);
        }
    }

    fn two_node_topology(gap_m: f64) -> Topology {
        Topology::new(
            "pair",
            vec![Position::new(0.0, 0.0), Position::new(gap_m, 0.0)],
            vec![Role::AccessPoint, Role::FieldDevice],
        )
    }

    fn tx_intent(src: u16, dst: Option<u16>, payload: u32, contention: bool) -> SlotIntent<u32> {
        let dest = match dst {
            Some(d) => Dest::Unicast(NodeId(d)),
            None => Dest::Broadcast,
        };
        SlotIntent::Transmit {
            offset: ChannelOffset::new(0),
            frame: Frame::new(NodeId(src), dest, FrameKind::Data, 60, payload),
            contention,
        }
    }

    #[test]
    fn unicast_over_short_link_is_acked() {
        let topo = two_node_topology(5.0);
        let mut engine = Engine::new(topo, RfConfig::deterministic(), 7);
        let mut stacks = vec![TestStack::default(), TestStack::default()];
        stacks[1].plan.insert(0, tx_intent(1, Some(0), 42, false));
        stacks[0].plan.insert(0, SlotIntent::Listen { offset: ChannelOffset::new(0) });
        engine.step(&mut stacks);
        assert_eq!(stacks[0].received.len(), 1);
        assert_eq!(stacks[0].received[0].1, 42);
        assert_eq!(stacks[1].outcomes, vec![(0, TxOutcome::Acked)]);
        assert_eq!(engine.stats().data.acked, 1);
    }

    #[test]
    fn nobody_listening_means_no_ack() {
        let topo = two_node_topology(5.0);
        let mut engine = Engine::new(topo, RfConfig::deterministic(), 7);
        let mut stacks = vec![TestStack::default(), TestStack::default()];
        stacks[1].plan.insert(0, tx_intent(1, Some(0), 42, false));
        engine.step(&mut stacks);
        assert!(stacks[0].received.is_empty());
        assert_eq!(stacks[1].outcomes, vec![(0, TxOutcome::NoAck)]);
    }

    #[test]
    fn broadcast_is_not_acked() {
        let topo = two_node_topology(5.0);
        let mut engine = Engine::new(topo, RfConfig::deterministic(), 7);
        let mut stacks = vec![TestStack::default(), TestStack::default()];
        stacks[1].plan.insert(0, tx_intent(1, None, 9, false));
        stacks[0].plan.insert(0, SlotIntent::Listen { offset: ChannelOffset::new(0) });
        engine.step(&mut stacks);
        assert_eq!(stacks[0].received.len(), 1);
        assert_eq!(stacks[1].outcomes, vec![(0, TxOutcome::SentBroadcast)]);
    }

    #[test]
    fn out_of_range_link_fails() {
        let topo = two_node_topology(500.0);
        let mut engine = Engine::new(topo, RfConfig::deterministic(), 7);
        let mut stacks = vec![TestStack::default(), TestStack::default()];
        stacks[1].plan.insert(0, tx_intent(1, Some(0), 42, false));
        stacks[0].plan.insert(0, SlotIntent::Listen { offset: ChannelOffset::new(0) });
        engine.step(&mut stacks);
        assert!(stacks[0].received.is_empty());
        assert_eq!(stacks[1].outcomes, vec![(0, TxOutcome::NoAck)]);
    }

    #[test]
    fn mismatched_channels_do_not_deliver() {
        let topo = two_node_topology(5.0);
        let mut engine = Engine::new(topo, RfConfig::deterministic(), 7);
        let mut stacks = vec![TestStack::default(), TestStack::default()];
        stacks[1].plan.insert(0, tx_intent(1, Some(0), 42, false));
        stacks[0].plan.insert(0, SlotIntent::Listen { offset: ChannelOffset::new(3) });
        engine.step(&mut stacks);
        assert!(stacks[0].received.is_empty());
    }

    #[test]
    fn dead_node_does_not_participate() {
        let topo = two_node_topology(5.0);
        let mut engine = Engine::new(topo, RfConfig::deterministic(), 7);
        engine.set_fault_plan(
            FaultPlan::none().with(crate::fault::Outage::permanent(NodeId(1), Asn(0))),
        );
        let mut stacks = vec![TestStack::default(), TestStack::default()];
        stacks[1].plan.insert(0, tx_intent(1, Some(0), 42, false));
        stacks[0].plan.insert(0, SlotIntent::Listen { offset: ChannelOffset::new(0) });
        engine.step(&mut stacks);
        assert!(stacks[0].received.is_empty());
        assert!(stacks[1].outcomes.is_empty());
        // The intent was never consumed.
        assert!(stacks[1].plan.contains_key(&0));
    }

    #[test]
    fn collision_of_equal_signals_destroys_both() {
        // Two transmitters equidistant from one listener, dedicated cells
        // (simulating a schedule bug): the SINR is ~0 dB, so reception is
        // very unlikely.
        let topo = Topology::new(
            "triple",
            vec![Position::new(0.0, 0.0), Position::new(-6.0, 0.0), Position::new(6.0, 0.0)],
            vec![Role::AccessPoint, Role::FieldDevice, Role::FieldDevice],
        );
        let mut delivered = 0;
        for seed in 0..30 {
            let mut engine = Engine::new(topo.clone(), RfConfig::deterministic(), seed);
            let mut stacks = vec![TestStack::default(), TestStack::default(), TestStack::default()];
            stacks[1].plan.insert(0, tx_intent(1, Some(0), 1, false));
            stacks[2].plan.insert(0, tx_intent(2, Some(0), 2, false));
            stacks[0].plan.insert(0, SlotIntent::Listen { offset: ChannelOffset::new(0) });
            engine.step(&mut stacks);
            delivered += stacks[0].received.len();
        }
        assert!(delivered <= 3, "equal-power collision mostly destroys frames: {delivered}");
    }

    #[test]
    fn csma_defers_second_contender() {
        // Two contenders in carrier-sense range: exactly one transmits.
        let topo = Topology::new(
            "triple",
            vec![Position::new(0.0, 0.0), Position::new(5.0, 0.0), Position::new(7.0, 0.0)],
            vec![Role::AccessPoint, Role::FieldDevice, Role::FieldDevice],
        );
        let mut engine = Engine::new(topo, RfConfig::deterministic(), 3);
        let mut stacks = vec![TestStack::default(), TestStack::default(), TestStack::default()];
        stacks[1].plan.insert(0, tx_intent(1, Some(0), 1, true));
        stacks[2].plan.insert(0, tx_intent(2, Some(0), 2, true));
        stacks[0].plan.insert(0, SlotIntent::Listen { offset: ChannelOffset::new(0) });
        engine.step(&mut stacks);
        let deferrals = [&stacks[1], &stacks[2]]
            .iter()
            .flat_map(|s| &s.outcomes)
            .filter(|(_, o)| *o == TxOutcome::DeferredCca)
            .count();
        assert_eq!(deferrals, 1, "exactly one contender defers");
        assert_eq!(engine.stats().cca_deferrals, 1);
        assert_eq!(stacks[0].received.len(), 1);
    }

    #[test]
    fn jammer_blocks_nearby_link() {
        use crate::interference::Jammer;
        let topo = two_node_topology(12.0);
        // Jammer sits right next to the receiver, continuously on, and we
        // pick a slot where the hop lands on a covered channel.
        let mut delivered = 0;
        let mut attempts = 0;
        for seed in 0..20 {
            let mut engine = Engine::new(topo.clone(), RfConfig::deterministic(), seed);
            let mut j = Jammer::wifi(Position::new(0.5, 0.0), 1, Asn(0));
            j.tx_power = Dbm(20.0);
            engine.add_jammer(j);
            let mut stacks = vec![TestStack::default(), TestStack::default()];
            // Offset 0 at ASN 0 → physical channel 0 (IEEE 11), jammed by WiFi ch.1.
            stacks[1].plan.insert(0, tx_intent(1, Some(0), 42, false));
            stacks[0].plan.insert(0, SlotIntent::Listen { offset: ChannelOffset::new(0) });
            engine.step(&mut stacks);
            attempts += 1;
            delivered += stacks[0].received.len();
        }
        assert!(
            delivered < attempts / 2,
            "strong co-channel jammer should destroy most frames ({delivered}/{attempts})"
        );
    }

    #[test]
    fn energy_accrues_for_all_activities() {
        let topo = two_node_topology(5.0);
        let mut engine = Engine::new(topo, RfConfig::deterministic(), 7);
        let mut stacks = vec![TestStack::default(), TestStack::default()];
        stacks[1].plan.insert(0, tx_intent(1, Some(0), 42, false));
        stacks[0].plan.insert(0, SlotIntent::Listen { offset: ChannelOffset::new(0) });
        engine.step(&mut stacks);
        let tx_meter = engine.energy(NodeId(1));
        let rx_meter = engine.energy(NodeId(0));
        assert!(tx_meter.tx_us > 0, "transmitter charged TX");
        assert!(tx_meter.rx_us > 0, "transmitter charged ACK wait");
        assert!(rx_meter.rx_us > 0, "receiver charged RX");
        assert!(rx_meter.tx_us > 0, "receiver charged ACK TX");
    }

    #[test]
    fn idle_listen_cheaper_than_reception() {
        let topo = two_node_topology(5.0);
        let mut engine = Engine::new(topo, RfConfig::deterministic(), 7);
        let mut stacks = vec![TestStack::default(), TestStack::default()];
        stacks[0].plan.insert(0, SlotIntent::Listen { offset: ChannelOffset::new(0) });
        engine.step(&mut stacks);
        let idle_rx = engine.energy(NodeId(0)).rx_us;
        assert_eq!(idle_rx, u64::from(IDLE_LISTEN_US));
    }

    #[test]
    fn link_outage_blocks_frames_but_not_other_links() {
        use crate::fault::LinkOutage;
        let topo = Topology::new(
            "triple",
            vec![Position::new(0.0, 0.0), Position::new(5.0, 0.0), Position::new(-5.0, 0.0)],
            vec![Role::AccessPoint, Role::FieldDevice, Role::FieldDevice],
        );
        let mut engine = Engine::new(topo, RfConfig::deterministic(), 7);
        engine.set_fault_plan(FaultPlan::none().with_link(LinkOutage::permanent(
            NodeId(1),
            NodeId(0),
            Asn(0),
        )));
        let mut stacks = vec![TestStack::default(), TestStack::default(), TestStack::default()];
        // Node 1 → AP over the broken link fails; node 2 → AP still works.
        stacks[1].plan.insert(0, tx_intent(1, Some(0), 11, false));
        stacks[2].plan.insert(1, tx_intent(2, Some(0), 22, false));
        stacks[0].plan.insert(0, SlotIntent::Listen { offset: ChannelOffset::new(0) });
        stacks[0].plan.insert(1, SlotIntent::Listen { offset: ChannelOffset::new(0) });
        engine.step(&mut stacks);
        engine.step(&mut stacks);
        assert_eq!(stacks[1].outcomes, vec![(0, TxOutcome::NoAck)]);
        assert_eq!(stacks[2].outcomes, vec![(1, TxOutcome::Acked)]);
        assert_eq!(stacks[0].received.len(), 1);
        assert_eq!(stacks[0].received[0].1, 22);
    }

    #[test]
    fn reboot_is_dead_during_window_and_resets_on_return() {
        use crate::fault::Reboot;
        let topo = two_node_topology(5.0);
        let mut engine = Engine::new(topo, RfConfig::deterministic(), 7);
        engine.set_fault_plan(FaultPlan::none().with_reboot(Reboot::new(
            NodeId(1),
            Asn(1),
            Asn(3),
        )));
        let mut stacks = vec![TestStack::default(), TestStack::default()];
        for asn in [1u64, 2] {
            stacks[1].plan.insert(asn, tx_intent(1, Some(0), 42, false));
        }
        engine.run(&mut stacks, 5);
        // Intents during the downtime were never consumed, and the reset
        // fired exactly once, at the first slot back up.
        assert!(stacks[1].plan.contains_key(&1));
        assert!(stacks[1].plan.contains_key(&2));
        assert_eq!(stacks[1].resets, vec![3]);
        assert!(stacks[0].resets.is_empty());
    }

    #[test]
    fn reset_waits_for_overlapping_outage_to_clear() {
        use crate::fault::{Outage, Reboot};
        let topo = two_node_topology(5.0);
        let mut engine = Engine::new(topo, RfConfig::deterministic(), 7);
        // The reboot ends at slot 3, but a longer outage keeps the node
        // down until slot 6: the cold reset must fire at 6, not 3.
        engine.set_fault_plan(
            FaultPlan::none()
                .with_reboot(Reboot::new(NodeId(1), Asn(1), Asn(3)))
                .with(Outage::transient(NodeId(1), Asn(2), Asn(6))),
        );
        let mut stacks = vec![TestStack::default(), TestStack::default()];
        engine.run(&mut stacks, 8);
        assert_eq!(stacks[1].resets, vec![6]);
    }

    #[test]
    fn desync_hook_fires_at_the_scheduled_slot() {
        use crate::fault::ClockDesync;
        let topo = two_node_topology(5.0);
        let mut engine = Engine::new(topo, RfConfig::deterministic(), 7);
        engine.set_fault_plan(FaultPlan::none().with_desync(ClockDesync::new(NodeId(0), Asn(4))));
        let mut stacks = vec![TestStack::default(), TestStack::default()];
        engine.run(&mut stacks, 6);
        assert_eq!(stacks[0].desyncs, vec![4]);
        assert!(stacks[1].desyncs.is_empty());
        assert!(stacks[0].resets.is_empty());
    }

    #[test]
    fn traced_slot_records_tx_rx_ack() {
        let topo = two_node_topology(5.0);
        let mut engine = Engine::new(topo, RfConfig::deterministic(), 7);
        let trace = TraceHandle::bounded(64);
        engine.set_trace(trace.clone());
        let mut stacks = vec![TestStack::default(), TestStack::default()];
        stacks[1].plan.insert(0, tx_intent(1, Some(0), 42, false));
        stacks[0].plan.insert(0, SlotIntent::Listen { offset: ChannelOffset::new(0) });
        engine.step(&mut stacks);
        let events = trace.events();
        let names: Vec<&str> = events.iter().map(|e| e.kind.name()).collect();
        assert!(names.contains(&"slot"), "{names:?}");
        assert!(names.contains(&"tx"), "{names:?}");
        assert!(names.contains(&"rx"), "{names:?}");
        assert!(names.contains(&"ack"), "{names:?}");
    }

    #[test]
    fn traced_fault_boundaries_and_reset_are_recorded() {
        use crate::fault::Reboot;
        let topo = two_node_topology(5.0);
        let mut engine = Engine::new(topo, RfConfig::deterministic(), 7);
        engine.set_fault_plan(FaultPlan::none().with_reboot(Reboot::new(
            NodeId(1),
            Asn(1),
            Asn(3),
        )));
        let trace = TraceHandle::bounded(64);
        engine.set_trace(trace.clone());
        let mut stacks = vec![TestStack::default(), TestStack::default()];
        engine.run(&mut stacks, 5);
        let node1: Vec<&str> =
            trace.node_events(1).iter().map(|e| e.kind.name()).collect::<Vec<_>>();
        assert_eq!(node1, vec!["fault-inject", "fault-clear", "node-reset"], "{node1:?}");
    }

    #[test]
    fn untraced_engine_matches_traced_engine_results() {
        let run = |traced: bool| {
            let topo = two_node_topology(5.0);
            let mut engine = Engine::new(topo, RfConfig::deterministic(), 7);
            if traced {
                engine.set_trace(TraceHandle::bounded(16));
            }
            let mut stacks = vec![TestStack::default(), TestStack::default()];
            for asn in 0..20u64 {
                stacks[1].plan.insert(asn, tx_intent(1, Some(0), asn as u32, false));
                stacks[0].plan.insert(asn, SlotIntent::Listen { offset: ChannelOffset::new(0) });
            }
            engine.run(&mut stacks, 20);
            (stacks[0].received.len(), engine.stats().total_transmitted())
        };
        assert_eq!(run(false), run(true), "tracing must not perturb the simulation");
    }

    #[test]
    fn engine_is_deterministic() {
        let run = |seed| {
            let topo = Topology::testbed_a();
            let n = topo.len();
            let mut engine = Engine::new(topo, RfConfig::indoor(), seed);
            let mut stacks: Vec<TestStack> = (0..n).map(|_| TestStack::default()).collect();
            // Every node broadcasts in its own slot mod n, listens otherwise.
            for (i, s) in stacks.iter_mut().enumerate() {
                for asn in 0..200u64 {
                    if asn as usize % n == i {
                        s.plan.insert(asn, tx_intent(i as u16, None, asn as u32, true));
                    } else {
                        s.plan.insert(asn, SlotIntent::Listen { offset: ChannelOffset::new(0) });
                    }
                }
            }
            engine.run(&mut stacks, 200);
            let received: usize = stacks.iter().map(|s| s.received.len()).sum();
            (received, engine.stats().total_transmitted())
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5).0, 0);
    }
}
