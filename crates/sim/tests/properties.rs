//! Property-based tests for the simulation substrate.

use digs_sim::channel::{wifi_overlap, ChannelOffset, PhysChannel, NUM_CHANNELS};
use digs_sim::energy::EnergyMeter;
use digs_sim::fault::{FaultPlan, Outage};
use digs_sim::ids::NodeId;
use digs_sim::interference::Jammer;
use digs_sim::link::LinkModel;
use digs_sim::position::Position;
use digs_sim::rf::{initial_etx_from_rss, prr_from_sinr_db, Dbm, RfConfig};
use digs_sim::rng;
use digs_sim::time::Asn;
use digs_sim::topology::Topology;
use proptest::prelude::*;

proptest! {
    /// The TSCH hop function is a bijection per slot: 16 offsets map to 16
    /// distinct physical channels.
    #[test]
    fn hopping_is_a_per_slot_bijection(asn in 0u64..1_000_000) {
        let mut seen = std::collections::HashSet::new();
        for off in 0..NUM_CHANNELS {
            seen.insert(ChannelOffset::new(off).hop(Asn(asn)));
        }
        prop_assert_eq!(seen.len(), usize::from(NUM_CHANNELS));
    }

    /// Every WiFi channel overlaps exactly four 802.15.4 channels, and the
    /// overlapped set shifts monotonically with the WiFi channel number.
    #[test]
    fn wifi_overlap_is_four_contiguous_channels(ch in 1u8..=13) {
        let set = wifi_overlap(ch);
        prop_assert_eq!(set.len(), 4);
        for pair in set.windows(2) {
            prop_assert_eq!(pair[1].0, pair[0].0 + 1, "contiguous");
        }
    }

    /// The paper's RSS→ETX mapping is monotone (weaker signal never maps
    /// to a better ETX) and bounded in [1, 3].
    #[test]
    fn etx_mapping_is_monotone_and_bounded(a in -120.0f64..-20.0, b in -120.0f64..-20.0) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        let etx_weak = initial_etx_from_rss(Dbm(lo));
        let etx_strong = initial_etx_from_rss(Dbm(hi));
        prop_assert!(etx_weak >= etx_strong);
        prop_assert!((1.0..=3.0).contains(&etx_weak));
        prop_assert!((1.0..=3.0).contains(&etx_strong));
    }

    /// The PRR waterfall is monotone in SINR and a valid probability.
    #[test]
    fn prr_is_monotone_probability(a in -40.0f64..40.0, b in -40.0f64..40.0) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        let p_lo = prr_from_sinr_db(lo);
        let p_hi = prr_from_sinr_db(hi);
        prop_assert!(p_lo <= p_hi);
        prop_assert!((0.0..=1.0).contains(&p_lo));
        prop_assert!((0.0..=1.0).contains(&p_hi));
    }

    /// dBm ↔ milliwatt conversion round-trips.
    #[test]
    fn dbm_mw_roundtrip(dbm in -120.0f64..30.0) {
        let p = Dbm(dbm);
        let back = Dbm::from_milliwatts(p.to_milliwatts());
        prop_assert!((back.dbm() - dbm).abs() < 1e-9);
    }

    /// Static link RSS is symmetric and deterministic for any pair.
    #[test]
    fn link_rss_symmetric(a in 0u16..20, b in 0u16..20, seed in 0u64..20) {
        prop_assume!(a != b);
        let topo = Topology::testbed_a_half();
        let model = LinkModel::new(&topo, RfConfig::indoor(), seed);
        let ab = model.static_rss(NodeId(a), NodeId(b)).dbm();
        let ba = model.static_rss(NodeId(b), NodeId(a)).dbm();
        prop_assert!((ab - ba).abs() < 1e-9);
    }

    /// Instantaneous RSS never exceeds a generous physical bound and is
    /// reproducible.
    #[test]
    fn rss_reproducible(a in 0u16..20, b in 0u16..20, ch in 0u8..16, asn in 0u64..100_000) {
        prop_assume!(a != b);
        let topo = Topology::testbed_a_half();
        let m1 = LinkModel::new(&topo, RfConfig::indoor(), 5);
        let m2 = LinkModel::new(&topo, RfConfig::indoor(), 5);
        let r1 = m1.rss(NodeId(a), NodeId(b), PhysChannel(ch), Asn(asn));
        let r2 = m2.rss(NodeId(a), NodeId(b), PhysChannel(ch), Asn(asn));
        prop_assert_eq!(r1.dbm(), r2.dbm());
        prop_assert!(r1.dbm() < 10.0, "RSS above TX power + margin: {}", r1.dbm());
    }

    /// Energy accounting: the meter's energy is nonnegative, grows
    /// monotonically with charged airtime, and duty cycle stays in [0, 1].
    #[test]
    fn energy_meter_invariants(
        charges in prop::collection::vec((0u32..10_000, any::<bool>()), 0..100
    )) {
        let mut meter = EnergyMeter::new();
        let mut prev = 0.0;
        for (us, is_tx) in charges {
            meter.tick_slot();
            if is_tx {
                meter.charge_tx(us);
            } else {
                meter.charge_rx(us);
            }
            let e = meter.energy_mj();
            prop_assert!(e >= prev - 1e-9);
            prev = e;
            prop_assert!((0.0..=1.0).contains(&meter.duty_cycle()));
        }
    }

    /// Fault plans: a node is dead exactly within its outage windows.
    #[test]
    fn outage_windows_are_exact(from in 0u64..10_000, len in 1u64..10_000, probe in 0u64..30_000) {
        let plan = FaultPlan::none()
            .with(Outage::transient(NodeId(3), Asn(from), Asn(from + len)));
        let alive = plan.is_alive(NodeId(3), Asn(probe));
        let inside = probe >= from && probe < from + len;
        prop_assert_eq!(alive, !inside);
        // Other nodes are never affected.
        prop_assert!(plan.is_alive(NodeId(4), Asn(probe)));
    }

    /// Overlapping outages compose: the node is dead on the *union* of the
    /// windows, regardless of how they interleave, and `alive_throughout`
    /// agrees with slot-by-slot `is_alive` over any probe range.
    #[test]
    fn overlapping_outages_compose(
        from1 in 0u64..2_000,
        len1 in 1u64..2_000,
        from2 in 0u64..2_000,
        len2 in 1u64..2_000,
        probe in 0u64..5_000,
        span in 0u64..200
    ) {
        let plan = FaultPlan::none()
            .with(Outage::transient(NodeId(3), Asn(from1), Asn(from1 + len1)))
            .with(Outage::transient(NodeId(3), Asn(from2), Asn(from2 + len2)));
        let in_union = (probe >= from1 && probe < from1 + len1)
            || (probe >= from2 && probe < from2 + len2);
        prop_assert_eq!(plan.is_alive(NodeId(3), Asn(probe)), !in_union);

        let all_alive = (probe..=probe + span).all(|t| plan.is_alive(NodeId(3), Asn(t)));
        prop_assert_eq!(
            plan.alive_throughout(NodeId(3), Asn(probe), Asn(probe + span)),
            all_alive
        );
    }

    /// `covers` boundary semantics are half-open for outages and reboots
    /// alike: the first dead slot is `from`, the first live slot back is
    /// `until`.
    #[test]
    fn covers_boundaries_are_half_open(from in 1u64..10_000, len in 1u64..10_000) {
        let outage = Outage::transient(NodeId(1), Asn(from), Asn(from + len));
        prop_assert!(!outage.covers(Asn(from - 1)));
        prop_assert!(outage.covers(Asn(from)));
        prop_assert!(outage.covers(Asn(from + len - 1)));
        prop_assert!(!outage.covers(Asn(from + len)));

        let reboot = digs_sim::fault::Reboot::new(NodeId(1), Asn(from), Asn(from + len));
        prop_assert!(!reboot.covers(Asn(from - 1)));
        prop_assert!(reboot.covers(Asn(from)));
        prop_assert!(reboot.covers(Asn(from + len - 1)));
        prop_assert!(!reboot.covers(Asn(from + len)));

        let permanent = Outage::permanent(NodeId(1), Asn(from));
        prop_assert!(!permanent.covers(Asn(from - 1)));
        prop_assert!(permanent.covers(Asn(from + 1_000_000)));
    }

    /// Chaos plans are a pure function of (config, topology, seed): the
    /// same seed reproduces the identical plan, and every generated event
    /// starts inside the configured chaos window.
    #[test]
    fn chaos_generation_is_seed_deterministic(seed in any::<u64>(), start in 0u64..50_000, dur in 60u64..600) {
        use digs_sim::fault::{ChaosConfig, ChaosPlan};
        let topo = Topology::testbed_a_half();
        let config = ChaosConfig::moderate(Asn(start), dur);
        let a = ChaosPlan::generate(&config, &topo, seed);
        let b = ChaosPlan::generate(&config, &topo, seed);
        prop_assert_eq!(&a, &b);
        let window_end = start + dur * 100;
        for event in a.events() {
            prop_assert!(event.from.0 >= start && event.from.0 < window_end,
                "event start {} outside chaos window [{start}, {window_end})", event.from.0);
        }
    }

    /// Jammer interference is deterministic and decays with distance.
    #[test]
    fn jammer_interference_decays(d1 in 1.0f64..50.0, d2 in 1.0f64..50.0, asn in 0u64..10_000) {
        prop_assume!((d1 - d2).abs() > 0.5);
        let jammer = Jammer::wifi(Position::new(0.0, 0.0), 6, Asn::ZERO);
        let rf = RfConfig::indoor();
        // Pick a covered channel: WiFi 6 covers indices 5..=8.
        let ch = PhysChannel(6);
        let at = |d: f64| {
            jammer
                .interference_at(&Position::new(d, 0.0), ch, Asn(asn), &rf)
                .map(|p| p.dbm())
        };
        match (at(d1), at(d2)) {
            (Some(p1), Some(p2)) => {
                if d1 < d2 {
                    prop_assert!(p1 >= p2);
                } else {
                    prop_assert!(p2 >= p1);
                }
            }
            (a, b) => prop_assert_eq!(a.is_some(), b.is_some(), "emission is per-slot, not per-position"),
        }
    }

    /// The deterministic hash-derived uniform samples stay in [0, 1) and
    /// don't collide trivially.
    #[test]
    fn uniform01_bounds(seed in any::<u64>(), a in any::<u64>(), b in any::<u64>(), c in any::<u64>()) {
        let u = rng::uniform01(seed, a, b, c);
        prop_assert!((0.0..1.0).contains(&u));
    }

    /// Slotframe offsets always stay below the slotframe length.
    #[test]
    fn slotframe_offset_in_range(asn in any::<u64>(), len in 1u32..10_000) {
        prop_assert!(Asn(asn).slotframe_offset(len) < len);
    }
}
