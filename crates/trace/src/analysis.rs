//! Analysis passes over a recorded event stream.
//!
//! Three consumers, matching the paper's evaluation style:
//!
//! - **Packet journeys** (Fig. 7/8 class): follow one data packet hop by
//!   hop, attributing per-hop queueing delay and retransmission counts, and
//!   summarize into a latency breakdown.
//! - **Churn timeline** (Fig. 4/5 class): the routing-repair story around
//!   each injected fault — parent switches, rank changes, cell churn.
//! - **Windows**: the bounded slice of events preceding an instant, used to
//!   triage the first invariant violation of a chaos soak.

use crate::event::{Event, EventKind, PacketId};
use std::collections::BTreeMap;

/// One hop of a packet's journey through the network.
#[derive(Debug, Clone, PartialEq)]
pub struct Hop {
    /// Node holding the packet on this hop.
    pub node: u16,
    /// Slot the packet entered this node's queue (origin: generation slot).
    pub enqueued_at: Option<u64>,
    /// Slot of the first transmission attempt from this node.
    pub first_tx_at: Option<u64>,
    /// Slot the hop's transmission was finally acknowledged.
    pub acked_at: Option<u64>,
    /// Number of transmission attempts made from this node.
    pub tx_attempts: u32,
    /// Number of unacknowledged attempts.
    pub nacks: u32,
    /// Distinct link-layer targets tried, in first-use order (more than one
    /// means the graph route diverted to a backup parent).
    pub targets: Vec<u16>,
}

impl Hop {
    fn new(node: u16) -> Hop {
        Hop {
            node,
            enqueued_at: None,
            first_tx_at: None,
            acked_at: None,
            tx_attempts: 0,
            nacks: 0,
            targets: Vec::new(),
        }
    }

    /// Slots spent queued before the first transmission attempt.
    pub fn queueing_slots(&self) -> Option<u64> {
        match (self.enqueued_at, self.first_tx_at) {
            (Some(e), Some(t)) => Some(t.saturating_sub(e)),
            _ => None,
        }
    }

    /// Slots spent retransmitting (first attempt to final ACK).
    pub fn retx_slots(&self) -> Option<u64> {
        match (self.first_tx_at, self.acked_at) {
            (Some(t), Some(a)) => Some(a.saturating_sub(t)),
            _ => None,
        }
    }
}

/// The reconstructed journey of one application packet.
#[derive(Debug, Clone, PartialEq)]
pub struct Journey {
    /// The packet.
    pub packet: PacketId,
    /// Slot the packet was generated (if the event is still in the ring).
    pub generated_at: Option<u64>,
    /// Slot the packet reached an access point.
    pub delivered_at: Option<u64>,
    /// End-to-end latency in slots, from the `Delivered` event.
    pub latency_slots: Option<u64>,
    /// Hops in traversal order.
    pub hops: Vec<Hop>,
}

impl Journey {
    /// Whether the journey is complete: generation and delivery both seen.
    pub fn is_complete(&self) -> bool {
        self.generated_at.is_some() && self.delivered_at.is_some()
    }

    /// Total transmission attempts across all hops.
    pub fn total_attempts(&self) -> u32 {
        self.hops.iter().map(|h| h.tx_attempts).sum()
    }

    /// Whether any hop tried more than one link-layer target (graph-route
    /// diversion to a backup parent).
    pub fn used_backup(&self) -> bool {
        self.hops.iter().any(|h| h.targets.len() > 1)
    }
}

/// Reconstructs per-packet journeys from an event stream.
///
/// Events must be in emission (`seq`) order, as returned by
/// `RingRecorder::events`. Ring eviction can amputate old hops; such
/// journeys come back incomplete rather than being dropped.
pub fn journeys(events: &[Event]) -> Vec<Journey> {
    let mut map: BTreeMap<PacketId, Journey> = BTreeMap::new();
    for event in events {
        let Some(packet) = event.kind.packet() else {
            continue;
        };
        let journey = map.entry(packet).or_insert_with(|| Journey {
            packet,
            generated_at: None,
            delivered_at: None,
            latency_slots: None,
            hops: Vec::new(),
        });
        let hop = |journey: &mut Journey, node: u16| -> usize {
            match journey.hops.iter().position(|h| h.node == node) {
                Some(i) => i,
                None => {
                    journey.hops.push(Hop::new(node));
                    journey.hops.len() - 1
                }
            }
        };
        match &event.kind {
            EventKind::Generated { .. } => {
                journey.generated_at = Some(event.asn);
                let i = hop(journey, event.node);
                journey.hops[i].enqueued_at.get_or_insert(event.asn);
            }
            EventKind::QueueEnq { .. } => {
                let i = hop(journey, event.node);
                journey.hops[i].enqueued_at.get_or_insert(event.asn);
            }
            EventKind::Tx { dst, .. } => {
                let i = hop(journey, event.node);
                let h = &mut journey.hops[i];
                h.tx_attempts += 1;
                h.first_tx_at.get_or_insert(event.asn);
                if let Some(d) = dst {
                    if !h.targets.contains(d) {
                        h.targets.push(*d);
                    }
                }
            }
            EventKind::Ack { .. } => {
                let i = hop(journey, event.node);
                journey.hops[i].acked_at = Some(event.asn);
            }
            EventKind::Nack { .. } => {
                let i = hop(journey, event.node);
                journey.hops[i].nacks += 1;
            }
            EventKind::Delivered { latency_slots, .. } => {
                journey.delivered_at = Some(event.asn);
                journey.latency_slots = Some(*latency_slots);
            }
            _ => {}
        }
    }
    map.into_values().collect()
}

/// Aggregate latency decomposition over a set of journeys (the Fig. 7/8
/// breakdown table).
#[derive(Debug, Clone, PartialEq)]
pub struct LatencyBreakdown {
    /// Journeys considered.
    pub journeys: usize,
    /// Journeys with both generation and delivery observed.
    pub complete: usize,
    /// Mean end-to-end latency over complete journeys, in slots.
    pub mean_latency_slots: f64,
    /// Mean hop count over complete journeys.
    pub mean_hops: f64,
    /// Mean per-journey slots spent waiting in queues.
    pub mean_queue_slots: f64,
    /// Mean per-journey slots spent retransmitting.
    pub mean_retx_slots: f64,
    /// Mean transmission attempts per complete journey.
    pub mean_attempts: f64,
    /// Complete journeys that diverted to a backup parent on some hop.
    pub used_backup: usize,
}

/// Computes the latency breakdown over `journeys`.
pub fn latency_breakdown(journeys: &[Journey]) -> LatencyBreakdown {
    let complete: Vec<&Journey> = journeys.iter().filter(|j| j.is_complete()).collect();
    let n = complete.len() as f64;
    let mean = |f: &dyn Fn(&Journey) -> f64| -> f64 {
        if complete.is_empty() {
            0.0
        } else {
            complete.iter().map(|j| f(j)).sum::<f64>() / n
        }
    };
    LatencyBreakdown {
        journeys: journeys.len(),
        complete: complete.len(),
        mean_latency_slots: mean(&|j| j.latency_slots.unwrap_or(0) as f64),
        mean_hops: mean(&|j| j.hops.len() as f64),
        mean_queue_slots: mean(&|j| {
            j.hops.iter().filter_map(Hop::queueing_slots).sum::<u64>() as f64
        }),
        mean_retx_slots: mean(&|j| j.hops.iter().filter_map(Hop::retx_slots).sum::<u64>() as f64),
        mean_attempts: mean(&|j| j.total_attempts() as f64),
        used_backup: complete.iter().filter(|j| j.used_backup()).count(),
    }
}

/// Filters the routing-churn narrative out of an event stream: fault
/// injections/clears, resets, desyncs, parent switches, rank changes, and
/// dedicated-cell churn, in emission order.
pub fn churn_timeline(events: &[Event]) -> Vec<Event> {
    events
        .iter()
        .filter(|e| {
            matches!(
                e.kind,
                EventKind::FaultInject { .. }
                    | EventKind::FaultClear { .. }
                    | EventKind::NodeReset
                    | EventKind::ClockDesync
                    | EventKind::ParentSwitch { .. }
                    | EventKind::RankChange { .. }
                    | EventKind::CellAlloc { .. }
                    | EventKind::CellRelease { .. }
            )
        })
        .cloned()
        .collect()
}

/// One fault and the routing response observed after it (Fig. 4/5 class).
#[derive(Debug, Clone, PartialEq)]
pub struct RepairEpisode {
    /// The injection event.
    pub fault: Event,
    /// Slot the fault cleared, if a matching clear was seen.
    pub cleared_at: Option<u64>,
    /// Parent switches observed between this fault and the next injection.
    pub switches: Vec<Event>,
    /// Slots from injection to the first parent switch (the repair time
    /// proxy), if any switch happened.
    pub first_switch_after: Option<u64>,
}

/// Brackets each injected fault with the parent switches that follow it
/// (up to the next injection).
pub fn repair_episodes(events: &[Event]) -> Vec<RepairEpisode> {
    let mut episodes: Vec<RepairEpisode> = Vec::new();
    for event in events {
        match &event.kind {
            EventKind::FaultInject { .. } => episodes.push(RepairEpisode {
                fault: event.clone(),
                cleared_at: None,
                switches: Vec::new(),
                first_switch_after: None,
            }),
            EventKind::FaultClear { fault, peer } => {
                if let Some(ep) = episodes.iter_mut().rev().find(|ep| {
                    matches!(&ep.fault.kind, EventKind::FaultInject { fault: f, peer: p }
                        if f == fault && p == peer && ep.fault.node == event.node)
                }) {
                    ep.cleared_at.get_or_insert(event.asn);
                }
            }
            EventKind::ParentSwitch { .. } => {
                if let Some(ep) = episodes.last_mut() {
                    if ep.first_switch_after.is_none() {
                        ep.first_switch_after = Some(event.asn.saturating_sub(ep.fault.asn));
                    }
                    ep.switches.push(event.clone());
                }
            }
            _ => {}
        }
    }
    episodes
}

/// The events in the half-open ASN window `(end_asn - slots, end_asn]`, in
/// emission order — the flight-recorder dump taken around an invariant
/// violation.
pub fn window(events: &[Event], end_asn: u64, slots: u64) -> Vec<Event> {
    let cutoff = end_asn.checked_sub(slots);
    events
        .iter()
        .filter(|e| cutoff.is_none_or(|c| e.asn > c) && e.asn <= end_asn)
        .cloned()
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{DropReason, FaultKind, TrafficClass};

    fn ev(seq: u64, asn: u64, node: u16, kind: EventKind) -> Event {
        Event { seq, asn, node, kind }
    }

    fn tx(dst: u16, packet: PacketId) -> EventKind {
        EventKind::Tx {
            dst: Some(dst),
            class: TrafficClass::Data,
            channel: 0,
            contention: false,
            packet: Some(packet),
        }
    }

    #[test]
    fn two_hop_journey_reconstructs() {
        let p = PacketId { flow: 0, seq: 5, origin: 8 };
        let events = vec![
            ev(0, 100, 8, EventKind::Generated { packet: p }),
            ev(1, 100, 8, EventKind::QueueEnq { packet: p, depth: 1 }),
            ev(2, 108, 8, tx(4, p)),
            ev(
                3,
                108,
                8,
                EventKind::Nack { dst: 4, reason: DropReason::FrameLost, packet: Some(p) },
            ),
            ev(4, 118, 8, tx(4, p)),
            ev(5, 118, 4, EventKind::Rx { src: 8, class: TrafficClass::Data, packet: Some(p) }),
            ev(6, 118, 8, EventKind::Ack { dst: 4, packet: Some(p) }),
            ev(7, 118, 8, EventKind::QueueDeq { packet: p, depth: 0 }),
            ev(8, 118, 4, EventKind::QueueEnq { packet: p, depth: 1 }),
            ev(9, 125, 4, tx(0, p)),
            ev(10, 125, 4, EventKind::Ack { dst: 0, packet: Some(p) }),
            ev(11, 125, 0, EventKind::Delivered { packet: p, latency_slots: 25 }),
        ];
        let js = journeys(&events);
        assert_eq!(js.len(), 1);
        let j = &js[0];
        assert!(j.is_complete());
        assert_eq!(j.generated_at, Some(100));
        assert_eq!(j.delivered_at, Some(125));
        assert_eq!(j.latency_slots, Some(25));
        // Hops: origin 8 and relay 4 (the AP only logs the delivery).
        assert_eq!(j.hops.len(), 2);
        let h8 = &j.hops[0];
        assert_eq!(h8.node, 8);
        assert_eq!(h8.tx_attempts, 2);
        assert_eq!(h8.nacks, 1);
        assert_eq!(h8.queueing_slots(), Some(8));
        assert_eq!(h8.retx_slots(), Some(10));
        assert_eq!(h8.targets, vec![4]);
        let h4 = &j.hops[1];
        assert_eq!(h4.node, 4);
        assert_eq!(h4.tx_attempts, 1);
        assert_eq!(h4.queueing_slots(), Some(7));
        assert!(!j.used_backup());
        assert_eq!(j.total_attempts(), 3);
    }

    #[test]
    fn backup_parent_diversion_is_visible() {
        let p = PacketId { flow: 1, seq: 0, origin: 6 };
        let events = vec![
            ev(0, 10, 6, EventKind::Generated { packet: p }),
            ev(1, 12, 6, tx(3, p)),
            ev(
                2,
                12,
                6,
                EventKind::Nack { dst: 3, reason: DropReason::NoListener, packet: Some(p) },
            ),
            ev(3, 22, 6, tx(5, p)),
            ev(4, 22, 6, EventKind::Ack { dst: 5, packet: Some(p) }),
        ];
        let js = journeys(&events);
        assert_eq!(js[0].hops[0].targets, vec![3, 5]);
        assert!(js[0].used_backup());
        assert!(!js[0].is_complete(), "no delivery seen");
    }

    #[test]
    fn breakdown_averages_complete_journeys_only() {
        let p1 = PacketId { flow: 0, seq: 0, origin: 2 };
        let p2 = PacketId { flow: 0, seq: 1, origin: 2 };
        let events = vec![
            ev(0, 0, 2, EventKind::Generated { packet: p1 }),
            ev(1, 4, 2, tx(0, p1)),
            ev(2, 4, 2, EventKind::Ack { dst: 0, packet: Some(p1) }),
            ev(3, 4, 0, EventKind::Delivered { packet: p1, latency_slots: 4 }),
            // p2 never delivered.
            ev(4, 10, 2, EventKind::Generated { packet: p2 }),
            ev(5, 14, 2, tx(0, p2)),
        ];
        let b = latency_breakdown(&journeys(&events));
        assert_eq!(b.journeys, 2);
        assert_eq!(b.complete, 1);
        assert!((b.mean_latency_slots - 4.0).abs() < 1e-9);
        assert!((b.mean_queue_slots - 4.0).abs() < 1e-9);
        assert_eq!(b.used_backup, 0);
    }

    #[test]
    fn empty_stream_yields_empty_breakdown() {
        let b = latency_breakdown(&journeys(&[]));
        assert_eq!(b.journeys, 0);
        assert_eq!(b.complete, 0);
        assert_eq!(b.mean_latency_slots, 0.0);
    }

    #[test]
    fn churn_timeline_filters_and_keeps_order() {
        let events = vec![
            ev(0, 1, 3, EventKind::SlotStart),
            ev(1, 2, 3, EventKind::FaultInject { fault: FaultKind::Outage, peer: None }),
            ev(
                2,
                3,
                4,
                EventKind::ParentSwitch {
                    old_best: Some(3),
                    new_best: Some(5),
                    old_second: None,
                    new_second: None,
                },
            ),
            ev(3, 4, 4, EventKind::CcaDefer),
            ev(4, 5, 3, EventKind::FaultClear { fault: FaultKind::Outage, peer: None }),
        ];
        let churn = churn_timeline(&events);
        assert_eq!(churn.iter().map(|e| e.seq).collect::<Vec<_>>(), vec![1, 2, 4]);
    }

    #[test]
    fn repair_episode_brackets_fault() {
        let events = vec![
            ev(0, 100, 3, EventKind::FaultInject { fault: FaultKind::Outage, peer: None }),
            ev(
                1,
                160,
                4,
                EventKind::ParentSwitch {
                    old_best: Some(3),
                    new_best: Some(5),
                    old_second: Some(5),
                    new_second: None,
                },
            ),
            ev(2, 200, 3, EventKind::FaultClear { fault: FaultKind::Outage, peer: None }),
            ev(3, 300, 7, EventKind::FaultInject { fault: FaultKind::Reboot, peer: None }),
        ];
        let eps = repair_episodes(&events);
        assert_eq!(eps.len(), 2);
        assert_eq!(eps[0].switches.len(), 1);
        assert_eq!(eps[0].first_switch_after, Some(60));
        assert_eq!(eps[0].cleared_at, Some(200));
        assert!(eps[1].switches.is_empty());
        assert_eq!(eps[1].cleared_at, None);
    }

    #[test]
    fn window_is_bounded_and_inclusive_of_end() {
        let events: Vec<Event> = (0..100).map(|i| ev(i, i, 0, EventKind::SlotStart)).collect();
        let w = window(&events, 50, 10);
        assert_eq!(w.len(), 10);
        assert_eq!(w.first().unwrap().asn, 41);
        assert_eq!(w.last().unwrap().asn, 50);
        // Window larger than history: everything up to the end.
        let all = window(&events, 50, 1000);
        assert_eq!(all.len(), 51);
    }
}
