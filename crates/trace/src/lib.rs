//! # digs-trace — flight-recorder event tracing
//!
//! A bounded, always-available observability layer for the DiGS
//! reproduction: the simulation engine and every protocol stack record
//! typed [`Event`]s through a shared [`TraceHandle`], which keeps the last
//! N events per node in ring buffers ([`RingRecorder`]). Tracing is off by
//! default and costs one branch per instrumentation site; it is switched on
//! programmatically or with the `DIGS_TRACE_CAP` environment variable.
//!
//! On top of the raw stream:
//!
//! - [`analysis::journeys`] reconstructs per-packet hop-by-hop journeys
//!   with queueing delay and retransmission counts (the Fig. 7/8 latency
//!   decomposition);
//! - [`analysis::churn_timeline`] and [`analysis::repair_episodes`] extract
//!   the routing-repair story around injected faults (Fig. 4/5);
//! - [`analysis::window`] slices the bounded event window preceding an
//!   instant, used to triage invariant violations in chaos soaks;
//! - [`jsonl`] exports and re-imports the stream as deterministic JSONL.
//!
//! This crate is a leaf: it deliberately uses raw `u16`/`u64` identifiers
//! so `digs-sim` can depend on it without a cycle.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod event;
pub mod jsonl;
pub mod recorder;
pub mod ring;

pub use analysis::{
    churn_timeline, journeys, latency_breakdown, repair_episodes, window, Hop, Journey,
    LatencyBreakdown, RepairEpisode,
};
pub use event::{DropReason, Event, EventKind, FaultKind, PacketId, TrafficClass, NETWORK_NODE};
pub use jsonl::{from_jsonl, to_jsonl, ParseError};
pub use recorder::{
    NoopRecorder, Recorder, RingRecorder, TraceHandle, DEFAULT_CAPACITY, TRACE_CAP_ENV,
};
pub use ring::RingBuffer;
