//! The typed flight-recorder event model.
//!
//! Events use raw integer identifiers (`u16` nodes, `u64` ASNs) rather than
//! the simulator's newtypes so this crate stays a leaf: `digs-sim` depends
//! on `digs-trace`, not the other way around. Call sites convert with
//! `NodeId::0` / `Asn::0` at the recording boundary.

use core::fmt;

/// Sentinel node id for network-scoped events (slot boundaries, audit
/// violations attributed to the run rather than a device).
pub const NETWORK_NODE: u16 = u16::MAX;

/// End-to-end identity of one application data packet, stable across hops.
///
/// Mirrors the `DataPacket` key used by the harness for delivery dedup:
/// `(flow, seq, origin)` uniquely names a generated packet.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, serde::Serialize, serde::Deserialize,
)]
pub struct PacketId {
    /// Flow the packet belongs to.
    pub flow: u16,
    /// Per-origin sequence number.
    pub seq: u32,
    /// Originating node.
    pub origin: u16,
}

impl fmt::Display for PacketId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "flow{}/{}@#{}", self.flow, self.seq, self.origin)
    }
}

/// Coarse traffic class of a frame, mirroring `digs_sim::packet::FrameKind`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum TrafficClass {
    /// Enhanced Beacon (time synchronization).
    Beacon,
    /// Routing signalling.
    Routing,
    /// Application data.
    Data,
    /// Centralized manager dissemination.
    Management,
}

impl TrafficClass {
    /// Stable lowercase wire name.
    pub fn as_str(self) -> &'static str {
        match self {
            TrafficClass::Beacon => "beacon",
            TrafficClass::Routing => "routing",
            TrafficClass::Data => "data",
            TrafficClass::Management => "mgmt",
        }
    }

    /// Parses a wire name produced by [`TrafficClass::as_str`].
    pub fn parse(s: &str) -> Option<TrafficClass> {
        Some(match s {
            "beacon" => TrafficClass::Beacon,
            "routing" => TrafficClass::Routing,
            "data" => TrafficClass::Data,
            "mgmt" => TrafficClass::Management,
            _ => return None,
        })
    }
}

/// Why a unicast transmission went unacknowledged or a packet was dropped.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum DropReason {
    /// The bounded queue was full on enqueue.
    QueueOverflow,
    /// The per-hop retransmission budget was exhausted.
    RetryBudget,
    /// The destination was not listening on the frame's channel.
    NoListener,
    /// The frame itself was lost on the air (CRC failure / collision / jam).
    FrameLost,
    /// The frame was decoded but the acknowledgement was lost on the way
    /// back.
    AckLost,
}

impl DropReason {
    /// Stable lowercase wire name.
    pub fn as_str(self) -> &'static str {
        match self {
            DropReason::QueueOverflow => "queue-overflow",
            DropReason::RetryBudget => "retry-budget",
            DropReason::NoListener => "no-listener",
            DropReason::FrameLost => "frame-lost",
            DropReason::AckLost => "ack-lost",
        }
    }

    /// Parses a wire name produced by [`DropReason::as_str`].
    pub fn parse(s: &str) -> Option<DropReason> {
        Some(match s {
            "queue-overflow" => DropReason::QueueOverflow,
            "retry-budget" => DropReason::RetryBudget,
            "no-listener" => DropReason::NoListener,
            "frame-lost" => DropReason::FrameLost,
            "ack-lost" => DropReason::AckLost,
            _ => return None,
        })
    }
}

/// Which scripted fault hit or cleared (for [`EventKind::FaultInject`] /
/// [`EventKind::FaultClear`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum FaultKind {
    /// Node outage (warm RAM state survives).
    Outage,
    /// Cold reboot (stack resets when the node returns).
    Reboot,
    /// Bidirectional link obstruction; `peer` names the other endpoint.
    LinkOutage,
}

impl FaultKind {
    /// Stable lowercase wire name.
    pub fn as_str(self) -> &'static str {
        match self {
            FaultKind::Outage => "outage",
            FaultKind::Reboot => "reboot",
            FaultKind::LinkOutage => "link-outage",
        }
    }

    /// Parses a wire name produced by [`FaultKind::as_str`].
    pub fn parse(s: &str) -> Option<FaultKind> {
        Some(match s {
            "outage" => FaultKind::Outage,
            "reboot" => FaultKind::Reboot,
            "link-outage" => FaultKind::LinkOutage,
            _ => return None,
        })
    }
}

/// One recorded flight-recorder event.
///
/// `seq` is a recorder-global monotone counter: sorting any merged event set
/// by `seq` restores the exact order in which the (deterministic) simulation
/// emitted them, which is what makes same-seed traces byte-identical.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Event {
    /// Global emission order.
    pub seq: u64,
    /// Absolute slot number the event occurred in.
    pub asn: u64,
    /// Node the event is attributed to ([`NETWORK_NODE`] for run-scoped
    /// events).
    pub node: u16,
    /// What happened.
    pub kind: EventKind,
}

/// Everything the flight recorder can log. See ISSUE/DESIGN §4.8 for the
/// taxonomy rationale.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum EventKind {
    /// Slot boundary marker (one per simulated slot, on [`NETWORK_NODE`]).
    SlotStart,
    /// A frame was committed to the air by this node.
    Tx {
        /// Unicast destination (`None` = broadcast).
        dst: Option<u16>,
        /// Traffic class.
        class: TrafficClass,
        /// Physical 802.15.4 channel index (0–15).
        channel: u8,
        /// Whether the slot was a shared (CSMA/CA) cell.
        contention: bool,
        /// Data-packet identity, when the frame carries application data.
        packet: Option<PacketId>,
    },
    /// A frame from `src` was decoded by this node.
    Rx {
        /// Transmitting node.
        src: u16,
        /// Traffic class.
        class: TrafficClass,
        /// Data-packet identity, when the frame carries application data.
        packet: Option<PacketId>,
    },
    /// This node's unicast to `dst` was acknowledged.
    Ack {
        /// Destination that acknowledged.
        dst: u16,
        /// Data-packet identity, if any.
        packet: Option<PacketId>,
    },
    /// This node's unicast to `dst` went unacknowledged.
    Nack {
        /// Intended destination.
        dst: u16,
        /// Diagnosed cause.
        reason: DropReason,
        /// Data-packet identity, if any.
        packet: Option<PacketId>,
    },
    /// CSMA/CA found the channel busy; the node deferred.
    CcaDefer,
    /// A packet entered this node's transmit queue.
    QueueEnq {
        /// The packet.
        packet: PacketId,
        /// Queue depth after the enqueue.
        depth: u32,
    },
    /// A packet left this node's transmit queue (forwarded successfully).
    QueueDeq {
        /// The packet.
        packet: PacketId,
        /// Queue depth after the dequeue.
        depth: u32,
    },
    /// The bounded queue rejected a packet.
    QueueOverflow {
        /// The rejected packet.
        packet: PacketId,
    },
    /// A packet was dropped after exhausting its retransmission budget.
    RetryDrop {
        /// The dropped packet.
        packet: PacketId,
    },
    /// An application packet was generated at its origin.
    Generated {
        /// The new packet.
        packet: PacketId,
    },
    /// A packet reached an access point.
    Delivered {
        /// The delivered packet.
        packet: PacketId,
        /// End-to-end latency in slots.
        latency_slots: u64,
    },
    /// The routing layer changed this node's parent set.
    ParentSwitch {
        /// Previous primary parent.
        old_best: Option<u16>,
        /// New primary parent.
        new_best: Option<u16>,
        /// Previous backup parent.
        old_second: Option<u16>,
        /// New backup parent.
        new_second: Option<u16>,
    },
    /// This node's routing rank changed.
    RankChange {
        /// Previous rank (`None` before first join).
        old: Option<u16>,
        /// New rank.
        new: u16,
    },
    /// A dedicated receive cell was provisioned for `child`.
    CellAlloc {
        /// Slot-in-slotframe of the cell.
        slot: u32,
        /// Channel offset of the cell.
        offset: u8,
        /// The transmitting child.
        child: u16,
    },
    /// A dedicated receive cell for `child` was released.
    CellRelease {
        /// Slot-in-slotframe of the cell.
        slot: u32,
        /// Channel offset of the cell.
        offset: u8,
        /// The departing child.
        child: u16,
    },
    /// A scripted fault hit this node (or link endpoint).
    FaultInject {
        /// Fault category.
        fault: FaultKind,
        /// Other endpoint for link outages.
        peer: Option<u16>,
    },
    /// A scripted fault cleared.
    FaultClear {
        /// Fault category.
        fault: FaultKind,
        /// Other endpoint for link outages.
        peer: Option<u16>,
    },
    /// The node cold-rebooted and its stack was factory-reset.
    NodeReset,
    /// The node's TSCH clock slipped past the guard time.
    ClockDesync,
    /// The runtime invariant auditor flagged a violation.
    AuditViolation {
        /// Invariant kind (display name of `digs::audit::InvariantKind`).
        kind: String,
        /// Human-readable detail.
        detail: String,
    },
    /// The telemetry health monitor raised an alert at an epoch boundary.
    HealthAlert {
        /// Rule wire name (e.g. `pdr-collapse`, `churn-storm`).
        rule: String,
        /// Human-readable detail.
        detail: String,
    },
    /// An adaptive jammer changed phase (run-scoped, on [`NETWORK_NODE`]):
    /// it either finished a learning window and started jamming its chosen
    /// target cells, or abandoned a stale target set and went back to
    /// learning.
    AttackPhase {
        /// `true` when entering the jamming phase, `false` when the
        /// attacker falls back to passive learning.
        jamming: bool,
        /// Number of (slot, channel-offset) target cells now jammed
        /// (0 while learning).
        targets: u32,
        /// Hit-rate of the evaluation window that triggered the
        /// transition, in basis points (0–10000).
        hit_rate_bp: u32,
    },
    /// The schedule-randomization defense rolled over to a new epoch
    /// permutation (run-scoped, on [`NETWORK_NODE`]).
    DefenseEpoch {
        /// Randomization epoch index (ASN / application slotframe length).
        epoch: u64,
    },
}

impl EventKind {
    /// The data-packet identity this event refers to, if any.
    pub fn packet(&self) -> Option<PacketId> {
        match self {
            EventKind::Tx { packet, .. }
            | EventKind::Rx { packet, .. }
            | EventKind::Ack { packet, .. }
            | EventKind::Nack { packet, .. } => *packet,
            EventKind::QueueEnq { packet, .. }
            | EventKind::QueueDeq { packet, .. }
            | EventKind::QueueOverflow { packet }
            | EventKind::RetryDrop { packet }
            | EventKind::Generated { packet }
            | EventKind::Delivered { packet, .. } => Some(*packet),
            _ => None,
        }
    }

    /// Stable wire name of the variant (the `"ev"` JSONL field).
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::SlotStart => "slot",
            EventKind::Tx { .. } => "tx",
            EventKind::Rx { .. } => "rx",
            EventKind::Ack { .. } => "ack",
            EventKind::Nack { .. } => "nack",
            EventKind::CcaDefer => "cca-defer",
            EventKind::QueueEnq { .. } => "q-enq",
            EventKind::QueueDeq { .. } => "q-deq",
            EventKind::QueueOverflow { .. } => "q-overflow",
            EventKind::RetryDrop { .. } => "retry-drop",
            EventKind::Generated { .. } => "generated",
            EventKind::Delivered { .. } => "delivered",
            EventKind::ParentSwitch { .. } => "parent-switch",
            EventKind::RankChange { .. } => "rank-change",
            EventKind::CellAlloc { .. } => "cell-alloc",
            EventKind::CellRelease { .. } => "cell-release",
            EventKind::FaultInject { .. } => "fault-inject",
            EventKind::FaultClear { .. } => "fault-clear",
            EventKind::NodeReset => "node-reset",
            EventKind::ClockDesync => "clock-desync",
            EventKind::AuditViolation { .. } => "audit-violation",
            EventKind::HealthAlert { .. } => "health-alert",
            EventKind::AttackPhase { .. } => "attack-phase",
            EventKind::DefenseEpoch { .. } => "defense-epoch",
        }
    }
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.node == NETWORK_NODE {
            write!(f, "[{:>8}] net {}", self.asn, self.kind.name())?;
        } else {
            write!(f, "[{:>8}] #{} {}", self.asn, self.node, self.kind.name())?;
        }
        match &self.kind {
            EventKind::Tx { dst, class, channel, contention, packet } => {
                match dst {
                    Some(d) => write!(f, " →#{d}")?,
                    None => write!(f, " →*")?,
                }
                write!(f, " {} ch{}", class.as_str(), channel)?;
                if *contention {
                    write!(f, " shared")?;
                }
                if let Some(p) = packet {
                    write!(f, " {p}")?;
                }
            }
            EventKind::Rx { src, class, packet } => {
                write!(f, " ←#{src} {}", class.as_str())?;
                if let Some(p) = packet {
                    write!(f, " {p}")?;
                }
            }
            EventKind::Ack { dst, packet } => {
                write!(f, " by #{dst}")?;
                if let Some(p) = packet {
                    write!(f, " {p}")?;
                }
            }
            EventKind::Nack { dst, reason, packet } => {
                write!(f, " by #{dst} ({})", reason.as_str())?;
                if let Some(p) = packet {
                    write!(f, " {p}")?;
                }
            }
            EventKind::QueueEnq { packet, depth } | EventKind::QueueDeq { packet, depth } => {
                write!(f, " {packet} depth={depth}")?;
            }
            EventKind::QueueOverflow { packet }
            | EventKind::RetryDrop { packet }
            | EventKind::Generated { packet } => write!(f, " {packet}")?,
            EventKind::Delivered { packet, latency_slots } => {
                write!(f, " {packet} after {latency_slots} slots")?;
            }
            EventKind::ParentSwitch { old_best, new_best, old_second, new_second } => {
                let opt = |v: &Option<u16>| match v {
                    Some(n) => format!("#{n}"),
                    None => "-".into(),
                };
                write!(
                    f,
                    " best {}→{} second {}→{}",
                    opt(old_best),
                    opt(new_best),
                    opt(old_second),
                    opt(new_second)
                )?;
            }
            EventKind::RankChange { old, new } => match old {
                Some(o) => write!(f, " {o}→{new}")?,
                None => write!(f, " -→{new}")?,
            },
            EventKind::CellAlloc { slot, offset, child }
            | EventKind::CellRelease { slot, offset, child } => {
                write!(f, " slot={slot} off={offset} child=#{child}")?;
            }
            EventKind::FaultInject { fault, peer } | EventKind::FaultClear { fault, peer } => {
                write!(f, " {}", fault.as_str())?;
                if let Some(p) = peer {
                    write!(f, " peer=#{p}")?;
                }
            }
            EventKind::AuditViolation { kind, detail } => write!(f, " {kind}: {detail}")?,
            EventKind::HealthAlert { rule, detail } => write!(f, " {rule}: {detail}")?,
            EventKind::AttackPhase { jamming, targets, hit_rate_bp } => {
                let phase = if *jamming { "jamming" } else { "learning" };
                write!(f, " {phase} targets={targets} hit_rate={hit_rate_bp}bp")?;
            }
            EventKind::DefenseEpoch { epoch } => write!(f, " epoch={epoch}")?,
            _ => {}
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_names_round_trip() {
        for c in [
            TrafficClass::Beacon,
            TrafficClass::Routing,
            TrafficClass::Data,
            TrafficClass::Management,
        ] {
            assert_eq!(TrafficClass::parse(c.as_str()), Some(c));
        }
        for r in [
            DropReason::QueueOverflow,
            DropReason::RetryBudget,
            DropReason::NoListener,
            DropReason::FrameLost,
            DropReason::AckLost,
        ] {
            assert_eq!(DropReason::parse(r.as_str()), Some(r));
        }
        for k in [FaultKind::Outage, FaultKind::Reboot, FaultKind::LinkOutage] {
            assert_eq!(FaultKind::parse(k.as_str()), Some(k));
        }
        assert_eq!(TrafficClass::parse("bogus"), None);
    }

    #[test]
    fn packet_accessor_covers_data_events() {
        let p = PacketId { flow: 1, seq: 2, origin: 3 };
        assert_eq!(EventKind::Generated { packet: p }.packet(), Some(p));
        assert_eq!(EventKind::SlotStart.packet(), None);
        assert_eq!(
            EventKind::Tx {
                dst: Some(4),
                class: TrafficClass::Data,
                channel: 0,
                contention: false,
                packet: Some(p),
            }
            .packet(),
            Some(p)
        );
    }

    #[test]
    fn display_is_compact() {
        let e = Event {
            seq: 0,
            asn: 120,
            node: 7,
            kind: EventKind::Nack {
                dst: 3,
                reason: DropReason::FrameLost,
                packet: Some(PacketId { flow: 0, seq: 9, origin: 7 }),
            },
        };
        let s = e.to_string();
        assert!(s.contains("#7"), "{s}");
        assert!(s.contains("frame-lost"), "{s}");
        assert!(s.contains("flow0/9@#7"), "{s}");
    }
}
