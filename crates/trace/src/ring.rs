//! A fixed-capacity ring buffer that keeps the newest items.
//!
//! The flight recorder must run for hours without growing, so every node's
//! event stream lives in one of these: pushes past capacity overwrite the
//! oldest entry. Iteration yields items oldest-first.

/// Bounded FIFO that overwrites its oldest element when full.
#[derive(Debug, Clone, PartialEq)]
pub struct RingBuffer<T> {
    cap: usize,
    /// Index of the oldest element once the buffer has wrapped.
    head: usize,
    items: Vec<T>,
}

impl<T> RingBuffer<T> {
    /// Creates a buffer holding at most `cap` items. A capacity of zero is
    /// legal and stores nothing.
    pub fn new(cap: usize) -> RingBuffer<T> {
        RingBuffer { cap, head: 0, items: Vec::new() }
    }

    /// Maximum number of retained items.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Number of items currently retained.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the buffer holds nothing.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Appends an item, evicting the oldest if the buffer is full.
    pub fn push(&mut self, item: T) {
        if self.cap == 0 {
            return;
        }
        if self.items.len() < self.cap {
            self.items.push(item);
        } else {
            self.items[self.head] = item;
            self.head = (self.head + 1) % self.cap;
        }
    }

    /// Iterates oldest-first.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.items[self.head..].iter().chain(self.items[..self.head].iter())
    }

    /// Drains into a `Vec`, oldest-first.
    pub fn to_vec(&self) -> Vec<T>
    where
        T: Clone,
    {
        self.iter().cloned().collect()
    }

    /// Removes all items (capacity is kept).
    pub fn clear(&mut self) {
        self.items.clear();
        self.head = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fills_then_wraps_keeping_newest() {
        let mut r = RingBuffer::new(3);
        for i in 0..5 {
            r.push(i);
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.to_vec(), vec![2, 3, 4]);
        r.push(5);
        assert_eq!(r.to_vec(), vec![3, 4, 5]);
    }

    #[test]
    fn under_capacity_preserves_order() {
        let mut r = RingBuffer::new(10);
        r.push('a');
        r.push('b');
        assert_eq!(r.to_vec(), vec!['a', 'b']);
        assert_eq!(r.len(), 2);
        assert!(!r.is_empty());
    }

    #[test]
    fn capacity_zero_stores_nothing() {
        let mut r = RingBuffer::new(0);
        r.push(1);
        r.push(2);
        assert!(r.is_empty());
        assert_eq!(r.len(), 0);
        assert_eq!(r.to_vec(), Vec::<i32>::new());
    }

    #[test]
    fn capacity_one_keeps_last() {
        let mut r = RingBuffer::new(1);
        for i in 0..100 {
            r.push(i);
        }
        assert_eq!(r.to_vec(), vec![99]);
    }

    #[test]
    fn wrap_exactly_at_boundary() {
        let mut r = RingBuffer::new(4);
        for i in 0..4 {
            r.push(i);
        }
        assert_eq!(r.to_vec(), vec![0, 1, 2, 3]);
        for i in 4..8 {
            r.push(i);
        }
        assert_eq!(r.to_vec(), vec![4, 5, 6, 7]);
    }

    #[test]
    fn clear_resets_but_keeps_capacity() {
        let mut r = RingBuffer::new(2);
        r.push(1);
        r.push(2);
        r.push(3);
        r.clear();
        assert!(r.is_empty());
        assert_eq!(r.capacity(), 2);
        r.push(9);
        assert_eq!(r.to_vec(), vec![9]);
    }
}
