//! Deterministic JSONL (one JSON object per line) export and import.
//!
//! The encoder is hand-rolled with a fixed field order, so the same event
//! stream always serializes to the same bytes — the property the
//! determinism acceptance test pins down. The decoder is a tiny recursive
//! JSON reader sufficient for the documents this module emits (objects,
//! strings, unsigned integers, booleans).

use crate::event::{DropReason, Event, EventKind, FaultKind, PacketId, TrafficClass};
use core::fmt;
use std::collections::BTreeMap;

/// Error from [`from_jsonl`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line the error occurred on.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Serializes events to JSONL, one event per line in input order.
pub fn to_jsonl(events: &[Event]) -> String {
    let mut out = String::with_capacity(events.len() * 80);
    for event in events {
        write_event(&mut out, event);
        out.push('\n');
    }
    out
}

/// Parses a JSONL document produced by [`to_jsonl`]. Blank lines are
/// ignored.
pub fn from_jsonl(text: &str) -> Result<Vec<Event>, ParseError> {
    let mut events = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let value = parse_json(line).map_err(|message| ParseError { line: i + 1, message })?;
        events.push(decode_event(&value).map_err(|message| ParseError { line: i + 1, message })?);
    }
    Ok(events)
}

// ---------------------------------------------------------------- encoding

fn write_event(out: &mut String, event: &Event) {
    use std::fmt::Write;
    let _ = write!(
        out,
        "{{\"seq\":{},\"asn\":{},\"node\":{},\"ev\":\"{}\"",
        event.seq,
        event.asn,
        event.node,
        event.kind.name()
    );
    match &event.kind {
        EventKind::SlotStart
        | EventKind::CcaDefer
        | EventKind::NodeReset
        | EventKind::ClockDesync => {}
        EventKind::Tx { dst, class, channel, contention, packet } => {
            if let Some(d) = dst {
                let _ = write!(out, ",\"dst\":{d}");
            }
            let _ = write!(out, ",\"class\":\"{}\",\"channel\":{channel}", class.as_str());
            let _ = write!(out, ",\"contention\":{contention}");
            write_opt_packet(out, packet);
        }
        EventKind::Rx { src, class, packet } => {
            let _ = write!(out, ",\"src\":{src},\"class\":\"{}\"", class.as_str());
            write_opt_packet(out, packet);
        }
        EventKind::Ack { dst, packet } => {
            let _ = write!(out, ",\"dst\":{dst}");
            write_opt_packet(out, packet);
        }
        EventKind::Nack { dst, reason, packet } => {
            let _ = write!(out, ",\"dst\":{dst},\"reason\":\"{}\"", reason.as_str());
            write_opt_packet(out, packet);
        }
        EventKind::QueueEnq { packet, depth } | EventKind::QueueDeq { packet, depth } => {
            write_packet(out, packet);
            let _ = write!(out, ",\"depth\":{depth}");
        }
        EventKind::QueueOverflow { packet }
        | EventKind::RetryDrop { packet }
        | EventKind::Generated { packet } => write_packet(out, packet),
        EventKind::Delivered { packet, latency_slots } => {
            write_packet(out, packet);
            let _ = write!(out, ",\"latency\":{latency_slots}");
        }
        EventKind::ParentSwitch { old_best, new_best, old_second, new_second } => {
            write_opt_u16(out, "old_best", old_best);
            write_opt_u16(out, "new_best", new_best);
            write_opt_u16(out, "old_second", old_second);
            write_opt_u16(out, "new_second", new_second);
        }
        EventKind::RankChange { old, new } => {
            write_opt_u16(out, "old", old);
            let _ = write!(out, ",\"new\":{new}");
        }
        EventKind::CellAlloc { slot, offset, child }
        | EventKind::CellRelease { slot, offset, child } => {
            let _ = write!(out, ",\"slot\":{slot},\"offset\":{offset},\"child\":{child}");
        }
        EventKind::FaultInject { fault, peer } | EventKind::FaultClear { fault, peer } => {
            let _ = write!(out, ",\"fault\":\"{}\"", fault.as_str());
            write_opt_u16(out, "peer", peer);
        }
        EventKind::AuditViolation { kind, detail } => {
            out.push_str(",\"kind\":");
            write_json_string(out, kind);
            out.push_str(",\"detail\":");
            write_json_string(out, detail);
        }
        EventKind::HealthAlert { rule, detail } => {
            out.push_str(",\"rule\":");
            write_json_string(out, rule);
            out.push_str(",\"detail\":");
            write_json_string(out, detail);
        }
        EventKind::AttackPhase { jamming, targets, hit_rate_bp } => {
            let _ = write!(
                out,
                ",\"jamming\":{jamming},\"targets\":{targets},\"hit_rate_bp\":{hit_rate_bp}"
            );
        }
        EventKind::DefenseEpoch { epoch } => {
            let _ = write!(out, ",\"epoch\":{epoch}");
        }
    }
    out.push('}');
}

fn write_opt_u16(out: &mut String, key: &str, value: &Option<u16>) {
    use std::fmt::Write;
    if let Some(v) = value {
        let _ = write!(out, ",\"{key}\":{v}");
    }
}

fn write_packet(out: &mut String, p: &PacketId) {
    use std::fmt::Write;
    let _ = write!(
        out,
        ",\"packet\":{{\"flow\":{},\"seq\":{},\"origin\":{}}}",
        p.flow, p.seq, p.origin
    );
}

fn write_opt_packet(out: &mut String, p: &Option<PacketId>) {
    if let Some(p) = p {
        write_packet(out, p);
    }
}

fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use std::fmt::Write;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------- decoding

/// Minimal JSON value: only what [`to_jsonl`] emits.
#[derive(Debug, Clone, PartialEq)]
enum Value {
    Object(BTreeMap<String, Value>),
    String(String),
    Number(u64),
    Bool(bool),
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        match self.peek() {
            Some(c) if c == b => {
                self.pos += 1;
                Ok(())
            }
            other => Err(format!("expected '{}', found {:?}", b as char, other.map(|c| c as char))),
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(c) if c.is_ascii_digit() => self.number(),
            other => Err(format!("unexpected token {:?}", other.map(|c| c as char))),
        }
    }

    fn literal(&mut self, text: &str, value: Value) -> Result<Value, String> {
        self.skip_ws();
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(format!("bad literal, expected {text}"))
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            let key = self.string()?;
            self.expect(b':')?;
            let value = self.value()?;
            map.insert(key, value);
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                other => {
                    return Err(format!(
                        "expected ',' or '}}' in object, found {:?}",
                        other.map(|c| c as char)
                    ))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let Some(&b) = self.bytes.get(self.pos) else {
                return Err("unterminated string".into());
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(s),
                b'\\' => {
                    let Some(&esc) = self.bytes.get(self.pos) else {
                        return Err("unterminated escape".into());
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or("truncated \\u escape")?;
                            self.pos += 4;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                                16,
                            )
                            .map_err(|e| e.to_string())?;
                            s.push(char::from_u32(code).ok_or("bad \\u code point")?);
                        }
                        other => return Err(format!("bad escape '\\{}'", other as char)),
                    }
                }
                other => {
                    // Re-assemble multi-byte UTF-8 sequences.
                    if other < 0x80 {
                        s.push(other as char);
                    } else {
                        let start = self.pos - 1;
                        let width = match other {
                            0xC0..=0xDF => 2,
                            0xE0..=0xEF => 3,
                            _ => 4,
                        };
                        let chunk =
                            self.bytes.get(start..start + width).ok_or("truncated UTF-8")?;
                        s.push_str(std::str::from_utf8(chunk).map_err(|e| e.to_string())?);
                        self.pos = start + width;
                    }
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        self.skip_ws();
        let start = self.pos;
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_digit() {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| e.to_string())?;
        text.parse::<u64>().map(Value::Number).map_err(|e| e.to_string())
    }
}

fn parse_json(line: &str) -> Result<Value, String> {
    let mut reader = Reader { bytes: line.as_bytes(), pos: 0 };
    let value = reader.value()?;
    reader.skip_ws();
    if reader.pos != reader.bytes.len() {
        return Err("trailing characters after JSON value".into());
    }
    Ok(value)
}

impl Value {
    fn field<'a>(&'a self, key: &str) -> Result<&'a Value, String> {
        match self {
            Value::Object(map) => map.get(key).ok_or_else(|| format!("missing field \"{key}\"")),
            _ => Err("not an object".into()),
        }
    }

    fn opt_field<'a>(&'a self, key: &str) -> Option<&'a Value> {
        match self {
            Value::Object(map) => map.get(key),
            _ => None,
        }
    }

    fn as_u64(&self) -> Result<u64, String> {
        match self {
            Value::Number(n) => Ok(*n),
            _ => Err("expected number".into()),
        }
    }

    fn as_str(&self) -> Result<&str, String> {
        match self {
            Value::String(s) => Ok(s),
            _ => Err("expected string".into()),
        }
    }

    fn as_bool(&self) -> Result<bool, String> {
        match self {
            Value::Bool(b) => Ok(*b),
            _ => Err("expected bool".into()),
        }
    }
}

fn num_u16(value: &Value, key: &str) -> Result<u16, String> {
    let n = value.field(key)?.as_u64()?;
    u16::try_from(n).map_err(|_| format!("\"{key}\" out of u16 range"))
}

fn opt_u16(value: &Value, key: &str) -> Result<Option<u16>, String> {
    match value.opt_field(key) {
        None => Ok(None),
        Some(v) => {
            let n = v.as_u64()?;
            u16::try_from(n).map(Some).map_err(|_| format!("\"{key}\" out of u16 range"))
        }
    }
}

fn packet_field(value: &Value) -> Result<PacketId, String> {
    let p = value.field("packet")?;
    Ok(PacketId {
        flow: num_u16(p, "flow")?,
        seq: u32::try_from(p.field("seq")?.as_u64()?).map_err(|_| "packet seq out of range")?,
        origin: num_u16(p, "origin")?,
    })
}

fn opt_packet_field(value: &Value) -> Result<Option<PacketId>, String> {
    if value.opt_field("packet").is_none() {
        return Ok(None);
    }
    packet_field(value).map(Some)
}

fn class_field(value: &Value) -> Result<TrafficClass, String> {
    let s = value.field("class")?.as_str()?;
    TrafficClass::parse(s).ok_or_else(|| format!("unknown traffic class \"{s}\""))
}

fn decode_event(value: &Value) -> Result<Event, String> {
    let seq = value.field("seq")?.as_u64()?;
    let asn = value.field("asn")?.as_u64()?;
    let node = num_u16(value, "node")?;
    let ev = value.field("ev")?.as_str()?;
    let kind = match ev {
        "slot" => EventKind::SlotStart,
        "cca-defer" => EventKind::CcaDefer,
        "node-reset" => EventKind::NodeReset,
        "clock-desync" => EventKind::ClockDesync,
        "tx" => EventKind::Tx {
            dst: opt_u16(value, "dst")?,
            class: class_field(value)?,
            channel: u8::try_from(value.field("channel")?.as_u64()?)
                .map_err(|_| "channel out of range")?,
            contention: value.field("contention")?.as_bool()?,
            packet: opt_packet_field(value)?,
        },
        "rx" => EventKind::Rx {
            src: num_u16(value, "src")?,
            class: class_field(value)?,
            packet: opt_packet_field(value)?,
        },
        "ack" => EventKind::Ack { dst: num_u16(value, "dst")?, packet: opt_packet_field(value)? },
        "nack" => {
            let s = value.field("reason")?.as_str()?;
            EventKind::Nack {
                dst: num_u16(value, "dst")?,
                reason: DropReason::parse(s).ok_or_else(|| format!("unknown reason \"{s}\""))?,
                packet: opt_packet_field(value)?,
            }
        }
        "q-enq" => EventKind::QueueEnq {
            packet: packet_field(value)?,
            depth: u32::try_from(value.field("depth")?.as_u64()?)
                .map_err(|_| "depth out of range")?,
        },
        "q-deq" => EventKind::QueueDeq {
            packet: packet_field(value)?,
            depth: u32::try_from(value.field("depth")?.as_u64()?)
                .map_err(|_| "depth out of range")?,
        },
        "q-overflow" => EventKind::QueueOverflow { packet: packet_field(value)? },
        "retry-drop" => EventKind::RetryDrop { packet: packet_field(value)? },
        "generated" => EventKind::Generated { packet: packet_field(value)? },
        "delivered" => EventKind::Delivered {
            packet: packet_field(value)?,
            latency_slots: value.field("latency")?.as_u64()?,
        },
        "parent-switch" => EventKind::ParentSwitch {
            old_best: opt_u16(value, "old_best")?,
            new_best: opt_u16(value, "new_best")?,
            old_second: opt_u16(value, "old_second")?,
            new_second: opt_u16(value, "new_second")?,
        },
        "rank-change" => {
            EventKind::RankChange { old: opt_u16(value, "old")?, new: num_u16(value, "new")? }
        }
        "cell-alloc" | "cell-release" => {
            let slot =
                u32::try_from(value.field("slot")?.as_u64()?).map_err(|_| "slot out of range")?;
            let offset = u8::try_from(value.field("offset")?.as_u64()?)
                .map_err(|_| "offset out of range")?;
            let child = num_u16(value, "child")?;
            if ev == "cell-alloc" {
                EventKind::CellAlloc { slot, offset, child }
            } else {
                EventKind::CellRelease { slot, offset, child }
            }
        }
        "fault-inject" | "fault-clear" => {
            let s = value.field("fault")?.as_str()?;
            let fault = FaultKind::parse(s).ok_or_else(|| format!("unknown fault kind \"{s}\""))?;
            let peer = opt_u16(value, "peer")?;
            if ev == "fault-inject" {
                EventKind::FaultInject { fault, peer }
            } else {
                EventKind::FaultClear { fault, peer }
            }
        }
        "audit-violation" => EventKind::AuditViolation {
            kind: value.field("kind")?.as_str()?.to_owned(),
            detail: value.field("detail")?.as_str()?.to_owned(),
        },
        "health-alert" => EventKind::HealthAlert {
            rule: value.field("rule")?.as_str()?.to_owned(),
            detail: value.field("detail")?.as_str()?.to_owned(),
        },
        "attack-phase" => EventKind::AttackPhase {
            jamming: value.field("jamming")?.as_bool()?,
            targets: u32::try_from(value.field("targets")?.as_u64()?)
                .map_err(|_| "targets out of range")?,
            hit_rate_bp: u32::try_from(value.field("hit_rate_bp")?.as_u64()?)
                .map_err(|_| "hit_rate_bp out of range")?,
        },
        "defense-epoch" => EventKind::DefenseEpoch { epoch: value.field("epoch")?.as_u64()? },
        other => return Err(format!("unknown event name \"{other}\"")),
    };
    Ok(Event { seq, asn, node, kind })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_events() -> Vec<Event> {
        let p = PacketId { flow: 2, seq: 17, origin: 9 };
        vec![
            Event {
                seq: 0,
                asn: 100,
                node: crate::event::NETWORK_NODE,
                kind: EventKind::SlotStart,
            },
            Event { seq: 1, asn: 100, node: 9, kind: EventKind::Generated { packet: p } },
            Event { seq: 2, asn: 100, node: 9, kind: EventKind::QueueEnq { packet: p, depth: 1 } },
            Event {
                seq: 3,
                asn: 104,
                node: 9,
                kind: EventKind::Tx {
                    dst: Some(4),
                    class: TrafficClass::Data,
                    channel: 11,
                    contention: false,
                    packet: Some(p),
                },
            },
            Event {
                seq: 4,
                asn: 104,
                node: 9,
                kind: EventKind::Nack { dst: 4, reason: DropReason::FrameLost, packet: Some(p) },
            },
            Event { seq: 5, asn: 105, node: 9, kind: EventKind::CcaDefer },
            Event {
                seq: 6,
                asn: 110,
                node: 4,
                kind: EventKind::Rx { src: 9, class: TrafficClass::Data, packet: Some(p) },
            },
            Event { seq: 7, asn: 110, node: 9, kind: EventKind::Ack { dst: 4, packet: Some(p) } },
            Event { seq: 8, asn: 110, node: 9, kind: EventKind::QueueDeq { packet: p, depth: 0 } },
            Event {
                seq: 9,
                asn: 111,
                node: 7,
                kind: EventKind::ParentSwitch {
                    old_best: Some(4),
                    new_best: Some(5),
                    old_second: None,
                    new_second: Some(4),
                },
            },
            Event { seq: 10, asn: 111, node: 7, kind: EventKind::RankChange { old: None, new: 3 } },
            Event {
                seq: 11,
                asn: 112,
                node: 5,
                kind: EventKind::CellAlloc { slot: 31, offset: 2, child: 7 },
            },
            Event {
                seq: 12,
                asn: 113,
                node: 5,
                kind: EventKind::CellRelease { slot: 31, offset: 2, child: 7 },
            },
            Event {
                seq: 13,
                asn: 120,
                node: 6,
                kind: EventKind::FaultInject { fault: FaultKind::LinkOutage, peer: Some(2) },
            },
            Event {
                seq: 14,
                asn: 140,
                node: 6,
                kind: EventKind::FaultClear { fault: FaultKind::LinkOutage, peer: Some(2) },
            },
            Event { seq: 15, asn: 141, node: 6, kind: EventKind::NodeReset },
            Event { seq: 16, asn: 142, node: 6, kind: EventKind::ClockDesync },
            Event {
                seq: 17,
                asn: 150,
                node: 0,
                kind: EventKind::Delivered { packet: p, latency_slots: 50 },
            },
            Event { seq: 18, asn: 151, node: 9, kind: EventKind::QueueOverflow { packet: p } },
            Event { seq: 19, asn: 152, node: 9, kind: EventKind::RetryDrop { packet: p } },
            Event {
                seq: 20,
                asn: 160,
                node: crate::event::NETWORK_NODE,
                kind: EventKind::AuditViolation {
                    kind: "routing-loop".into(),
                    detail: "cycle #1 → #2 → \"#1\"\nwith newline\ttab".into(),
                },
            },
            Event {
                seq: 21,
                asn: 170,
                node: crate::event::NETWORK_NODE,
                kind: EventKind::HealthAlert {
                    rule: "pdr-collapse".into(),
                    detail: "flow 0 epoch PDR 0.42 < 0.70".into(),
                },
            },
            Event {
                seq: 22,
                asn: 180,
                node: crate::event::NETWORK_NODE,
                kind: EventKind::AttackPhase { jamming: true, targets: 12, hit_rate_bp: 0 },
            },
            Event {
                seq: 23,
                asn: 185,
                node: crate::event::NETWORK_NODE,
                kind: EventKind::AttackPhase { jamming: false, targets: 0, hit_rate_bp: 450 },
            },
            Event {
                seq: 24,
                asn: 190,
                node: crate::event::NETWORK_NODE,
                kind: EventKind::DefenseEpoch { epoch: 3 },
            },
        ]
    }

    #[test]
    fn round_trip_preserves_every_variant() {
        let events = sample_events();
        let text = to_jsonl(&events);
        let back = from_jsonl(&text).expect("parse back");
        assert_eq!(back, events);
    }

    #[test]
    fn serialization_is_deterministic() {
        let events = sample_events();
        assert_eq!(to_jsonl(&events), to_jsonl(&events));
    }

    #[test]
    fn one_line_per_event() {
        let events = sample_events();
        let text = to_jsonl(&events);
        assert_eq!(text.lines().count(), events.len());
        for line in text.lines() {
            assert!(line.starts_with('{') && line.ends_with('}'), "bad line: {line}");
        }
    }

    #[test]
    fn blank_lines_are_ignored() {
        let events = sample_events();
        let mut text = to_jsonl(&events);
        text.push('\n');
        text.insert(0, '\n');
        assert_eq!(from_jsonl(&text).unwrap().len(), events.len());
    }

    #[test]
    fn garbage_reports_line_number() {
        let err =
            from_jsonl("{\"seq\":0,\"asn\":0,\"node\":1,\"ev\":\"slot\"}\nnot json").unwrap_err();
        assert_eq!(err.line, 2);
    }

    #[test]
    fn unknown_event_name_is_an_error() {
        let err = from_jsonl("{\"seq\":0,\"asn\":0,\"node\":1,\"ev\":\"warp\"}").unwrap_err();
        assert!(err.message.contains("warp"), "{err}");
    }

    #[test]
    fn extreme_values_round_trip() {
        let p = PacketId { flow: u16::MAX, seq: u32::MAX, origin: u16::MAX };
        let events = vec![
            Event {
                seq: u64::MAX,
                asn: u64::MAX,
                node: u16::MAX,
                kind: EventKind::Delivered { packet: p, latency_slots: u64::MAX },
            },
            Event {
                seq: 0,
                asn: 0,
                node: 0,
                kind: EventKind::Tx {
                    dst: Some(u16::MAX),
                    class: TrafficClass::Data,
                    channel: u8::MAX,
                    contention: true,
                    packet: Some(p),
                },
            },
            Event {
                seq: 1,
                asn: 1,
                node: 1,
                kind: EventKind::QueueEnq { packet: p, depth: u32::MAX },
            },
        ];
        let back = from_jsonl(&to_jsonl(&events)).expect("parse back");
        assert_eq!(back, events);
    }

    #[test]
    fn string_escapes_round_trip() {
        let events = vec![Event {
            seq: 0,
            asn: 1,
            node: 2,
            kind: EventKind::AuditViolation {
                kind: "x".into(),
                detail: "quote \" backslash \\ control \u{1} unicode é".into(),
            },
        }];
        let back = from_jsonl(&to_jsonl(&events)).unwrap();
        assert_eq!(back, events);
    }
}
