//! Recorders and the cloneable [`TraceHandle`] threaded through the engine
//! and protocol stacks.
//!
//! Tracing is off by default: a disabled handle is `None` inside, so every
//! instrumentation site pays exactly one null check (`is_on`) per potential
//! event. When enabled, events go into bounded per-node ring buffers
//! ([`RingRecorder`]) with a recorder-global sequence number that fixes the
//! total emission order.

use crate::event::{Event, EventKind, NETWORK_NODE};
use crate::ring::RingBuffer;
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

/// Environment variable selecting the per-node ring capacity. Unset, `0`,
/// or unparsable means tracing stays off.
pub const TRACE_CAP_ENV: &str = "DIGS_TRACE_CAP";

/// Default per-node ring capacity when tracing is enabled programmatically
/// without an explicit capacity.
pub const DEFAULT_CAPACITY: usize = 4096;

/// Sink for flight-recorder events.
pub trait Recorder: std::fmt::Debug + Send {
    /// Stores one event.
    fn record(&mut self, event: Event);

    /// Whether recording is active (call sites may skip event construction
    /// entirely when this is `false`).
    fn enabled(&self) -> bool {
        true
    }
}

/// The always-off recorder: discards everything.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {
    fn record(&mut self, _event: Event) {}

    fn enabled(&self) -> bool {
        false
    }
}

/// Bounded per-node flight recorder.
///
/// Each node (plus the [`NETWORK_NODE`] sentinel) gets its own ring of
/// `cap` events, so one chatty node cannot evict another node's history.
/// The recorder assigns a global monotone `seq` to every event; merging all
/// rings and sorting by `seq` reconstructs the exact emission order.
#[derive(Debug)]
pub struct RingRecorder {
    cap: usize,
    next_seq: u64,
    rings: BTreeMap<u16, RingBuffer<Event>>,
}

impl RingRecorder {
    /// Creates a recorder with the given per-node ring capacity.
    pub fn new(cap: usize) -> RingRecorder {
        RingRecorder { cap, next_seq: 0, rings: BTreeMap::new() }
    }

    /// Per-node ring capacity.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Total events currently retained across all rings.
    pub fn len(&self) -> usize {
        self.rings.values().map(RingBuffer::len).sum()
    }

    /// Whether nothing has been retained.
    pub fn is_empty(&self) -> bool {
        self.rings.values().all(RingBuffer::is_empty)
    }

    /// Events retained for one node, oldest-first.
    pub fn node_events(&self, node: u16) -> Vec<Event> {
        self.rings.get(&node).map(RingBuffer::to_vec).unwrap_or_default()
    }

    /// All retained events merged across rings, in emission (`seq`) order.
    pub fn events(&self) -> Vec<Event> {
        let mut all: Vec<Event> = self.rings.values().flat_map(RingBuffer::iter).cloned().collect();
        all.sort_by_key(|e| e.seq);
        all
    }

    /// Drops all retained events (sequence numbering continues).
    pub fn clear(&mut self) {
        for ring in self.rings.values_mut() {
            ring.clear();
        }
    }
}

impl Recorder for RingRecorder {
    fn record(&mut self, mut event: Event) {
        event.seq = self.next_seq;
        self.next_seq += 1;
        let cap = self.cap;
        self.rings.entry(event.node).or_insert_with(|| RingBuffer::new(cap)).push(event);
    }
}

/// Cheaply cloneable on/off switch around a shared [`RingRecorder`].
///
/// The engine and every protocol stack hold a clone; the harness keeps one
/// to export or analyse the trace afterwards. A disabled handle is a `None`
/// and costs one branch per instrumentation site.
#[derive(Debug, Clone, Default)]
pub struct TraceHandle(Option<Arc<Mutex<RingRecorder>>>);

impl TraceHandle {
    /// The disabled handle (the default).
    pub fn off() -> TraceHandle {
        TraceHandle(None)
    }

    /// An enabled handle with `cap` events retained per node. A capacity of
    /// zero yields a disabled handle.
    pub fn bounded(cap: usize) -> TraceHandle {
        if cap == 0 {
            TraceHandle(None)
        } else {
            TraceHandle(Some(Arc::new(Mutex::new(RingRecorder::new(cap)))))
        }
    }

    /// An enabled handle with the [`DEFAULT_CAPACITY`].
    pub fn on() -> TraceHandle {
        TraceHandle::bounded(DEFAULT_CAPACITY)
    }

    /// Reads [`TRACE_CAP_ENV`]: unset, unparsable, or `0` → off.
    pub fn from_env() -> TraceHandle {
        match std::env::var(TRACE_CAP_ENV) {
            Ok(v) => TraceHandle::bounded(v.trim().parse::<usize>().unwrap_or(0)),
            Err(_) => TraceHandle::off(),
        }
    }

    /// Whether events are being retained.
    #[inline]
    pub fn is_on(&self) -> bool {
        self.0.is_some()
    }

    /// Records one event (seq is assigned by the recorder; pass 0).
    #[inline]
    pub fn record(&self, asn: u64, node: u16, kind: EventKind) {
        if let Some(rec) = &self.0 {
            rec.lock().expect("trace recorder poisoned").record(Event { seq: 0, asn, node, kind });
        }
    }

    /// Records a run-scoped event on the [`NETWORK_NODE`] sentinel ring.
    #[inline]
    pub fn record_network(&self, asn: u64, kind: EventKind) {
        self.record(asn, NETWORK_NODE, kind);
    }

    /// All retained events in emission order (empty when off).
    pub fn events(&self) -> Vec<Event> {
        match &self.0 {
            Some(rec) => rec.lock().expect("trace recorder poisoned").events(),
            None => Vec::new(),
        }
    }

    /// Events retained for one node (empty when off).
    pub fn node_events(&self, node: u16) -> Vec<Event> {
        match &self.0 {
            Some(rec) => rec.lock().expect("trace recorder poisoned").node_events(node),
            None => Vec::new(),
        }
    }

    /// Drops all retained events.
    pub fn clear(&self) {
        if let Some(rec) = &self.0 {
            rec.lock().expect("trace recorder poisoned").clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::PacketId;

    fn ev(kind: EventKind) -> EventKind {
        kind
    }

    #[test]
    fn noop_recorder_is_disabled() {
        let mut r = NoopRecorder;
        assert!(!r.enabled());
        r.record(Event { seq: 0, asn: 0, node: 0, kind: EventKind::SlotStart });
    }

    #[test]
    fn off_handle_records_nothing() {
        let h = TraceHandle::off();
        assert!(!h.is_on());
        h.record(5, 1, EventKind::SlotStart);
        assert!(h.events().is_empty());
    }

    #[test]
    fn bounded_zero_is_off() {
        assert!(!TraceHandle::bounded(0).is_on());
        assert!(TraceHandle::bounded(1).is_on());
    }

    #[test]
    fn seq_fixes_global_order_across_nodes() {
        let h = TraceHandle::bounded(8);
        h.record(0, 2, ev(EventKind::SlotStart));
        h.record(0, 1, ev(EventKind::CcaDefer));
        h.record(1, 2, ev(EventKind::NodeReset));
        let all = h.events();
        assert_eq!(all.len(), 3);
        assert_eq!(all[0].node, 2);
        assert_eq!(all[1].node, 1);
        assert_eq!(all[2].node, 2);
        assert_eq!(all.iter().map(|e| e.seq).collect::<Vec<_>>(), vec![0, 1, 2]);
    }

    #[test]
    fn per_node_rings_isolate_eviction() {
        let h = TraceHandle::bounded(2);
        // Node 1 is chatty; node 2 logs once, early.
        h.record(0, 2, ev(EventKind::NodeReset));
        for asn in 0..10 {
            h.record(asn, 1, ev(EventKind::CcaDefer));
        }
        assert_eq!(h.node_events(2).len(), 1, "quiet node's history survives");
        assert_eq!(h.node_events(1).len(), 2, "chatty node capped at ring size");
    }

    #[test]
    fn clone_shares_the_recorder() {
        let h = TraceHandle::bounded(4);
        let h2 = h.clone();
        h2.record(
            3,
            0,
            ev(EventKind::Generated { packet: PacketId { flow: 0, seq: 1, origin: 0 } }),
        );
        assert_eq!(h.events().len(), 1);
        h.clear();
        assert!(h2.events().is_empty());
    }

    #[test]
    fn zero_capacity_ring_recorder_is_a_no_op() {
        let mut r = RingRecorder::new(0);
        for asn in 0..10 {
            r.record(Event { seq: 0, asn, node: 3, kind: EventKind::SlotStart });
        }
        assert_eq!(r.capacity(), 0);
        assert_eq!(r.len(), 0);
        assert!(r.is_empty());
        assert!(r.events().is_empty());
        assert!(r.node_events(3).is_empty());
    }

    #[test]
    fn wrap_at_exact_capacity_keeps_newest_with_contiguous_seq() {
        let mut r = RingRecorder::new(4);
        // Fill exactly to capacity: nothing evicted, seqs start at 0.
        for asn in 0..4 {
            r.record(Event { seq: 0, asn, node: 1, kind: EventKind::SlotStart });
        }
        assert_eq!(r.len(), 4);
        assert_eq!(r.events().iter().map(|e| e.seq).collect::<Vec<_>>(), vec![0, 1, 2, 3]);
        // One past capacity: the oldest is evicted, the retained window is
        // the newest four with still-contiguous sequence numbers.
        r.record(Event { seq: 0, asn: 4, node: 1, kind: EventKind::SlotStart });
        let events = r.events();
        assert_eq!(events.len(), 4);
        assert_eq!(events.iter().map(|e| e.seq).collect::<Vec<_>>(), vec![1, 2, 3, 4]);
        assert_eq!(events.iter().map(|e| e.asn).collect::<Vec<_>>(), vec![1, 2, 3, 4]);
    }

    #[test]
    fn from_env_parses_capacity() {
        // Env mutation: run the three cases in one test to avoid races with
        // parallel test threads reading the same variable.
        std::env::set_var(TRACE_CAP_ENV, "16");
        assert!(TraceHandle::from_env().is_on());
        std::env::set_var(TRACE_CAP_ENV, "0");
        assert!(!TraceHandle::from_env().is_on());
        std::env::set_var(TRACE_CAP_ENV, "nonsense");
        assert!(!TraceHandle::from_env().is_on());
        std::env::remove_var(TRACE_CAP_ENV);
        assert!(!TraceHandle::from_env().is_on());
    }
}
