//! Property-based tests for the statistics toolkit.

use digs_metrics::stats::percentile_sorted;
use digs_metrics::{BoxplotStats, Cdf, Summary};
use proptest::prelude::*;

fn finite_samples() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-1e6f64..1e6, 1..200)
}

proptest! {
    /// Summary statistics respect basic order relations.
    #[test]
    fn summary_order_relations(samples in finite_samples()) {
        let s = Summary::of(&samples).expect("non-empty finite");
        prop_assert!(s.min <= s.median + 1e-9);
        prop_assert!(s.median <= s.max + 1e-9);
        prop_assert!(s.min <= s.mean + 1e-9);
        prop_assert!(s.mean <= s.max + 1e-9);
        prop_assert!(s.std_dev >= 0.0);
        prop_assert_eq!(s.count, samples.len());
    }

    /// The CDF is monotone: F(x) ≤ F(y) whenever x ≤ y, and its range
    /// is [0, 1].
    #[test]
    fn cdf_is_monotone(samples in finite_samples(), x in -1e6f64..1e6, y in -1e6f64..1e6) {
        let cdf = Cdf::new(samples).expect("ok");
        let (lo, hi) = if x <= y { (x, y) } else { (y, x) };
        let f_lo = cdf.fraction_at_or_below(lo);
        let f_hi = cdf.fraction_at_or_below(hi);
        prop_assert!(f_lo <= f_hi);
        prop_assert!((0.0..=1.0).contains(&f_lo));
        prop_assert!((0.0..=1.0).contains(&f_hi));
    }

    /// `fraction_at_or_below` and `fraction_at_or_above` partition the
    /// sample (up to ties at exactly `x`).
    #[test]
    fn cdf_fractions_partition(samples in finite_samples(), x in -1e6f64..1e6) {
        let cdf = Cdf::new(samples).expect("ok");
        let below = cdf.fraction_at_or_below(x);
        let above = cdf.fraction_at_or_above(x);
        // Ties at x are counted on both sides, so the sum is ≥ 1 − ε only
        // when x is a sample; in general below + strictly-above = 1.
        prop_assert!(below + above >= 1.0 - 1e-9);
    }

    /// Percentiles are monotone in p and bracketed by min/max.
    #[test]
    fn percentiles_monotone(samples in finite_samples(), p in 0.0f64..100.0, q in 0.0f64..100.0) {
        let cdf = Cdf::new(samples).expect("ok");
        let (lo, hi) = if p <= q { (p, q) } else { (q, p) };
        prop_assert!(cdf.percentile(lo) <= cdf.percentile(hi) + 1e-9);
        prop_assert!(cdf.percentile(0.0) >= cdf.min() - 1e-9);
        prop_assert!(cdf.percentile(100.0) <= cdf.max() + 1e-9);
    }

    /// Boxplot quartiles are ordered.
    #[test]
    fn boxplot_quartiles_ordered(samples in finite_samples()) {
        let b = BoxplotStats::of(&samples).expect("ok");
        prop_assert!(b.min <= b.q1 + 1e-9);
        prop_assert!(b.q1 <= b.median + 1e-9);
        prop_assert!(b.median <= b.q3 + 1e-9);
        prop_assert!(b.q3 <= b.max + 1e-9);
        prop_assert!(b.iqr() >= -1e-9);
    }

    /// The CDF series is a valid staircase: monotone in both coordinates,
    /// covering the full range.
    #[test]
    fn cdf_series_staircase(samples in finite_samples(), steps in 1usize..50) {
        let cdf = Cdf::new(samples).expect("ok");
        let series = cdf.series(steps);
        prop_assert_eq!(series.len(), steps + 1);
        for w in series.windows(2) {
            prop_assert!(w[1].0 >= w[0].0 - 1e-9);
            prop_assert!(w[1].1 >= w[0].1 - 1e-12);
        }
        prop_assert!((series[0].0 - cdf.min()).abs() < 1e-9);
        prop_assert!((series[steps].0 - cdf.max()).abs() < 1e-9);
    }

    /// Percentile interpolation agrees with the sorted slice's endpoints.
    #[test]
    fn percentile_endpoints(samples in finite_samples()) {
        let mut sorted = samples.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        prop_assert_eq!(percentile_sorted(&sorted, 0.0), sorted[0]);
        prop_assert_eq!(percentile_sorted(&sorted, 100.0), sorted[sorted.len() - 1]);
    }
}
