//! Deterministic log-bucketed (HDR-style) histograms.
//!
//! Bucket boundaries are fixed by construction: they depend only on the
//! recorded value, never on the data seen so far, so two histograms fed
//! the same multiset are structurally identical (the telemetry export
//! leans on this for byte-identical runs) and merging is associative.
//!
//! Values are non-negative integers — the telemetry layer records
//! latencies in milliseconds and queue depths in packets. The first
//! [`SUB_BUCKETS`] values get exact unit buckets; above that, every
//! power-of-two octave is split into [`SUB_BUCKETS`] linear sub-buckets,
//! which bounds the relative quantization error at `1 / SUB_BUCKETS`
//! while keeping the whole `u64` range in under 500 buckets.

/// Linear sub-buckets per power-of-two octave (must be a power of two).
pub const SUB_BUCKETS: u64 = 8;

/// Log base-2 of [`SUB_BUCKETS`].
const SUB_BUCKET_BITS: u32 = SUB_BUCKETS.trailing_zeros();

/// A fixed-boundary log-bucketed histogram over `u64` values.
#[derive(Debug, Clone, PartialEq, Eq, Default, serde::Serialize, serde::Deserialize)]
pub struct LogHistogram {
    /// Per-bucket counts, grown on demand (index via
    /// [`LogHistogram::bucket_index`]).
    counts: Vec<u64>,
    /// Total recorded values.
    total: u64,
    /// Exact minimum recorded value (0 when empty).
    min: u64,
    /// Exact maximum recorded value (0 when empty).
    max: u64,
}

impl LogHistogram {
    /// An empty histogram.
    pub fn new() -> LogHistogram {
        LogHistogram::default()
    }

    /// The bucket index a value falls into. Pure: depends only on `v`.
    pub fn bucket_index(v: u64) -> usize {
        if v < SUB_BUCKETS {
            v as usize
        } else {
            let exp = 63 - u64::from(v.leading_zeros()) - u64::from(SUB_BUCKET_BITS);
            (exp * SUB_BUCKETS + (v >> exp)) as usize
        }
    }

    /// The `[lo, hi)` value range of a bucket (`hi` saturates at
    /// `u64::MAX` for the topmost bucket).
    pub fn bucket_bounds(index: usize) -> (u64, u64) {
        let i = index as u64;
        if i < SUB_BUCKETS {
            (i, i + 1)
        } else {
            let exp = i / SUB_BUCKETS - 1;
            let lo = (i - exp * SUB_BUCKETS) << exp;
            (lo, lo.saturating_add(1u64 << exp))
        }
    }

    /// Width of the bucket containing `v` — the quantization bound the
    /// quantile property test is stated against.
    pub fn width_at(v: u64) -> u64 {
        let (lo, hi) = Self::bucket_bounds(Self::bucket_index(v));
        (hi - lo).max(1)
    }

    /// Records one value.
    pub fn record(&mut self, v: u64) {
        self.record_n(v, 1);
    }

    /// Records a value `n` times.
    pub fn record_n(&mut self, v: u64, n: u64) {
        if n == 0 {
            return;
        }
        let idx = Self::bucket_index(v);
        if self.counts.len() <= idx {
            self.counts.resize(idx + 1, 0);
        }
        self.counts[idx] += n;
        if self.total == 0 {
            self.min = v;
            self.max = v;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        self.total += n;
    }

    /// Total recorded values.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Exact minimum recorded value, `None` when empty.
    pub fn min(&self) -> Option<u64> {
        (self.total > 0).then_some(self.min)
    }

    /// Exact maximum recorded value, `None` when empty.
    pub fn max(&self) -> Option<u64> {
        (self.total > 0).then_some(self.max)
    }

    /// Merges another histogram in. Associative and commutative: bucket
    /// boundaries are global, so this is plain per-bucket addition.
    pub fn merge(&mut self, other: &LogHistogram) {
        if other.total == 0 {
            return;
        }
        if self.counts.len() < other.counts.len() {
            self.counts.resize(other.counts.len(), 0);
        }
        for (mine, theirs) in self.counts.iter_mut().zip(&other.counts) {
            *mine += theirs;
        }
        if self.total == 0 {
            self.min = other.min;
            self.max = other.max;
        } else {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
        self.total += other.total;
    }

    /// Representative (midpoint) of the bucket holding the 0-based rank,
    /// clamped into the exactly-tracked `[min, max]` observed range.
    fn value_at_rank(&self, rank: u64) -> f64 {
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if rank < seen + c {
                let (lo, hi) = Self::bucket_bounds(i);
                let mid = (lo as f64 + hi as f64) / 2.0;
                return mid.clamp(self.min as f64, self.max as f64);
            }
            seen += c;
        }
        self.max as f64
    }

    /// Quantile estimate at percentile `p` (0–100), linearly interpolated
    /// between bucket midpoints with the same rank convention as
    /// [`crate::stats::percentile_sorted`] (out-of-range `p` clamps, NaN
    /// is treated as 0). `None` when empty. The estimate is within one
    /// bucket width of the exact sample percentile.
    pub fn quantile(&self, p: f64) -> Option<f64> {
        if self.total == 0 {
            return None;
        }
        let p = if p.is_nan() { 0.0 } else { p.clamp(0.0, 100.0) };
        let pos = p / 100.0 * (self.total - 1) as f64;
        let lo_rank = pos.floor() as u64;
        let hi_rank = pos.ceil() as u64;
        let v0 = self.value_at_rank(lo_rank);
        let v1 = self.value_at_rank(hi_rank);
        Some(v0 + (v1 - v0) * (pos - lo_rank as f64))
    }

    /// Mean estimate from bucket midpoints (clamped to the observed
    /// range), `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        if self.total == 0 {
            return None;
        }
        let mut sum = 0.0;
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let (lo, hi) = Self::bucket_bounds(i);
            let mid = ((lo as f64 + hi as f64) / 2.0).clamp(self.min as f64, self.max as f64);
            sum += mid * c as f64;
            seen += c;
        }
        debug_assert_eq!(seen, self.total);
        Some(sum / self.total as f64)
    }

    /// Non-empty buckets as ascending `(index, count)` pairs — the sparse
    /// wire form the telemetry JSONL uses.
    pub fn sparse(&self) -> Vec<(usize, u64)> {
        self.counts.iter().enumerate().filter(|(_, c)| **c > 0).map(|(i, c)| (i, *c)).collect()
    }

    /// Rebuilds a histogram from its sparse wire form plus the exact
    /// min/max. Inverse of [`LogHistogram::sparse`] for every histogram.
    pub fn from_sparse(pairs: &[(usize, u64)], min: u64, max: u64) -> LogHistogram {
        let mut h = LogHistogram::new();
        for (idx, count) in pairs {
            if *count == 0 {
                continue;
            }
            if h.counts.len() <= *idx {
                h.counts.resize(*idx + 1, 0);
            }
            h.counts[*idx] += count;
            h.total += count;
        }
        if h.total > 0 {
            h.min = min;
            h.max = max;
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_contiguous_and_deterministic() {
        // Every value falls inside its bucket's bounds, indices are
        // monotone, and adjacent buckets share a boundary.
        let mut last_idx = 0;
        for v in 0..10_000u64 {
            let idx = LogHistogram::bucket_index(v);
            let (lo, hi) = LogHistogram::bucket_bounds(idx);
            assert!(lo <= v && v < hi, "v={v} not in [{lo}, {hi})");
            assert!(idx >= last_idx, "index regressed at v={v}");
            last_idx = idx;
        }
        for idx in 0..LogHistogram::bucket_index(1 << 40) {
            let (_, hi) = LogHistogram::bucket_bounds(idx);
            let (lo_next, _) = LogHistogram::bucket_bounds(idx + 1);
            assert_eq!(hi, lo_next, "gap between buckets {idx} and {}", idx + 1);
        }
    }

    #[test]
    fn small_values_get_exact_buckets() {
        for v in 0..SUB_BUCKETS {
            assert_eq!(LogHistogram::bucket_bounds(LogHistogram::bucket_index(v)), (v, v + 1));
            assert_eq!(LogHistogram::width_at(v), 1);
        }
    }

    #[test]
    fn relative_error_is_bounded() {
        for v in [10u64, 100, 1000, 123_456, 1 << 30, u64::MAX / 3] {
            let width = LogHistogram::width_at(v);
            assert!(
                (width as f64) <= v as f64 / (SUB_BUCKETS as f64 / 2.0),
                "bucket width {width} too wide for {v}"
            );
        }
    }

    #[test]
    fn record_order_does_not_matter() {
        let values = [5u64, 900, 3, 3, 77, 1 << 20, 0];
        let mut a = LogHistogram::new();
        values.iter().for_each(|v| a.record(*v));
        let mut b = LogHistogram::new();
        values.iter().rev().for_each(|v| b.record(*v));
        assert_eq!(a, b);
    }

    #[test]
    fn merge_is_associative_and_commutative() {
        let build = |vals: &[u64]| {
            let mut h = LogHistogram::new();
            vals.iter().for_each(|v| h.record(*v));
            h
        };
        let (a, b, c) = (build(&[1, 2, 3, 500]), build(&[900, 900, 7]), build(&[0, 1 << 33]));
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);
        assert_eq!(left, right, "associativity");
        let mut ba = b.clone();
        ba.merge(&a);
        let mut ab = a.clone();
        ab.merge(&b);
        assert_eq!(ab, ba, "commutativity");
        assert_eq!(left.count(), a.count() + b.count() + c.count());
        // Merging an empty histogram is the identity in both directions.
        let mut id = a.clone();
        id.merge(&LogHistogram::new());
        assert_eq!(id, a);
        let mut from_empty = LogHistogram::new();
        from_empty.merge(&a);
        assert_eq!(from_empty, a);
    }

    #[test]
    fn extreme_values_round_trip_through_sparse() {
        let mut h = LogHistogram::new();
        h.record(0);
        h.record(u64::MAX);
        h.record(u64::MAX - 1);
        h.record_n(1, 3);
        let back = LogHistogram::from_sparse(&h.sparse(), h.min().unwrap(), h.max().unwrap());
        assert_eq!(back, h);
        assert_eq!(back.count(), 6);
        assert_eq!(back.min(), Some(0));
        assert_eq!(back.max(), Some(u64::MAX));
        // Empty round trip too.
        let empty = LogHistogram::new();
        assert_eq!(LogHistogram::from_sparse(&empty.sparse(), 0, 0), empty);
    }

    #[test]
    fn quantiles_on_empty_and_singleton() {
        assert_eq!(LogHistogram::new().quantile(50.0), None);
        assert_eq!(LogHistogram::new().mean(), None);
        let mut h = LogHistogram::new();
        h.record(42);
        for p in [0.0, 50.0, 100.0, -3.0, 400.0, f64::NAN] {
            // Midpoint clamped into [min, max] makes a single value exact.
            assert_eq!(h.quantile(p), Some(42.0));
        }
        assert_eq!(h.mean(), Some(42.0));
    }

    #[test]
    fn quantile_tracks_exact_percentile() {
        let mut h = LogHistogram::new();
        let mut samples: Vec<f64> = Vec::new();
        for v in 0..1000u64 {
            h.record(v);
            samples.push(v as f64);
        }
        for p in [0.0, 10.0, 50.0, 90.0, 99.0, 100.0] {
            let exact = crate::stats::percentile_sorted(&samples, p);
            let est = h.quantile(p).expect("non-empty");
            let width = LogHistogram::width_at(exact as u64) as f64;
            assert!(
                (est - exact).abs() <= width,
                "p{p}: est {est} vs exact {exact} (width {width})"
            );
        }
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use crate::stats::percentile_sorted;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn histogram_quantiles_agree_with_percentile_sorted(
            values in proptest::collection::vec(0u64..1_000_000, 1..200),
            p in 0.0f64..100.0
        ) {
            let mut h = LogHistogram::new();
            let mut sorted: Vec<f64> = Vec::with_capacity(values.len());
            for v in &values {
                h.record(*v);
                sorted.push(*v as f64);
            }
            sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
            let exact = percentile_sorted(&sorted, p);
            let est = h.quantile(p).expect("non-empty");
            // The estimate interpolates between the midpoints of the two
            // buckets holding the straddling order statistics, so it is
            // within one bucket width of the exact interpolated
            // percentile (the wider of the two buckets bounds the error).
            let pos = p / 100.0 * (sorted.len() - 1) as f64;
            let v0 = sorted[pos.floor() as usize] as u64;
            let v1 = sorted[pos.ceil() as usize] as u64;
            let width = LogHistogram::width_at(v0).max(LogHistogram::width_at(v1)) as f64;
            prop_assert!(
                (est - exact).abs() <= width,
                "p={}: est {} vs exact {} (width {})", p, est, exact, width
            );
        }

        #[test]
        fn merge_equals_single_stream(
            left in proptest::collection::vec(0u64..1_000_000, 0..100),
            right in proptest::collection::vec(0u64..1_000_000, 0..100)
        ) {
            let mut a = LogHistogram::new();
            left.iter().for_each(|v| a.record(*v));
            let mut b = LogHistogram::new();
            right.iter().for_each(|v| b.record(*v));
            let mut whole = LogHistogram::new();
            left.iter().chain(&right).for_each(|v| whole.record(*v));
            a.merge(&b);
            prop_assert_eq!(a, whole);
        }

        /// The fleet invariant: folding N per-network histograms into one
        /// is structurally identical to recording the pooled stream, and
        /// the merged quantiles agree with the pooled quantiles to within
        /// one bucket width (they are in fact identical here, since the
        /// structures are equal — the quantile bound is stated to match
        /// the documented contract).
        #[test]
        fn n_way_merge_equals_pooled_stream(
            streams in proptest::collection::vec(
                proptest::collection::vec(0u64..1_000_000, 0..60),
                1..12
            ),
            p in 0.0f64..100.0
        ) {
            let mut merged = LogHistogram::new();
            let mut pooled = LogHistogram::new();
            for stream in &streams {
                let mut h = LogHistogram::new();
                for v in stream {
                    h.record(*v);
                    pooled.record(*v);
                }
                merged.merge(&h);
            }
            prop_assert_eq!(&merged, &pooled);
            prop_assert_eq!(merged.count(), streams.iter().map(Vec::len).sum::<usize>() as u64);
            match (merged.quantile(p), pooled.quantile(p)) {
                (None, None) => prop_assert!(merged.is_empty()),
                (Some(m), Some(w)) => {
                    let width = LogHistogram::width_at(w.max(0.0) as u64) as f64;
                    prop_assert!(
                        (m - w).abs() <= width,
                        "p={}: merged {} vs pooled {} (width {})", p, m, w, width
                    );
                }
                other => prop_assert!(false, "emptiness mismatch: {:?}", other),
            }
        }
    }
}
