//! Plain-text table/series formatting for the per-figure benchmark
//! binaries, which print the same rows/series the paper's figures plot.

use crate::stats::{BoxplotStats, Cdf};
use core::fmt::Write as _;

/// Renders a figure header banner.
pub fn figure_header(id: &str, caption: &str) -> String {
    let line = "=".repeat(72);
    format!("{line}\n{id}: {caption}\n{line}")
}

/// Renders one or more named CDFs side by side as a step table:
/// `value | F_series1 | F_series2 | …` rows at `steps` evenly spaced
/// percentiles, plus a summary row block.
///
/// # Panics
///
/// Panics if `series` is empty.
pub fn cdf_table(series: &[(&str, &Cdf)], value_label: &str, steps: usize) -> String {
    assert!(!series.is_empty(), "need at least one series");
    let mut out = String::new();
    let _ = write!(out, "{:>12}", value_label);
    for (name, _) in series {
        let _ = write!(out, " | F[{name:>10}]");
    }
    let _ = writeln!(out);
    // Merge the percentile grids of all series on the value axis.
    let mut values: Vec<f64> =
        series.iter().flat_map(|(_, cdf)| cdf.series(steps).into_iter().map(|(v, _)| v)).collect();
    values.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    values.dedup_by(|a, b| (*a - *b).abs() < 1e-9);
    for v in values {
        let _ = write!(out, "{v:>12.3}");
        for (_, cdf) in series {
            let _ = write!(out, " | {:>13.3}", cdf.fraction_at_or_below(v));
        }
        let _ = writeln!(out);
    }
    let _ = writeln!(out);
    for (name, cdf) in series {
        let _ = writeln!(
            out,
            "{name:>12}: n={} mean={:.3} median={:.3} min={:.3} p90={:.3} max={:.3}",
            cdf.len(),
            cdf.mean(),
            cdf.median(),
            cdf.min(),
            cdf.percentile(90.0),
            cdf.max()
        );
    }
    out
}

/// Renders labelled boxplot rows.
pub fn boxplot_table(rows: &[(String, BoxplotStats)]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:>16} | {:>9} {:>9} {:>9} {:>9} {:>9} {:>9}",
        "series", "min", "q1", "median", "q3", "max", "mean"
    );
    for (label, b) in rows {
        let _ = writeln!(
            out,
            "{label:>16} | {:>9.3} {:>9.3} {:>9.3} {:>9.3} {:>9.3} {:>9.3}",
            b.min, b.q1, b.median, b.q3, b.max, b.mean
        );
    }
    out
}

/// Renders a simple two-column series (e.g. bar charts like Fig. 3).
pub fn bar_table(label: &str, value_label: &str, rows: &[(String, f64)]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{label:>24} | {value_label:>12}");
    for (name, v) in rows {
        let _ = writeln!(out, "{name:>24} | {v:>12.3}");
    }
    out
}

/// Renders a paper-vs-measured comparison row for EXPERIMENTS.md-style
/// reporting.
pub fn compare_row(metric: &str, paper: &str, measured: f64) -> String {
    format!("{metric:>40} | paper: {paper:>12} | measured: {measured:>10.3}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_contains_id_and_caption() {
        let h = figure_header("Fig. 9a", "CDF of PDR");
        assert!(h.contains("Fig. 9a"));
        assert!(h.contains("CDF of PDR"));
    }

    #[test]
    fn cdf_table_renders_all_series() {
        let a = Cdf::new([1.0, 2.0, 3.0]).expect("ok");
        let b = Cdf::new([2.0, 3.0, 4.0]).expect("ok");
        let t = cdf_table(&[("digs", &a), ("orchestra", &b)], "pdr", 4);
        assert!(t.contains("digs"));
        assert!(t.contains("orchestra"));
        assert!(t.contains("median"));
        // Monotone fractions on each row: last value has F = 1 for both.
        let last_line = t.lines().rfind(|l| l.starts_with(' ') && l.contains('|')).expect("rows");
        assert!(last_line.contains("1.000") || t.contains("1.000"));
    }

    #[test]
    fn boxplot_table_rows() {
        let b = BoxplotStats::of(&[1.0, 2.0, 3.0]).expect("ok");
        let t = boxplot_table(&[("flow 1".to_string(), b)]);
        assert!(t.contains("flow 1"));
        assert!(t.contains("median"));
    }

    #[test]
    fn bar_table_rows() {
        let t = bar_table("topology", "seconds", &[("Full Testbed A".to_string(), 506.0)]);
        assert!(t.contains("Full Testbed A"));
        assert!(t.contains("506.000"));
    }

    #[test]
    fn compare_row_format() {
        let r = compare_row("median latency (ms)", "601.3", 640.2);
        assert!(r.contains("601.3"));
        assert!(r.contains("640.2"));
    }

    #[test]
    #[should_panic(expected = "need at least one series")]
    fn empty_cdf_table_panics() {
        let _ = cdf_table(&[], "x", 4);
    }
}
