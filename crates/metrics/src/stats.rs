//! Summary statistics, empirical CDFs, and boxplot summaries.

use core::fmt;

/// Summary statistics of a sample.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Summary {
    /// Number of samples.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Median (50th percentile, linear interpolation).
    pub median: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
    /// Sample standard deviation (0 for fewer than 2 samples).
    pub std_dev: f64,
}

impl Summary {
    /// Computes summary statistics. Returns `None` for an empty sample or a
    /// sample containing non-finite values.
    pub fn of(samples: &[f64]) -> Option<Summary> {
        if samples.is_empty() || samples.iter().any(|s| !s.is_finite()) {
            return None;
        }
        let count = samples.len();
        let mean = samples.iter().sum::<f64>() / count as f64;
        let var = if count > 1 {
            samples.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / (count - 1) as f64
        } else {
            0.0
        };
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        Some(Summary {
            count,
            mean,
            median: percentile_sorted(&sorted, 50.0),
            min: sorted[0],
            max: sorted[count - 1],
            std_dev: var.sqrt(),
        })
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.3} median={:.3} min={:.3} max={:.3} sd={:.3}",
            self.count, self.mean, self.median, self.min, self.max, self.std_dev
        )
    }
}

/// Percentile (0–100) of an ascending-sorted slice with linear
/// interpolation.
///
/// # Panics
///
/// Panics if the slice is empty or `p` is outside `[0, 100]`.
pub fn percentile_sorted(sorted: &[f64], p: f64) -> f64 {
    assert!(!sorted.is_empty(), "percentile of an empty sample");
    assert!((0.0..=100.0).contains(&p), "percentile must be in [0, 100]");
    if sorted.len() == 1 {
        return sorted[0];
    }
    let pos = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    sorted[lo] + (sorted[hi] - sorted[lo]) * frac
}

/// An empirical cumulative distribution function.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Cdf {
    sorted: Vec<f64>,
}

impl Cdf {
    /// Builds a CDF from samples (non-finite values are rejected).
    ///
    /// Returns `None` if `samples` is empty or contains non-finite values.
    pub fn new(samples: impl IntoIterator<Item = f64>) -> Option<Cdf> {
        let mut sorted: Vec<f64> = samples.into_iter().collect();
        if sorted.is_empty() || sorted.iter().any(|s| !s.is_finite()) {
            return None;
        }
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        Some(Cdf { sorted })
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Whether the CDF holds no samples (never true: construction rejects
    /// empty input).
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// Fraction of samples ≤ `x` (the CDF value at `x`).
    pub fn fraction_at_or_below(&self, x: f64) -> f64 {
        let idx = self.sorted.partition_point(|s| *s <= x);
        idx as f64 / self.sorted.len() as f64
    }

    /// Fraction of samples ≥ `x` (used for "75% of flow sets achieve PDR
    /// higher than 95%"-style claims).
    pub fn fraction_at_or_above(&self, x: f64) -> f64 {
        let idx = self.sorted.partition_point(|s| *s < x);
        (self.sorted.len() - idx) as f64 / self.sorted.len() as f64
    }

    /// The `p`-th percentile value.
    pub fn percentile(&self, p: f64) -> f64 {
        percentile_sorted(&self.sorted, p)
    }

    /// Minimum (the "worst case" for PDR-like metrics).
    pub fn min(&self) -> f64 {
        self.sorted[0]
    }

    /// Maximum.
    pub fn max(&self) -> f64 {
        self.sorted[self.sorted.len() - 1]
    }

    /// Mean of the underlying sample.
    pub fn mean(&self) -> f64 {
        self.sorted.iter().sum::<f64>() / self.sorted.len() as f64
    }

    /// Median of the underlying sample.
    pub fn median(&self) -> f64 {
        self.percentile(50.0)
    }

    /// Evenly spaced `(value, cumulative_fraction)` points for plotting or
    /// printing, `steps + 1` rows from p0 to p100.
    ///
    /// # Panics
    ///
    /// Panics if `steps` is zero.
    pub fn series(&self, steps: usize) -> Vec<(f64, f64)> {
        assert!(steps > 0, "need at least one step");
        (0..=steps)
            .map(|i| {
                let p = 100.0 * i as f64 / steps as f64;
                (self.percentile(p), p / 100.0)
            })
            .collect()
    }
}

/// A two-sided confidence interval around a sample mean.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ConfidenceInterval {
    /// Sample mean.
    pub mean: f64,
    /// Lower bound.
    pub lo: f64,
    /// Upper bound.
    pub hi: f64,
}

impl ConfidenceInterval {
    /// Half-width of the interval.
    pub fn half_width(&self) -> f64 {
        (self.hi - self.lo) / 2.0
    }

    /// Whether the interval contains `x`.
    pub fn contains(&self, x: f64) -> bool {
        (self.lo..=self.hi).contains(&x)
    }

    /// Whether this interval overlaps another (a cheap "statistically
    /// indistinguishable" check for bench summaries).
    pub fn overlaps(&self, other: &ConfidenceInterval) -> bool {
        self.lo <= other.hi && other.lo <= self.hi
    }
}

/// Normal-approximation confidence interval for the mean at the given
/// confidence level (supported levels: 0.90, 0.95, 0.99). For the small
/// flow-set counts the harness uses, this slightly understates the t
/// interval, which is acceptable for ranking runs.
///
/// Returns `None` for fewer than 2 samples or non-finite input.
pub fn mean_confidence_interval(samples: &[f64], level: f64) -> Option<ConfidenceInterval> {
    if samples.len() < 2 {
        return None;
    }
    let z = match level {
        l if (l - 0.90).abs() < 1e-9 => 1.645,
        l if (l - 0.95).abs() < 1e-9 => 1.960,
        l if (l - 0.99).abs() < 1e-9 => 2.576,
        _ => return None,
    };
    let summary = Summary::of(samples)?;
    let se = summary.std_dev / (samples.len() as f64).sqrt();
    Some(ConfidenceInterval {
        mean: summary.mean,
        lo: summary.mean - z * se,
        hi: summary.mean + z * se,
    })
}

/// Five-number summary plus mean, matching the paper's boxplots.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct BoxplotStats {
    /// Lower whisker (minimum).
    pub min: f64,
    /// First quartile.
    pub q1: f64,
    /// Median.
    pub median: f64,
    /// Third quartile.
    pub q3: f64,
    /// Upper whisker (maximum).
    pub max: f64,
    /// Mean.
    pub mean: f64,
}

impl BoxplotStats {
    /// Computes the boxplot summary. Returns `None` on empty or non-finite
    /// input.
    pub fn of(samples: &[f64]) -> Option<BoxplotStats> {
        if samples.is_empty() || samples.iter().any(|s| !s.is_finite()) {
            return None;
        }
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        Some(BoxplotStats {
            min: sorted[0],
            q1: percentile_sorted(&sorted, 25.0),
            median: percentile_sorted(&sorted, 50.0),
            q3: percentile_sorted(&sorted, 75.0),
            max: sorted[sorted.len() - 1],
            mean: samples.iter().sum::<f64>() / samples.len() as f64,
        })
    }

    /// Interquartile range.
    pub fn iqr(&self) -> f64 {
        self.q3 - self.q1
    }
}

impl fmt::Display for BoxplotStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "min={:.3} q1={:.3} med={:.3} q3={:.3} max={:.3} mean={:.3}",
            self.min, self.q1, self.median, self.q3, self.max, self.mean
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_basics() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0]).expect("non-empty");
        assert_eq!(s.count, 4);
        assert!((s.mean - 2.5).abs() < 1e-12);
        assert!((s.median - 2.5).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert!(s.std_dev > 0.0);
    }

    #[test]
    fn summary_rejects_empty_and_nan() {
        assert!(Summary::of(&[]).is_none());
        assert!(Summary::of(&[1.0, f64::NAN]).is_none());
        assert!(Summary::of(&[1.0, f64::INFINITY]).is_none());
    }

    #[test]
    fn single_sample_summary() {
        let s = Summary::of(&[7.0]).expect("one sample");
        assert_eq!(s.median, 7.0);
        assert_eq!(s.std_dev, 0.0);
    }

    #[test]
    fn percentile_interpolates() {
        let sorted = [0.0, 10.0];
        assert_eq!(percentile_sorted(&sorted, 0.0), 0.0);
        assert_eq!(percentile_sorted(&sorted, 50.0), 5.0);
        assert_eq!(percentile_sorted(&sorted, 100.0), 10.0);
    }

    #[test]
    #[should_panic(expected = "percentile of an empty sample")]
    fn percentile_empty_panics() {
        let _ = percentile_sorted(&[], 50.0);
    }

    #[test]
    fn cdf_fractions() {
        let cdf = Cdf::new([1.0, 2.0, 3.0, 4.0]).expect("non-empty");
        assert_eq!(cdf.fraction_at_or_below(0.5), 0.0);
        assert_eq!(cdf.fraction_at_or_below(2.0), 0.5);
        assert_eq!(cdf.fraction_at_or_below(10.0), 1.0);
        assert_eq!(cdf.fraction_at_or_above(3.0), 0.5);
        assert_eq!(cdf.fraction_at_or_above(0.0), 1.0);
    }

    #[test]
    fn cdf_order_independent() {
        let a = Cdf::new([3.0, 1.0, 2.0]).expect("ok");
        let b = Cdf::new([1.0, 2.0, 3.0]).expect("ok");
        assert_eq!(a, b);
    }

    #[test]
    fn cdf_series_is_monotone() {
        let cdf = Cdf::new((0..100).map(f64::from)).expect("ok");
        let series = cdf.series(20);
        assert_eq!(series.len(), 21);
        for w in series.windows(2) {
            assert!(w[1].0 >= w[0].0);
            assert!(w[1].1 >= w[0].1);
        }
        assert_eq!(series[0].0, cdf.min());
        assert_eq!(series[20].0, cdf.max());
    }

    #[test]
    fn cdf_statistics() {
        let cdf = Cdf::new([2.0, 4.0, 6.0, 8.0]).expect("ok");
        assert!((cdf.mean() - 5.0).abs() < 1e-12);
        assert!((cdf.median() - 5.0).abs() < 1e-12);
        assert_eq!(cdf.min(), 2.0);
        assert_eq!(cdf.max(), 8.0);
        assert_eq!(cdf.len(), 4);
    }

    #[test]
    fn confidence_interval_brackets_mean() {
        let samples: Vec<f64> = (0..100).map(|i| f64::from(i % 10)).collect();
        let ci = mean_confidence_interval(&samples, 0.95).expect("enough samples");
        assert!(ci.lo < ci.mean && ci.mean < ci.hi);
        assert!(ci.contains(ci.mean));
        assert!(!ci.contains(ci.hi + 1.0));
    }

    #[test]
    fn wider_level_wider_interval() {
        let samples: Vec<f64> = (0..50).map(f64::from).collect();
        let ci90 = mean_confidence_interval(&samples, 0.90).expect("ok");
        let ci99 = mean_confidence_interval(&samples, 0.99).expect("ok");
        assert!(ci99.half_width() > ci90.half_width());
        assert!(ci99.overlaps(&ci90));
    }

    #[test]
    fn interval_shrinks_with_sample_size() {
        let small: Vec<f64> = (0..10).map(|i| f64::from(i % 5)).collect();
        let large: Vec<f64> = (0..1000).map(|i| f64::from(i % 5)).collect();
        let ci_small = mean_confidence_interval(&small, 0.95).expect("ok");
        let ci_large = mean_confidence_interval(&large, 0.95).expect("ok");
        assert!(ci_large.half_width() < ci_small.half_width());
    }

    #[test]
    fn degenerate_inputs_rejected() {
        assert!(mean_confidence_interval(&[1.0], 0.95).is_none());
        assert!(mean_confidence_interval(&[1.0, 2.0], 0.5).is_none());
        assert!(mean_confidence_interval(&[1.0, f64::NAN], 0.95).is_none());
    }

    #[test]
    fn zero_variance_gives_point_interval() {
        let ci = mean_confidence_interval(&[3.0; 20], 0.95).expect("ok");
        assert_eq!(ci.lo, 3.0);
        assert_eq!(ci.hi, 3.0);
        assert_eq!(ci.half_width(), 0.0);
    }

    #[test]
    fn boxplot_five_numbers() {
        let b = BoxplotStats::of(&[1.0, 2.0, 3.0, 4.0, 5.0]).expect("ok");
        assert_eq!(b.min, 1.0);
        assert_eq!(b.median, 3.0);
        assert_eq!(b.max, 5.0);
        assert_eq!(b.q1, 2.0);
        assert_eq!(b.q3, 4.0);
        assert_eq!(b.iqr(), 2.0);
        assert_eq!(b.mean, 3.0);
    }

    #[test]
    fn boxplot_rejects_bad_input() {
        assert!(BoxplotStats::of(&[]).is_none());
        assert!(BoxplotStats::of(&[f64::NAN]).is_none());
    }
}
