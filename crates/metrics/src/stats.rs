//! Summary statistics, empirical CDFs, and boxplot summaries.

use core::fmt;

/// Summary statistics of a sample.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Summary {
    /// Number of samples.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Median (50th percentile, linear interpolation).
    pub median: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
    /// Sample standard deviation (0 for fewer than 2 samples).
    pub std_dev: f64,
}

impl Summary {
    /// Computes summary statistics. Returns `None` for an empty sample or a
    /// sample containing non-finite values.
    pub fn of(samples: &[f64]) -> Option<Summary> {
        if samples.is_empty() || samples.iter().any(|s| !s.is_finite()) {
            return None;
        }
        let count = samples.len();
        let mean = samples.iter().sum::<f64>() / count as f64;
        let var = if count > 1 {
            samples.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / (count - 1) as f64
        } else {
            0.0
        };
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        Some(Summary {
            count,
            mean,
            median: percentile_sorted(&sorted, 50.0),
            min: sorted[0],
            max: sorted[count - 1],
            std_dev: var.sqrt(),
        })
    }

    /// Starts a one-pass streaming accumulator (no sample buffering, so no
    /// median). See [`StreamingSummary`].
    pub fn streaming() -> StreamingSummary {
        StreamingSummary::new()
    }
}

/// One-pass streaming summary statistics (Welford's online algorithm):
/// count, mean, variance, min, and max without buffering the sample
/// vector. The telemetry epoch sampler uses this so per-epoch statistics
/// cost O(1) memory; unlike [`Summary`] there is no median (that requires
/// the full sample — use a histogram quantile instead).
///
/// Non-finite samples are ignored (mirroring [`Summary::of`], which
/// rejects them wholesale; a streaming accumulator cannot reject
/// retroactively, so it skips them).
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct StreamingSummary {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Default for StreamingSummary {
    fn default() -> StreamingSummary {
        StreamingSummary::new()
    }
}

impl StreamingSummary {
    /// An empty accumulator.
    pub fn new() -> StreamingSummary {
        StreamingSummary {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Folds one sample in (Welford update). Non-finite samples are
    /// ignored.
    pub fn push(&mut self, sample: f64) {
        if !sample.is_finite() {
            return;
        }
        self.count += 1;
        let delta = sample - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (sample - self.mean);
        self.min = self.min.min(sample);
        self.max = self.max.max(sample);
    }

    /// Merges another accumulator in (Chan et al.'s parallel combination),
    /// so per-shard summaries can be reduced without re-streaming.
    pub fn merge(&mut self, other: &StreamingSummary) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        self.mean += delta * other.count as f64 / total as f64;
        self.m2 +=
            other.m2 + delta * delta * (self.count as f64 * other.count as f64 / total as f64);
        self.count = total;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of (finite) samples folded in.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Whether no samples have been folded in.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Arithmetic mean, `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then_some(self.mean)
    }

    /// Minimum, `None` when empty.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Maximum, `None` when empty.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Sample variance (0 for fewer than 2 samples), matching
    /// [`Summary::of`]'s `n - 1` denominator.
    pub fn variance(&self) -> f64 {
        if self.count > 1 {
            self.m2 / (self.count - 1) as f64
        } else {
            0.0
        }
    }

    /// Sample standard deviation (0 for fewer than 2 samples).
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }
}

impl fmt::Display for StreamingSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.count {
            0 => write!(f, "n=0"),
            _ => write!(
                f,
                "n={} mean={:.3} min={:.3} max={:.3} sd={:.3}",
                self.count,
                self.mean,
                self.min,
                self.max,
                self.std_dev()
            ),
        }
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.3} median={:.3} min={:.3} max={:.3} sd={:.3}",
            self.count, self.mean, self.median, self.min, self.max, self.std_dev
        )
    }
}

/// Percentile (0–100) of an ascending-sorted slice with linear
/// interpolation.
///
/// Out-of-range `p` is clamped into `[0, 100]` (so `p < 0` yields the
/// minimum and `p > 100` the maximum); a NaN `p` is treated as 0. A
/// single-sample slice returns that sample for every `p`.
///
/// # Panics
///
/// Panics if the slice is empty.
pub fn percentile_sorted(sorted: &[f64], p: f64) -> f64 {
    assert!(!sorted.is_empty(), "percentile of an empty sample");
    let p = if p.is_nan() { 0.0 } else { p.clamp(0.0, 100.0) };
    if sorted.len() == 1 {
        return sorted[0];
    }
    let pos = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    sorted[lo] + (sorted[hi] - sorted[lo]) * frac
}

/// An empirical cumulative distribution function.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Cdf {
    sorted: Vec<f64>,
}

impl Cdf {
    /// Builds a CDF from samples (non-finite values are rejected).
    ///
    /// Returns `None` if `samples` is empty or contains non-finite values.
    pub fn new(samples: impl IntoIterator<Item = f64>) -> Option<Cdf> {
        let mut sorted: Vec<f64> = samples.into_iter().collect();
        if sorted.is_empty() || sorted.iter().any(|s| !s.is_finite()) {
            return None;
        }
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        Some(Cdf { sorted })
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Whether the CDF holds no samples (never true: construction rejects
    /// empty input).
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// Fraction of samples ≤ `x` (the CDF value at `x`).
    pub fn fraction_at_or_below(&self, x: f64) -> f64 {
        let idx = self.sorted.partition_point(|s| *s <= x);
        idx as f64 / self.sorted.len() as f64
    }

    /// Fraction of samples ≥ `x` (used for "75% of flow sets achieve PDR
    /// higher than 95%"-style claims).
    pub fn fraction_at_or_above(&self, x: f64) -> f64 {
        let idx = self.sorted.partition_point(|s| *s < x);
        (self.sorted.len() - idx) as f64 / self.sorted.len() as f64
    }

    /// The `p`-th percentile value. Out-of-range `p` is clamped into
    /// `[0, 100]` (NaN is treated as 0), matching [`percentile_sorted`].
    pub fn percentile(&self, p: f64) -> f64 {
        percentile_sorted(&self.sorted, p)
    }

    /// Minimum (the "worst case" for PDR-like metrics).
    pub fn min(&self) -> f64 {
        self.sorted[0]
    }

    /// Maximum.
    pub fn max(&self) -> f64 {
        self.sorted[self.sorted.len() - 1]
    }

    /// Mean of the underlying sample.
    pub fn mean(&self) -> f64 {
        self.sorted.iter().sum::<f64>() / self.sorted.len() as f64
    }

    /// Median of the underlying sample.
    pub fn median(&self) -> f64 {
        self.percentile(50.0)
    }

    /// Evenly spaced `(value, cumulative_fraction)` points for plotting or
    /// printing, `steps + 1` rows from p0 to p100.
    ///
    /// # Panics
    ///
    /// Panics if `steps` is zero.
    pub fn series(&self, steps: usize) -> Vec<(f64, f64)> {
        assert!(steps > 0, "need at least one step");
        (0..=steps)
            .map(|i| {
                let p = 100.0 * i as f64 / steps as f64;
                (self.percentile(p), p / 100.0)
            })
            .collect()
    }
}

/// A two-sided confidence interval around a sample mean.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ConfidenceInterval {
    /// Sample mean.
    pub mean: f64,
    /// Lower bound.
    pub lo: f64,
    /// Upper bound.
    pub hi: f64,
}

impl ConfidenceInterval {
    /// Half-width of the interval.
    pub fn half_width(&self) -> f64 {
        (self.hi - self.lo) / 2.0
    }

    /// Whether the interval contains `x`.
    pub fn contains(&self, x: f64) -> bool {
        (self.lo..=self.hi).contains(&x)
    }

    /// Whether this interval overlaps another (a cheap "statistically
    /// indistinguishable" check for bench summaries).
    pub fn overlaps(&self, other: &ConfidenceInterval) -> bool {
        self.lo <= other.hi && other.lo <= self.hi
    }
}

/// Normal-approximation confidence interval for the mean at the given
/// confidence level (supported levels: 0.90, 0.95, 0.99). For the small
/// flow-set counts the harness uses, this slightly understates the t
/// interval, which is acceptable for ranking runs.
///
/// Returns `None` for fewer than 2 samples or non-finite input.
pub fn mean_confidence_interval(samples: &[f64], level: f64) -> Option<ConfidenceInterval> {
    if samples.len() < 2 {
        return None;
    }
    let z = match level {
        l if (l - 0.90).abs() < 1e-9 => 1.645,
        l if (l - 0.95).abs() < 1e-9 => 1.960,
        l if (l - 0.99).abs() < 1e-9 => 2.576,
        _ => return None,
    };
    let summary = Summary::of(samples)?;
    let se = summary.std_dev / (samples.len() as f64).sqrt();
    Some(ConfidenceInterval {
        mean: summary.mean,
        lo: summary.mean - z * se,
        hi: summary.mean + z * se,
    })
}

/// Five-number summary plus mean, matching the paper's boxplots.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct BoxplotStats {
    /// Lower whisker (minimum).
    pub min: f64,
    /// First quartile.
    pub q1: f64,
    /// Median.
    pub median: f64,
    /// Third quartile.
    pub q3: f64,
    /// Upper whisker (maximum).
    pub max: f64,
    /// Mean.
    pub mean: f64,
}

impl BoxplotStats {
    /// Computes the boxplot summary. Returns `None` on empty or non-finite
    /// input.
    pub fn of(samples: &[f64]) -> Option<BoxplotStats> {
        if samples.is_empty() || samples.iter().any(|s| !s.is_finite()) {
            return None;
        }
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        Some(BoxplotStats {
            min: sorted[0],
            q1: percentile_sorted(&sorted, 25.0),
            median: percentile_sorted(&sorted, 50.0),
            q3: percentile_sorted(&sorted, 75.0),
            max: sorted[sorted.len() - 1],
            mean: samples.iter().sum::<f64>() / samples.len() as f64,
        })
    }

    /// Interquartile range.
    pub fn iqr(&self) -> f64 {
        self.q3 - self.q1
    }
}

impl fmt::Display for BoxplotStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "min={:.3} q1={:.3} med={:.3} q3={:.3} max={:.3} mean={:.3}",
            self.min, self.q1, self.median, self.q3, self.max, self.mean
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_basics() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0]).expect("non-empty");
        assert_eq!(s.count, 4);
        assert!((s.mean - 2.5).abs() < 1e-12);
        assert!((s.median - 2.5).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert!(s.std_dev > 0.0);
    }

    #[test]
    fn summary_rejects_empty_and_nan() {
        assert!(Summary::of(&[]).is_none());
        assert!(Summary::of(&[1.0, f64::NAN]).is_none());
        assert!(Summary::of(&[1.0, f64::INFINITY]).is_none());
    }

    #[test]
    fn single_sample_summary() {
        let s = Summary::of(&[7.0]).expect("one sample");
        assert_eq!(s.median, 7.0);
        assert_eq!(s.std_dev, 0.0);
    }

    #[test]
    fn percentile_interpolates() {
        let sorted = [0.0, 10.0];
        assert_eq!(percentile_sorted(&sorted, 0.0), 0.0);
        assert_eq!(percentile_sorted(&sorted, 50.0), 5.0);
        assert_eq!(percentile_sorted(&sorted, 100.0), 10.0);
    }

    #[test]
    #[should_panic(expected = "percentile of an empty sample")]
    fn percentile_empty_panics() {
        let _ = percentile_sorted(&[], 50.0);
    }

    #[test]
    fn percentile_clamps_out_of_range_p() {
        let sorted = [1.0, 2.0, 3.0];
        assert_eq!(percentile_sorted(&sorted, -10.0), 1.0);
        assert_eq!(percentile_sorted(&sorted, 250.0), 3.0);
        assert_eq!(percentile_sorted(&sorted, f64::NEG_INFINITY), 1.0);
        assert_eq!(percentile_sorted(&sorted, f64::INFINITY), 3.0);
        // NaN p is treated as 0 rather than poisoning the result.
        assert_eq!(percentile_sorted(&sorted, f64::NAN), 1.0);
        let cdf = Cdf::new([1.0, 2.0, 3.0]).expect("ok");
        assert_eq!(cdf.percentile(-1.0), 1.0);
        assert_eq!(cdf.percentile(101.0), 3.0);
    }

    #[test]
    fn percentile_single_sample_is_constant() {
        for p in [-5.0, 0.0, 37.5, 100.0, 400.0, f64::NAN] {
            assert_eq!(percentile_sorted(&[42.0], p), 42.0);
        }
    }

    #[test]
    fn streaming_summary_matches_batch() {
        let samples = [3.0, -1.5, 8.25, 0.0, 2.0, 2.0, 7.125];
        let batch = Summary::of(&samples).expect("ok");
        let mut s = Summary::streaming();
        for v in samples {
            s.push(v);
        }
        assert_eq!(s.count(), samples.len() as u64);
        assert!((s.mean().unwrap() - batch.mean).abs() < 1e-12);
        assert_eq!(s.min().unwrap(), batch.min);
        assert_eq!(s.max().unwrap(), batch.max);
        assert!((s.std_dev() - batch.std_dev).abs() < 1e-12);
    }

    #[test]
    fn streaming_summary_empty_and_singleton() {
        let mut s = StreamingSummary::new();
        assert!(s.is_empty());
        assert_eq!(s.mean(), None);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
        assert_eq!(s.std_dev(), 0.0);
        s.push(4.0);
        assert_eq!(s.mean(), Some(4.0));
        assert_eq!(s.variance(), 0.0);
    }

    #[test]
    fn streaming_summary_ignores_non_finite() {
        let mut s = StreamingSummary::new();
        s.push(f64::NAN);
        s.push(f64::INFINITY);
        s.push(2.0);
        assert_eq!(s.count(), 1);
        assert_eq!(s.mean(), Some(2.0));
    }

    #[test]
    fn streaming_merge_matches_single_stream() {
        let (left, right) = ([1.0, 2.0, 3.0], [10.0, 20.0]);
        let mut a = StreamingSummary::new();
        left.iter().for_each(|v| a.push(*v));
        let mut b = StreamingSummary::new();
        right.iter().for_each(|v| b.push(*v));
        let mut whole = StreamingSummary::new();
        left.iter().chain(&right).for_each(|v| whole.push(*v));
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean().unwrap() - whole.mean().unwrap()).abs() < 1e-12);
        assert!((a.variance() - whole.variance()).abs() < 1e-9);
        assert_eq!(a.min(), whole.min());
        assert_eq!(a.max(), whole.max());
        // Merging into / from empty is the identity.
        let mut empty = StreamingSummary::new();
        empty.merge(&a);
        assert_eq!(empty, a);
        let snapshot = a;
        a.merge(&StreamingSummary::new());
        assert_eq!(a, snapshot);
    }

    #[test]
    fn cdf_fractions() {
        let cdf = Cdf::new([1.0, 2.0, 3.0, 4.0]).expect("non-empty");
        assert_eq!(cdf.fraction_at_or_below(0.5), 0.0);
        assert_eq!(cdf.fraction_at_or_below(2.0), 0.5);
        assert_eq!(cdf.fraction_at_or_below(10.0), 1.0);
        assert_eq!(cdf.fraction_at_or_above(3.0), 0.5);
        assert_eq!(cdf.fraction_at_or_above(0.0), 1.0);
    }

    #[test]
    fn cdf_order_independent() {
        let a = Cdf::new([3.0, 1.0, 2.0]).expect("ok");
        let b = Cdf::new([1.0, 2.0, 3.0]).expect("ok");
        assert_eq!(a, b);
    }

    #[test]
    fn cdf_series_is_monotone() {
        let cdf = Cdf::new((0..100).map(f64::from)).expect("ok");
        let series = cdf.series(20);
        assert_eq!(series.len(), 21);
        for w in series.windows(2) {
            assert!(w[1].0 >= w[0].0);
            assert!(w[1].1 >= w[0].1);
        }
        assert_eq!(series[0].0, cdf.min());
        assert_eq!(series[20].0, cdf.max());
    }

    #[test]
    fn cdf_statistics() {
        let cdf = Cdf::new([2.0, 4.0, 6.0, 8.0]).expect("ok");
        assert!((cdf.mean() - 5.0).abs() < 1e-12);
        assert!((cdf.median() - 5.0).abs() < 1e-12);
        assert_eq!(cdf.min(), 2.0);
        assert_eq!(cdf.max(), 8.0);
        assert_eq!(cdf.len(), 4);
    }

    #[test]
    fn confidence_interval_brackets_mean() {
        let samples: Vec<f64> = (0..100).map(|i| f64::from(i % 10)).collect();
        let ci = mean_confidence_interval(&samples, 0.95).expect("enough samples");
        assert!(ci.lo < ci.mean && ci.mean < ci.hi);
        assert!(ci.contains(ci.mean));
        assert!(!ci.contains(ci.hi + 1.0));
    }

    #[test]
    fn wider_level_wider_interval() {
        let samples: Vec<f64> = (0..50).map(f64::from).collect();
        let ci90 = mean_confidence_interval(&samples, 0.90).expect("ok");
        let ci99 = mean_confidence_interval(&samples, 0.99).expect("ok");
        assert!(ci99.half_width() > ci90.half_width());
        assert!(ci99.overlaps(&ci90));
    }

    #[test]
    fn interval_shrinks_with_sample_size() {
        let small: Vec<f64> = (0..10).map(|i| f64::from(i % 5)).collect();
        let large: Vec<f64> = (0..1000).map(|i| f64::from(i % 5)).collect();
        let ci_small = mean_confidence_interval(&small, 0.95).expect("ok");
        let ci_large = mean_confidence_interval(&large, 0.95).expect("ok");
        assert!(ci_large.half_width() < ci_small.half_width());
    }

    #[test]
    fn degenerate_inputs_rejected() {
        assert!(mean_confidence_interval(&[1.0], 0.95).is_none());
        assert!(mean_confidence_interval(&[1.0, 2.0], 0.5).is_none());
        assert!(mean_confidence_interval(&[1.0, f64::NAN], 0.95).is_none());
    }

    #[test]
    fn zero_variance_gives_point_interval() {
        let ci = mean_confidence_interval(&[3.0; 20], 0.95).expect("ok");
        assert_eq!(ci.lo, 3.0);
        assert_eq!(ci.hi, 3.0);
        assert_eq!(ci.half_width(), 0.0);
    }

    #[test]
    fn boxplot_five_numbers() {
        let b = BoxplotStats::of(&[1.0, 2.0, 3.0, 4.0, 5.0]).expect("ok");
        assert_eq!(b.min, 1.0);
        assert_eq!(b.median, 3.0);
        assert_eq!(b.max, 5.0);
        assert_eq!(b.q1, 2.0);
        assert_eq!(b.q3, 4.0);
        assert_eq!(b.iqr(), 2.0);
        assert_eq!(b.mean, 3.0);
    }

    #[test]
    fn boxplot_rejects_bad_input() {
        assert!(BoxplotStats::of(&[]).is_none());
        assert!(BoxplotStats::of(&[f64::NAN]).is_none());
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn streaming_summary_equals_batch_summary(
            samples in proptest::collection::vec(-1e6f64..1e6, 1..200)
        ) {
            let batch = Summary::of(&samples).expect("finite, non-empty");
            let mut s = Summary::streaming();
            for v in &samples {
                s.push(*v);
            }
            prop_assert_eq!(s.count(), samples.len() as u64);
            prop_assert!((s.mean().unwrap() - batch.mean).abs() < 1e-6);
            prop_assert_eq!(s.min().unwrap(), batch.min);
            prop_assert_eq!(s.max().unwrap(), batch.max);
            prop_assert!((s.std_dev() - batch.std_dev).abs() < 1e-6);
        }

        #[test]
        fn percentile_is_total_on_any_p(
            mut samples in proptest::collection::vec(-1e6f64..1e6, 1..50),
            p in any::<f64>()
        ) {
            samples.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
            let v = percentile_sorted(&samples, p);
            // Whatever p is thrown at it, the result is a real value
            // within the sample range.
            prop_assert!(v >= samples[0] && v <= samples[samples.len() - 1]);
        }
    }
}
