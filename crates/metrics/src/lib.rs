//! # digs-metrics — statistics toolkit for the DiGS reproduction
//!
//! Small, dependency-light statistics used by the experiment harness and
//! the per-figure benchmark binaries: summary statistics ([`Summary`]),
//! empirical CDFs ([`Cdf`]) matching the paper's CDF figures, and boxplot
//! five-number summaries ([`BoxplotStats`]) matching its boxplot figures.
//!
//! The telemetry layer builds on the same crate: a named-metric
//! [`Registry`] of monotonic [`Counter`]s and [`Gauge`]s, deterministic
//! log-bucketed [`LogHistogram`]s, and the one-pass [`StreamingSummary`]
//! used where buffering full sample vectors would defeat the point of
//! epoch sampling.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod format;
pub mod histogram;
pub mod registry;
pub mod stats;

pub use histogram::LogHistogram;
pub use registry::{Counter, Gauge, Registry};
pub use stats::{BoxplotStats, Cdf, ConfidenceInterval, StreamingSummary, Summary};
