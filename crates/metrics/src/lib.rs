//! # digs-metrics — statistics toolkit for the DiGS reproduction
//!
//! Small, dependency-light statistics used by the experiment harness and
//! the per-figure benchmark binaries: summary statistics ([`Summary`]),
//! empirical CDFs ([`Cdf`]) matching the paper's CDF figures, and boxplot
//! five-number summaries ([`BoxplotStats`]) matching its boxplot figures.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod format;
pub mod stats;

pub use stats::{BoxplotStats, Cdf, ConfidenceInterval, Summary};
