//! A dependency-light metrics registry: named monotonic counters and
//! gauges keyed by static strings.
//!
//! The registry is the accumulation surface between instrumented code
//! and the epoch sampler. Counters are monotonic with an explicit
//! *mark* so the sampler can read per-epoch deltas without resetting
//! the cumulative total; gauges are last-write-wins point-in-time
//! values. Iteration order is the `BTreeMap` key order, so exports are
//! deterministic without any sorting at the call site.

use std::collections::BTreeMap;

/// A monotonic counter with a mark for delta reads.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct Counter {
    total: u64,
    marked: u64,
}

impl Counter {
    /// Adds to the cumulative total.
    pub fn add(&mut self, n: u64) {
        self.total += n;
    }

    /// Increments by one.
    pub fn inc(&mut self) {
        self.total += 1;
    }

    /// The cumulative total since creation.
    pub fn get(&self) -> u64 {
        self.total
    }

    /// Raises the counter to `total` if it is behind (no-op otherwise).
    /// Lets instrumented code mirror an externally-kept cumulative
    /// figure without double counting.
    pub fn set_at_least(&mut self, total: u64) {
        self.total = self.total.max(total);
    }

    /// The increase since the last [`Counter::take_delta`], advancing
    /// the mark.
    pub fn take_delta(&mut self) -> u64 {
        let delta = self.total - self.marked;
        self.marked = self.total;
        delta
    }
}

/// A last-write-wins point-in-time value.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct Gauge {
    value: i64,
}

impl Gauge {
    /// Overwrites the current value.
    pub fn set(&mut self, v: i64) {
        self.value = v;
    }

    /// Keeps the larger of the current and given value.
    pub fn set_max(&mut self, v: i64) {
        self.value = self.value.max(v);
    }

    /// The current value.
    pub fn get(&self) -> i64 {
        self.value
    }
}

/// Named counters and gauges with deterministic iteration order.
#[derive(Debug, Clone, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct Registry {
    counters: BTreeMap<&'static str, Counter>,
    gauges: BTreeMap<&'static str, Gauge>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// The counter registered under `name`, created on first use.
    pub fn counter(&mut self, name: &'static str) -> &mut Counter {
        self.counters.entry(name).or_default()
    }

    /// The gauge registered under `name`, created on first use.
    pub fn gauge(&mut self, name: &'static str) -> &mut Gauge {
        self.gauges.entry(name).or_default()
    }

    /// Cumulative counter totals in key order.
    pub fn counter_totals(&self) -> Vec<(&'static str, u64)> {
        self.counters.iter().map(|(k, c)| (*k, c.get())).collect()
    }

    /// Per-epoch counter deltas in key order, advancing every mark.
    pub fn take_counter_deltas(&mut self) -> Vec<(&'static str, u64)> {
        self.counters.iter_mut().map(|(k, c)| (*k, c.take_delta())).collect()
    }

    /// Current gauge values in key order.
    pub fn gauge_values(&self) -> Vec<(&'static str, i64)> {
        self.gauges.iter().map(|(k, g)| (*k, g.get())).collect()
    }

    /// Whether nothing has been registered.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_delta_marks_advance() {
        let mut c = Counter::default();
        c.add(5);
        c.inc();
        assert_eq!(c.get(), 6);
        assert_eq!(c.take_delta(), 6);
        assert_eq!(c.take_delta(), 0);
        c.add(4);
        assert_eq!(c.take_delta(), 4);
        assert_eq!(c.get(), 10);
    }

    #[test]
    fn counter_set_at_least_never_regresses() {
        let mut c = Counter::default();
        c.set_at_least(9);
        assert_eq!(c.get(), 9);
        c.set_at_least(3);
        assert_eq!(c.get(), 9, "mirroring a stale total must not rewind");
        c.set_at_least(12);
        assert_eq!(c.take_delta(), 12);
    }

    #[test]
    fn gauge_semantics() {
        let mut g = Gauge::default();
        assert_eq!(g.get(), 0);
        g.set(-4);
        assert_eq!(g.get(), -4);
        g.set_max(7);
        g.set_max(2);
        assert_eq!(g.get(), 7);
    }

    #[test]
    fn registry_iterates_in_key_order() {
        let mut r = Registry::new();
        r.counter("z.last").add(1);
        r.counter("a.first").add(2);
        r.gauge("m.mid").set(3);
        assert_eq!(r.counter_totals(), vec![("a.first", 2), ("z.last", 1)]);
        assert_eq!(r.gauge_values(), vec![("m.mid", 3)]);
        assert_eq!(r.take_counter_deltas(), vec![("a.first", 2), ("z.last", 1)]);
        assert_eq!(r.take_counter_deltas(), vec![("a.first", 0), ("z.last", 0)]);
        assert!(!r.is_empty());
        assert!(Registry::new().is_empty());
    }
}
