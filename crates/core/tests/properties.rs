//! Property-based tests for the core crate's data structures.

use digs::flows::{flow_set_from_sources, random_flow_set, FlowSpec};
use digs::queue::BoundedQueue;
use digs::results::{FlowResult, RunResults};
use digs::timeline::delivery_timeline;
use digs_sim::ids::{FlowId, NodeId};
use digs_sim::time::Asn;
use digs_sim::topology::Topology;
use proptest::prelude::*;

proptest! {
    /// A flow's generation count over any horizon equals the number of
    /// slots where `generates_at` fires.
    #[test]
    fn flow_counting_is_consistent(period in 1u64..500, phase in 0u64..500, horizon in 0u64..5000) {
        let flow = FlowSpec { id: FlowId(0), source: NodeId(5), period, phase };
        let by_formula = flow.packets_by(Asn(horizon));
        let by_scan = (0..horizon).filter(|s| flow.generates_at(Asn(*s))).count() as u32;
        prop_assert_eq!(by_formula, by_scan);
    }

    /// Random flow sets always have distinct field-device sources and
    /// in-period phases.
    #[test]
    fn random_flow_sets_wellformed(n in 1usize..16, period in 10u64..2000, seed in 0u64..50) {
        let topo = Topology::testbed_a();
        let set = random_flow_set(&topo, n, period, seed);
        prop_assert_eq!(set.len(), n);
        let mut sources = std::collections::HashSet::new();
        for (i, f) in set.iter().enumerate() {
            prop_assert_eq!(f.id, FlowId(i as u16));
            prop_assert!(sources.insert(f.source), "duplicate source");
            prop_assert!(!topo.is_access_point(f.source));
            prop_assert!(f.phase < period);
            prop_assert_eq!(f.period, period);
        }
    }

    /// The bounded queue never exceeds its capacity and counts every
    /// rejected push as a drop.
    #[test]
    fn queue_conservation(capacity in 1usize..32, ops in prop::collection::vec(any::<bool>(), 0..200)) {
        let mut q = BoundedQueue::new(capacity);
        let mut pushed = 0u64;
        let mut popped = 0u64;
        for is_push in ops {
            if is_push {
                if q.push(pushed) {
                    pushed += 1;
                }
            } else if q.pop().is_some() {
                popped += 1;
            }
            prop_assert!(q.len() <= capacity);
        }
        prop_assert_eq!(pushed - popped, q.len() as u64);
        // FIFO: drain and check monotone.
        let mut last = None;
        while let Some(v) = q.pop() {
            if let Some(prev) = last {
                prop_assert!(v > prev);
            }
            last = Some(v);
        }
    }

    /// The delivery timeline conserves packets: window sums equal the
    /// flow totals, and window PDRs are valid ratios.
    #[test]
    fn timeline_conserves_packets(
        generated in 0u32..100,
        loss_mask in any::<u64>(),
        window in 1u64..60
    ) {
        let spec = FlowSpec { id: FlowId(0), source: NodeId(5), period: 700, phase: 3 };
        let delivered: std::collections::BTreeSet<u32> = (0..generated)
            .filter(|seq| loss_mask & (1 << (seq % 64)) != 0)
            .collect();
        let duration = Asn(spec.phase + u64::from(generated) * spec.period + 1);
        let results = RunResults {
            duration,
            flows: vec![FlowResult {
                flow: FlowId(0),
                source: NodeId(5),
                generated,
                delivered: delivered.len() as u32,
                delivered_seqs: delivered.clone(),
                latencies_ms: vec![50.0; delivered.len()],
            }],
            nodes: Vec::new(),
            parent_change_times: Vec::new(),
            retry_drops: 0,
            queue_drops: 0,
            invariant_violations: Vec::new(),
        };
        let timeline = delivery_timeline(&results, &[spec], window);
        let gen_sum: u32 = timeline.iter().map(|p| p.generated).sum();
        let del_sum: u32 = timeline.iter().map(|p| p.delivered).sum();
        prop_assert_eq!(gen_sum, generated);
        prop_assert_eq!(del_sum, delivered.len() as u32);
        for p in &timeline {
            prop_assert!(p.delivered <= p.generated);
            if let Some(r) = p.pdr() {
                prop_assert!((0.0..=1.0).contains(&r));
            }
        }
    }

    /// Explicit flow sets preserve source order and stagger phases inside
    /// the period.
    #[test]
    fn explicit_flow_sets_ordered(k in 1usize..10, period in 10u64..1000) {
        let sources: Vec<NodeId> = (10..10 + k as u16).map(NodeId).collect();
        let set = flow_set_from_sources(&sources, period);
        for (i, f) in set.iter().enumerate() {
            prop_assert_eq!(f.source, sources[i]);
            prop_assert!(f.phase < period);
        }
    }
}
