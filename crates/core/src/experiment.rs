//! Experiment runners: repeated flow-set runs and derived measurements.

use crate::config::NetworkConfig;
use crate::network::Network;
use crate::results::RunResults;
use digs_sim::time::Asn;

/// Runs one configuration for `secs` simulated seconds and returns the
/// results.
pub fn run_for(config: NetworkConfig, secs: u64) -> RunResults {
    let mut network = Network::new(config);
    network.run_secs(secs);
    network.results()
}

/// Runs `sets` flow-set experiments (seeded 1..=sets) built by `scenario`,
/// each for `secs` simulated seconds.
pub fn run_flow_sets(
    scenario: impl Fn(u64) -> NetworkConfig,
    sets: u64,
    secs: u64,
) -> Vec<RunResults> {
    (1..=sets).map(|seed| run_for(scenario(seed), secs)).collect()
}

/// Extracts the paper's per-flow-set PDR samples from a batch of runs.
pub fn flow_set_pdrs(runs: &[RunResults]) -> Vec<f64> {
    runs.iter().map(RunResults::network_pdr).collect()
}

/// Extracts all end-to-end latencies (ms) across runs.
pub fn all_latencies_ms(runs: &[RunResults]) -> Vec<f64> {
    runs.iter().flat_map(RunResults::all_latencies_ms).collect()
}

/// Extracts power-per-received-packet samples (mW), skipping runs that
/// delivered nothing (infinite power).
pub fn power_per_packet_samples(runs: &[RunResults]) -> Vec<f64> {
    runs.iter().map(RunResults::power_per_received_packet_mw).filter(|p| p.is_finite()).collect()
}

/// Extracts duty-cycle-per-received-packet samples (percent/packet).
pub fn duty_cycle_samples(runs: &[RunResults]) -> Vec<f64> {
    runs.iter().map(RunResults::duty_cycle_per_received_packet).filter(|p| p.is_finite()).collect()
}

/// Extracts repair times (seconds) for an event at `event`, using a
/// `settle_secs` quiet window, skipping runs with no repair activity.
pub fn repair_times_secs(runs: &[RunResults], event: Asn, settle_secs: u64) -> Vec<f64> {
    runs.iter().filter_map(|r| r.repair_time_secs(event, settle_secs * 100)).collect()
}

/// Variant of [`run_node_failure`] with a pre-determined victim list: the
/// paper turns off the *same* four routing-graph nodes for both protocols,
/// so the comparison binary derives victims once (from a DiGS pilot run)
/// and applies them to both.
pub fn run_node_failure_with_victims(
    config: NetworkConfig,
    victims: &[digs_sim::ids::NodeId],
    failure_start_secs: u64,
    each_secs: u64,
    total_secs: u64,
) -> RunResults {
    assert!(failure_start_secs < total_secs, "failures must start before the run ends");
    let mut network = Network::new(config);
    network.run_secs(failure_start_secs);
    let plan =
        digs_sim::fault::FaultPlan::in_turn(victims, Asn::from_secs(failure_start_secs), each_secs);
    network.set_fault_plan(plan);
    network.run_secs(total_secs - failure_start_secs);
    network.results()
}

/// Outcome of a node-failure run: results plus the nodes that were failed.
#[derive(Debug, Clone)]
pub struct FailureRunOutcome {
    /// The run's metrics.
    pub results: RunResults,
    /// The relays that were switched off, in order.
    pub victims: Vec<digs_sim::ids::NodeId>,
    /// How many victims the caller asked for. When the live routing graph
    /// offered fewer distinct relays than requested (short paths, sources
    /// adjacent to access points), `victims.len() < victims_wanted` and the
    /// run exercised a milder failure scenario than intended.
    pub victims_wanted: usize,
}

impl FailureRunOutcome {
    /// How many requested victims could not be found on the live graph.
    pub fn victim_shortfall(&self) -> usize {
        self.victims_wanted.saturating_sub(self.victims.len())
    }
}

/// Runs the paper's Fig. 11 node-failure experiment: the network forms and
/// carries traffic normally until `failure_start_secs`, then the current
/// best parents of the flow sources — genuine relays *on the live routing
/// graph* — are switched off in turn, `each_secs` apiece, and the run
/// continues to `total_secs`.
pub fn run_node_failure(
    config: NetworkConfig,
    failure_start_secs: u64,
    each_secs: u64,
    total_secs: u64,
    victims_wanted: usize,
) -> FailureRunOutcome {
    assert!(failure_start_secs < total_secs, "failures must start before the run ends");
    let mut network = Network::new(config);
    network.run_secs(failure_start_secs);

    // Victims: field devices on the flows' live forwarding paths (walk
    // each source's primary-parent chain toward the access points).
    let sources: Vec<digs_sim::ids::NodeId> =
        network.config().flows.iter().map(|f| f.source).collect();
    let topology = network.config().topology.clone();
    let mut victims = Vec::new();
    for src in &sources {
        let mut node = *src;
        for _hop in 0..10 {
            let (best, second) = network.stacks()[node.index()].parents();
            let Some(next) = best else { break };
            for candidate in [Some(next), second].into_iter().flatten() {
                if !topology.is_access_point(candidate)
                    && !sources.contains(&candidate)
                    && !victims.contains(&candidate)
                {
                    victims.push(candidate);
                }
            }
            if topology.is_access_point(next) {
                break;
            }
            node = next;
        }
    }
    victims.truncate(victims_wanted);
    if victims.len() < victims_wanted {
        eprintln!(
            "run_node_failure: only {} of {} requested victims found on the \
             live routing graph (short paths to the access points); the \
             failure scenario is milder than requested",
            victims.len(),
            victims_wanted
        );
    }

    let plan = digs_sim::fault::FaultPlan::in_turn(
        &victims,
        Asn::from_secs(failure_start_secs),
        each_secs,
    );
    network.set_fault_plan(plan);
    network.run_secs(total_secs - failure_start_secs);
    FailureRunOutcome { results: network.results(), victims, victims_wanted }
}

/// Runs the centralized baseline through a relay failure *including* the
/// manager's recovery: the relay dies at `failure_start_secs`, the manager
/// detects it, runs a full update cycle (whose duration comes from the
/// Fig. 3 cost model), and re-provisions the network with a schedule that
/// routes around the dead relay. Returns the results and the modelled
/// update delay in seconds.
///
/// # Errors
///
/// Returns the [`digs_whart::schedule::ScheduleError`] when the flows
/// cannot be scheduled initially, or when the victim's removal leaves a
/// flow with no route to an access point (a partitioning failure the
/// manager cannot recover from).
///
/// # Panics
///
/// Panics if the config is not [`crate::config::Protocol::WirelessHart`].
pub fn run_whart_with_recovery(
    config: NetworkConfig,
    victim: digs_sim::ids::NodeId,
    failure_start_secs: u64,
    total_secs: u64,
) -> Result<(RunResults, f64), digs_whart::schedule::ScheduleError> {
    assert_eq!(config.protocol, crate::config::Protocol::WirelessHart);
    let sources: Vec<_> = config.flows.iter().map(|f| f.source).collect();
    let superframe = config.flows.iter().map(|f| f.period).max().unwrap_or(500) as u32;

    let mut network = Network::new(config);
    // Model the manager's reaction with the Fig. 3 cost model.
    let db = digs_whart::LinkDb::from_link_model(network.engine().link_model());
    let mut manager = digs_whart::NetworkManager::new(
        db,
        network.config().topology.access_points(),
        digs_whart::UpdateCostConfig::default(),
    );
    manager.full_update(&sources, superframe)?;

    network.run_secs(failure_start_secs);
    network.set_fault_plan(
        digs_sim::fault::FaultPlan::none()
            .with(digs_sim::fault::Outage::permanent(victim, Asn::from_secs(failure_start_secs))),
    );
    let report = manager.on_node_failure(victim, &sources, superframe)?;
    let delay_secs = report.total_secs().ceil() as u64;

    // The network limps on the stale schedule until the update lands.
    let recovery_at = failure_start_secs + delay_secs;
    if recovery_at < total_secs {
        network.run_secs(recovery_at - failure_start_secs);
        // A successful update always stores the recomputed schedule.
        if let Some(schedule) = manager.schedule() {
            network.reprovision_wirelesshart(schedule);
        }
        network.run_secs(total_secs - recovery_at);
    } else {
        network.run_secs(total_secs - failure_start_secs);
    }
    Ok((network.results(), report.total_secs()))
}

/// PDR of one flow restricted to the packets generated at or after
/// `window_start_slot` — the Fig. 5 "PDR during repair" metric, where the
/// window starts when the jammers switch on. `None` when the flow
/// generated nothing inside the window.
pub fn windowed_flow_pdr(
    flow: &crate::results::FlowResult,
    spec: &crate::flows::FlowSpec,
    window_start_slot: u64,
) -> Option<f64> {
    let first_seq = window_start_slot.saturating_sub(spec.phase).div_ceil(spec.period) as u32;
    if flow.generated <= first_seq {
        return None;
    }
    let in_window = first_seq..flow.generated;
    let total = in_window.len() as f64;
    let delivered = in_window.filter(|seq| flow.seq_delivered(*seq)).count() as f64;
    Some(delivered / total)
}

/// Picks a relay on the centralized schedule's uplink paths: the first
/// flow source's best parent that is neither an access point nor itself a
/// source. Derived from the link *model* (not a live run), so all three
/// protocol stacks can be failed at the same node — the shared victim of
/// the three-way comparison. `None` when every flow is single-hop.
pub fn shared_relay_victim(cfg: &NetworkConfig) -> Option<digs_sim::ids::NodeId> {
    let engine = digs_sim::engine::Engine::new(cfg.topology.clone(), cfg.rf.clone(), cfg.seed);
    let db = digs_whart::LinkDb::from_link_model(engine.link_model());
    let graph = digs_whart::build_uplink_graph(&db, &cfg.topology.access_points());
    let sources: Vec<digs_sim::ids::NodeId> = cfg.flows.iter().map(|f| f.source).collect();
    sources.iter().find_map(|s| {
        graph
            .entry(*s)
            .and_then(|e| e.best)
            .filter(|p| !cfg.topology.is_access_point(*p) && !sources.contains(p))
    })
}

/// The Fig. 9f / 11b micro-benchmark: per-flow delivery success of packets
/// with sequence numbers in `[from, to]`. Returns one row per flow:
/// `(flow index, Vec<(seq, delivered)>)`.
pub fn delivery_microbench(
    results: &RunResults,
    from: u32,
    to: u32,
) -> Vec<(u16, Vec<(u32, bool)>)> {
    results
        .flows
        .iter()
        .map(|f| {
            let rows =
                (from..=to).map(|seq| (seq, f.seq_delivered(seq) && seq < f.generated)).collect();
            (f.flow.0, rows)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Protocol;
    use crate::flows::flow_set_from_sources;
    use digs_sim::ids::NodeId;
    use digs_sim::topology::Topology;

    fn quick_scenario(seed: u64) -> NetworkConfig {
        NetworkConfig::builder(Topology::testbed_a_half())
            .protocol(Protocol::Digs)
            .seed(seed)
            .flows(flow_set_from_sources(&[NodeId(10), NodeId(15)], 300))
            .build()
    }

    #[test]
    fn flow_set_batches_produce_samples() {
        let runs = run_flow_sets(quick_scenario, 2, 60);
        assert_eq!(runs.len(), 2);
        let pdrs = flow_set_pdrs(&runs);
        assert_eq!(pdrs.len(), 2);
        assert!(pdrs.iter().all(|p| (0.0..=1.0).contains(p)));
        let lat = all_latencies_ms(&runs);
        assert!(!lat.is_empty(), "some packets must be delivered");
        assert!(lat.iter().all(|l| *l >= 0.0));
    }

    #[test]
    fn power_samples_are_positive() {
        let runs = run_flow_sets(quick_scenario, 1, 60);
        let p = power_per_packet_samples(&runs);
        assert_eq!(p.len(), 1);
        assert!(p[0] > 0.0);
        let d = duty_cycle_samples(&runs);
        assert!(d[0] > 0.0);
    }

    #[test]
    fn microbench_rows_cover_requested_range() {
        let runs = run_flow_sets(quick_scenario, 1, 60);
        let rows = delivery_microbench(&runs[0], 0, 5);
        assert_eq!(rows.len(), 2);
        for (_, seqs) in &rows {
            assert_eq!(seqs.len(), 6);
        }
    }
}
