//! Live telemetry: epoch-sampled time-series metrics and a network
//! health monitor.
//!
//! The flight recorder ([`crate::config::NetworkConfig::trace_cap`])
//! answers *what happened to packet X* after the fact; this layer
//! answers *how is the network doing right now*. On a configurable slot
//! cadence (an **epoch**) the sampler reads the engine, every protocol
//! stack, and the routing/scheduling layers into a typed
//! [`EpochSnapshot`]:
//!
//! - engine: per-channel occupancy, CCA deferrals, noise vs collision
//!   drops, radio duty cycle from the energy meters,
//! - stacks: per-flow windowed PDR, end-to-end latency histograms
//!   ([`digs_metrics::LogHistogram`]), queue depth gauges, parent churn,
//! - routing/scheduling: advertised-ETX distribution, Trickle interval
//!   range (DiGS), slotframe utilization.
//!
//! A [`HealthMonitor`] evaluates per-epoch rules over the stream — PDR
//! collapse below the paper's floors, churn storms, queue saturation,
//! convergence stall (thresholds shared with [`crate::watchdog`]) — and
//! emits typed [`HealthAlert`]s which [`crate::network::Network`]
//! mirrors into the flight recorder as `health-alert` events.
//!
//! Like the trace recorder, telemetry is **off by default and zero-cost
//! when off**: the network holds no sampler at all unless a cadence and
//! cap are configured (see [`TelemetrySettings::resolve`]), and the
//! slot loop is the plain [`digs_sim::engine::Engine::run`] path.
//! Everything sampled comes from the deterministic simulation state, so
//! exports are byte-identical across runs of the same seed.

use crate::config::NetworkConfig;
use crate::stack::ProtocolStack;
use digs_metrics::{LogHistogram, Registry, StreamingSummary};
use digs_sim::engine::Engine;
use digs_sim::time::{SLOTS_PER_SECOND, SLOT_MS};
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fmt::Write as _;

/// Default retained-epoch cap when `DIGS_TELEMETRY_CAP` is unset.
pub const DEFAULT_CAP: usize = 4096;

/// Registry keys for the 16 per-channel occupancy counters.
const CHANNEL_KEYS: [&str; 16] = [
    "chan.00", "chan.01", "chan.02", "chan.03", "chan.04", "chan.05", "chan.06", "chan.07",
    "chan.08", "chan.09", "chan.10", "chan.11", "chan.12", "chan.13", "chan.14", "chan.15",
];

/// Resolved telemetry knobs: sampling cadence and retention cap.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TelemetrySettings {
    /// Slots per epoch.
    pub epoch_slots: u64,
    /// Maximum retained epochs; older snapshots are dropped (counted).
    pub cap: usize,
}

impl TelemetrySettings {
    /// Resolves the effective settings from a configuration, deferring
    /// to `DIGS_TELEMETRY_EPOCH` / `DIGS_TELEMETRY_CAP` where the config
    /// leaves a knob `None`. Returns `None` — telemetry fully off, not a
    /// degraded mode — unless both the cadence and the cap are positive.
    pub fn resolve(config: &NetworkConfig) -> Option<TelemetrySettings> {
        let epoch_slots = match config.telemetry_epoch {
            Some(slots) => slots,
            None => env_u64("DIGS_TELEMETRY_EPOCH").unwrap_or(0),
        };
        let cap = match config.telemetry_cap {
            Some(cap) => cap,
            None => env_u64("DIGS_TELEMETRY_CAP").map_or(DEFAULT_CAP, |v| v as usize),
        };
        (epoch_slots > 0 && cap > 0).then_some(TelemetrySettings { epoch_slots, cap })
    }
}

fn env_u64(name: &str) -> Option<u64> {
    std::env::var(name).ok().and_then(|v| v.trim().parse().ok())
}

/// Thresholds for the per-epoch health rules. Settle time and the
/// joined-fraction bar are shared with [`crate::watchdog::WatchdogConfig`]
/// so the live monitor and the post-hoc recovery analysis agree on what
/// "converged" means.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct HealthConfig {
    /// Epoch PDR below this fires [`HealthRule::PdrCollapse`] (the paper's
    /// Fig. 5 floor band lower edge).
    pub pdr_floor: f64,
    /// Minimum packets generated in an epoch before its PDR is judged
    /// (guards against small-sample noise at epoch boundaries).
    pub min_generated: u64,
    /// Parent changes per epoch at or above this fire
    /// [`HealthRule::ChurnStorm`].
    pub churn_storm: u64,
    /// Seconds after which an unconverged network fires
    /// [`HealthRule::ConvergenceStall`].
    pub stall_secs: u64,
    /// Quiet time after convergence before PDR rules arm, seconds.
    pub settle_secs: u64,
    /// Fraction of nodes that must be joined to count as converged.
    pub converged_fraction: f64,
}

impl Default for HealthConfig {
    fn default() -> HealthConfig {
        let wd = crate::watchdog::WatchdogConfig::default();
        HealthConfig {
            pdr_floor: 0.70,
            min_generated: 4,
            churn_storm: 8,
            stall_secs: 60,
            settle_secs: wd.settle_secs,
            converged_fraction: wd.restore_fraction,
        }
    }
}

/// The typed health rules the monitor evaluates each epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum HealthRule {
    /// Windowed PDR fell below the configured floor after convergence.
    PdrCollapse,
    /// Parent churn in one epoch exceeded the storm threshold.
    ChurnStorm,
    /// Some node's application queue reached its configured capacity.
    QueueSaturation,
    /// The network failed to converge within the stall deadline.
    ConvergenceStall,
}

impl HealthRule {
    /// Stable wire name (also the trace event's `rule` field).
    pub fn as_str(self) -> &'static str {
        match self {
            HealthRule::PdrCollapse => "pdr-collapse",
            HealthRule::ChurnStorm => "churn-storm",
            HealthRule::QueueSaturation => "queue-saturation",
            HealthRule::ConvergenceStall => "convergence-stall",
        }
    }
}

/// One alert raised by the health monitor at an epoch boundary.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct HealthAlert {
    /// Which rule fired.
    pub rule: HealthRule,
    /// Epoch index (0-based).
    pub epoch: u64,
    /// First slot of the epoch window.
    pub asn_start: u64,
    /// One past the last slot of the epoch window.
    pub asn_end: u64,
    /// Deterministic human-readable detail.
    pub detail: String,
}

/// Per-flow delivery counts within one epoch, keyed by generation time
/// (generated here) vs arrival time (delivered here) — in-flight packets
/// can make a single epoch's ratio exceed 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct FlowEpoch {
    /// Flow id.
    pub flow: u16,
    /// Packets the source generated during the epoch.
    pub generated: u64,
    /// Unique packets of this flow first delivered during the epoch.
    pub delivered: u64,
}

/// One typed time-series sample covering `[asn_start, asn_end)`.
#[derive(Debug, Clone, PartialEq)]
pub struct EpochSnapshot {
    /// Epoch index (0-based, monotonic even past the retention cap).
    pub epoch: u64,
    /// First slot of the window.
    pub asn_start: u64,
    /// One past the last slot of the window.
    pub asn_end: u64,
    /// Registry counter deltas for the window, in key order.
    pub counters: Vec<(&'static str, u64)>,
    /// Registry gauge values at the window end, in key order.
    pub gauges: Vec<(&'static str, i64)>,
    /// Per-flow generation/delivery counts.
    pub flows: Vec<FlowEpoch>,
    /// End-to-end latencies (ms) of packets delivered in the window.
    pub latency_ms: LogHistogram,
    /// Advertised path cost (ETXw / path ETX) across joined nodes.
    pub etx: StreamingSummary,
    /// Cumulative radio duty cycle across nodes at the window end.
    pub duty_cycle: StreamingSummary,
}

impl EpochSnapshot {
    /// Total packets generated in the window.
    pub fn generated(&self) -> u64 {
        self.flows.iter().map(|f| f.generated).sum()
    }

    /// Total unique packets first delivered in the window.
    pub fn delivered(&self) -> u64 {
        self.flows.iter().map(|f| f.delivered).sum()
    }

    /// Windowed delivery ratio (`None` for an idle window). Can exceed 1
    /// when packets generated earlier arrive in this window.
    pub fn pdr(&self) -> Option<f64> {
        let generated = self.generated();
        (generated > 0).then(|| self.delivered() as f64 / generated as f64)
    }

    /// The delta recorded for a counter key, if present.
    pub fn counter(&self, key: &str) -> Option<u64> {
        self.counters.iter().find(|(k, _)| *k == key).map(|(_, v)| *v)
    }

    /// The value recorded for a gauge key, if present.
    pub fn gauge(&self, key: &str) -> Option<i64> {
        self.gauges.iter().find(|(k, _)| *k == key).map(|(_, v)| *v)
    }
}

/// Aggregate view of a whole run's telemetry, attached to conformance
/// records.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TelemetrySummary {
    /// Epochs sampled (including any dropped past the cap).
    pub epochs: u64,
    /// Health alerts raised.
    pub alerts: u64,
    /// Lowest non-idle epoch PDR seen, if any epoch had traffic.
    pub epoch_pdr_min: Option<f64>,
}

/// Convergence-state machine the PDR rules gate on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Convergence {
    /// Not yet converged.
    Waiting,
    /// Converged at this slot; PDR rules arm after the settle time.
    At(u64),
}

/// The epoch sampler + health monitor. Owned by
/// [`crate::network::Network`] only when telemetry is enabled — the
/// disabled path holds `None` and allocates nothing.
#[derive(Debug)]
pub struct TelemetrySampler {
    settings: TelemetrySettings,
    health: HealthConfig,
    registry: Registry,
    epochs: VecDeque<EpochSnapshot>,
    /// Snapshots dropped after hitting the retention cap.
    dropped_epochs: u64,
    next_epoch: u64,
    last_sample_asn: u64,
    /// Cumulative per-flow generated counts at the previous epoch.
    prev_generated: BTreeMap<u16, u64>,
    /// Per-node cursor into each stack's delivery log.
    delivery_cursor: Vec<usize>,
    /// `(flow, seq)` pairs already counted (retransmissions can deliver
    /// a packet more than once).
    seen: BTreeSet<(u16, u32)>,
    /// Run-wide latency histogram across all epochs.
    latency_run: LogHistogram,
    /// Every alert raised so far.
    alerts: Vec<HealthAlert>,
    convergence: Convergence,
    stall_fired: bool,
    /// Lowest non-idle epoch PDR observed.
    epoch_pdr_min: Option<f64>,
    /// Cumulative per-channel transmit counts at the previous epoch (for
    /// the per-window channel-entropy gauge).
    prev_channel_tx: [u64; 16],
}

impl TelemetrySampler {
    /// Creates a sampler for a network of `num_nodes` nodes.
    pub fn new(settings: TelemetrySettings, health: HealthConfig, num_nodes: usize) -> Self {
        TelemetrySampler {
            settings,
            health,
            registry: Registry::new(),
            epochs: VecDeque::new(),
            dropped_epochs: 0,
            next_epoch: 0,
            last_sample_asn: 0,
            prev_generated: BTreeMap::new(),
            delivery_cursor: vec![0; num_nodes],
            seen: BTreeSet::new(),
            latency_run: LogHistogram::new(),
            alerts: Vec::new(),
            convergence: Convergence::Waiting,
            stall_fired: false,
            epoch_pdr_min: None,
            prev_channel_tx: [0; 16],
        }
    }

    /// The resolved settings.
    pub fn settings(&self) -> TelemetrySettings {
        self.settings
    }

    /// Retained epoch snapshots, oldest first.
    pub fn epochs(&self) -> impl Iterator<Item = &EpochSnapshot> {
        self.epochs.iter()
    }

    /// Snapshots dropped past the retention cap.
    pub fn dropped_epochs(&self) -> u64 {
        self.dropped_epochs
    }

    /// Every health alert raised so far.
    pub fn alerts(&self) -> &[HealthAlert] {
        &self.alerts
    }

    /// Run-wide end-to-end latency histogram (ms).
    pub fn latency_histogram(&self) -> &LogHistogram {
        &self.latency_run
    }

    /// Aggregate summary for conformance records.
    pub fn summary(&self) -> TelemetrySummary {
        TelemetrySummary {
            epochs: self.next_epoch,
            alerts: self.alerts.len() as u64,
            epoch_pdr_min: self.epoch_pdr_min,
        }
    }

    /// Samples one epoch ending at the engine's current slot and runs the
    /// health rules. Returns the alerts raised *this* epoch (the network
    /// mirrors them into the trace). Read-only with respect to the
    /// simulation: observation must never perturb the run.
    pub fn sample(
        &mut self,
        engine: &Engine,
        stacks: &[ProtocolStack],
        config: &NetworkConfig,
    ) -> Vec<HealthAlert> {
        let asn_end = engine.asn().0;
        let asn_start = self.last_sample_asn;
        self.last_sample_asn = asn_end;
        let epoch = self.next_epoch;
        self.next_epoch += 1;

        // --- engine counters → registry (cumulative mirror, delta read) ---
        let stats = engine.stats();
        for (ch, key) in CHANNEL_KEYS.iter().enumerate() {
            self.registry.counter(key).set_at_least(stats.channel_tx[ch]);
        }
        self.registry.counter("tx.data").set_at_least(stats.data.transmitted);
        self.registry.counter("rx.data").set_at_least(stats.data.received);
        self.registry.counter("ack.data").set_at_least(stats.data.acked);
        self.registry.counter("nack.data").set_at_least(stats.data.unacked);
        self.registry.counter("tx.beacon").set_at_least(stats.beacon.transmitted);
        self.registry.counter("tx.routing").set_at_least(stats.routing.transmitted);
        self.registry.counter("cca.deferrals").set_at_least(stats.cca_deferrals);
        self.registry.counter("drop.noise").set_at_least(stats.noise_drops);
        self.registry.counter("drop.collision").set_at_least(stats.collision_drops);
        // Adaptive-jammer observability (all zero without an adaptive
        // jammer in the run; kept unconditional so the export schema is
        // uniform across scenarios).
        self.registry.counter("jam.slots").set_at_least(stats.adaptive_jam_slots);
        self.registry.counter("jam.hits").set_at_least(stats.adaptive_jam_hits);
        self.registry.counter("jam.opps").set_at_least(stats.adaptive_jam_opportunities);
        self.registry.counter("jam.retargets").set_at_least(stats.adaptive_retargets);
        self.registry.counter("jam.relearns").set_at_least(stats.adaptive_relearns);

        // --- stack counters ---
        let mut churn_total = 0u64;
        let mut retry_drops = 0u64;
        let mut queue_drops = 0u64;
        let mut forwarded = 0u64;
        let mut queue_max = 0usize;
        let mut queue_total = 0usize;
        let mut joined = 0usize;
        for stack in stacks {
            let t = stack.telemetry();
            churn_total += t.parent_changes.len() as u64;
            retry_drops += t.retry_drops;
            queue_drops += t.queue_drops;
            forwarded += t.forwarded;
            let depth = stack.app_queue_len();
            queue_max = queue_max.max(depth);
            queue_total += depth;
            if stack.is_joined() {
                joined += 1;
            }
        }
        self.registry.counter("churn.parent").set_at_least(churn_total);
        self.registry.counter("drop.retry").set_at_least(retry_drops);
        self.registry.counter("drop.queue").set_at_least(queue_drops);
        self.registry.counter("fwd.data").set_at_least(forwarded);

        // --- per-flow generation deltas + new deliveries ---
        let mut generated_now: BTreeMap<u16, u64> = BTreeMap::new();
        for spec in &config.flows {
            generated_now.insert(spec.id.0, 0);
        }
        let mut delivered_now: BTreeMap<u16, u64> = BTreeMap::new();
        let mut latency_ms = LogHistogram::new();
        for (i, stack) in stacks.iter().enumerate() {
            let t = stack.telemetry();
            for (flow, count) in &t.generated {
                *generated_now.entry(flow.0).or_insert(0) += u64::from(*count);
            }
            let deliveries = &t.deliveries;
            for record in &deliveries[self.delivery_cursor[i]..] {
                let key = (record.packet.flow.0, record.packet.seq);
                if self.seen.insert(key) {
                    *delivered_now.entry(record.packet.flow.0).or_insert(0) += 1;
                    let ms = (record.delivered_at.0 - record.packet.generated_at.0) * SLOT_MS;
                    latency_ms.record(ms);
                    self.latency_run.record(ms);
                }
            }
            self.delivery_cursor[i] = deliveries.len();
        }
        let flows: Vec<FlowEpoch> = generated_now
            .iter()
            .map(|(&flow, &total)| {
                let prev = self.prev_generated.get(&flow).copied().unwrap_or(0);
                FlowEpoch {
                    flow,
                    generated: total - prev,
                    delivered: delivered_now.get(&flow).copied().unwrap_or(0),
                }
            })
            .collect();
        self.prev_generated = generated_now;

        // --- routing/scheduling gauges ---
        let mut etx = StreamingSummary::new();
        let mut trickle_min = u64::MAX;
        let mut trickle_max = 0u64;
        let mut util = StreamingSummary::new();
        for stack in stacks {
            match stack {
                ProtocolStack::Digs(s) => {
                    if s.is_joined() {
                        etx.push(s.routing().etx_w());
                    }
                    let iv = s.routing().trickle_interval();
                    trickle_min = trickle_min.min(iv);
                    trickle_max = trickle_max.max(iv);
                    util.push(digs_scheduling::analysis::slotframe_utilization(
                        s.cell_claims().len(),
                        config.slotframes.app,
                    ));
                }
                ProtocolStack::Orchestra(s) => {
                    if s.is_joined() {
                        etx.push(s.routing().path_etx());
                    }
                }
                ProtocolStack::WirelessHart(s) => {
                    util.push(digs_scheduling::analysis::slotframe_utilization(
                        s.cell_count(),
                        s.superframe_len(),
                    ));
                }
            }
        }
        let mut duty = StreamingSummary::new();
        for meter in engine.energy_meters() {
            duty.push(meter.duty_cycle());
        }

        let g = &mut self.registry;
        g.gauge("queue.max").set(queue_max as i64);
        g.gauge("queue.total").set(queue_total as i64);
        g.gauge("nodes.joined").set(joined as i64);
        g.gauge("nodes.total").set(stacks.len() as i64);
        if trickle_max > 0 {
            g.gauge("trickle.min_slots").set(trickle_min as i64);
            g.gauge("trickle.max_slots").set(trickle_max as i64);
        }
        if let Some(mean_util) = util.mean() {
            // Basis points: gauges are integers so the export stays free
            // of float formatting concerns in the common table views.
            g.gauge("slotframe.util_bp").set((mean_util * 10_000.0).round() as i64);
        }
        // Cumulative attacker hit rate (basis points): how often a jamming
        // burst actually landed on a victim transmission. The defense's
        // goal is to pin this near the 1-in-16 channel-guessing floor.
        if stats.adaptive_jam_opportunities > 0 {
            let rate = stats.adaptive_jam_hits as f64 / stats.adaptive_jam_opportunities as f64;
            g.gauge("jam.hit_rate_bp").set((rate * 10_000.0).round() as i64);
        }
        // Normalized Shannon entropy of this window's per-channel transmit
        // distribution (basis points; 10 000 = perfectly uniform over the
        // 16 channels). Schedule randomization shows up as this staying
        // high; a static schedule under a channel-focused attack drifts
        // low.
        let mut channel_deltas = [0u64; 16];
        for (ch, delta) in channel_deltas.iter_mut().enumerate() {
            *delta = stats.channel_tx[ch] - self.prev_channel_tx[ch];
        }
        self.prev_channel_tx = stats.channel_tx;
        let total_tx: u64 = channel_deltas.iter().sum();
        if total_tx > 0 {
            let entropy: f64 = channel_deltas
                .iter()
                .filter(|&&d| d > 0)
                .map(|&d| {
                    let p = d as f64 / total_tx as f64;
                    -p * p.log2()
                })
                .sum();
            // log2(16) = 4 bits is the uniform maximum.
            g.gauge("chan.entropy_bp").set((entropy / 4.0 * 10_000.0).round() as i64);
        }

        let snapshot = EpochSnapshot {
            epoch,
            asn_start,
            asn_end,
            counters: self.registry.take_counter_deltas(),
            gauges: self.registry.gauge_values(),
            flows,
            latency_ms,
            etx,
            duty_cycle: duty,
        };
        if let Some(pdr) = snapshot.pdr() {
            self.epoch_pdr_min = Some(self.epoch_pdr_min.map_or(pdr, |m: f64| m.min(pdr)));
        }

        let new_alerts = self.check_health(&snapshot, stacks.len(), joined, config);
        self.alerts.extend(new_alerts.iter().cloned());

        self.epochs.push_back(snapshot);
        while self.epochs.len() > self.settings.cap {
            self.epochs.pop_front();
            self.dropped_epochs += 1;
        }
        new_alerts
    }

    /// Evaluates the health rules against one snapshot.
    fn check_health(
        &mut self,
        snap: &EpochSnapshot,
        total_nodes: usize,
        joined: usize,
        config: &NetworkConfig,
    ) -> Vec<HealthAlert> {
        let h = self.health;
        let mut alerts = Vec::new();
        let alert = |rule: HealthRule, detail: String| HealthAlert {
            rule,
            epoch: snap.epoch,
            asn_start: snap.asn_start,
            asn_end: snap.asn_end,
            detail,
        };

        // Convergence bookkeeping: converged once the joined fraction
        // clears the watchdog bar; PDR rules arm a settle time later so
        // formation-phase losses don't read as collapses.
        let fraction = joined as f64 / total_nodes.max(1) as f64;
        if self.convergence == Convergence::Waiting && fraction >= h.converged_fraction {
            self.convergence = Convergence::At(snap.asn_end);
        }
        let armed_at = match self.convergence {
            Convergence::Waiting => None,
            Convergence::At(asn) => Some(asn + h.settle_secs * SLOTS_PER_SECOND),
        };

        // The steady-state rules only arm once the settle time after
        // convergence has passed: graph formation legitimately churns
        // parents, backlogs queues, and loses packets, and alerting on it
        // would make every clean run noisy.
        if armed_at.is_some_and(|armed| snap.asn_start >= armed) {
            let generated = snap.generated();
            if generated >= h.min_generated {
                if let Some(pdr) = snap.pdr() {
                    if pdr < h.pdr_floor {
                        alerts.push(alert(
                            HealthRule::PdrCollapse,
                            format!(
                                "epoch PDR {:.2} < {:.2} ({} delivered / {generated} generated)",
                                pdr,
                                h.pdr_floor,
                                snap.delivered(),
                            ),
                        ));
                    }
                }
            }

            if let Some(churn) = snap.counter("churn.parent") {
                if churn >= h.churn_storm {
                    alerts.push(alert(
                        HealthRule::ChurnStorm,
                        format!(
                            "{churn} parent changes in one epoch (threshold {})",
                            h.churn_storm
                        ),
                    ));
                }
            }

            if let Some(depth) = snap.gauge("queue.max") {
                if depth >= config.queue_capacity as i64 && config.queue_capacity > 0 {
                    alerts.push(alert(
                        HealthRule::QueueSaturation,
                        format!("max queue depth {depth} at capacity {}", config.queue_capacity),
                    ));
                }
            }
        }

        if !self.stall_fired
            && self.convergence == Convergence::Waiting
            && snap.asn_end >= h.stall_secs * SLOTS_PER_SECOND
        {
            self.stall_fired = true;
            alerts.push(alert(
                HealthRule::ConvergenceStall,
                format!(
                    "{joined}/{total_nodes} nodes joined after {} s (need {:.0}%)",
                    snap.asn_end / SLOTS_PER_SECOND,
                    h.converged_fraction * 100.0,
                ),
            ));
        }
        alerts
    }
}

// --- sinks -----------------------------------------------------------------

fn write_histogram_json(out: &mut String, h: &LogHistogram) {
    out.push_str("{\"count\":");
    let _ = write!(out, "{}", h.count());
    if let (Some(min), Some(max)) = (h.min(), h.max()) {
        let _ = write!(out, ",\"min\":{min},\"max\":{max},\"buckets\":[");
        for (i, (idx, count)) in h.sparse().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "[{idx},{count}]");
        }
        out.push(']');
    }
    out.push('}');
}

fn write_summary_json(out: &mut String, s: &StreamingSummary) {
    let _ = write!(out, "{{\"count\":{}", s.count());
    if let (Some(mean), Some(min), Some(max)) = (s.mean(), s.min(), s.max()) {
        let _ = write!(out, ",\"mean\":{mean},\"min\":{min},\"max\":{max}");
    }
    out.push('}');
}

/// Serializes a sampler's full state as deterministic JSONL: one `meta`
/// line, one `epoch` line per retained snapshot, one `alert` line per
/// alert. Float fields use Rust's shortest-round-trip `Display`, so the
/// output is byte-identical for identical runs.
pub fn to_jsonl(sampler: &TelemetrySampler) -> String {
    let mut out = String::new();
    let s = sampler.settings();
    let _ = writeln!(
        out,
        "{{\"type\":\"meta\",\"epoch_slots\":{},\"cap\":{},\"epochs\":{},\"dropped_epochs\":{}}}",
        s.epoch_slots,
        s.cap,
        sampler.next_epoch,
        sampler.dropped_epochs(),
    );
    for e in sampler.epochs() {
        let _ = write!(
            out,
            "{{\"type\":\"epoch\",\"epoch\":{},\"asn_start\":{},\"asn_end\":{}",
            e.epoch, e.asn_start, e.asn_end
        );
        out.push_str(",\"counters\":{");
        for (i, (k, v)) in e.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{k}\":{v}");
        }
        out.push_str("},\"gauges\":{");
        for (i, (k, v)) in e.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{k}\":{v}");
        }
        out.push_str("},\"flows\":[");
        for (i, f) in e.flows.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"flow\":{},\"generated\":{},\"delivered\":{}}}",
                f.flow, f.generated, f.delivered
            );
        }
        out.push_str("],\"latency_ms\":");
        write_histogram_json(&mut out, &e.latency_ms);
        out.push_str(",\"etx\":");
        write_summary_json(&mut out, &e.etx);
        out.push_str(",\"duty_cycle\":");
        write_summary_json(&mut out, &e.duty_cycle);
        out.push_str("}\n");
    }
    for a in sampler.alerts() {
        let _ = write!(
            out,
            "{{\"type\":\"alert\",\"rule\":\"{}\",\"epoch\":{},\"asn_start\":{},\"asn_end\":{},\"detail\":",
            a.rule.as_str(),
            a.epoch,
            a.asn_start,
            a.asn_end
        );
        // Details are generated strings (no quotes/control chars), but
        // escape defensively anyway.
        out.push('"');
        for c in a.detail.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                c if (c as u32) < 0x20 => {
                    let _ = write!(out, "\\u{:04x}", c as u32);
                }
                c => out.push(c),
            }
        }
        out.push_str("\"}\n");
    }
    out
}

/// Serializes the scalar per-epoch series as CSV (fixed column set).
pub fn to_csv(sampler: &TelemetrySampler) -> String {
    let mut out = String::from(
        "epoch,asn_start,asn_end,generated,delivered,pdr,tx_data,nack_data,drop_noise,\
         drop_collision,drop_queue,churn_parent,queue_max,nodes_joined,latency_p50_ms,\
         latency_p99_ms,duty_mean\n",
    );
    for e in sampler.epochs() {
        let pdr = e.pdr().map_or(String::new(), |p| format!("{p:.4}"));
        let p50 = e.latency_ms.quantile(50.0).map_or(String::new(), |v| format!("{v:.1}"));
        let p99 = e.latency_ms.quantile(99.0).map_or(String::new(), |v| format!("{v:.1}"));
        let duty = e.duty_cycle.mean().map_or(String::new(), |v| format!("{v:.6}"));
        let _ = writeln!(
            out,
            "{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{}",
            e.epoch,
            e.asn_start,
            e.asn_end,
            e.generated(),
            e.delivered(),
            pdr,
            e.counter("tx.data").unwrap_or(0),
            e.counter("nack.data").unwrap_or(0),
            e.counter("drop.noise").unwrap_or(0),
            e.counter("drop.collision").unwrap_or(0),
            e.counter("drop.queue").unwrap_or(0),
            e.counter("churn.parent").unwrap_or(0),
            e.gauge("queue.max").unwrap_or(0),
            e.gauge("nodes.joined").unwrap_or(0),
            p50,
            p99,
            duty,
        );
    }
    out
}

/// Renders a per-epoch text report: PDR sparkline plus a compact table,
/// ending with the alert log.
pub fn report(sampler: &TelemetrySampler) -> String {
    let points: Vec<crate::timeline::TimelinePoint> = sampler
        .epochs()
        .map(|e| crate::timeline::TimelinePoint {
            start_secs: e.asn_start as f64 / SLOTS_PER_SECOND as f64,
            generated: e.generated().min(u64::from(u32::MAX)) as u32,
            delivered: e.delivered().min(u64::from(u32::MAX)) as u32,
        })
        .collect();
    let mut out = String::new();
    let s = sampler.settings();
    let _ = writeln!(
        out,
        "telemetry: {} epochs x {} slots ({} retained, {} dropped), {} alerts",
        sampler.next_epoch,
        s.epoch_slots,
        sampler.epochs.len(),
        sampler.dropped_epochs(),
        sampler.alerts().len(),
    );
    let _ = writeln!(out, "pdr: {}", crate::timeline::sparkline(&points));
    let _ = writeln!(
        out,
        "{:>6} {:>10} {:>6} {:>6} {:>6} {:>6} {:>7} {:>7} {:>6}",
        "epoch", "t(s)", "gen", "dlv", "pdr", "churn", "p50ms", "p99ms", "q.max"
    );
    for e in sampler.epochs() {
        let pdr = e.pdr().map_or("-".into(), |p| format!("{p:.2}"));
        let p50 = e.latency_ms.quantile(50.0).map_or("-".into(), |v| format!("{v:.0}"));
        let p99 = e.latency_ms.quantile(99.0).map_or("-".into(), |v| format!("{v:.0}"));
        let _ = writeln!(
            out,
            "{:>6} {:>10.1} {:>6} {:>6} {:>6} {:>6} {:>7} {:>7} {:>6}",
            e.epoch,
            e.asn_start as f64 / SLOTS_PER_SECOND as f64,
            e.generated(),
            e.delivered(),
            pdr,
            e.counter("churn.parent").unwrap_or(0),
            p50,
            p99,
            e.gauge("queue.max").unwrap_or(0),
        );
    }
    for a in sampler.alerts() {
        let _ = writeln!(
            out,
            "ALERT {} epoch {} [{}-{}): {}",
            a.rule.as_str(),
            a.epoch,
            a.asn_start,
            a.asn_end,
            a.detail
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Protocol;
    use digs_sim::topology::Topology;

    fn base_builder() -> crate::config::NetworkConfigBuilder {
        NetworkConfig::builder(Topology::testbed_a_half())
            .protocol(Protocol::Digs)
            .seed(3)
            .random_flows(2, 500, 3)
    }

    #[test]
    fn settings_resolution_prefers_config_over_env() {
        let on = base_builder().telemetry_epoch(1000).telemetry_cap(64).build();
        assert_eq!(
            TelemetrySettings::resolve(&on),
            Some(TelemetrySettings { epoch_slots: 1000, cap: 64 })
        );
        let off_epoch = base_builder().telemetry_epoch(0).telemetry_cap(64).build();
        assert_eq!(TelemetrySettings::resolve(&off_epoch), None);
        let off_cap = base_builder().telemetry_epoch(1000).telemetry_cap(0).build();
        assert_eq!(TelemetrySettings::resolve(&off_cap), None);
    }

    #[test]
    fn rule_names_are_stable() {
        assert_eq!(HealthRule::PdrCollapse.as_str(), "pdr-collapse");
        assert_eq!(HealthRule::ChurnStorm.as_str(), "churn-storm");
        assert_eq!(HealthRule::QueueSaturation.as_str(), "queue-saturation");
        assert_eq!(HealthRule::ConvergenceStall.as_str(), "convergence-stall");
    }

    #[test]
    fn sampler_collects_epochs_and_respects_cap() {
        let config = base_builder().telemetry_epoch(500).telemetry_cap(4).build();
        let mut net = crate::network::Network::new(config);
        net.run_secs(60);
        let tele = net.telemetry().expect("enabled by config");
        assert_eq!(tele.summary().epochs, 12, "60 s / 5 s epochs");
        assert_eq!(tele.epochs().count(), 4, "cap retains the latest 4");
        assert_eq!(tele.dropped_epochs(), 8);
        let last = tele.epochs().last().unwrap();
        assert_eq!(last.epoch, 11);
        assert_eq!(last.asn_end, 6000);
        assert_eq!(last.asn_end - last.asn_start, 500);
        // Engine activity shows up as counter deltas.
        let tx: u64 = tele.epochs().filter_map(|e| e.counter("tx.beacon")).sum();
        assert!(tx > 0, "beacons must appear in the channel counters");
        // Channel-entropy gauge tracks the window's transmit spread, and
        // the jam counters exist (zero) even without an attacker.
        assert!(last.gauge("chan.entropy_bp").is_some_and(|v| v > 0));
        assert_eq!(last.counter("jam.hits"), Some(0));
        assert!(last.gauge("jam.hit_rate_bp").is_none(), "no attacker, no hit rate");
    }

    #[test]
    fn disabled_config_builds_no_sampler() {
        let config = base_builder().telemetry_epoch(0).build();
        let net = crate::network::Network::new(config);
        assert!(net.telemetry().is_none(), "cadence 0 must not allocate a sampler");
    }

    #[test]
    fn jsonl_csv_and_report_render() {
        let config = base_builder().telemetry_epoch(1000).telemetry_cap(64).build();
        let mut net = crate::network::Network::new(config);
        net.run_secs(120);
        let tele = net.telemetry().unwrap();
        let jsonl = to_jsonl(tele);
        assert!(jsonl.starts_with("{\"type\":\"meta\""));
        assert!(jsonl.matches("\"type\":\"epoch\"").count() == 12);
        let csv = to_csv(tele);
        assert_eq!(csv.lines().count(), 13, "header + 12 epochs");
        let text = report(tele);
        assert!(text.contains("telemetry: 12 epochs"));
    }
}
