//! Time-resolved views of a run: windowed PDR series showing how delivery
//! evolves through jam onset, repair, and recovery (the time axis behind
//! the paper's Fig. 9(f)/11(b) micro-benchmarks).

use crate::flows::FlowSpec;
use crate::results::RunResults;
use digs_sim::time::Asn;

/// One point of a windowed delivery series.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct TimelinePoint {
    /// Window start, seconds into the run.
    pub start_secs: f64,
    /// Packets generated in the window (across the selected flows).
    pub generated: u32,
    /// Of those, packets that were eventually delivered.
    pub delivered: u32,
}

impl TimelinePoint {
    /// Delivery ratio of the window (`None` for an empty window).
    pub fn pdr(&self) -> Option<f64> {
        if self.generated == 0 {
            None
        } else {
            Some(f64::from(self.delivered) / f64::from(self.generated))
        }
    }
}

/// Computes the network-wide windowed delivery series for a run.
///
/// Each packet is attributed to the window containing its *generation*
/// time (so a window's PDR answers: of the packets born here, how many
/// made it — the paper's per-packet micro-benchmark view, aggregated).
///
/// # Panics
///
/// Panics if `window_secs` is zero or `specs` doesn't match the run's
/// flows.
pub fn delivery_timeline(
    results: &RunResults,
    specs: &[FlowSpec],
    window_secs: u64,
) -> Vec<TimelinePoint> {
    assert!(window_secs > 0, "window must be positive");
    assert_eq!(specs.len(), results.flows.len(), "one spec per flow result required");
    let window_slots = Asn::from_secs(window_secs).0;
    let horizon = results.duration.0;
    let n_windows = horizon.div_ceil(window_slots) as usize;
    let mut points: Vec<TimelinePoint> = (0..n_windows)
        .map(|w| TimelinePoint {
            start_secs: (w as u64 * window_slots) as f64 / 100.0,
            generated: 0,
            delivered: 0,
        })
        .collect();
    for (flow, spec) in results.flows.iter().zip(specs) {
        assert_eq!(flow.flow, spec.id, "flow order mismatch");
        for seq in 0..flow.generated {
            let born = spec.phase + u64::from(seq) * spec.period;
            let w = (born / window_slots) as usize;
            if w >= points.len() {
                continue;
            }
            points[w].generated += 1;
            if flow.seq_delivered(seq) {
                points[w].delivered += 1;
            }
        }
    }
    points
}

/// Renders a timeline as a compact text sparkline: one glyph per window
/// (`█` ≥ 99 %, `▆` ≥ 90 %, `▄` ≥ 70 %, `▂` ≥ 40 %, `·` below, space for
/// idle windows).
pub fn sparkline(points: &[TimelinePoint]) -> String {
    points
        .iter()
        .map(|p| match p.pdr() {
            None => ' ',
            Some(r) if r >= 0.99 => '█',
            Some(r) if r >= 0.90 => '▆',
            Some(r) if r >= 0.70 => '▄',
            Some(r) if r >= 0.40 => '▂',
            Some(_) => '·',
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::results::FlowResult;
    use digs_sim::ids::{FlowId, NodeId};

    fn results_with(generated: u32, delivered: &[u32], duration_secs: u64) -> RunResults {
        RunResults {
            duration: Asn::from_secs(duration_secs),
            flows: vec![FlowResult {
                flow: FlowId(0),
                source: NodeId(5),
                generated,
                delivered: delivered.len() as u32,
                delivered_seqs: delivered.iter().copied().collect(),
                latencies_ms: vec![100.0; delivered.len()],
            }],
            nodes: Vec::new(),
            parent_change_times: Vec::new(),
            retry_drops: 0,
            queue_drops: 0,
            invariant_violations: Vec::new(),
        }
    }

    fn spec() -> FlowSpec {
        // One packet per 10 s, starting at t = 0.
        FlowSpec { id: FlowId(0), source: NodeId(5), period: 1000, phase: 0 }
    }

    #[test]
    fn packets_fall_into_generation_windows() {
        // 6 packets over 60 s; packets 2 and 3 lost.
        let results = results_with(6, &[0, 1, 4, 5], 60);
        let timeline = delivery_timeline(&results, &[spec()], 20);
        assert_eq!(timeline.len(), 3);
        // Window 0 (0–20 s): seqs 0, 1 → both delivered.
        assert_eq!(timeline[0].generated, 2);
        assert_eq!(timeline[0].delivered, 2);
        // Window 1 (20–40 s): seqs 2, 3 → both lost.
        assert_eq!(timeline[1].generated, 2);
        assert_eq!(timeline[1].delivered, 0);
        assert_eq!(timeline[1].pdr(), Some(0.0));
        // Window 2 (40–60 s): seqs 4, 5 → both delivered.
        assert_eq!(timeline[2].pdr(), Some(1.0));
    }

    #[test]
    fn empty_window_has_no_pdr() {
        let results = results_with(1, &[0], 60);
        let timeline = delivery_timeline(&results, &[spec()], 20);
        assert_eq!(timeline[0].pdr(), Some(1.0));
        assert_eq!(timeline[1].pdr(), None, "no packets born in window 1");
    }

    #[test]
    fn sparkline_encodes_ratios() {
        let results = results_with(6, &[0, 1, 4], 60);
        let timeline = delivery_timeline(&results, &[spec()], 20);
        let line = sparkline(&timeline);
        assert_eq!(line.chars().count(), 3);
        assert!(line.starts_with('█'));
        assert!(line.contains('·'));
    }

    #[test]
    #[should_panic(expected = "one spec per flow result")]
    fn mismatched_specs_panic() {
        let results = results_with(1, &[0], 10);
        let _ = delivery_timeline(&results, &[], 10);
    }
}
