//! Run results: the paper's metrics computed from stack telemetry and the
//! engine's energy meters.

use digs_sim::ids::{FlowId, NodeId};
use digs_sim::time::Asn;
use std::collections::BTreeSet;

/// Per-flow outcome of a run.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct FlowResult {
    /// The flow.
    pub flow: FlowId,
    /// Its source device.
    pub source: NodeId,
    /// Packets the source generated.
    pub generated: u32,
    /// Distinct packets that reached an access point.
    pub delivered: u32,
    /// Sequence numbers delivered (for the Fig. 9f / 11b micro-benchmarks).
    pub delivered_seqs: BTreeSet<u32>,
    /// End-to-end latency of each delivered packet (first copy), in ms.
    pub latencies_ms: Vec<f64>,
}

impl FlowResult {
    /// End-to-end packet delivery ratio of the flow.
    pub fn pdr(&self) -> f64 {
        if self.generated == 0 {
            // A flow that generated nothing delivered everything it had.
            1.0
        } else {
            f64::from(self.delivered) / f64::from(self.generated)
        }
    }

    /// Whether the packet with sequence number `seq` was delivered.
    pub fn seq_delivered(&self, seq: u32) -> bool {
        self.delivered_seqs.contains(&seq)
    }

    /// Mean end-to-end latency in ms, or `None` if nothing was delivered.
    pub fn mean_latency_ms(&self) -> Option<f64> {
        if self.latencies_ms.is_empty() {
            None
        } else {
            Some(self.latencies_ms.iter().sum::<f64>() / self.latencies_ms.len() as f64)
        }
    }
}

/// Per-node outcome of a run.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct NodeResult {
    /// The node.
    pub node: NodeId,
    /// Radio energy consumed, mJ.
    pub energy_mj: f64,
    /// Mean radio power, mW.
    pub mean_power_mw: f64,
    /// Radio duty cycle in `[0, 1]`.
    pub duty_cycle: f64,
    /// Microseconds the radio spent transmitting (energy breakdown).
    pub tx_us: u64,
    /// Microseconds the radio spent in receive/listen (energy breakdown).
    pub rx_us: u64,
    /// When the node joined the network (synced + parents), if it did.
    pub joined_at: Option<Asn>,
    /// Number of parent-set changes.
    pub parent_changes: usize,
}

/// The complete outcome of one network run.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct RunResults {
    /// Run duration.
    pub duration: Asn,
    /// Per-flow results, ordered by flow id.
    pub flows: Vec<FlowResult>,
    /// Per-node results, ordered by node id.
    pub nodes: Vec<NodeResult>,
    /// Every parent-change timestamp across all nodes (repair analysis).
    pub parent_change_times: Vec<Asn>,
    /// Packets dropped after exhausting retries, network-wide.
    pub retry_drops: u64,
    /// Packets dropped on queue overflow, network-wide.
    pub queue_drops: u64,
    /// Invariant violations recorded by the runtime auditor (empty when the
    /// run was not audited — see [`crate::network::Network::run_audited`]).
    pub invariant_violations: Vec<crate::audit::InvariantViolation>,
}

impl RunResults {
    /// Mean PDR across flows — the flow-set PDR the paper's CDFs sample.
    pub fn network_pdr(&self) -> f64 {
        if self.flows.is_empty() {
            return 1.0;
        }
        self.flows.iter().map(FlowResult::pdr).sum::<f64>() / self.flows.len() as f64
    }

    /// The worst per-flow PDR.
    pub fn worst_flow_pdr(&self) -> f64 {
        self.flows.iter().map(FlowResult::pdr).fold(1.0, f64::min)
    }

    /// All delivered-packet latencies, ms.
    pub fn all_latencies_ms(&self) -> Vec<f64> {
        self.flows.iter().flat_map(|f| f.latencies_ms.iter().copied()).collect()
    }

    /// Median end-to-end latency, ms.
    pub fn median_latency_ms(&self) -> Option<f64> {
        let mut l = self.all_latencies_ms();
        if l.is_empty() {
            return None;
        }
        l.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        Some(digs_metrics::stats::percentile_sorted(&l, 50.0))
    }

    /// Total packets delivered.
    pub fn total_delivered(&self) -> u32 {
        self.flows.iter().map(|f| f.delivered).sum()
    }

    /// Total packets generated.
    pub fn total_generated(&self) -> u32 {
        self.flows.iter().map(|f| f.generated).sum()
    }

    /// Total network radio power (sum of per-node mean power), mW.
    pub fn total_mean_power_mw(&self) -> f64 {
        self.nodes.iter().map(|n| n.mean_power_mw).sum()
    }

    /// The paper's energy metric: network radio power divided by packets
    /// received, mW per packet (Figs. 9e, 10c, 11c). Infinite if nothing
    /// was delivered — exactly the regime where Orchestra's node-failure
    /// number explodes in Fig. 11c.
    pub fn power_per_received_packet_mw(&self) -> f64 {
        let delivered = self.total_delivered();
        if delivered == 0 {
            f64::INFINITY
        } else {
            self.total_mean_power_mw() / f64::from(delivered)
        }
    }

    /// Mean per-node radio duty cycle, percent.
    pub fn mean_duty_cycle_percent(&self) -> f64 {
        if self.nodes.is_empty() {
            return 0.0;
        }
        self.nodes.iter().map(|n| n.duty_cycle).sum::<f64>() / self.nodes.len() as f64 * 100.0
    }

    /// The paper's Fig. 12c metric: mean radio duty cycle (percent) divided
    /// by packets received.
    pub fn duty_cycle_per_received_packet(&self) -> f64 {
        let delivered = self.total_delivered();
        if delivered == 0 {
            f64::INFINITY
        } else {
            self.mean_duty_cycle_percent() / f64::from(delivered)
        }
    }

    /// Join times of all nodes that joined, in seconds (Fig. 13).
    pub fn join_times_secs(&self) -> Vec<f64> {
        self.nodes.iter().filter_map(|n| n.joined_at).map(|asn| asn.as_secs_f64()).collect()
    }

    /// Fraction of nodes that joined.
    pub fn fraction_joined(&self) -> f64 {
        if self.nodes.is_empty() {
            return 0.0;
        }
        self.nodes.iter().filter(|n| n.joined_at.is_some()).count() as f64 / self.nodes.len() as f64
    }

    /// Network repair time after an event at `event`: the time until the
    /// last parent change that is followed by at least `settle` quiet slots,
    /// in seconds. `None` if no repair activity followed the event (either
    /// nothing was disturbed, or the protocol routed around it without any
    /// parent change — instantaneous repair).
    pub fn repair_time_secs(&self, event: Asn, settle: u64) -> Option<f64> {
        let mut changes: Vec<u64> =
            self.parent_change_times.iter().filter(|t| **t >= event).map(|t| t.0).collect();
        changes.sort_unstable();
        changes.dedup();
        if changes.is_empty() {
            return None;
        }
        // Walk forward to the first change followed by at least `settle`
        // quiet slots (the end of the run counts as quiet): that marks the
        // end of the post-event reconfiguration burst.
        for i in 0..changes.len() {
            let quiet_until = changes.get(i + 1).copied().unwrap_or(self.duration.0);
            if quiet_until.saturating_sub(changes[i]) >= settle {
                let slots = changes[i].saturating_sub(event.0);
                return Some(slots as f64 * digs_sim::time::SLOT_MS as f64 / 1000.0);
            }
        }
        // Still churning at the end of the run: report the last change.
        let slots = changes.last().expect("non-empty").saturating_sub(event.0);
        Some(slots as f64 * digs_sim::time::SLOT_MS as f64 / 1000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flow(generated: u32, delivered_seqs: &[u32], latency: f64) -> FlowResult {
        FlowResult {
            flow: FlowId(0),
            source: NodeId(5),
            generated,
            delivered: delivered_seqs.len() as u32,
            delivered_seqs: delivered_seqs.iter().copied().collect(),
            latencies_ms: vec![latency; delivered_seqs.len()],
        }
    }

    fn node(power: f64, duty: f64, joined: Option<u64>) -> NodeResult {
        NodeResult {
            node: NodeId(0),
            energy_mj: power * 10.0,
            mean_power_mw: power,
            duty_cycle: duty,
            tx_us: 0,
            rx_us: 0,
            joined_at: joined.map(Asn),
            parent_changes: 0,
        }
    }

    fn results(flows: Vec<FlowResult>, nodes: Vec<NodeResult>) -> RunResults {
        RunResults {
            duration: Asn::from_secs(100),
            flows,
            nodes,
            parent_change_times: Vec::new(),
            retry_drops: 0,
            queue_drops: 0,
            invariant_violations: Vec::new(),
        }
    }

    #[test]
    fn pdr_arithmetic() {
        let r = results(
            vec![flow(10, &[0, 1, 2, 3, 4], 100.0), flow(10, &(0..10).collect::<Vec<_>>(), 50.0)],
            vec![],
        );
        assert!((r.network_pdr() - 0.75).abs() < 1e-12);
        assert!((r.worst_flow_pdr() - 0.5).abs() < 1e-12);
        assert_eq!(r.total_delivered(), 15);
        assert_eq!(r.total_generated(), 20);
    }

    #[test]
    fn empty_flow_counts_as_perfect() {
        let f = flow(0, &[], 0.0);
        assert_eq!(f.pdr(), 1.0);
    }

    #[test]
    fn power_per_packet() {
        let r = results(
            vec![flow(10, &[0, 1, 2, 3, 4], 100.0)],
            vec![node(2.0, 0.01, Some(100)), node(3.0, 0.02, Some(200))],
        );
        assert!((r.total_mean_power_mw() - 5.0).abs() < 1e-12);
        assert!((r.power_per_received_packet_mw() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn power_per_packet_infinite_when_disconnected() {
        let r = results(vec![flow(10, &[], 0.0)], vec![node(2.0, 0.01, None)]);
        assert!(r.power_per_received_packet_mw().is_infinite());
        assert!(r.duty_cycle_per_received_packet().is_infinite());
    }

    #[test]
    fn join_times() {
        let r = results(vec![], vec![node(1.0, 0.0, Some(1500)), node(1.0, 0.0, None)]);
        assert_eq!(r.join_times_secs(), vec![15.0]);
        assert!((r.fraction_joined() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn latency_median() {
        let mut r = results(vec![flow(4, &[0, 1], 100.0)], vec![]);
        r.flows[0].latencies_ms = vec![100.0, 300.0];
        assert_eq!(r.median_latency_ms(), Some(200.0));
        let empty = results(vec![flow(4, &[], 0.0)], vec![]);
        assert_eq!(empty.median_latency_ms(), None);
    }

    #[test]
    fn repair_time_finds_settled_change() {
        let mut r = results(vec![], vec![]);
        // Event at 1000; changes at 1100, 1150, 1200; quiet afterwards.
        r.parent_change_times = vec![Asn(1100), Asn(1150), Asn(1200)];
        r.duration = Asn(10_000);
        let t = r.repair_time_secs(Asn(1000), 500).expect("repaired");
        assert!((t - 2.0).abs() < 1e-9, "repair at 1200 − event 1000 = 200 slots = 2 s, got {t}");
    }

    #[test]
    fn repair_time_none_without_changes() {
        let r = results(vec![], vec![]);
        assert_eq!(r.repair_time_secs(Asn(1000), 500), None);
    }

    #[test]
    fn seq_delivered_queries() {
        let f = flow(5, &[0, 2, 4], 10.0);
        assert!(f.seq_delivered(0));
        assert!(!f.seq_delivered(1));
        assert!(f.seq_delivered(4));
    }
}
