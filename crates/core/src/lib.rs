//! # digs — Distributed Graph routing and autonomous Scheduling
//!
//! A from-scratch reproduction of **DiGS** (Shi, Sha, Yang — ICDCS 2018):
//! the first distributed graph-routing and autonomous-scheduling solution
//! for industrial wireless sensor-actuator networks, which lets every field
//! device compute its own WirelessHART-style graph routes (a primary and a
//! backup parent) and its own TSCH transmission schedule with no central
//! Network Manager.
//!
//! This crate wires the building blocks together and adds the experiment
//! harness used to regenerate every figure in the paper's evaluation:
//!
//! - [`stack`] — full per-node protocol stacks (DiGS and the Orchestra
//!   baseline) driving the [`digs_sim`] engine;
//! - [`flows`] — end-to-end data flows and flow-set generation;
//! - [`network`] — builds a network (topology + stacks + engine) from a
//!   [`config::NetworkConfig`] and runs it;
//! - [`results`] — per-flow and network-level metrics (PDR, latency, power
//!   per received packet, duty cycle, join time, repair time);
//! - [`scenarios`] — the paper's canonical setups (Testbed A/B,
//!   interference, node failure, 150-node large-scale);
//! - [`experiment`] — repeated flow-set experiment runners.
//!
//! # Quickstart
//!
//! ```
//! use digs::config::{NetworkConfig, Protocol};
//! use digs::network::Network;
//!
//! // A small DiGS network on the Testbed A half-floor layout, one flow.
//! let config = NetworkConfig::builder(digs_sim::topology::Topology::testbed_a_half())
//!     .protocol(Protocol::Digs)
//!     .seed(7)
//!     .flows_from_sources(&[digs_sim::ids::NodeId(12)], 500)
//!     .build();
//! let mut network = Network::new(config);
//! network.run_secs(60);
//! let results = network.results();
//! assert!(results.network_pdr() > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod audit;
pub mod config;
pub mod experiment;
pub mod flows;
pub mod network;
pub mod payload;
pub mod queue;
pub mod results;
pub mod scenarios;
pub mod stack;
pub mod telemetry;
pub mod timeline;
pub mod watchdog;

pub use config::{NetworkConfig, Protocol};
pub use network::Network;
pub use results::RunResults;
