//! Convergence watchdog: per-fault recovery analysis for chaos runs.
//!
//! The chaos layer ([`digs_sim::fault::ChaosPlan`]) injects a randomized
//! stream of churn, reboots, link flaps, desyncs, and jammer bursts; this
//! module answers, for each injected event, the questions the paper's
//! Fig. 9(f)/11(b) micro-benchmarks answer for a single event: how long
//! until the network recovered (windowed PDR back near its pre-event
//! baseline *and* the routing graph quiet again), how gracefully it
//! degraded in the valley (minimum windowed PDR, packets lost), and —
//! crucially for a soak test — whether it recovered at all before the run
//! ended.

use crate::flows::FlowSpec;
use crate::results::RunResults;
use crate::timeline::delivery_timeline;
use digs_sim::fault::ChaosEvent;
use digs_sim::time::Asn;

/// Tunables for the recovery analysis.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct WatchdogConfig {
    /// PDR windowing granularity, seconds.
    pub window_secs: u64,
    /// How long the routing graph must stay free of parent changes to
    /// count as quiet, seconds.
    pub settle_secs: u64,
    /// Fraction of the pre-event baseline PDR that counts as "restored".
    pub restore_fraction: f64,
}

impl Default for WatchdogConfig {
    fn default() -> WatchdogConfig {
        WatchdogConfig { window_secs: 10, settle_secs: 10, restore_fraction: 0.9 }
    }
}

/// A fault event the watchdog tracks recovery from.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct WatchdogEvent {
    /// Human-readable description of the injected fault.
    pub label: String,
    /// Injection time.
    pub at: Asn,
}

/// Adapts a chaos plan's event log into watchdog events.
pub fn events_from_chaos(events: &[ChaosEvent]) -> Vec<WatchdogEvent> {
    events
        .iter()
        .map(|e| WatchdogEvent {
            label: match e.peer {
                Some(peer) => format!("{:?} node {} peer {}", e.kind, e.node.0, peer.0),
                None => format!("{:?} node {}", e.kind, e.node.0),
            },
            at: e.from,
        })
        .collect()
}

/// Recovery outcome for one injected fault.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct RecoveryReport {
    /// The fault this report covers.
    pub event: WatchdogEvent,
    /// Time until windowed PDR climbed back above the restore threshold,
    /// seconds after injection (`None`: never before the run ended).
    pub pdr_restored_secs: Option<f64>,
    /// Time until the routing graph went quiet (no parent change for
    /// `settle_secs`), seconds after injection (`None`: still churning at
    /// the end of the run).
    pub graph_quiet_secs: Option<f64>,
    /// Overall time to recovery: both PDR restored and graph quiet
    /// (`None` when either never happened — non-convergence).
    pub recovery_secs: Option<f64>,
    /// Minimum windowed PDR observed between injection and recovery (the
    /// valley floor; `1.0` when no window dipped).
    pub min_window_pdr: f64,
    /// Packets generated in the valley that never arrived.
    pub packets_lost_in_valley: u32,
    /// Whether the network demonstrably recovered from this fault.
    pub converged: bool,
}

/// Aggregate of a whole chaos run.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct WatchdogSummary {
    /// Number of injected events analyzed.
    pub events: usize,
    /// How many of them the network recovered from.
    pub converged: usize,
    /// The slowest observed recovery, seconds.
    pub worst_recovery_secs: Option<f64>,
    /// The deepest PDR valley across all events.
    pub min_window_pdr: f64,
    /// Total packets lost across all valleys.
    pub total_packets_lost: u32,
}

impl WatchdogSummary {
    /// Whether every injected fault was recovered from.
    pub fn all_converged(&self) -> bool {
        self.converged == self.events
    }
}

/// Analyzes recovery from each injected fault.
///
/// The pre-event baseline is the mean windowed PDR over the non-empty
/// windows that closed before the event; a fault injected before any
/// traffic flowed is measured against a baseline of 1.0.
///
/// # Panics
///
/// Panics if `specs` doesn't match the run's flows or the configured
/// window is zero (see [`delivery_timeline`]).
pub fn analyze(
    results: &RunResults,
    specs: &[FlowSpec],
    events: &[WatchdogEvent],
    config: &WatchdogConfig,
) -> Vec<RecoveryReport> {
    let timeline = delivery_timeline(results, specs, config.window_secs);
    let window_slots = Asn::from_secs(config.window_secs).0;
    let settle_slots = Asn::from_secs(config.settle_secs).0;

    let mut changes: Vec<u64> = results.parent_change_times.iter().map(|t| t.0).collect();
    changes.sort_unstable();
    changes.dedup();

    events
        .iter()
        .map(|event| {
            let at = event.at.0;
            let event_window = (at / window_slots) as usize;

            // Baseline: mean PDR over complete pre-event windows.
            let pre: Vec<f64> = timeline[..event_window.min(timeline.len())]
                .iter()
                .filter_map(|p| p.pdr())
                .collect();
            let baseline =
                if pre.is_empty() { 1.0 } else { pre.iter().sum::<f64>() / pre.len() as f64 };
            let threshold = baseline * config.restore_fraction;

            // PDR restored: the first window at/after the event whose PDR
            // meets the threshold; restoration is credited at the window's
            // close (the full window is the evidence).
            let restore_window = timeline
                .iter()
                .enumerate()
                .skip(event_window)
                .find(|(_, p)| p.pdr().is_some_and(|r| r >= threshold))
                .map(|(w, _)| w);
            let pdr_restored_slots = restore_window.map(|w| {
                let close = (w as u64 + 1) * window_slots;
                close.saturating_sub(at)
            });

            // Graph quiet: the last parent change of the post-event burst
            // that is followed by `settle_secs` of silence (the end of the
            // run counts as silence only if the remaining gap is long
            // enough — otherwise the graph may still be churning).
            let post: Vec<u64> = changes.iter().copied().filter(|t| *t >= at).collect();
            let graph_quiet_slots = if post.is_empty() {
                Some(0)
            } else {
                let mut quiet = None;
                for (i, t) in post.iter().enumerate() {
                    let next = post.get(i + 1).copied().unwrap_or(results.duration.0);
                    if next.saturating_sub(*t) >= settle_slots {
                        quiet = Some(t.saturating_sub(at));
                        break;
                    }
                }
                quiet
            };

            let recovery_slots = match (pdr_restored_slots, graph_quiet_slots) {
                (Some(p), Some(g)) => Some(p.max(g)),
                _ => None,
            };

            // Valley: the windows from injection until restoration (or the
            // end of the run when PDR never came back).
            let valley_end = restore_window.map_or(timeline.len(), |w| w + 1);
            let valley = &timeline[event_window.min(timeline.len())..valley_end];
            let min_window_pdr = valley.iter().filter_map(|p| p.pdr()).fold(1.0, f64::min);
            let packets_lost_in_valley = valley.iter().map(|p| p.generated - p.delivered).sum();

            let secs = |slots: u64| slots as f64 / digs_sim::time::SLOTS_PER_SECOND as f64;
            RecoveryReport {
                event: event.clone(),
                pdr_restored_secs: pdr_restored_slots.map(secs),
                graph_quiet_secs: graph_quiet_slots.map(secs),
                recovery_secs: recovery_slots.map(secs),
                min_window_pdr,
                packets_lost_in_valley,
                converged: recovery_slots.is_some(),
            }
        })
        .collect()
}

/// Aggregates per-event reports into a run-level summary.
pub fn summarize(reports: &[RecoveryReport]) -> WatchdogSummary {
    WatchdogSummary {
        events: reports.len(),
        converged: reports.iter().filter(|r| r.converged).count(),
        worst_recovery_secs: reports
            .iter()
            .filter_map(|r| r.recovery_secs)
            .fold(None, |acc: Option<f64>, s| Some(acc.map_or(s, |a| a.max(s)))),
        min_window_pdr: reports.iter().map(|r| r.min_window_pdr).fold(1.0, f64::min),
        total_packets_lost: reports.iter().map(|r| r.packets_lost_in_valley).sum(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::results::FlowResult;
    use digs_sim::ids::{FlowId, NodeId};

    /// One flow, one packet per second for `secs` seconds, with the given
    /// sequence numbers lost.
    fn results_with_losses(secs: u64, lost: &[u32]) -> (RunResults, Vec<FlowSpec>) {
        let generated = secs as u32;
        let delivered_seqs: std::collections::BTreeSet<u32> =
            (0..generated).filter(|s| !lost.contains(s)).collect();
        let results = RunResults {
            duration: Asn::from_secs(secs),
            flows: vec![FlowResult {
                flow: FlowId(0),
                source: NodeId(9),
                generated,
                delivered: delivered_seqs.len() as u32,
                delivered_seqs,
                latencies_ms: Vec::new(),
            }],
            nodes: Vec::new(),
            parent_change_times: Vec::new(),
            retry_drops: 0,
            queue_drops: 0,
            invariant_violations: Vec::new(),
        };
        let specs = vec![FlowSpec { id: FlowId(0), source: NodeId(9), period: 100, phase: 0 }];
        (results, specs)
    }

    fn config() -> WatchdogConfig {
        WatchdogConfig { window_secs: 5, settle_secs: 5, restore_fraction: 0.9 }
    }

    #[test]
    fn clean_recovery_is_measured() {
        // Seqs 20..30 lost (valley at 20–30 s); parent churn at 20.5 s and
        // 22 s, then quiet.
        let (mut results, specs) = results_with_losses(60, &(20..30).collect::<Vec<_>>());
        results.parent_change_times = vec![Asn(2050), Asn(2200)];
        let event = WatchdogEvent { label: "outage".into(), at: Asn(2000) };
        let report = &analyze(&results, &specs, &[event], &config())[0];
        assert!(report.converged);
        // PDR back in the 30–35 s window (closes at 35 s → 15 s after the
        // 20 s event); graph quiet at 22 s (2 s after).
        assert_eq!(report.pdr_restored_secs, Some(15.0));
        assert_eq!(report.graph_quiet_secs, Some(2.0));
        assert_eq!(report.recovery_secs, Some(15.0));
        assert_eq!(report.min_window_pdr, 0.0);
        assert_eq!(report.packets_lost_in_valley, 10);
    }

    #[test]
    fn unrecovered_pdr_flags_non_convergence() {
        // Everything from 20 s onward is lost: PDR never restored.
        let (results, specs) = results_with_losses(60, &(20..60).collect::<Vec<_>>());
        let event = WatchdogEvent { label: "perma".into(), at: Asn(2000) };
        let report = &analyze(&results, &specs, &[event], &config())[0];
        assert!(!report.converged);
        assert_eq!(report.pdr_restored_secs, None);
        assert_eq!(report.recovery_secs, None);
        assert_eq!(report.packets_lost_in_valley, 40);
    }

    #[test]
    fn churn_to_the_end_flags_non_convergence() {
        // PDR untouched, but parent changes every 2 s to the end of the
        // run: the graph never goes quiet.
        let (mut results, specs) = results_with_losses(60, &[]);
        results.parent_change_times = (2000..6000).step_by(200).map(Asn).collect();
        let event = WatchdogEvent { label: "churny".into(), at: Asn(2000) };
        let report = &analyze(&results, &specs, &[event], &config())[0];
        assert!(report.pdr_restored_secs.is_some());
        assert_eq!(report.graph_quiet_secs, None);
        assert!(!report.converged);
    }

    #[test]
    fn no_impact_recovers_within_one_window() {
        let (results, specs) = results_with_losses(60, &[]);
        let event = WatchdogEvent { label: "dud".into(), at: Asn(2000) };
        let report = &analyze(&results, &specs, &[event], &config())[0];
        assert!(report.converged);
        assert_eq!(report.graph_quiet_secs, Some(0.0));
        // The event's own window already meets the threshold; restoration
        // is credited at its close (25 s → 5 s after the 20 s event).
        assert_eq!(report.pdr_restored_secs, Some(5.0));
        assert_eq!(report.min_window_pdr, 1.0);
        assert_eq!(report.packets_lost_in_valley, 0);
    }

    #[test]
    fn summary_aggregates_reports() {
        let (mut results, specs) = results_with_losses(60, &(20..30).collect::<Vec<_>>());
        results.parent_change_times = vec![Asn(2050)];
        let events = vec![
            WatchdogEvent { label: "a".into(), at: Asn(2000) },
            WatchdogEvent { label: "b".into(), at: Asn(2600) },
        ];
        let reports = analyze(&results, &specs, &events, &config());
        let summary = summarize(&reports);
        assert_eq!(summary.events, 2);
        assert!(summary.all_converged());
        assert_eq!(summary.min_window_pdr, 0.0);
        assert!(summary.worst_recovery_secs.is_some());
    }

    #[test]
    fn chaos_events_adapt_with_labels() {
        use digs_sim::fault::{ChaosEvent, ChaosEventKind};
        let events = vec![ChaosEvent {
            kind: ChaosEventKind::LinkFlap,
            node: NodeId(7),
            peer: Some(NodeId(9)),
            from: Asn(500),
            until: Some(Asn(900)),
        }];
        let adapted = events_from_chaos(&events);
        assert_eq!(adapted.len(), 1);
        assert!(adapted[0].label.contains("LinkFlap"));
        assert!(adapted[0].label.contains('7'));
        assert_eq!(adapted[0].at, Asn(500));
    }
}
