//! The paper's canonical experiment scenarios.
//!
//! Each function builds a [`NetworkConfig`] matching one of the evaluation
//! setups in Section VII:
//!
//! - **Testbed A under interference**: 50 nodes, 8 flows @ 5 s, three
//!   jammers emulating WiFi data streaming at elevated power (Fig. 9);
//! - **Testbed B under interference**: 44 nodes over two floors, 6 flows
//!   (Fig. 10);
//! - **Testbed A with node failure**: four routing-graph nodes switched
//!   off in turn (Fig. 11);
//! - **Large scale**: 150 nodes + 2 APs in 300 m × 300 m, 20 flows @ 10 s,
//!   five disturbers toggling every 5 minutes (Fig. 12);
//! - **Initialization**: a cold-start network for join-time CDFs (Fig. 13).

use crate::config::{NetworkConfig, Protocol};
use crate::flows::random_flow_set;
use digs_sim::fault::FaultPlan;
use digs_sim::ids::NodeId;
use digs_sim::interference::Jammer;
use digs_sim::position::Position;
use digs_sim::rf::RfConfig;
use digs_sim::time::Asn;
use digs_sim::topology::{Role, Topology};

/// Seconds of warm-up before flows start generating (network formation
/// takes ~15–25 s; the paper measures steady-state flows).
pub const WARMUP_SECS: u64 = 60;

/// When jammers switch on, seconds into the run.
pub const JAM_START_SECS: u64 = 120;

/// Shifts every flow's phase past the warm-up window.
fn delay_flows(mut flows: Vec<crate::flows::FlowSpec>, secs: u64) -> Vec<crate::flows::FlowSpec> {
    for f in &mut flows {
        f.phase += secs * 100;
    }
    flows
}

/// Jammer placements inside Testbed A's 60 m × 30 m floor — three spots
/// spread across the building, mirroring Fig. 8(a).
fn testbed_a_jammers(count: usize) -> Vec<Jammer> {
    let spots = [
        Position::new(18.0, 10.0),
        Position::new(36.0, 20.0),
        Position::new(48.0, 8.0),
        Position::new(10.0, 22.0),
    ];
    let wifi_channels = [1u8, 6, 11, 6];
    (0..count.min(spots.len()))
        .map(|i| {
            let mut j = Jammer::wifi(spots[i], wifi_channels[i], Asn::from_secs(JAM_START_SECS));
            // "we configure the nodes running JamLab to transmit at higher
            // transmission powers": JamLab runs on TelosB motes, whose
            // CC2420 caps at 0 dBm — "higher" is relative to the reduced
            // power typically used in dense testbeds.
            j.tx_power = digs_sim::rf::Dbm(0.0);
            j
        })
        .collect()
}

/// Testbed B jammer placements (nodes 124, 141, 138 in Fig. 8(b) — one
/// per floor plus one near the stairwell).
fn testbed_b_jammers() -> Vec<Jammer> {
    let spots = [
        Position::with_height(15.0, 12.0, 0.0),
        Position::with_height(30.0, 8.0, 4.0),
        Position::with_height(38.0, 18.0, 0.0),
    ];
    let wifi_channels = [1u8, 6, 11];
    spots
        .iter()
        .zip(wifi_channels)
        .map(|(p, ch)| {
            let mut j = Jammer::wifi(*p, ch, Asn::from_secs(JAM_START_SECS));
            j.tx_power = digs_sim::rf::Dbm(0.0);
            j
        })
        .collect()
}

/// Fig. 9 scenario: Testbed A, 8 flows @ 5 s, 3 WiFi jammers.
/// `flow_seed` selects the flow set (the paper samples 300 of them).
pub fn testbed_a_interference(protocol: Protocol, flow_seed: u64) -> NetworkConfig {
    testbed_a_interference_on(Topology::testbed_a(), protocol, flow_seed)
}

/// [`testbed_a_interference`] on a pre-built topology, so seed sweeps can
/// hoist the (shared, immutable) topology construction out of the
/// per-seed loop and hand each run a cheap clone.
pub fn testbed_a_interference_on(
    topology: Topology,
    protocol: Protocol,
    flow_seed: u64,
) -> NetworkConfig {
    let flows = delay_flows(random_flow_set(&topology, 8, 500, flow_seed), WARMUP_SECS);
    let mut builder = NetworkConfig::builder(topology)
        .protocol(protocol)
        .seed(flow_seed.wrapping_mul(0x9e37) ^ 0xA)
        .flows(flows);
    for j in testbed_a_jammers(3) {
        builder = builder.jammer(j);
    }
    builder.build()
}

/// Fig. 4/5 scenario: Testbed A with a configurable number of jammers
/// (the empirical study sweeps 1–4).
pub fn testbed_a_jammer_sweep(
    protocol: Protocol,
    num_jammers: usize,
    flow_seed: u64,
) -> NetworkConfig {
    testbed_a_jammer_sweep_on(Topology::testbed_a(), protocol, num_jammers, flow_seed)
}

/// [`testbed_a_jammer_sweep`] on a pre-built topology (see
/// [`testbed_a_interference_on`]).
pub fn testbed_a_jammer_sweep_on(
    topology: Topology,
    protocol: Protocol,
    num_jammers: usize,
    flow_seed: u64,
) -> NetworkConfig {
    let flows = delay_flows(random_flow_set(&topology, 8, 500, flow_seed), WARMUP_SECS);
    let mut builder = NetworkConfig::builder(topology)
        .protocol(protocol)
        .seed(flow_seed.wrapping_mul(0x517c) ^ num_jammers as u64)
        .flows(flows);
    for j in testbed_a_jammers(num_jammers) {
        builder = builder.jammer(j);
    }
    builder.build()
}

/// Fig. 10 scenario: Testbed B, 6 flows @ 5 s, 3 jammers over two floors.
pub fn testbed_b_interference(protocol: Protocol, flow_seed: u64) -> NetworkConfig {
    testbed_b_interference_on(Topology::testbed_b(), protocol, flow_seed)
}

/// [`testbed_b_interference`] on a pre-built topology (see
/// [`testbed_a_interference_on`]).
pub fn testbed_b_interference_on(
    topology: Topology,
    protocol: Protocol,
    flow_seed: u64,
) -> NetworkConfig {
    let flows = delay_flows(random_flow_set(&topology, 6, 500, flow_seed), WARMUP_SECS);
    let mut builder = NetworkConfig::builder(topology)
        .protocol(protocol)
        .seed(flow_seed.wrapping_mul(0x9e37) ^ 0xB)
        .flows(flows);
    for j in testbed_b_jammers() {
        builder = builder.jammer(j);
    }
    builder.build()
}

/// Shared secret for the schedule-randomization defense scenarios. Any
/// non-zero value works; nodes mix it with the run seed to derive the
/// per-epoch permutation nonce.
pub const DEFENSE_SECRET: u64 = 0x5afe_c0de;

/// One adaptive schedule-learning jammer parked a couple of meters from
/// each access point — the worst case for DiGS, since every flow's last
/// hop converges there and the sniffer sees (and can selectively kill)
/// the busiest cells of the whole network.
fn adaptive_jammers_near_aps(topology: &Topology, app_len: u32) -> Vec<Jammer> {
    topology
        .access_points()
        .iter()
        .enumerate()
        .map(|(i, ap)| {
            let p = topology.position(*ap);
            Jammer::adaptive(
                Position::new(p.x + 2.0, p.y + 2.0),
                app_len,
                Asn::from_secs(JAM_START_SECS),
                0xada9 ^ ((i as u64) << 8),
            )
        })
        .collect()
}

/// Adversarial attack scenario: Testbed A, 8 flows @ 5 s, one adaptive
/// schedule-learning jammer per access point, **no defense**. The jammer
/// sniffs during its learning window, then selectively jams the top-K
/// busiest cells — against a static Eq. 4 schedule this collapses the
/// victim flows' PDR.
pub fn testbed_a_adaptive_jam(protocol: Protocol, flow_seed: u64) -> NetworkConfig {
    testbed_a_adaptive_jam_on(Topology::testbed_a(), protocol, flow_seed)
}

/// [`testbed_a_adaptive_jam`] on a pre-built topology (see
/// [`testbed_a_interference_on`]).
pub fn testbed_a_adaptive_jam_on(
    topology: Topology,
    protocol: Protocol,
    flow_seed: u64,
) -> NetworkConfig {
    let flows = delay_flows(random_flow_set(&topology, 8, 500, flow_seed), WARMUP_SECS);
    let app_len = digs_scheduling::SlotframeLengths::paper().app;
    let jammers = adaptive_jammers_near_aps(&topology, app_len);
    let mut builder = NetworkConfig::builder(topology)
        .protocol(protocol)
        .seed(flow_seed.wrapping_mul(0x9e37) ^ 0xAD)
        .flows(flows);
    for j in jammers {
        builder = builder.jammer(j);
    }
    builder.build()
}

/// Adversarial defense-overhead scenario: the same network and flow set
/// as [`testbed_a_adaptive_jam`] with **no jammers** and schedule
/// randomization on — quantifies what the defense alone costs (it should
/// cost nothing: the per-epoch permutation is a bijection, so capacity
/// and conflict-freedom are unchanged).
pub fn testbed_a_randomized(protocol: Protocol, flow_seed: u64) -> NetworkConfig {
    testbed_a_randomized_on(Topology::testbed_a(), protocol, flow_seed)
}

/// [`testbed_a_randomized`] on a pre-built topology (see
/// [`testbed_a_interference_on`]).
pub fn testbed_a_randomized_on(
    topology: Topology,
    protocol: Protocol,
    flow_seed: u64,
) -> NetworkConfig {
    let flows = delay_flows(random_flow_set(&topology, 8, 500, flow_seed), WARMUP_SECS);
    NetworkConfig::builder(topology)
        .protocol(protocol)
        .seed(flow_seed.wrapping_mul(0x9e37) ^ 0xAD)
        .flows(flows)
        .randomize(DEFENSE_SECRET)
        .build()
}

/// Adversarial duel scenario: [`testbed_a_adaptive_jam`] with the
/// schedule-randomization defense switched on. The sniffer's learned cell
/// rankings go stale every application-slotframe epoch, pinning its hit
/// rate near the 1-in-16 blind-guess floor and restoring PDR to within
/// tolerance of the clean baseline.
pub fn testbed_a_adaptive_duel(protocol: Protocol, flow_seed: u64) -> NetworkConfig {
    testbed_a_adaptive_duel_on(Topology::testbed_a(), protocol, flow_seed)
}

/// [`testbed_a_adaptive_duel`] on a pre-built topology (see
/// [`testbed_a_interference_on`]).
pub fn testbed_a_adaptive_duel_on(
    topology: Topology,
    protocol: Protocol,
    flow_seed: u64,
) -> NetworkConfig {
    let flows = delay_flows(random_flow_set(&topology, 8, 500, flow_seed), WARMUP_SECS);
    let app_len = digs_scheduling::SlotframeLengths::paper().app;
    let jammers = adaptive_jammers_near_aps(&topology, app_len);
    let mut builder = NetworkConfig::builder(topology)
        .protocol(protocol)
        .seed(flow_seed.wrapping_mul(0x9e37) ^ 0xAD)
        .flows(flows)
        .randomize(DEFENSE_SECRET);
    for j in jammers {
        builder = builder.jammer(j);
    }
    builder.build()
}

/// Picks `count` likely relay nodes: central field devices (closest to the
/// building centroid), excluding the flow sources so turning them off
/// tests *routing* resilience, as in Fig. 11.
pub fn central_relays(topology: &Topology, exclude: &[NodeId], count: usize) -> Vec<NodeId> {
    let (mut cx, mut cy, mut n) = (0.0, 0.0, 0.0);
    for id in topology.node_ids() {
        let p = topology.position(id);
        cx += p.x;
        cy += p.y;
        n += 1.0;
    }
    let center = Position::new(cx / n, cy / n);
    let mut devices: Vec<NodeId> =
        topology.field_devices().into_iter().filter(|d| !exclude.contains(d)).collect();
    devices.sort_by(|a, b| {
        let da = topology.position(*a).distance(&center);
        let db = topology.position(*b).distance(&center);
        da.partial_cmp(&db).expect("finite").then(a.cmp(b))
    });
    devices.truncate(count);
    devices
}

/// Builds a flow set whose sources are chosen (seed-shuffled) from the
/// third of field devices farthest from any access point.
pub fn far_flow_set(
    topology: &Topology,
    n: usize,
    period: u64,
    seed: u64,
) -> Vec<crate::flows::FlowSpec> {
    let aps = topology.access_points();
    let mut devices = topology.field_devices();
    devices.sort_by(|a, b| {
        let da = aps.iter().map(|ap| topology.distance(*a, *ap)).fold(f64::MAX, f64::min);
        let db = aps.iter().map(|ap| topology.distance(*b, *ap)).fold(f64::MAX, f64::min);
        db.partial_cmp(&da).expect("finite").then(a.cmp(b))
    });
    let pool_size = (devices.len() / 3).max(n);
    let mut pool: Vec<NodeId> = devices.into_iter().take(pool_size).collect();
    assert!(pool.len() >= n, "not enough far devices for {n} flows");
    for i in (1..pool.len()).rev() {
        let j = (digs_sim::rng::mix(seed, i as u64, 0xfa5, 9) % (i as u64 + 1)) as usize;
        pool.swap(i, j);
    }
    crate::flows::flow_set_from_sources(&pool[..n], period)
}

/// When the first failure strikes, seconds into the run.
pub const FAILURE_START_SECS: u64 = 120;

/// How long each failed node stays down, seconds.
pub const FAILURE_EACH_SECS: u64 = 60;

/// Fig. 11 scenario: Testbed A, no jammers. Flow sources are drawn from
/// the field devices *farthest from any access point*, so every flow is
/// genuinely multi-hop and depends on relays — the paper fails "nodes on
/// the routing graph", which requires flows that actually route through
/// field devices. The static fault plan here fails central relays; the
/// [`crate::experiment::run_node_failure`] runner replaces it with victims
/// picked from the live routing graph.
pub fn testbed_a_node_failure(protocol: Protocol, flow_seed: u64) -> NetworkConfig {
    testbed_a_node_failure_on(Topology::testbed_a(), protocol, flow_seed)
}

/// [`testbed_a_node_failure`] on a pre-built topology (see
/// [`testbed_a_interference_on`]).
pub fn testbed_a_node_failure_on(
    topology: Topology,
    protocol: Protocol,
    flow_seed: u64,
) -> NetworkConfig {
    let flows = delay_flows(far_flow_set(&topology, 8, 500, flow_seed), WARMUP_SECS);
    let sources: Vec<NodeId> = flows.iter().map(|f| f.source).collect();
    let victims = central_relays(&topology, &sources, 4);
    let faults =
        FaultPlan::in_turn(&victims, Asn::from_secs(FAILURE_START_SECS), FAILURE_EACH_SECS);
    NetworkConfig::builder(topology)
        .protocol(protocol)
        .seed(flow_seed.wrapping_mul(0xfa11) ^ 0xA)
        .flows(flows)
        .faults(faults)
        .build()
}

/// Fig. 12 scenario: 150 nodes + 2 APs in 300 m × 300 m, 20 flows @ 10 s,
/// five disturbers toggling every 5 minutes.
pub fn large_scale(protocol: Protocol, flow_seed: u64) -> NetworkConfig {
    large_scale_on(Topology::cooja_150(7), protocol, flow_seed)
}

/// [`large_scale`] on a pre-built topology (see
/// [`testbed_a_interference_on`]).
pub fn large_scale_on(topology: Topology, protocol: Protocol, flow_seed: u64) -> NetworkConfig {
    let flows = delay_flows(random_flow_set(&topology, 20, 1000, flow_seed), WARMUP_SECS);
    // Eq. 4 needs A x devices = 450 distinct application cells; the
    // testbeds' 151-slot frame would wrap three devices onto every slot
    // and put parents' own cells on top of their children's. Size the
    // application slotframe to the network (457 is prime, hence coprime
    // with 557 and 47), exactly as Eq. 4's id-indexed design intends.
    let slotframes = digs_scheduling::SlotframeLengths {
        app: 457,
        ..digs_scheduling::SlotframeLengths::paper()
    };
    let mut builder = NetworkConfig::builder(topology)
        .protocol(protocol)
        .rf(RfConfig::open_area())
        .slotframes(slotframes)
        .seed(flow_seed.wrapping_mul(0xc001) ^ 0x150)
        .flows(flows);
    for i in 0..5u64 {
        let pos = Position::new(50.0 + 50.0 * i as f64, 60.0 + 45.0 * i as f64);
        builder = builder.jammer(Jammer::disturber(pos, 300, i));
    }
    builder.build()
}

/// Fig. 13 scenario: a cold-start Testbed A network with no flows, used to
/// measure per-node joining time.
pub fn initialization(protocol: Protocol, seed: u64) -> NetworkConfig {
    initialization_on(Topology::testbed_a(), protocol, seed)
}

/// [`initialization`] on a pre-built topology (see
/// [`testbed_a_interference_on`]).
pub fn initialization_on(topology: Topology, protocol: Protocol, seed: u64) -> NetworkConfig {
    NetworkConfig::builder(topology).protocol(protocol).seed(seed).build()
}

/// The oil-field deployment from the paper's introduction ("hundreds of
/// devices over an oil field"), promoted from the `oil_field` example so
/// the fleet runner can instantiate it by the thousand: five wellhead
/// clusters of six devices each spaced along a pipeline, a pressure
/// sensor every 12 m between clusters, and two access points at pump
/// stations a third of the way along the pipeline each — the placement
/// keeps every wellhead within a few hops of an AP, which the 5 s
/// monitor period needs (an AP-less far end turns into a 7-hop queue
/// that no slotframe can drain). 47 nodes.
pub fn oil_field_topology() -> Topology {
    let mut positions = vec![Position::new(60.0, 4.0), Position::new(120.0, -4.0)];
    let mut roles = vec![Role::AccessPoint, Role::AccessPoint];
    // Pipeline pressure sensors: every 12 m for 180 m.
    for i in 1..=15 {
        positions.push(Position::new(12.0 * f64::from(i), 0.0));
        roles.push(Role::FieldDevice);
    }
    // Wellhead clusters hanging off the pipeline, alternating sides.
    for cluster in 0..5u32 {
        let base_x = 30.0 + 36.0 * f64::from(cluster);
        for k in 0..6u32 {
            let dx = f64::from(k % 3) * 5.0;
            let dy = 8.0 + f64::from(k / 3) * 6.0;
            let side = if cluster % 2 == 0 { 1.0 } else { -1.0 };
            positions.push(Position::new(base_x + dx, side * dy));
            roles.push(Role::FieldDevice);
        }
    }
    Topology::new("oil-field", positions, roles)
}

/// Oil-field scenario: 6 monitor flows @ 5 s from the wellhead clusters
/// farthest from the pump stations, at full CC2420 power (the open-area
/// model still yields 2–4 hop routes, and the link margin keeps epoch
/// PDR clear of the health monitor's floor). The deepest clusters need
/// A·devices distinct Eq. 4 cells, so the application slotframe is
/// sized to the deployment (149 is prime: 45 devices × 3 attempts = 135
/// cells fit).
pub fn oil_field(protocol: Protocol, flow_seed: u64) -> NetworkConfig {
    oil_field_on(oil_field_topology(), protocol, flow_seed)
}

/// [`oil_field`] on a pre-built topology (see
/// [`testbed_a_interference_on`]).
pub fn oil_field_on(topology: Topology, protocol: Protocol, flow_seed: u64) -> NetworkConfig {
    let flows = delay_flows(far_flow_set(&topology, 6, 500, flow_seed), WARMUP_SECS);
    let slotframes = digs_scheduling::SlotframeLengths {
        app: 149,
        ..digs_scheduling::SlotframeLengths::paper()
    };
    NetworkConfig::builder(topology)
        .protocol(protocol)
        .rf(RfConfig::open_area())
        .slotframes(slotframes)
        .seed(flow_seed.wrapping_mul(0x011f) ^ 0x01)
        .flows(flows)
        // Link quality over the pipeline takes ~2 min of data traffic to
        // discover (shadowed links start with optimistic RSS-based ETX).
        .health_settle_secs(150)
        // 45 devices swap more parents per epoch during discovery than
        // the testbed-sized watchdog default tolerates.
        .health_churn_storm(16)
        .build()
}

/// The factory-floor deployment the fleet runner's second template uses:
/// 80 field devices on a 10 × 8 machine-row grid (9 m pitch, with a
/// deterministic sub-meter stagger so rows are not perfectly collinear)
/// and two access points on the central aisle. 82 nodes — sized so the
/// Eq. 4 application slotframe stays short enough (241 slots) that
/// multi-hop latency clears the 10 s monitor period with margin; the
/// fleet's *sharded* campus networks are where node counts scale.
pub fn factory_floor_topology() -> Topology {
    const COLS: u32 = 10;
    const ROWS: u32 = 8;
    const PITCH: f64 = 9.0;
    let width = f64::from(COLS - 1) * PITCH;
    let height = f64::from(ROWS - 1) * PITCH;
    // Two access points on the central aisle at the third points: every
    // machine row is then within a few hops of an AP (end-of-hall
    // placement leaves 120 m diagonals that multi-hop latency cannot
    // cover at the monitor period).
    let mut positions = vec![
        Position::new(width / 3.0, height * 0.5),
        Position::new(2.0 * width / 3.0, height * 0.5),
    ];
    let mut roles = vec![Role::AccessPoint, Role::AccessPoint];
    for r in 0..ROWS {
        for c in 0..COLS {
            let dx = (digs_sim::rng::uniform01(0xFAC7, u64::from(r), u64::from(c), 0) - 0.5) * 2.0;
            let dy = (digs_sim::rng::uniform01(0xFAC7, u64::from(r), u64::from(c), 1) - 0.5) * 2.0;
            positions.push(Position::new(f64::from(c) * PITCH + dx, f64::from(r) * PITCH + dy));
            roles.push(Role::FieldDevice);
        }
    }
    Topology::new("factory-floor", positions, roles)
}

/// Factory-floor scenario: 8 monitor flows @ 10 s sourced away from
/// the access points. 80 devices × 3 attempts = 240 Eq. 4 cells, so
/// the application slotframe is the 241-slot prime — at 2.41 s per
/// frame each device forwards at most ~1.2 pkt/s, which keeps the
/// DAG's shared relays below saturation and the 2–3 hop latency well
/// inside the monitor period (the earlier 14 × 9 hall at 457 slots sat
/// at the stability edge: median latency ≈ the period, and whole flows
/// starved whenever relays backlogged).
pub fn factory_floor(protocol: Protocol, flow_seed: u64) -> NetworkConfig {
    factory_floor_on(factory_floor_topology(), protocol, flow_seed)
}

/// [`factory_floor`] on a pre-built topology (see
/// [`testbed_a_interference_on`]).
pub fn factory_floor_on(topology: Topology, protocol: Protocol, flow_seed: u64) -> NetworkConfig {
    let flows = delay_flows(far_flow_set(&topology, 8, 1000, flow_seed), WARMUP_SECS);
    let slotframes = digs_scheduling::SlotframeLengths {
        app: 241,
        ..digs_scheduling::SlotframeLengths::paper()
    };
    NetworkConfig::builder(topology)
        .protocol(protocol)
        // Full CC2420 power: the 9 m machine-row pitch under the indoor
        // model needs the margin to keep per-hop PRR high.
        .rf(RfConfig { tx_power: digs_sim::rf::Dbm(0.0), ..RfConfig::indoor() })
        .slotframes(slotframes)
        .seed(flow_seed.wrapping_mul(0xfac7) ^ 0x0F)
        .flows(flows)
        // 80 indoor devices churn through shadowed links for minutes
        // before ETX estimates settle; don't alert on the discovery
        // phase, and scale the churn-storm threshold to the device count
        // (discovery swaps 10–15 parents per epoch at this size).
        .health_settle_secs(300)
        .health_churn_storm(24)
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interference_scenarios_have_jammers_and_flows() {
        let c = testbed_a_interference(Protocol::Digs, 1);
        assert_eq!(c.flows.len(), 8);
        assert_eq!(c.jammers.len(), 3);
        assert!(c.flows.iter().all(|f| f.phase >= WARMUP_SECS * 100));
        let b = testbed_b_interference(Protocol::Orchestra, 1);
        assert_eq!(b.flows.len(), 6);
        assert_eq!(b.jammers.len(), 3);
    }

    #[test]
    fn jammer_sweep_counts() {
        for n in 1..=4 {
            let c = testbed_a_jammer_sweep(Protocol::Orchestra, n, 1);
            assert_eq!(c.jammers.len(), n);
        }
    }

    #[test]
    fn failure_scenario_spares_sources() {
        let c = testbed_a_node_failure(Protocol::Digs, 3);
        let sources: Vec<NodeId> = c.flows.iter().map(|f| f.source).collect();
        for outage in c.faults.outages() {
            assert!(!sources.contains(&outage.node), "sources must not be failed");
        }
        assert_eq!(c.faults.outages().len(), 4);
    }

    #[test]
    fn central_relays_are_central() {
        let topo = Topology::testbed_a();
        let relays = central_relays(&topo, &[], 4);
        assert_eq!(relays.len(), 4);
        // All relays are closer to the centroid than the APs at the ends.
        for r in &relays {
            let p = topo.position(*r);
            assert!(p.x > 10.0 && p.x < 50.0, "relay {r} at {p}");
        }
    }

    #[test]
    fn fleet_templates_have_expected_shape() {
        let oil = oil_field(Protocol::Digs, 1);
        assert_eq!(oil.topology.len(), 47);
        assert_eq!(oil.topology.num_access_points(), 2);
        assert_eq!(oil.flows.len(), 6);
        assert_eq!(oil.slotframes.app, 149);
        assert!(oil.flows.iter().all(|f| f.phase >= WARMUP_SECS * 100));

        let factory = factory_floor(Protocol::Digs, 1);
        assert_eq!(factory.topology.len(), 82);
        assert_eq!(factory.topology.num_access_points(), 2);
        assert_eq!(factory.flows.len(), 8);
        // Eq. 4 needs A x devices = 240 distinct cells.
        assert_eq!(factory.slotframes.app, 241);
    }

    #[test]
    fn fleet_template_seeds_differ() {
        let a = oil_field(Protocol::Digs, 1);
        let b = oil_field(Protocol::Digs, 2);
        assert_ne!(a.seed, b.seed);
        let sources_a: Vec<NodeId> = a.flows.iter().map(|f| f.source).collect();
        let sources_b: Vec<NodeId> = b.flows.iter().map(|f| f.source).collect();
        assert_ne!(sources_a, sources_b, "flow seeds must select different source sets");
    }

    #[test]
    fn large_scale_matches_paper_numbers() {
        let c = large_scale(Protocol::Digs, 1);
        assert_eq!(c.topology.len(), 152);
        assert_eq!(c.flows.len(), 20);
        assert_eq!(c.jammers.len(), 5);
        assert!(c.flows.iter().all(|f| f.period == 1000));
    }

    #[test]
    fn adversarial_family_differs_only_by_knob_and_jammers() {
        let attack = testbed_a_adaptive_jam(Protocol::Digs, 1);
        let defense = testbed_a_randomized(Protocol::Digs, 1);
        let duel = testbed_a_adaptive_duel(Protocol::Digs, 1);
        // One adaptive jammer per access point, parked right next to it.
        assert_eq!(attack.jammers.len(), 2);
        assert_eq!(duel.jammers.len(), 2);
        assert!(defense.jammers.is_empty());
        for j in &attack.jammers {
            assert!(
                matches!(j.kind, digs_sim::interference::JammerKind::Adaptive(_)),
                "attack jammers must be adaptive"
            );
            assert_eq!(j.start, Asn::from_secs(JAM_START_SECS));
        }
        // Same seed and flow set across the family: the only deltas are the
        // jammers and the defense knob.
        assert_eq!(attack.seed, duel.seed);
        assert_eq!(attack.seed, defense.seed);
        assert_eq!(attack.flows, duel.flows);
        assert_eq!(attack.resolve_randomize(), None);
        assert_eq!(duel.resolve_randomize(), Some(DEFENSE_SECRET));
        assert_eq!(defense.resolve_randomize(), Some(DEFENSE_SECRET));
    }

    #[test]
    fn flow_seeds_vary_flow_sets() {
        let a = testbed_a_interference(Protocol::Digs, 1);
        let b = testbed_a_interference(Protocol::Digs, 2);
        assert_ne!(
            a.flows.iter().map(|f| f.source).collect::<Vec<_>>(),
            b.flows.iter().map(|f| f.source).collect::<Vec<_>>()
        );
    }
}
