//! Builds and runs a complete simulated network.

use crate::audit::{
    AuditSnapshot, CellClaim, InvariantKind, InvariantViolation, NodeAudit, ParentView,
};
use crate::config::{NetworkConfig, Protocol};
use crate::results::{FlowResult, NodeResult, RunResults};
use crate::stack::{DigsStack, OrchestraStack, ProtocolStack};
use crate::telemetry::{TelemetrySampler, TelemetrySettings};
use digs_routing::graph::{GraphEntry, RoutingGraph};
use digs_sim::engine::Engine;
use digs_sim::ids::NodeId;
use digs_sim::time::{Asn, SLOTS_PER_SECOND};
use digs_trace::{Event, EventKind, TraceHandle};
use std::collections::BTreeMap;

/// A fully wired network: engine + one protocol stack per node.
#[derive(Debug)]
pub struct Network {
    config: NetworkConfig,
    engine: Engine,
    stacks: Vec<ProtocolStack>,
    /// Violations collected by [`Network::run_audited`].
    violations: Vec<InvariantViolation>,
    /// The cycle signature (cycle members with their parent edges) seen at
    /// the previous audit, for the frozen-loop debounce. Empty when the
    /// last audit saw no loop.
    loop_signature: Vec<(NodeId, Option<NodeId>, Option<NodeId>)>,
    /// Consecutive audits (in `run_audited`) that observed the *same*
    /// cycle signature.
    loop_streak: u64,
    /// The flight-recorder event window captured around the first invariant
    /// violation `run_audited` recorded (empty until then, or when tracing
    /// is off).
    violation_window: Vec<Event>,
    /// Epoch telemetry sampler + health monitor. `None` when telemetry is
    /// disabled — the disabled path allocates nothing and [`Network::run`]
    /// is the plain engine loop.
    telemetry: Option<Box<TelemetrySampler>>,
    /// The derived schedule-randomization nonce every DiGS stack was
    /// provisioned with (`None` = defense off; see
    /// [`NetworkConfig::resolve_randomize`]).
    randomize_nonce: Option<u64>,
}

impl Network {
    /// Builds the network from a configuration.
    pub fn new(config: NetworkConfig) -> Network {
        let mut engine = Engine::new(config.topology.clone(), config.rf.clone(), config.seed);
        for jammer in &config.jammers {
            engine.add_jammer(jammer.clone());
        }
        engine.set_fault_plan(config.faults.clone());
        let trace = match config.trace_cap {
            Some(cap) => TraceHandle::bounded(cap),
            None => TraceHandle::from_env(),
        };
        engine.set_trace(trace.clone());

        // The centralized baseline needs the manager's schedule computed
        // up front from the link-state oracle (which is what the manager's
        // collection phase would have gathered).
        let central_schedule = if config.protocol == Protocol::WirelessHart {
            let db = digs_whart::LinkDb::from_link_model(engine.link_model());
            let graph = digs_whart::build_uplink_graph(&db, &config.topology.access_points());
            let sources: Vec<_> = config.flows.iter().map(|f| f.source).collect();
            let superframe =
                config.flows.iter().map(|f| f.period).max().unwrap_or(500).min(u64::from(u32::MAX))
                    as u32;
            Some(
                digs_whart::CentralSchedule::build(&graph, &sources, superframe)
                    .expect("the manager must be able to schedule the flows"),
            )
        } else {
            None
        };

        // Mix the shared randomization secret with the run seed so two
        // seeds never share a permutation sequence (an attacker replaying
        // one run's observations against another learns nothing), while
        // every node within the run derives the identical nonce.
        let randomize_nonce = config
            .resolve_randomize()
            .map(|secret| digs_sim::rng::mix(config.seed, secret, 0x0510_75a9, 0));

        let num_aps = config.topology.num_access_points() as u16;
        let mut stacks: Vec<ProtocolStack> = config
            .topology
            .node_ids()
            .map(|id| {
                let is_ap = config.topology.is_access_point(id);
                let my_flows: Vec<_> =
                    config.flows.iter().copied().filter(|f| f.source == id).collect();
                let seed = config.seed ^ (u64::from(id.0) << 32);
                match config.protocol {
                    Protocol::Digs => ProtocolStack::Digs(DigsStack::new(
                        id,
                        is_ap,
                        num_aps,
                        config.slotframes,
                        config.attempts,
                        config.routing,
                        my_flows,
                        config.queue_capacity,
                        config.max_cycles,
                        seed,
                        randomize_nonce,
                    )),
                    Protocol::Orchestra => ProtocolStack::Orchestra(OrchestraStack::new(
                        id,
                        is_ap,
                        config.slotframes,
                        config.routing,
                        my_flows,
                        config.queue_capacity,
                        seed,
                    )),
                    Protocol::WirelessHart => {
                        ProtocolStack::WirelessHart(crate::stack::WhartStack::new(
                            id,
                            is_ap,
                            central_schedule.as_ref().expect("computed above"),
                            my_flows,
                            config.queue_capacity,
                        ))
                    }
                }
            })
            .collect();
        if trace.is_on() {
            for stack in &mut stacks {
                stack.set_trace(trace.clone());
            }
        }
        let telemetry = TelemetrySettings::resolve(&config).map(|settings| {
            let mut health = crate::telemetry::HealthConfig::default();
            if let Some(settle) = config.health_settle_secs {
                health.settle_secs = settle;
            }
            if let Some(changes) = config.health_churn_storm {
                health.churn_storm = u64::from(changes);
            }
            Box::new(TelemetrySampler::new(settings, health, config.topology.len()))
        });
        Network {
            config,
            engine,
            stacks,
            violations: Vec::new(),
            loop_signature: Vec::new(),
            loop_streak: 0,
            violation_window: Vec::new(),
            telemetry,
            randomize_nonce,
        }
    }

    /// The derived schedule-randomization nonce, if the defense is active.
    pub fn randomize_nonce(&self) -> Option<u64> {
        self.randomize_nonce
    }

    /// The configuration the network was built from.
    pub fn config(&self) -> &NetworkConfig {
        &self.config
    }

    /// The underlying engine.
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// Current slot.
    pub fn asn(&self) -> Asn {
        self.engine.asn()
    }

    /// The per-node stacks.
    pub fn stacks(&self) -> &[ProtocolStack] {
        &self.stacks
    }

    /// The flight recorder shared by the engine and every stack (off by
    /// default; see [`crate::config::NetworkConfig::trace_cap`]).
    pub fn trace(&self) -> &TraceHandle {
        self.engine.trace()
    }

    /// Runs for `slots` slots. With telemetry enabled the run is chunked
    /// to epoch boundaries (multiples of the cadence on the global slot
    /// clock) and sampled at each; sampling only observes, so outcomes
    /// are identical to an unsampled run.
    pub fn run(&mut self, slots: u64) {
        let start = self.engine.asn().0;
        self.run_inner(slots);
        self.record_defense_epochs(start);
    }

    fn run_inner(&mut self, slots: u64) {
        let Some(sampler) = &self.telemetry else {
            self.engine.run(&mut self.stacks, slots);
            return;
        };
        let every = sampler.settings().epoch_slots;
        let end = self.engine.asn().0 + slots;
        while self.engine.asn().0 < end {
            let next_epoch = (self.engine.asn().0 / every + 1) * every;
            let step = next_epoch.min(end) - self.engine.asn().0;
            self.engine.run(&mut self.stacks, step);
            if self.engine.asn().0.is_multiple_of(every) {
                let sampler = self.telemetry.as_mut().expect("checked above");
                let alerts = sampler.sample(&self.engine, &self.stacks, &self.config);
                if !alerts.is_empty() && self.engine.trace().is_on() {
                    for a in &alerts {
                        self.engine.trace().record(
                            a.asn_end,
                            digs_trace::NETWORK_NODE,
                            EventKind::HealthAlert {
                                rule: a.rule.as_str().to_owned(),
                                detail: a.detail.clone(),
                            },
                        );
                    }
                }
            }
        }
    }

    /// Mirrors schedule re-randomization points into the flight recorder:
    /// one run-scoped `DefenseEpoch` event per application-slotframe
    /// boundary crossed in `(start, now]`. Half-open so the chunked calls
    /// from [`Network::run_audited`] never double-record a boundary; the
    /// initial epoch (ASN 0) is not an event — the schedule is *born*
    /// randomized, events mark re-draws.
    fn record_defense_epochs(&self, start: u64) {
        if self.randomize_nonce.is_none() || !self.engine.trace().is_on() {
            return;
        }
        let app = u64::from(self.config.slotframes.app);
        let end = self.engine.asn().0;
        let mut boundary = (start / app + 1) * app;
        while boundary <= end {
            self.engine
                .trace()
                .record_network(boundary, EventKind::DefenseEpoch { epoch: boundary / app });
            boundary += app;
        }
    }

    /// The telemetry sampler, if enabled (see
    /// [`crate::config::NetworkConfig::telemetry_epoch`]).
    pub fn telemetry(&self) -> Option<&TelemetrySampler> {
        self.telemetry.as_deref()
    }

    /// Replaces the failure schedule mid-run (used by the node-failure
    /// experiment, which picks victims from the *live* routing graph the
    /// way the paper turned off "nodes on the routing graph").
    pub fn set_fault_plan(&mut self, plan: digs_sim::fault::FaultPlan) {
        self.engine.set_fault_plan(plan);
    }

    /// Replaces the engine's ambient (cross-network) interference set.
    /// The fleet's shard-boundary exchange calls this at slotframe-window
    /// edges with fresh boundary-load estimates; emission is hash-gated,
    /// so swapping the set never perturbs the run's random stream.
    pub fn set_ambient_jammers(&mut self, ambient: Vec<digs_sim::interference::Jammer>) {
        self.engine.set_ambient_jammers(ambient);
    }

    /// Runs for `secs` simulated seconds.
    pub fn run_secs(&mut self, secs: u64) {
        self.run(secs * SLOTS_PER_SECOND);
    }

    /// How long one *identical* routing loop must persist before
    /// `run_audited` records it. Global loop-freedom is an *eventual*
    /// property: belief skew (neighbor-table entries up to a Trickle
    /// maximum interval stale, or a rebooted node re-selecting its former
    /// child) can close a transient cycle with every node individually
    /// obeying the selection rule, and a region under active churn keeps
    /// forming *different* short-lived cycles. A frozen loop — the bug this
    /// check exists for — keeps the exact same members and parent edges.
    /// 120 s comfortably exceeds both the Trickle Imax (~64 s) and the
    /// longest jammer burst the chaos generator injects, so an unchanged
    /// cycle that outlives it is a genuine bug, not skew.
    pub const LOOP_PERSISTENCE_SLOTS: u64 = 12_000;

    /// Runs for `slots` slots, invoking the invariant auditor every `every`
    /// slots (aligned to multiples of `every` on the global slot clock).
    /// Violations accumulate on the network and are reported through
    /// [`RunResults::invariant_violations`].
    ///
    /// Per-node invariants are recorded immediately; `RoutingLoop`
    /// findings are debounced — only recorded once the *same* cycle
    /// (identical members and parent edges) has been observed for
    /// [`Network::LOOP_PERSISTENCE_SLOTS`] of consecutive audits (see the
    /// module docs of [`crate::audit`]).
    ///
    /// # Panics
    ///
    /// Panics if `every` is zero.
    pub fn run_audited(&mut self, slots: u64, every: u64) {
        assert!(every > 0, "audit period must be positive");
        let persistence_audits = Self::LOOP_PERSISTENCE_SLOTS.div_ceil(every);
        let end = self.engine.asn().0 + slots;
        while self.engine.asn().0 < end {
            let next_audit = (self.engine.asn().0 / every + 1) * every;
            let step = next_audit.min(end) - self.engine.asn().0;
            // Through `run`, not the engine directly, so telemetry epochs
            // keep sampling inside audited runs.
            self.run(step);
            if self.engine.asn().0.is_multiple_of(every) {
                let recorded_before = self.violations.len();
                let snapshot = self.audit_snapshot();
                let (loops, immediate): (Vec<_>, Vec<_>) = crate::audit::audit(&snapshot)
                    .into_iter()
                    .partition(|v| v.kind == InvariantKind::RoutingLoop);
                self.violations.extend(immediate);

                // Frozen-loop debounce: the streak only grows while the
                // cycle keeps the exact same shape.
                let signature: Vec<_> = crate::audit::cycle_members(&snapshot.graph)
                    .into_iter()
                    .map(|n| {
                        let e = snapshot.graph.entry(n);
                        (n, e.and_then(|e| e.best), e.and_then(|e| e.second))
                    })
                    .collect();
                if signature.is_empty() {
                    self.loop_streak = 0;
                } else if signature == self.loop_signature {
                    self.loop_streak += 1;
                    if self.loop_streak >= persistence_audits {
                        self.violations.extend(loops);
                    }
                } else {
                    self.loop_streak = 1;
                }
                self.loop_signature = signature;
                self.trace_new_violations(recorded_before);
            }
        }
    }

    /// Violations collected so far by [`Network::run_audited`].
    pub fn violations(&self) -> &[InvariantViolation] {
        &self.violations
    }

    /// Slots of flight-recorder history preserved around the first
    /// invariant violation (20 s of simulated time).
    pub const VIOLATION_WINDOW_SLOTS: u64 = 2_000;

    /// Mirrors violations recorded since index `from` into the flight
    /// recorder and, on the *first* violation of the run, snapshots the
    /// trailing event window for post-mortem triage.
    fn trace_new_violations(&mut self, from: usize) {
        if self.violations.len() == from || !self.engine.trace().is_on() {
            return;
        }
        for v in &self.violations[from..] {
            self.engine.trace().record(
                v.asn.0,
                v.node.0,
                EventKind::AuditViolation {
                    kind: format!("{:?}", v.kind),
                    detail: v.detail.clone(),
                },
            );
        }
        if self.violation_window.is_empty() {
            self.violation_window = digs_trace::window(
                &self.engine.trace().events(),
                self.engine.asn().0,
                Self::VIOLATION_WINDOW_SLOTS,
            );
        }
    }

    /// The flight-recorder events captured around the first invariant
    /// violation [`Network::run_audited`] recorded — the crash-dump the
    /// chaos harness prints. Empty when no violation occurred or tracing
    /// is off.
    pub fn violation_window(&self) -> &[Event] {
        &self.violation_window
    }

    /// Captures the distributed state the runtime auditor checks: the
    /// routing graph plus every node's local parent views, claimed cells,
    /// child table, and queue occupancy.
    pub fn audit_snapshot(&self) -> AuditSnapshot {
        let graph = self.routing_graph();
        let nodes = self
            .stacks
            .iter()
            .enumerate()
            .map(|(i, stack)| {
                let id = NodeId(i as u16);
                let is_ap = self.config.topology.is_access_point(id);
                match stack {
                    ProtocolStack::Digs(s) => {
                        // The rank checks audit the node's *belief*: the
                        // neighbor-table rank its selection was based on. A
                        // held parent with no neighbor entry is itself a
                        // bug, so surface it as an INFINITE believed rank.
                        let believed = |parent: Option<NodeId>| {
                            parent.map(|p| ParentView {
                                node: p,
                                believed_rank: s
                                    .routing()
                                    .neighbors()
                                    .get(p)
                                    .map_or(digs_routing::Rank::INFINITE, |e| e.rank),
                            })
                        };
                        let (best, second) = s.parents();
                        // Housekeeping counts as live only once the node
                        // has been synced — and powered — for a full GC
                        // sweep: a fresh resync may still carry pre-desync
                        // registrations, and a node in an outage window
                        // executes no slots at all.
                        let asn = self.engine.asn();
                        let sweep_ago = Asn(asn.0.saturating_sub(crate::audit::GC_SWEEP_SLOTS));
                        let housekeeping_live = s
                            .synced_at()
                            .is_some_and(|t| asn.0 - t.0 >= crate::audit::GC_SWEEP_SLOTS)
                            && self.engine.fault_plan().alive_throughout(id, sweep_ago, asn);
                        NodeAudit {
                            node: id,
                            is_ap,
                            synced: housekeeping_live,
                            rank: s.rank(),
                            best_parent: believed(best),
                            second_parent: believed(second),
                            claims: s
                                .cell_claims()
                                .into_iter()
                                .map(|(slot, offset)| CellClaim { slot, offset })
                                .collect(),
                            children: s.children_last_seen(),
                            queue_len: s.app_queue_len(),
                            queue_capacity: self.config.queue_capacity,
                        }
                    }
                    // Orchestra's autonomous cells are shared (contention),
                    // not owned, its child table is sender-maintained, and
                    // its RPL ranks are hysteresis-smoothed rather than
                    // strictly monotone — only the graph and queue
                    // invariants apply.
                    ProtocolStack::Orchestra(s) => NodeAudit {
                        node: id,
                        is_ap,
                        synced: s.is_joined(),
                        rank: s.rank(),
                        best_parent: None,
                        second_parent: None,
                        claims: Vec::new(),
                        children: Vec::new(),
                        queue_len: s.app_queue_len(),
                        queue_capacity: self.config.queue_capacity,
                    },
                    // Centralized: the manager owns the schedule; there is
                    // no distributed state to audit.
                    ProtocolStack::WirelessHart(_) => NodeAudit {
                        node: id,
                        is_ap,
                        synced: true,
                        rank: digs_routing::Rank::INFINITE,
                        best_parent: None,
                        second_parent: None,
                        claims: Vec::new(),
                        children: Vec::new(),
                        queue_len: 0,
                        queue_capacity: self.config.queue_capacity,
                    },
                }
            })
            .collect();
        AuditSnapshot { asn: self.engine.asn(), graph, nodes }
    }

    /// Re-provisions every WirelessHART stack with a new central schedule
    /// (the dissemination step at the end of a manager update cycle).
    ///
    /// # Panics
    ///
    /// Panics if the network is not running [`Protocol::WirelessHart`].
    pub fn reprovision_wirelesshart(&mut self, schedule: &digs_whart::CentralSchedule) {
        assert_eq!(
            self.config.protocol,
            Protocol::WirelessHart,
            "reprovisioning only applies to the centralized baseline"
        );
        for stack in &mut self.stacks {
            if let ProtocolStack::WirelessHart(s) = stack {
                s.install_schedule(schedule, self.config.queue_capacity);
            }
        }
    }

    /// Snapshots the distributed routing state as a [`RoutingGraph`].
    pub fn routing_graph(&self) -> RoutingGraph {
        let mut graph = RoutingGraph::new(self.config.topology.access_points());
        for (i, stack) in self.stacks.iter().enumerate() {
            let id = NodeId(i as u16);
            if self.config.topology.is_access_point(id) {
                continue;
            }
            let (best, second) = stack.parents();
            graph.insert(id, GraphEntry { best, second, rank: stack.rank() });
        }
        graph
    }

    /// Computes the run's metrics from stack telemetry and engine meters.
    pub fn results(&self) -> RunResults {
        let duration = self.engine.asn();
        let duration_nonzero = duration.0.max(1);

        // Collect deliveries from every access point, deduplicated by
        // (flow, seq), keeping the earliest arrival.
        let mut first_delivery: BTreeMap<(u16, u32), Asn> = BTreeMap::new();
        for stack in &self.stacks {
            for d in &stack.telemetry().deliveries {
                first_delivery
                    .entry((d.packet.flow.0, d.packet.seq))
                    .and_modify(|at| *at = (*at).min(d.delivered_at))
                    .or_insert(d.delivered_at);
            }
        }
        // Generation timestamps are derivable from the flow specs, but the
        // latency needs the packet's own generated_at; recover it from the
        // delivery records (they carry the packet).
        let mut gen_at: BTreeMap<(u16, u32), Asn> = BTreeMap::new();
        for stack in &self.stacks {
            for d in &stack.telemetry().deliveries {
                gen_at.insert((d.packet.flow.0, d.packet.seq), d.packet.generated_at);
            }
        }

        let flows = self
            .config
            .flows
            .iter()
            .map(|spec| {
                let source_stack = &self.stacks[spec.source.index()];
                let generated =
                    source_stack.telemetry().generated.get(&spec.id).copied().unwrap_or(0);
                let mut delivered_seqs = std::collections::BTreeSet::new();
                let mut latencies = Vec::new();
                for ((flow, seq), at) in &first_delivery {
                    if *flow == spec.id.0 {
                        delivered_seqs.insert(*seq);
                        let g = gen_at[&(*flow, *seq)];
                        latencies.push(
                            (at.0.saturating_sub(g.0)) as f64 * digs_sim::time::SLOT_MS as f64,
                        );
                    }
                }
                FlowResult {
                    flow: spec.id,
                    source: spec.source,
                    generated,
                    delivered: delivered_seqs.len() as u32,
                    delivered_seqs,
                    latencies_ms: latencies,
                }
            })
            .collect();

        let nodes = self
            .stacks
            .iter()
            .enumerate()
            .map(|(i, stack)| {
                let id = NodeId(i as u16);
                let meter = self.engine.energy(id);
                let t = stack.telemetry();
                NodeResult {
                    node: id,
                    energy_mj: meter.energy_mj(),
                    mean_power_mw: meter.mean_power_mw(),
                    duty_cycle: meter.duty_cycle(),
                    tx_us: meter.tx_us,
                    rx_us: meter.rx_us,
                    joined_at: t.joined_at,
                    parent_changes: t.parent_changes.len(),
                }
            })
            .collect();

        let mut parent_change_times: Vec<Asn> =
            self.stacks.iter().flat_map(|s| s.telemetry().parent_changes.iter().copied()).collect();
        parent_change_times.sort_unstable();

        let retry_drops = self.stacks.iter().map(|s| s.telemetry().retry_drops).sum();
        let queue_drops = self.stacks.iter().map(|s| s.telemetry().queue_drops).sum();

        RunResults {
            duration: Asn(duration_nonzero),
            flows,
            nodes,
            parent_change_times,
            retry_drops,
            queue_drops,
            invariant_violations: self.violations.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::NetworkConfig;
    use digs_sim::topology::Topology;

    fn tiny_config(protocol: Protocol) -> NetworkConfig {
        NetworkConfig::builder(Topology::testbed_a_half())
            .protocol(protocol)
            .seed(11)
            .random_flows(2, 300, 5)
            .build()
    }

    #[test]
    fn digs_network_forms_and_delivers() {
        let mut net = Network::new(tiny_config(Protocol::Digs));
        net.run_secs(120);
        let results = net.results();
        assert!(
            results.fraction_joined() > 0.9,
            "most nodes should join: {}",
            results.fraction_joined()
        );
        assert!(results.network_pdr() > 0.5, "PDR should be reasonable: {}", results.network_pdr());
        let graph = net.routing_graph();
        assert!(graph.is_dag(), "routing state must be a DAG");
    }

    #[test]
    fn orchestra_network_forms_and_delivers() {
        let mut net = Network::new(tiny_config(Protocol::Orchestra));
        net.run_secs(120);
        let results = net.results();
        assert!(
            results.fraction_joined() > 0.9,
            "most nodes should join: {}",
            results.fraction_joined()
        );
        assert!(results.network_pdr() > 0.5, "PDR should be reasonable: {}", results.network_pdr());
    }

    #[test]
    fn digs_nodes_acquire_backup_parents() {
        let mut net = Network::new(tiny_config(Protocol::Digs));
        // Backup acquisition needs the join-in gossip to propagate a second
        // rank-feasible neighbor to everyone; 120 s is within the noise of
        // the Trickle Imax, so give it three minutes.
        net.run_secs(180);
        let graph = net.routing_graph();
        assert!(
            graph.fraction_with_backup() > 0.5,
            "graph routing should give most nodes a backup: {}",
            graph.fraction_with_backup()
        );
    }

    #[test]
    fn audited_digs_run_is_violation_free() {
        let mut net = Network::new(tiny_config(Protocol::Digs));
        net.run_audited(120 * digs_sim::time::SLOTS_PER_SECOND, 1000);
        let results = net.results();
        assert!(
            results.invariant_violations.is_empty(),
            "healthy run must satisfy every invariant: {:?}",
            results.invariant_violations
        );
    }

    #[test]
    fn audit_snapshot_captures_claims_and_children() {
        let mut net = Network::new(tiny_config(Protocol::Digs));
        net.run_secs(120);
        let snap = net.audit_snapshot();
        let claimed: usize = snap.nodes.iter().map(|n| n.claims.len()).sum();
        let children: usize = snap.nodes.iter().map(|n| n.children.len()).sum();
        assert!(claimed > 0, "joined field devices must claim dedicated cells");
        assert!(children > 0, "parents must register children");
        assert!(snap.nodes.iter().all(|n| !n.is_ap || n.claims.is_empty()));
    }

    #[test]
    fn runs_are_deterministic() {
        let run = || {
            let mut net = Network::new(tiny_config(Protocol::Digs));
            net.run_secs(60);
            let r = net.results();
            (r.total_delivered(), r.total_generated(), r.parent_change_times.len())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn traced_run_reconstructs_complete_journeys() {
        let config = NetworkConfig::builder(Topology::testbed_a_half())
            .protocol(Protocol::Digs)
            .seed(11)
            .random_flows(2, 300, 5)
            .trace_cap(200_000)
            .build();
        let mut net = Network::new(config);
        net.run_secs(120);
        assert!(net.trace().is_on());
        let events = net.trace().events();
        assert!(!events.is_empty(), "a traced run must record events");
        let journeys = digs_trace::journeys(&events);
        assert!(
            journeys.iter().any(digs_trace::Journey::is_complete),
            "at least one packet journey must reconstruct end to end \
             ({} journeys, {} events)",
            journeys.len(),
            events.len()
        );
        // Hop-by-hop accounting: a complete journey's latency covers its
        // per-hop queueing.
        for j in journeys.iter().filter(|j| j.is_complete()) {
            let queueing: u64 = j.hops.iter().filter_map(digs_trace::Hop::queueing_slots).sum();
            assert!(j.latency_slots.unwrap_or(0) >= queueing);
        }
    }

    #[test]
    fn forced_violation_captures_bounded_event_window() {
        // A healthy DiGS run never violates an invariant, so force one:
        // inject a fabricated violation exactly the way `run_audited`
        // records real ones, and check the crash-dump machinery — the
        // violation is mirrored into the trace and a bounded trailing
        // window is snapshotted for the chaos harness to print.
        let config = NetworkConfig::builder(Topology::testbed_a_half())
            .protocol(Protocol::Digs)
            .seed(11)
            .random_flows(2, 300, 5)
            .trace_cap(50_000)
            .build();
        let mut net = Network::new(config);
        net.run_secs(60);
        net.violations.push(crate::audit::InvariantViolation {
            kind: crate::audit::InvariantKind::RoutingLoop,
            asn: net.asn(),
            node: NodeId(3),
            detail: "fabricated for the crash-dump test".into(),
        });
        net.trace_new_violations(0);

        let window = net.violation_window();
        assert!(!window.is_empty(), "a violation must snapshot an event window");
        let end = net.asn().0;
        let cutoff = end.saturating_sub(Network::VIOLATION_WINDOW_SLOTS);
        assert!(
            window.iter().all(|e| e.asn > cutoff && e.asn <= end),
            "the window must be bounded to the last {} slots",
            Network::VIOLATION_WINDOW_SLOTS
        );
        assert!(
            window.iter().any(|e| matches!(e.kind, digs_trace::EventKind::AuditViolation { .. })),
            "the violation itself must appear in the window"
        );
        // A second violation must not re-snapshot (the window belongs to
        // the *first* violation of the run).
        let first = net.violation_window().to_vec();
        net.violations.push(crate::audit::InvariantViolation {
            kind: crate::audit::InvariantKind::QueueBound,
            asn: net.asn(),
            node: NodeId(4),
            detail: "second fabricated violation".into(),
        });
        net.trace_new_violations(1);
        assert_eq!(net.violation_window(), &first[..]);
    }

    #[test]
    fn tracing_does_not_change_outcomes() {
        let run = |cap: Option<usize>| {
            let mut b = NetworkConfig::builder(Topology::testbed_a_half())
                .protocol(Protocol::Digs)
                .seed(11)
                .random_flows(2, 300, 5)
                .trace_cap(0); // pin off, immune to DIGS_TRACE_CAP
            if let Some(c) = cap {
                b = b.trace_cap(c);
            }
            let mut net = Network::new(b.build());
            net.run_secs(60);
            let r = net.results();
            (r.total_delivered(), r.total_generated(), r.parent_change_times.len())
        };
        assert_eq!(run(None), run(Some(100_000)), "tracing must be observation-only");
    }

    #[test]
    fn energy_is_consumed() {
        let mut net = Network::new(tiny_config(Protocol::Digs));
        net.run_secs(30);
        let results = net.results();
        assert!(results.total_mean_power_mw() > 0.0);
        assert!(results.nodes.iter().all(|n| n.duty_cycle <= 1.0));
        // The breakdown must be consistent with the duty cycle: radio-on
        // time is exactly tx + rx.
        let slot_us = digs_sim::time::SLOT_MS * 1000;
        for n in &results.nodes {
            let on_us = n.tx_us + n.rx_us;
            let total_us = results.duration.0 * slot_us;
            assert!((n.duty_cycle - on_us as f64 / total_us as f64).abs() < 1e-9);
        }
        assert!(results.nodes.iter().any(|n| n.tx_us > 0 && n.rx_us > 0));
    }
}

#[cfg(test)]
mod whart_tests {
    use super::*;
    use crate::config::NetworkConfig;
    use digs_sim::topology::Topology;

    #[test]
    fn wirelesshart_network_delivers_on_static_schedule() {
        let mut flows = crate::flows::flow_set_from_sources(&[NodeId(12), NodeId(17)], 500);
        for f in &mut flows {
            f.phase += 100; // one superframe of slack
        }
        let config = NetworkConfig::builder(Topology::testbed_a_half())
            .protocol(Protocol::WirelessHart)
            .seed(4)
            .flows(flows)
            .build();
        let mut net = Network::new(config);
        net.run_secs(120);
        let results = net.results();
        assert!(
            results.network_pdr() > 0.9,
            "centrally scheduled network should deliver: {:.3}",
            results.network_pdr()
        );
        // No distributed control plane: zero parent changes.
        assert!(results.parent_change_times.is_empty());
    }

    #[test]
    fn wirelesshart_cannot_adapt_to_failure() {
        // The static schedule has no routing plane: failing a scheduled
        // relay blacks out the flows that pass through it until the (not
        // simulated) manager update completes — the paper's Fig. 3 point.
        let mut flows = crate::flows::flow_set_from_sources(&[NodeId(19)], 500);
        for f in &mut flows {
            f.phase += 100;
        }
        let config = NetworkConfig::builder(Topology::testbed_a_half())
            .protocol(Protocol::WirelessHart)
            .seed(4)
            .flows(flows)
            .build();
        let mut baseline = Network::new(config.clone());
        baseline.run_secs(120);
        let base_pdr = baseline.results().network_pdr();

        // Find the first relay on the scheduled path and fail it mid-run.
        let db = digs_whart::LinkDb::from_link_model(baseline.engine().link_model());
        let graph = digs_whart::build_uplink_graph(&db, &config.topology.access_points());
        let relay = graph
            .entry(NodeId(19))
            .and_then(|e| e.best)
            .filter(|p| !config.topology.is_access_point(*p));
        let Some(relay) = relay else {
            return; // direct-to-AP path: nothing to fail
        };
        let mut net = Network::new(config);
        net.run_secs(60);
        net.set_fault_plan(
            digs_sim::fault::FaultPlan::none()
                .with(digs_sim::fault::Outage::permanent(relay, net.asn())),
        );
        net.run_secs(60);
        let failed_pdr = net.results().network_pdr();
        assert!(
            failed_pdr < base_pdr,
            "losing the scheduled relay must hurt a static schedule \
             (baseline {base_pdr:.2}, failed {failed_pdr:.2})"
        );
    }
}
