//! The centralized WirelessHART data-plane stack: a node that executes a
//! schedule computed by the central Network Manager.
//!
//! Unlike the DiGS and Orchestra stacks, this node makes **no decisions**:
//! the manager has provisioned its routes and its superframe cells (and,
//! implicitly, its time synchronization — WirelessHART devices are
//! configured during joining). Each slot the node looks up its cell table:
//! transmit the head packet of the referenced flow to the designated
//! receiver, or listen. This is exactly why the centralized design is
//! predictable — and why it cannot adapt until the manager completes a
//! full update cycle (the Fig. 3 cost).

use super::{trace_pid, DeliveryRecord, QueuedPacket, StackTelemetry};
use crate::flows::FlowSpec;
use crate::payload::{DataPacket, Payload};
use crate::queue::BoundedQueue;
use digs_sim::engine::{NodeStack, SlotIntent, TxOutcome};
use digs_sim::ids::{FlowId, NodeId};
use digs_sim::packet::{Dest, Frame};
use digs_sim::rf::Dbm;
use digs_sim::time::Asn;
use digs_trace::{EventKind, TraceHandle};
use digs_whart::schedule::CentralSchedule;
use std::collections::BTreeMap;

/// A node's role in one superframe slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CellRole {
    /// Transmit the head packet of `flow` to `to`.
    Tx {
        /// Next hop.
        to: NodeId,
        /// The flow this cell serves.
        flow: FlowId,
        /// TSCH channel offset.
        offset: digs_sim::channel::ChannelOffset,
    },
    /// Listen on the given offset.
    Rx {
        /// TSCH channel offset.
        offset: digs_sim::channel::ChannelOffset,
    },
}

/// The WirelessHART field-device/access-point stack.
#[derive(Debug)]
pub struct WhartStack {
    id: NodeId,
    is_ap: bool,
    superframe_len: u32,
    /// Slot-in-superframe → role.
    cells: BTreeMap<u32, CellRole>,
    flows: Vec<FlowSpec>,
    /// Per-flow forwarding queues (a relay may serve several flows).
    queues: BTreeMap<FlowId, BoundedQueue<QueuedPacket>>,
    last_tx: Option<FlowId>,
    seq_next: u32,
    telemetry: StackTelemetry,
    /// Flight recorder (no-op unless [`WhartStack::set_trace`] installed a
    /// live handle).
    trace: TraceHandle,
}

impl WhartStack {
    /// Builds the stack for node `id` from the manager's schedule.
    pub fn new(
        id: NodeId,
        is_ap: bool,
        schedule: &CentralSchedule,
        flows: Vec<FlowSpec>,
        queue_capacity: usize,
    ) -> WhartStack {
        let mut cells = BTreeMap::new();
        for cell in schedule.cells_of(id) {
            let role = if cell.tx == id {
                CellRole::Tx { to: cell.rx, flow: cell.flow, offset: cell.offset }
            } else {
                CellRole::Rx { offset: cell.offset }
            };
            cells.insert(cell.slot, role);
        }
        let mut queues = BTreeMap::new();
        for cell in schedule.cells_of(id) {
            queues.entry(cell.flow).or_insert_with(|| BoundedQueue::new(queue_capacity));
        }
        for f in &flows {
            queues.entry(f.id).or_insert_with(|| BoundedQueue::new(queue_capacity));
        }
        // WirelessHART devices are provisioned (synced + routed) by the
        // manager before the data phase begins.
        let telemetry = StackTelemetry {
            synced_at: Some(Asn::ZERO),
            joined_at: Some(Asn::ZERO),
            ..StackTelemetry::default()
        };
        WhartStack {
            id,
            is_ap,
            superframe_len: schedule.length(),
            cells,
            flows,
            queues,
            last_tx: None,
            seq_next: 0,
            telemetry,
            trace: TraceHandle::off(),
        }
    }

    /// Harness telemetry.
    pub fn telemetry(&self) -> &StackTelemetry {
        &self.telemetry
    }

    /// Installs the flight-recorder handle (shared with the engine).
    pub fn set_trace(&mut self, trace: TraceHandle) {
        self.trace = trace;
    }

    /// Installs a freshly disseminated schedule (the end of a manager
    /// update cycle): cell table and superframe length are replaced;
    /// queues for newly assigned flows are created; telemetry and sequence
    /// numbers survive, as they would on the device.
    pub fn install_schedule(&mut self, schedule: &CentralSchedule, queue_capacity: usize) {
        self.superframe_len = schedule.length();
        self.cells.clear();
        for cell in schedule.cells_of(self.id) {
            let role = if cell.tx == self.id {
                CellRole::Tx { to: cell.rx, flow: cell.flow, offset: cell.offset }
            } else {
                CellRole::Rx { offset: cell.offset }
            };
            self.cells.insert(cell.slot, role);
        }
        for cell in schedule.cells_of(self.id) {
            self.queues.entry(cell.flow).or_insert_with(|| BoundedQueue::new(queue_capacity));
        }
    }

    /// Number of cells the manager provisioned on this node.
    pub fn cell_count(&self) -> usize {
        self.cells.len()
    }

    /// Packets currently queued across this node's per-flow queues.
    pub fn app_queue_len(&self) -> usize {
        self.queues.values().map(|q| q.len()).sum()
    }

    /// The installed superframe length in slots.
    pub fn superframe_len(&self) -> u32 {
        self.superframe_len
    }

    fn generate(&mut self, asn: Asn) {
        for i in 0..self.flows.len() {
            let flow = self.flows[i];
            if flow.generates_at(asn) {
                let packet = DataPacket {
                    flow: flow.id,
                    seq: self.seq_next,
                    origin: self.id,
                    generated_at: asn,
                };
                self.seq_next += 1;
                *self.telemetry.generated.entry(flow.id).or_insert(0) += 1;
                if self.trace.is_on() {
                    self.trace.record(
                        asn.0,
                        self.id.0,
                        EventKind::Generated { packet: trace_pid(&packet) },
                    );
                }
                let queue = self.queues.get_mut(&flow.id).expect("own flow has a queue");
                if !queue.push(QueuedPacket { packet, failed_attempts: 0 }) {
                    self.telemetry.queue_drops += 1;
                    if self.trace.is_on() {
                        self.trace.record(
                            asn.0,
                            self.id.0,
                            EventKind::QueueOverflow { packet: trace_pid(&packet) },
                        );
                    }
                } else if self.trace.is_on() {
                    let depth = self.queues[&flow.id].len() as u32;
                    self.trace.record(
                        asn.0,
                        self.id.0,
                        EventKind::QueueEnq { packet: trace_pid(&packet), depth },
                    );
                }
            }
        }
    }
}

impl NodeStack for WhartStack {
    type Payload = Payload;

    fn slot_intent(&mut self, asn: Asn) -> SlotIntent<Payload> {
        self.last_tx = None;
        self.generate(asn);
        let slot = asn.slotframe_offset(self.superframe_len);
        match self.cells.get(&slot) {
            None => SlotIntent::Sleep,
            Some(CellRole::Rx { offset }) => SlotIntent::Listen { offset: *offset },
            Some(CellRole::Tx { to, flow, offset }) => {
                let Some(queue) = self.queues.get(flow) else {
                    return SlotIntent::Sleep;
                };
                match queue.front() {
                    None => SlotIntent::Sleep,
                    Some(item) => {
                        let pid = trace_pid(&item.packet);
                        let payload = Payload::Data(item.packet);
                        self.last_tx = Some(*flow);
                        SlotIntent::Transmit {
                            offset: *offset,
                            frame: Frame::new(
                                self.id,
                                Dest::Unicast(*to),
                                payload.frame_kind(),
                                payload.frame_size(),
                                payload,
                            )
                            .with_trace_id(pid),
                            contention: false,
                        }
                    }
                }
            }
        }
    }

    fn on_frame(&mut self, asn: Asn, frame: &Frame<Payload>, _rss: Dbm) {
        let Payload::Data(packet) = &frame.payload else {
            return;
        };
        if !frame.dst.addressed_to(self.id) || matches!(frame.dst, Dest::Broadcast) {
            return;
        }
        if self.is_ap {
            if self.trace.is_on() {
                self.trace.record(
                    asn.0,
                    self.id.0,
                    EventKind::Delivered {
                        packet: trace_pid(packet),
                        latency_slots: asn.0.saturating_sub(packet.generated_at.0),
                    },
                );
            }
            self.telemetry.deliveries.push(DeliveryRecord { packet: *packet, delivered_at: asn });
        } else if let Some(queue) = self.queues.get_mut(&packet.flow) {
            if !queue.push(QueuedPacket { packet: *packet, failed_attempts: 0 }) {
                self.telemetry.queue_drops += 1;
                if self.trace.is_on() {
                    self.trace.record(
                        asn.0,
                        self.id.0,
                        EventKind::QueueOverflow { packet: trace_pid(packet) },
                    );
                }
            } else if self.trace.is_on() {
                let depth = self.queues[&packet.flow].len() as u32;
                self.trace.record(
                    asn.0,
                    self.id.0,
                    EventKind::QueueEnq { packet: trace_pid(packet), depth },
                );
            }
        }
    }

    fn reset(&mut self, _asn: Asn) {
        // Cold reboot of a provisioned device: everything queued in RAM is
        // lost. The cell table and superframe come back as provisioned —
        // WirelessHART devices are configured by the manager during
        // (re)joining, which the centralized plane handles out of band — so
        // the node resumes its schedule immediately but with empty queues.
        for queue in self.queues.values_mut() {
            queue.clear();
        }
        self.last_tx = None;
    }

    fn desync(&mut self, _asn: Asn) {
        // WirelessHART time sync is maintained by the manager's provisioned
        // keepalives; a drifted device is re-synchronized out of band. The
        // in-flight slot's transmission, if any, is abandoned.
        self.last_tx = None;
    }

    fn on_tx_outcome(&mut self, asn: Asn, outcome: TxOutcome) {
        let Some(flow) = self.last_tx.take() else {
            return;
        };
        let Some(queue) = self.queues.get_mut(&flow) else {
            return;
        };
        match outcome {
            TxOutcome::Acked => {
                if let Some(item) = queue.pop() {
                    if self.trace.is_on() {
                        let depth = queue.len() as u32;
                        self.trace.record(
                            asn.0,
                            self.id.0,
                            EventKind::QueueDeq { packet: trace_pid(&item.packet), depth },
                        );
                    }
                }
                self.telemetry.forwarded += 1;
            }
            TxOutcome::NoAck => {
                // The superframe schedules multiple attempts per hop; the
                // packet stays queued for the next scheduled cell, and is
                // dropped after one full superframe's worth of attempts.
                if let Some(mut item) = queue.pop() {
                    item.failed_attempts = item.failed_attempts.saturating_add(1);
                    if item.failed_attempts >= 6 {
                        self.telemetry.retry_drops += 1;
                        if self.trace.is_on() {
                            self.trace.record(
                                asn.0,
                                self.id.0,
                                EventKind::RetryDrop { packet: trace_pid(&item.packet) },
                            );
                        }
                    } else {
                        let mut rest = Vec::with_capacity(queue.len());
                        while let Some(p) = queue.pop() {
                            rest.push(p);
                        }
                        queue.push(item);
                        for p in rest {
                            queue.push(p);
                        }
                    }
                }
            }
            TxOutcome::SentBroadcast | TxOutcome::DeferredCca => {}
        }
    }
}
