//! Direct unit tests for the protocol stacks, driving them through the
//! [`NodeStack`] interface without an engine.

use super::*;
use crate::flows::FlowSpec;
use digs_routing::messages::{JoinIn, Rank};
use digs_routing::RoutingConfig;
use digs_scheduling::SlotframeLengths;
use digs_sim::ids::FlowId;
use digs_sim::packet::FrameKind;

const STRONG: Dbm = Dbm(-55.0);

fn digs_stack(id: u16, is_ap: bool) -> DigsStack {
    DigsStack::new(
        NodeId(id),
        is_ap,
        2,
        SlotframeLengths::paper(),
        3,
        RoutingConfig::fast(),
        Vec::new(),
        8,
        3,
        7,
        None,
    )
}

fn digs_source(id: u16, flow_period: u64) -> DigsStack {
    DigsStack::new(
        NodeId(id),
        false,
        2,
        SlotframeLengths::paper(),
        3,
        RoutingConfig::fast(),
        vec![FlowSpec { id: FlowId(0), source: NodeId(id), period: flow_period, phase: 0 }],
        8,
        3,
        7,
        None,
    )
}

fn eb_frame(from: u16) -> Frame<Payload> {
    Frame::new(NodeId(from), Dest::Broadcast, FrameKind::Beacon, 50, Payload::Eb)
}

fn join_in_frame(from: u16, rank: u16, etx_w: f64) -> Frame<Payload> {
    Frame::new(
        NodeId(from),
        Dest::Broadcast,
        FrameKind::Routing,
        64,
        Payload::JoinIn(JoinIn { rank: Rank(rank), etx_w, best_parent: None, second_parent: None }),
    )
}

/// Feeds EBs until the stack associates (the 25 % gate is deterministic
/// under the node's seed).
fn sync(stack: &mut DigsStack, mut asn: u64) -> u64 {
    for _ in 0..400 {
        stack.on_frame(Asn(asn), &eb_frame(0), STRONG);
        if stack.telemetry().synced_at.is_some() {
            return asn;
        }
        asn += 1;
    }
    panic!("stack never associated");
}

#[test]
fn unsynced_stack_only_listens() {
    let mut s = digs_stack(5, false);
    for asn in 0..200u64 {
        match s.slot_intent(Asn(asn)) {
            SlotIntent::Listen { .. } => {}
            other => panic!("unsynced node must scan, got {other:?}"),
        }
    }
}

#[test]
fn eb_association_is_gated_but_eventually_succeeds() {
    let mut s = digs_stack(5, false);
    s.on_frame(Asn(0), &eb_frame(0), STRONG);
    // One beacon rarely suffices (25 % gate); many always do.
    let synced_at = sync(&mut s, 1);
    assert!(synced_at < 400);
}

#[test]
fn ap_stack_is_synced_and_joined_from_birth() {
    let s = digs_stack(0, true);
    assert!(s.is_joined());
    assert_eq!(s.telemetry().synced_at, Some(Asn::ZERO));
    assert_eq!(s.telemetry().joined_at, Some(Asn::ZERO));
}

#[test]
fn join_in_after_sync_selects_parents() {
    let mut s = digs_stack(5, false);
    let asn = sync(&mut s, 0);
    s.on_frame(Asn(asn + 1), &join_in_frame(0, 1, 0.0), STRONG);
    assert!(s.is_joined());
    assert_eq!(s.parents().0, Some(NodeId(0)));
    assert!(s.telemetry().joined_at.is_some());
}

#[test]
fn join_in_before_sync_is_ignored() {
    let mut s = digs_stack(5, false);
    s.on_frame(Asn(0), &join_in_frame(0, 1, 0.0), STRONG);
    assert!(!s.is_joined(), "routing must wait for time sync");
}

#[test]
fn source_generates_on_schedule() {
    let mut s = digs_source(5, 100);
    for asn in 0..1000u64 {
        let _ = s.slot_intent(Asn(asn));
    }
    assert_eq!(s.telemetry().generated.get(&FlowId(0)), Some(&10));
}

#[test]
fn joined_source_eventually_transmits_data() {
    let mut s = digs_source(5, 100);
    let asn = sync(&mut s, 0);
    s.on_frame(Asn(asn + 1), &join_in_frame(0, 1, 0.0), STRONG);
    let mut data_tx = 0;
    for t in (asn + 2)..(asn + 2 + 2000) {
        // Keep the parent alive in the neighbor table (the fast test
        // profile evicts after ~1 s of silence; on air, Trickle-paced
        // join-ins provide this refresh).
        if t % 50 == 0 {
            s.on_frame(Asn(t), &join_in_frame(0, 1, 0.0), STRONG);
        }
        if let SlotIntent::Transmit { frame, .. } = s.slot_intent(Asn(t)) {
            if matches!(frame.payload, Payload::Data(_)) {
                assert_eq!(frame.dst, Dest::Unicast(NodeId(0)));
                data_tx += 1;
                // Engine contract: every transmit gets an outcome.
                s.on_tx_outcome(Asn(t), TxOutcome::Acked);
            } else {
                s.on_tx_outcome(
                    Asn(t),
                    match frame.dst {
                        Dest::Broadcast => TxOutcome::SentBroadcast,
                        Dest::Unicast(_) => TxOutcome::Acked,
                    },
                );
            }
        }
    }
    assert!(data_tx > 0, "a joined source must ship its packets");
}

#[test]
fn ap_records_deliveries() {
    let mut ap = digs_stack(0, true);
    let packet = crate::payload::DataPacket {
        flow: FlowId(3),
        seq: 9,
        origin: NodeId(5),
        generated_at: Asn(10),
    };
    let frame =
        Frame::new(NodeId(5), Dest::Unicast(NodeId(0)), FrameKind::Data, 90, Payload::Data(packet));
    ap.on_frame(Asn(100), &frame, STRONG);
    assert_eq!(ap.telemetry().deliveries.len(), 1);
    assert_eq!(ap.telemetry().deliveries[0].packet.seq, 9);
    assert_eq!(ap.telemetry().deliveries[0].delivered_at, Asn(100));
}

#[test]
fn relay_forwards_instead_of_delivering() {
    let mut relay = digs_stack(5, false);
    let packet = crate::payload::DataPacket {
        flow: FlowId(3),
        seq: 9,
        origin: NodeId(9),
        generated_at: Asn(10),
    };
    let frame =
        Frame::new(NodeId(9), Dest::Unicast(NodeId(5)), FrameKind::Data, 90, Payload::Data(packet));
    relay.on_frame(Asn(100), &frame, STRONG);
    assert!(relay.telemetry().deliveries.is_empty());
    assert_eq!(relay.app_queue_len(), 1);
}

#[test]
fn data_not_addressed_to_us_is_dropped() {
    let mut s = digs_stack(5, false);
    let packet = crate::payload::DataPacket {
        flow: FlowId(3),
        seq: 9,
        origin: NodeId(9),
        generated_at: Asn(10),
    };
    let frame =
        Frame::new(NodeId(9), Dest::Unicast(NodeId(7)), FrameKind::Data, 90, Payload::Data(packet));
    s.on_frame(Asn(100), &frame, STRONG);
    assert_eq!(s.app_queue_len(), 0);
}

#[test]
fn parent_change_broadcasts_fresh_join_in_quickly() {
    let mut s = digs_stack(5, false);
    let asn = sync(&mut s, 0);
    s.on_frame(Asn(asn + 1), &join_in_frame(0, 1, 0.0), STRONG);
    // A near shared routing slot must carry our announcement (the
    // joined-callback, queued first, goes out one shared slot earlier).
    let mut announced = false;
    for t in (asn + 2)..(asn + 2 + 200) {
        if t % 50 == 0 {
            s.on_frame(Asn(t), &join_in_frame(0, 1, 0.0), STRONG);
        }
        if let SlotIntent::Transmit { frame, .. } = s.slot_intent(Asn(t)) {
            if let Payload::JoinIn(ji) = &frame.payload {
                assert_eq!(ji.best_parent, Some(NodeId(0)), "piggybacked parent id");
                announced = true;
                break;
            }
            // Answer with the outcome the engine would produce for the
            // frame's addressing (a unicast that never gets an ACK would
            // head-of-line-block the queue, as on air).
            let outcome = match frame.dst {
                Dest::Broadcast => TxOutcome::SentBroadcast,
                Dest::Unicast(_) => TxOutcome::Acked,
            };
            s.on_tx_outcome(Asn(t), outcome);
        }
    }
    assert!(announced, "parent selection must be announced promptly");
}

#[test]
fn orchestra_stack_mirrors_digs_lifecycle() {
    let mut s = OrchestraStack::new(
        NodeId(5),
        false,
        SlotframeLengths::paper(),
        RoutingConfig::fast(),
        Vec::new(),
        8,
        7,
    );
    assert!(!s.is_joined());
    // Associate.
    let mut asn = 0;
    for _ in 0..400 {
        s.on_frame(Asn(asn), &eb_frame(0), STRONG);
        if s.telemetry().synced_at.is_some() {
            break;
        }
        asn += 1;
    }
    assert!(s.telemetry().synced_at.is_some());
    // A root DIO attaches us.
    let dio = Frame::new(
        NodeId(0),
        Dest::Broadcast,
        FrameKind::Routing,
        64,
        Payload::Dio(digs_routing::messages::Dio { rank: Rank::ROOT, path_etx: 0.0, parent: None }),
    );
    s.on_frame(Asn(asn + 1), &dio, STRONG);
    assert!(s.is_joined());
    assert_eq!(s.parent(), Some(NodeId(0)));
}
