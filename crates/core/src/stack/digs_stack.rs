//! The full DiGS node stack: EB scanning → distributed graph routing →
//! autonomous scheduling → data forwarding over primary and backup routes.

use super::{
    scan_offset, trace_pid, DeliveryRecord, LastTx, QueuedPacket, QueuedRoutingMsg, StackTelemetry,
    MAX_ROUTING_RETRIES,
};
use crate::flows::FlowSpec;
use crate::payload::{DataPacket, Payload};
use crate::queue::BoundedQueue;
use digs_routing::messages::RoutingEvent;
use digs_routing::{DigsRouting, Rank, RoutingConfig};
use digs_scheduling::slotframe::CellAction;
use digs_scheduling::{DigsScheduler, SlotframeLengths};
use digs_sim::engine::{NodeStack, SlotIntent, TxOutcome};
use digs_sim::ids::NodeId;
use digs_sim::packet::{Dest, Frame};
use digs_sim::rf::Dbm;
use digs_sim::time::Asn;
use digs_trace::{EventKind, TraceHandle};

/// The DiGS protocol stack for one node.
#[derive(Debug)]
pub struct DigsStack {
    id: NodeId,
    is_ap: bool,
    routing: DigsRouting,
    scheduler: DigsScheduler,
    flows: Vec<FlowSpec>,
    app_queue: BoundedQueue<QueuedPacket>,
    routing_queue: BoundedQueue<QueuedRoutingMsg>,
    /// When each registered child was last heard from (join-in, callback,
    /// or data). Children are only unregistered on explicit revocation or
    /// after an extended silence: over-listening costs idle-listen energy
    /// (the overhead the paper acknowledges) but never loses packets.
    child_last_seen: std::collections::BTreeMap<NodeId, Asn>,
    /// Whether the current second-best parent has confirmed (by ACKing a
    /// callback or a data frame) that it holds our registration. Until
    /// then, attempt-3 traffic is redirected to the primary parent — an
    /// unregistered backup would silently eat every third attempt — and
    /// the backup is probed on every fourth application cycle.
    second_confirmed: bool,
    max_cycles: u8,
    synced_at: Option<Asn>,
    last_tx: Option<LastTx>,
    seq_next: u32,
    telemetry: StackTelemetry,
    /// Flight recorder (no-op unless [`DigsStack::set_trace`] installed a
    /// live handle).
    trace: TraceHandle,
    /// Parent set as last reported to the flight recorder, so a
    /// `ParentSwitch` event can carry the pre-change view (the routing
    /// layer has already updated itself by the time its event is seen).
    traced_parents: (Option<NodeId>, Option<NodeId>),
    /// Rank as last reported to the flight recorder.
    traced_rank: Rank,
    /// Construction parameters retained so a cold reboot (engine `reset`)
    /// can reprovision the stack from factory state.
    provision: Provision,
}

/// The immutable provisioning a mote ships with: everything `reset` needs
/// to rebuild routing and scheduling from scratch.
#[derive(Debug, Clone, Copy)]
struct Provision {
    num_aps: u16,
    slotframes: SlotframeLengths,
    attempts: u8,
    routing_config: RoutingConfig,
    queue_capacity: usize,
    seed: u64,
    /// Shared schedule-randomization nonce (`None` = static Eq. 4). Like
    /// the slotframe lengths, this is factory provisioning: it survives
    /// reboots, so a rebooted mote rejoins the randomized schedule its
    /// neighbors are still following.
    randomize: Option<u64>,
}

impl DigsStack {
    /// Builds the stack for node `id`. `flows` lists the flows this node
    /// sources (usually zero or one).
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        id: NodeId,
        is_ap: bool,
        num_aps: u16,
        slotframes: SlotframeLengths,
        attempts: u8,
        routing_config: RoutingConfig,
        flows: Vec<FlowSpec>,
        queue_capacity: usize,
        max_cycles: u8,
        seed: u64,
        randomize: Option<u64>,
    ) -> DigsStack {
        let mut telemetry = StackTelemetry::default();
        if is_ap {
            // Access points are synchronized roots from the start.
            telemetry.synced_at = Some(Asn::ZERO);
            telemetry.joined_at = Some(Asn::ZERO);
        }
        let routing = DigsRouting::new(id, is_ap, routing_config, seed, Asn::ZERO);
        let mut scheduler = DigsScheduler::new(id, num_aps, slotframes, attempts);
        scheduler.set_randomize(randomize);
        DigsStack {
            id,
            is_ap,
            traced_rank: routing.rank(),
            routing,
            scheduler,
            flows,
            app_queue: BoundedQueue::new(queue_capacity),
            routing_queue: BoundedQueue::new(queue_capacity),
            child_last_seen: std::collections::BTreeMap::new(),
            second_confirmed: false,
            max_cycles,
            synced_at: if is_ap { Some(Asn::ZERO) } else { None },
            last_tx: None,
            seq_next: 0,
            telemetry,
            trace: TraceHandle::off(),
            traced_parents: (None, None),
            provision: Provision {
                num_aps,
                slotframes,
                attempts,
                routing_config,
                queue_capacity,
                seed,
                randomize,
            },
        }
    }

    /// Harness telemetry.
    pub fn telemetry(&self) -> &StackTelemetry {
        &self.telemetry
    }

    /// Installs the flight-recorder handle (shared with the engine).
    pub fn set_trace(&mut self, trace: TraceHandle) {
        self.trace = trace;
        self.traced_parents = self.parents();
        self.traced_rank = self.rank();
    }

    /// Records a rank change since the last recorded value (called after
    /// every routing-event batch, which is the only place rank moves).
    fn trace_rank(&mut self, asn: Asn) {
        if !self.trace.is_on() {
            return;
        }
        let rank = self.routing.rank();
        if rank != self.traced_rank {
            self.trace.record(
                asn.0,
                self.id.0,
                EventKind::RankChange { old: Some(self.traced_rank.0), new: rank.0 },
            );
            self.traced_rank = rank;
        }
    }

    /// Records the dedicated receive cell (Eq. 4, attempt 1) installed for
    /// a newly registered child.
    fn trace_cell_alloc(&self, asn: Asn, child: NodeId) {
        if self.trace.is_on() {
            self.trace.record(
                asn.0,
                self.id.0,
                EventKind::CellAlloc {
                    slot: self.scheduler.tx_slot(child, 1),
                    offset: DigsScheduler::attempt_offset(child, 1).0,
                    child: child.0,
                },
            );
        }
    }

    /// Records the release of a child's dedicated receive cell.
    fn trace_cell_release(&self, asn: Asn, child: NodeId) {
        if self.trace.is_on() {
            self.trace.record(
                asn.0,
                self.id.0,
                EventKind::CellRelease {
                    slot: self.scheduler.tx_slot(child, 1),
                    offset: DigsScheduler::attempt_offset(child, 1).0,
                    child: child.0,
                },
            );
        }
    }

    /// Current `(best, second)` parents.
    pub fn parents(&self) -> (Option<NodeId>, Option<NodeId>) {
        (self.routing.best_parent(), self.routing.second_best_parent())
    }

    /// Current rank.
    pub fn rank(&self) -> Rank {
        self.routing.rank()
    }

    /// Whether the node is synchronized and attached to the graph.
    pub fn is_joined(&self) -> bool {
        self.synced_at.is_some() && self.routing.is_joined()
    }

    /// Whether the node holds TSCH synchronization (a desynced node is
    /// scanning for EBs and its housekeeping is dormant).
    pub fn is_synced(&self) -> bool {
        self.synced_at.is_some()
    }

    /// When the node last (re-)acquired synchronization, if it has any.
    pub fn synced_at(&self) -> Option<Asn> {
        self.synced_at
    }

    /// Read access to the routing state machine (snapshots, assertions).
    pub fn routing(&self) -> &DigsRouting {
        &self.routing
    }

    /// Read access to the autonomous scheduler (schedule inspection).
    pub fn scheduler(&self) -> &DigsScheduler {
        &self.scheduler
    }

    /// Application queue length (congestion diagnostics).
    pub fn app_queue_len(&self) -> usize {
        self.app_queue.len()
    }

    /// Registered children with each one's last-heard time, for the
    /// auditor's child-table invariant.
    pub fn children_last_seen(&self) -> Vec<(NodeId, Asn)> {
        self.scheduler
            .children()
            .map(|(c, _)| (c, self.child_last_seen.get(&c).copied().unwrap_or(Asn::ZERO)))
            .collect()
    }

    /// The dedicated `(application slot, channel offset)` cells this node
    /// transmits in under Eq. 4 — empty for access points (they own no TX
    /// cells) and for unjoined nodes (they never fire a data cell).
    pub fn cell_claims(&self) -> Vec<(u32, digs_sim::channel::ChannelOffset)> {
        if self.is_ap || !self.is_joined() {
            return Vec::new();
        }
        (1..=self.scheduler.attempts())
            .map(|p| {
                (self.scheduler.tx_slot(self.id, p), DigsScheduler::attempt_offset(self.id, p))
            })
            .collect()
    }

    fn process_routing_events(&mut self, events: Vec<RoutingEvent>, asn: Asn) {
        for event in events {
            match event {
                RoutingEvent::BroadcastJoinIn(msg) => {
                    // Keep only the freshest join-in in the queue.
                    self.routing_queue.retain(|m| !matches!(m.payload, Payload::JoinIn(_)));
                    self.routing_queue.push(QueuedRoutingMsg {
                        dest: Dest::Broadcast,
                        payload: Payload::JoinIn(msg),
                        retries: 0,
                    });
                }
                RoutingEvent::SendJoinedCallback { to, callback } => {
                    self.routing_queue.push(QueuedRoutingMsg {
                        dest: Dest::Unicast(to),
                        payload: Payload::JoinedCallback(callback),
                        retries: 0,
                    });
                }
                RoutingEvent::BroadcastDio(_) => {
                    debug_assert!(false, "DiGS routing never emits DIOs");
                }
                RoutingEvent::ParentsChanged { best, second } => {
                    if self.trace.is_on() {
                        let (old_best, old_second) = self.traced_parents;
                        self.trace.record(
                            asn.0,
                            self.id.0,
                            EventKind::ParentSwitch {
                                old_best: old_best.map(|n| n.0),
                                new_best: best.map(|n| n.0),
                                old_second: old_second.map(|n| n.0),
                                new_second: second.map(|n| n.0),
                            },
                        );
                        self.traced_parents = (best, second);
                    }
                    self.second_confirmed = false;
                    self.scheduler.set_parents(best, second);
                    self.telemetry.parent_changes.push(asn);
                    if self.telemetry.joined_at.is_none() && best.is_some() {
                        self.telemetry.joined_at = Some(asn);
                    }
                    // Announce the new parent set at the next shared slot
                    // without waiting for the Trickle firing point: until
                    // the new parents hear it (or the callback), their
                    // schedules lack our receive cells.
                    if best.is_some() {
                        self.routing_queue.retain(|m| !matches!(m.payload, Payload::JoinIn(_)));
                        self.routing_queue.push(QueuedRoutingMsg {
                            dest: Dest::Broadcast,
                            payload: Payload::JoinIn(self.routing.join_in()),
                            retries: 0,
                        });
                    }
                }
            }
        }
        self.trace_rank(asn);
    }

    /// Picks the actual next hop for a data cell: the backup route is only
    /// used once its registration is confirmed; before that, attempt-A
    /// cells go to the primary, with a probe toward the backup every
    /// fourth application cycle (the primary listens in all of our attempt
    /// cells, so the redirect always has a receiver).
    fn resolve_data_target(&self, scheduled: NodeId, attempt: u8, asn: Asn) -> NodeId {
        if attempt < self.scheduler.attempts() {
            return scheduled;
        }
        let second = self.routing.second_best_parent();
        if Some(scheduled) != second || self.second_confirmed {
            return scheduled;
        }
        let cycle = asn.0 / u64::from(self.scheduler.lengths().app);
        let probing = cycle.is_multiple_of(4);
        if probing {
            scheduled
        } else {
            self.routing.best_parent().unwrap_or(scheduled)
        }
    }

    fn generate_app_packets(&mut self, asn: Asn) {
        // Sources generate according to their flow schedule regardless of
        // join state (undeliverable packets count against PDR, as on the
        // testbeds).
        for i in 0..self.flows.len() {
            let flow = self.flows[i];
            if flow.generates_at(asn) {
                let packet = DataPacket {
                    flow: flow.id,
                    seq: self.seq_next,
                    origin: self.id,
                    generated_at: asn,
                };
                self.seq_next += 1;
                *self.telemetry.generated.entry(flow.id).or_insert(0) += 1;
                if self.trace.is_on() {
                    self.trace.record(
                        asn.0,
                        self.id.0,
                        EventKind::Generated { packet: trace_pid(&packet) },
                    );
                }
                if !self.app_queue.push(QueuedPacket { packet, failed_attempts: 0 }) {
                    self.telemetry.queue_drops += 1;
                    if self.trace.is_on() {
                        self.trace.record(
                            asn.0,
                            self.id.0,
                            EventKind::QueueOverflow { packet: trace_pid(&packet) },
                        );
                    }
                } else if self.trace.is_on() {
                    self.trace.record(
                        asn.0,
                        self.id.0,
                        EventKind::QueueEnq {
                            packet: trace_pid(&packet),
                            depth: self.app_queue.len() as u32,
                        },
                    );
                }
            }
        }
    }
}

impl NodeStack for DigsStack {
    type Payload = Payload;

    fn slot_intent(&mut self, asn: Asn) -> SlotIntent<Payload> {
        self.last_tx = None;
        self.generate_app_packets(asn);

        // Unsynchronised nodes park on a scan channel waiting for an EB.
        if self.synced_at.is_none() {
            return SlotIntent::Listen { offset: scan_offset(asn) };
        }

        // Routing housekeeping (Trickle, eviction).
        let events = self.routing.tick(asn);
        self.process_routing_events(events, asn);

        // Garbage-collect children not heard from in three Trickle maximum
        // intervals (192 s) — long enough that a child whose join-ins are
        // paced at Imax is never evicted while alive.
        if asn.0.is_multiple_of(64) && !self.child_last_seen.is_empty() {
            let horizon = asn.0.saturating_sub(19_200);
            let stale: Vec<NodeId> = self
                .child_last_seen
                .iter()
                .filter(|(_, seen)| seen.0 < horizon)
                .map(|(id, _)| *id)
                .collect();
            for id in stale {
                self.child_last_seen.remove(&id);
                self.scheduler.remove_child(id);
                self.trace_cell_release(asn, id);
            }
        }

        let Some(cell) = self.scheduler.cell(asn) else {
            return SlotIntent::Sleep;
        };
        match cell.action {
            CellAction::TxBeacon => {
                self.last_tx = Some(LastTx::Beacon);
                SlotIntent::Transmit {
                    offset: cell.offset,
                    frame: Frame::new(
                        self.id,
                        Dest::Broadcast,
                        Payload::Eb.frame_kind(),
                        Payload::Eb.frame_size(),
                        Payload::Eb,
                    ),
                    contention: cell.contention,
                }
            }
            CellAction::RxBeacon { .. } | CellAction::RxData => {
                SlotIntent::Listen { offset: cell.offset }
            }
            CellAction::Shared => match self.routing_queue.front() {
                Some(msg) => {
                    let (dest, payload) = (msg.dest, msg.payload);
                    self.last_tx = Some(match dest {
                        Dest::Broadcast => LastTx::RoutingBroadcast,
                        Dest::Unicast(to) => LastTx::RoutingUnicast { to },
                    });
                    SlotIntent::Transmit {
                        offset: cell.offset,
                        frame: Frame::new(
                            self.id,
                            dest,
                            payload.frame_kind(),
                            payload.frame_size(),
                            payload,
                        ),
                        contention: true,
                    }
                }
                None => SlotIntent::Listen { offset: cell.offset },
            },
            CellAction::TxData { to, attempt } => {
                let to = self.resolve_data_target(to, attempt, asn);
                match self.app_queue.front() {
                    Some(item) => {
                        let pid = trace_pid(&item.packet);
                        let payload = Payload::Data(item.packet);
                        self.last_tx = Some(LastTx::Data { to });
                        SlotIntent::Transmit {
                            offset: cell.offset,
                            frame: Frame::new(
                                self.id,
                                Dest::Unicast(to),
                                payload.frame_kind(),
                                payload.frame_size(),
                                payload,
                            )
                            .with_trace_id(pid),
                            contention: cell.contention,
                        }
                    }
                    // A TX cell with an empty queue sleeps (TSCH semantics).
                    None => SlotIntent::Sleep,
                }
            }
        }
    }

    fn on_frame(&mut self, asn: Asn, frame: &Frame<Payload>, rss: Dbm) {
        match &frame.payload {
            Payload::Eb => {
                // A scanning radio must acquire slot timing from the EB; in
                // real TSCH association this fails more often than not (the
                // mote wakes mid-beacon, or the timing offset exceeds the
                // guard). Model a 25 percent association success per EB.
                if self.synced_at.is_none()
                    && digs_sim::rng::uniform01(u64::from(self.id.0) ^ 0xeb, asn.0, 3, 1) < 0.25
                {
                    self.synced_at = Some(asn);
                    self.telemetry.synced_at = Some(asn);
                }
            }
            Payload::JoinIn(msg) => {
                if self.synced_at.is_some() {
                    let events = self.routing.on_join_in(frame.src, msg, rss, asn);
                    self.process_routing_events(events, asn);
                    // Refresh the scheduler's child table from the parent
                    // ids piggybacked on the join-in. Absence of our id is
                    // NOT a removal — only explicit revocation or prolonged
                    // silence unregisters a child; over-listening costs
                    // idle-listen energy (the overhead the paper concedes)
                    // but never loses a packet.
                    if msg.best_parent == Some(self.id) {
                        self.scheduler
                            .add_child(frame.src, digs_routing::messages::ParentSlot::Best);
                        if self.child_last_seen.insert(frame.src, asn).is_none() {
                            self.trace_cell_alloc(asn, frame.src);
                        }
                    } else if msg.second_parent == Some(self.id) {
                        self.scheduler
                            .add_child(frame.src, digs_routing::messages::ParentSlot::SecondBest);
                        if self.child_last_seen.insert(frame.src, asn).is_none() {
                            self.trace_cell_alloc(asn, frame.src);
                        }
                    }
                }
            }
            Payload::JoinedCallback(cb) => {
                if frame.dst.addressed_to(self.id) && !matches!(frame.dst, Dest::Broadcast) {
                    let events = self.routing.on_joined_callback(frame.src, cb, asn);
                    if cb.selected {
                        self.scheduler.add_child(frame.src, cb.slot);
                        if self.child_last_seen.insert(frame.src, asn).is_none() {
                            self.trace_cell_alloc(asn, frame.src);
                        }
                    } else {
                        self.scheduler.remove_child(frame.src);
                        if self.child_last_seen.remove(&frame.src).is_some() {
                            self.trace_cell_release(asn, frame.src);
                        }
                    }
                    self.process_routing_events(events, asn);
                }
            }
            Payload::Dio(_) => {} // not ours; Orchestra traffic in mixed tests
            Payload::Data(packet) => {
                if !frame.dst.addressed_to(self.id) || matches!(frame.dst, Dest::Broadcast) {
                    return;
                }
                // The frame's slot identifies the sender's attempt number
                // (Eq. 4 is invertible, also under randomization — the
                // epoch permutation derandomizes first), which tells us
                // whether the sender uses us as its primary or backup
                // parent — refresh the child table from actual traffic so a
                // lost joined-callback cannot leave the schedule
                // permanently asymmetric.
                if let Some(p) = self.scheduler.infer_attempt_at(frame.src, asn) {
                    let role = if p < self.scheduler.attempts() {
                        digs_routing::messages::ParentSlot::Best
                    } else {
                        digs_routing::messages::ParentSlot::SecondBest
                    };
                    self.scheduler.add_child(frame.src, role);
                    if self.child_last_seen.insert(frame.src, asn).is_none() {
                        self.trace_cell_alloc(asn, frame.src);
                    }
                }
                if self.is_ap {
                    if self.trace.is_on() {
                        self.trace.record(
                            asn.0,
                            self.id.0,
                            EventKind::Delivered {
                                packet: trace_pid(packet),
                                latency_slots: asn.0.saturating_sub(packet.generated_at.0),
                            },
                        );
                    }
                    self.telemetry
                        .deliveries
                        .push(DeliveryRecord { packet: *packet, delivered_at: asn });
                } else if !self.app_queue.push(QueuedPacket { packet: *packet, failed_attempts: 0 })
                {
                    self.telemetry.queue_drops += 1;
                    if self.trace.is_on() {
                        self.trace.record(
                            asn.0,
                            self.id.0,
                            EventKind::QueueOverflow { packet: trace_pid(packet) },
                        );
                    }
                } else if self.trace.is_on() {
                    self.trace.record(
                        asn.0,
                        self.id.0,
                        EventKind::QueueEnq {
                            packet: trace_pid(packet),
                            depth: self.app_queue.len() as u32,
                        },
                    );
                }
            }
        }
    }

    fn reset(&mut self, asn: Asn) {
        // Cold reboot: routing, schedule, queues, children, and sync are
        // factory-fresh; the node must re-associate via EBs and rejoin the
        // graph from scratch. Sequence numbers and telemetry survive — they
        // are harness accounting, not mote RAM, and flow bookkeeping must
        // stay cumulative across the reboot.
        let p = self.provision;
        let seed = digs_sim::rng::mix(p.seed, asn.0, 0x001e_b007, 0);
        self.routing = DigsRouting::new(self.id, self.is_ap, p.routing_config, seed, asn);
        self.scheduler = DigsScheduler::new(self.id, p.num_aps, p.slotframes, p.attempts);
        self.scheduler.set_randomize(p.randomize);
        self.app_queue = BoundedQueue::new(p.queue_capacity);
        self.routing_queue = BoundedQueue::new(p.queue_capacity);
        self.child_last_seen.clear();
        self.second_confirmed = false;
        self.synced_at = if self.is_ap { Some(asn) } else { None };
        self.last_tx = None;
        self.traced_parents = (None, None);
        self.traced_rank = self.routing.rank();
    }

    fn desync(&mut self, _asn: Asn) {
        if self.is_ap {
            return; // APs are wired time roots and cannot lose sync.
        }
        // Routing state and queues survive, but the radio must re-acquire
        // slot alignment from an EB before any cell lines up again.
        self.synced_at = None;
        self.last_tx = None;
    }

    fn on_tx_outcome(&mut self, asn: Asn, outcome: TxOutcome) {
        let Some(last) = self.last_tx.take() else {
            return;
        };
        match last {
            LastTx::Beacon => {}
            LastTx::RoutingBroadcast => match outcome {
                TxOutcome::SentBroadcast => {
                    self.routing_queue.pop();
                }
                TxOutcome::DeferredCca => {} // retry at the next shared slot
                _ => {}
            },
            LastTx::RoutingUnicast { to } => match outcome {
                TxOutcome::Acked => {
                    self.routing_queue.pop();
                    if self.routing.second_best_parent() == Some(to) {
                        self.second_confirmed = true;
                    }
                    let events = self.routing.on_tx_result(to, true, asn);
                    self.process_routing_events(events, asn);
                }
                TxOutcome::NoAck => {
                    if let Some(front) = self.routing_queue.front() {
                        if front.retries + 1 >= MAX_ROUTING_RETRIES {
                            self.routing_queue.pop();
                        } else if let Some(mut msg) = self.routing_queue.pop() {
                            msg.retries += 1;
                            self.routing_queue.push(msg);
                        }
                    }
                    let events = self.routing.on_tx_result(to, false, asn);
                    self.process_routing_events(events, asn);
                }
                TxOutcome::DeferredCca => {}
                TxOutcome::SentBroadcast => {}
            },
            LastTx::Data { to } => match outcome {
                TxOutcome::Acked => {
                    if let Some(item) = self.app_queue.pop() {
                        if self.trace.is_on() {
                            self.trace.record(
                                asn.0,
                                self.id.0,
                                EventKind::QueueDeq {
                                    packet: trace_pid(&item.packet),
                                    depth: self.app_queue.len() as u32,
                                },
                            );
                        }
                    }
                    self.telemetry.forwarded += 1;
                    if self.routing.second_best_parent() == Some(to) {
                        self.second_confirmed = true;
                    }
                    let events = self.routing.on_tx_result(to, true, asn);
                    self.process_routing_events(events, asn);
                }
                TxOutcome::NoAck => {
                    let budget = u16::from(self.scheduler.attempts()) * u16::from(self.max_cycles);
                    if let Some(mut item) = self.app_queue.pop() {
                        item.failed_attempts = item.failed_attempts.saturating_add(1);
                        if u16::from(item.failed_attempts) >= budget {
                            self.telemetry.retry_drops += 1;
                            if self.trace.is_on() {
                                self.trace.record(
                                    asn.0,
                                    self.id.0,
                                    EventKind::RetryDrop { packet: trace_pid(&item.packet) },
                                );
                            }
                        } else {
                            // Head-of-line: retries keep FIFO position by
                            // re-inserting at the front via rebuild.
                            let mut rest: Vec<QueuedPacket> =
                                Vec::with_capacity(self.app_queue.len());
                            while let Some(p) = self.app_queue.pop() {
                                rest.push(p);
                            }
                            self.app_queue.push(item);
                            for p in rest {
                                self.app_queue.push(p);
                            }
                        }
                    }
                    let events = self.routing.on_tx_result(to, false, asn);
                    self.process_routing_events(events, asn);
                }
                TxOutcome::DeferredCca | TxOutcome::SentBroadcast => {}
            },
        }
    }
}
