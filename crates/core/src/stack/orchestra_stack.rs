//! The Orchestra baseline stack: EB scanning → RPL (single preferred
//! parent) → Orchestra receiver-based scheduling.

use super::{
    scan_offset, trace_pid, DeliveryRecord, LastTx, QueuedPacket, QueuedRoutingMsg, StackTelemetry,
    MAX_ROUTING_RETRIES,
};
use crate::flows::FlowSpec;
use crate::payload::{DataPacket, Payload};
use crate::queue::BoundedQueue;
use digs_routing::messages::RoutingEvent;
use digs_routing::{Rank, RoutingConfig, RplRouting};
use digs_scheduling::slotframe::CellAction;
use digs_scheduling::{OrchestraScheduler, SlotframeLengths};
use digs_sim::engine::{NodeStack, SlotIntent, TxOutcome};
use digs_sim::ids::NodeId;
use digs_sim::packet::{Dest, Frame};
use digs_sim::rf::Dbm;
use digs_sim::time::Asn;
use digs_trace::{EventKind, TraceHandle};

/// Maximum link-layer transmissions of a data packet before Orchestra
/// drops it (TSCH's default MAC retry budget).
pub const MAX_DATA_RETRIES: u8 = 8;

/// The Orchestra protocol stack for one node.
#[derive(Debug)]
pub struct OrchestraStack {
    id: NodeId,
    is_ap: bool,
    routing: RplRouting,
    scheduler: OrchestraScheduler,
    flows: Vec<FlowSpec>,
    app_queue: BoundedQueue<QueuedPacket>,
    routing_queue: BoundedQueue<QueuedRoutingMsg>,
    /// When each registered child was last heard from (sender-based
    /// schedule: the parent's receive cells derive from this set).
    child_last_seen: std::collections::BTreeMap<NodeId, Asn>,
    synced_at: Option<Asn>,
    last_tx: Option<LastTx>,
    seq_next: u32,
    telemetry: StackTelemetry,
    /// Flight recorder (no-op unless [`OrchestraStack::set_trace`]
    /// installed a live handle).
    trace: TraceHandle,
    /// Preferred parent as last reported to the flight recorder.
    traced_parent: Option<NodeId>,
    /// Rank as last reported to the flight recorder.
    traced_rank: Rank,
    /// Construction parameters retained so a cold reboot (engine `reset`)
    /// can reprovision the stack from factory state.
    provision: Provision,
}

/// The immutable provisioning a mote ships with: everything `reset` needs
/// to rebuild routing and scheduling from scratch.
#[derive(Debug, Clone, Copy)]
struct Provision {
    slotframes: SlotframeLengths,
    routing_config: RoutingConfig,
    queue_capacity: usize,
    seed: u64,
}

impl OrchestraStack {
    /// Builds the stack for node `id`.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        id: NodeId,
        is_ap: bool,
        slotframes: SlotframeLengths,
        routing_config: RoutingConfig,
        flows: Vec<FlowSpec>,
        queue_capacity: usize,
        seed: u64,
    ) -> OrchestraStack {
        let mut telemetry = StackTelemetry::default();
        if is_ap {
            telemetry.synced_at = Some(Asn::ZERO);
            telemetry.joined_at = Some(Asn::ZERO);
        }
        let routing = RplRouting::new(id, is_ap, routing_config, seed, Asn::ZERO);
        OrchestraStack {
            id,
            is_ap,
            traced_rank: routing.rank(),
            routing,
            scheduler: OrchestraScheduler::new(id, slotframes),
            flows,
            app_queue: BoundedQueue::new(queue_capacity),
            routing_queue: BoundedQueue::new(queue_capacity),
            child_last_seen: std::collections::BTreeMap::new(),
            synced_at: if is_ap { Some(Asn::ZERO) } else { None },
            last_tx: None,
            seq_next: 0,
            telemetry,
            trace: TraceHandle::off(),
            traced_parent: None,
            provision: Provision { slotframes, routing_config, queue_capacity, seed },
        }
    }

    /// Harness telemetry.
    pub fn telemetry(&self) -> &StackTelemetry {
        &self.telemetry
    }

    /// Installs the flight-recorder handle (shared with the engine).
    pub fn set_trace(&mut self, trace: TraceHandle) {
        self.trace = trace;
        self.traced_parent = self.parent();
        self.traced_rank = self.rank();
    }

    /// Records a rank change since the last recorded value.
    fn trace_rank(&mut self, asn: Asn) {
        if !self.trace.is_on() {
            return;
        }
        let rank = self.routing.rank();
        if rank != self.traced_rank {
            self.trace.record(
                asn.0,
                self.id.0,
                EventKind::RankChange { old: Some(self.traced_rank.0), new: rank.0 },
            );
            self.traced_rank = rank;
        }
    }

    /// Records the sender-based receive cell installed for a newly heard
    /// neighbor.
    fn trace_cell_alloc(&self, asn: Asn, child: NodeId) {
        if self.trace.is_on() {
            self.trace.record(
                asn.0,
                self.id.0,
                EventKind::CellAlloc {
                    slot: self.scheduler.sbs_tx_slot(child),
                    offset: digs_scheduling::slotframe::node_offset(child).0,
                    child: child.0,
                },
            );
        }
    }

    /// Records the release of a garbage-collected neighbor's receive cell.
    fn trace_cell_release(&self, asn: Asn, child: NodeId) {
        if self.trace.is_on() {
            self.trace.record(
                asn.0,
                self.id.0,
                EventKind::CellRelease {
                    slot: self.scheduler.sbs_tx_slot(child),
                    offset: digs_scheduling::slotframe::node_offset(child).0,
                    child: child.0,
                },
            );
        }
    }

    /// Current preferred parent.
    pub fn parent(&self) -> Option<NodeId> {
        self.routing.preferred_parent()
    }

    /// Current rank.
    pub fn rank(&self) -> Rank {
        self.routing.rank()
    }

    /// Whether the node is synchronized and attached to the DODAG.
    pub fn is_joined(&self) -> bool {
        self.synced_at.is_some() && self.routing.is_joined()
    }

    /// Read access to the RPL state machine.
    pub fn routing(&self) -> &RplRouting {
        &self.routing
    }

    /// Application queue length (congestion diagnostics).
    pub fn app_queue_len(&self) -> usize {
        self.app_queue.len()
    }

    fn process_routing_events(&mut self, events: Vec<RoutingEvent>, asn: Asn) {
        for event in events {
            match event {
                RoutingEvent::BroadcastDio(dio) => {
                    self.routing_queue.retain(|m| !matches!(m.payload, Payload::Dio(_)));
                    self.routing_queue.push(QueuedRoutingMsg {
                        dest: Dest::Broadcast,
                        payload: Payload::Dio(dio),
                        retries: 0,
                    });
                }
                RoutingEvent::ParentsChanged { best, .. } => {
                    if self.trace.is_on() {
                        self.trace.record(
                            asn.0,
                            self.id.0,
                            EventKind::ParentSwitch {
                                old_best: self.traced_parent.map(|n| n.0),
                                new_best: best.map(|n| n.0),
                                old_second: None,
                                new_second: None,
                            },
                        );
                        self.traced_parent = best;
                    }
                    self.scheduler.set_parent(best);
                    self.telemetry.parent_changes.push(asn);
                    if self.telemetry.joined_at.is_none() && best.is_some() {
                        self.telemetry.joined_at = Some(asn);
                    }
                }
                RoutingEvent::BroadcastJoinIn(_) | RoutingEvent::SendJoinedCallback { .. } => {
                    debug_assert!(false, "RPL never emits DiGS messages");
                }
            }
        }
        self.trace_rank(asn);
    }

    fn generate_app_packets(&mut self, asn: Asn) {
        for i in 0..self.flows.len() {
            let flow = self.flows[i];
            if flow.generates_at(asn) {
                let packet = DataPacket {
                    flow: flow.id,
                    seq: self.seq_next,
                    origin: self.id,
                    generated_at: asn,
                };
                self.seq_next += 1;
                *self.telemetry.generated.entry(flow.id).or_insert(0) += 1;
                if self.trace.is_on() {
                    self.trace.record(
                        asn.0,
                        self.id.0,
                        EventKind::Generated { packet: trace_pid(&packet) },
                    );
                }
                if !self.app_queue.push(QueuedPacket { packet, failed_attempts: 0 }) {
                    self.telemetry.queue_drops += 1;
                    if self.trace.is_on() {
                        self.trace.record(
                            asn.0,
                            self.id.0,
                            EventKind::QueueOverflow { packet: trace_pid(&packet) },
                        );
                    }
                } else if self.trace.is_on() {
                    self.trace.record(
                        asn.0,
                        self.id.0,
                        EventKind::QueueEnq {
                            packet: trace_pid(&packet),
                            depth: self.app_queue.len() as u32,
                        },
                    );
                }
            }
        }
    }
}

impl NodeStack for OrchestraStack {
    type Payload = Payload;

    fn slot_intent(&mut self, asn: Asn) -> SlotIntent<Payload> {
        self.last_tx = None;
        self.generate_app_packets(asn);

        if self.synced_at.is_none() {
            return SlotIntent::Listen { offset: scan_offset(asn) };
        }

        let events = self.routing.tick(asn);
        self.process_routing_events(events, asn);

        // Garbage-collect children not heard from in three Trickle maximum
        // intervals (192 s).
        if asn.0.is_multiple_of(64) && !self.child_last_seen.is_empty() {
            let horizon = asn.0.saturating_sub(19_200);
            let stale: Vec<NodeId> = self
                .child_last_seen
                .iter()
                .filter(|(_, seen)| seen.0 < horizon)
                .map(|(id, _)| *id)
                .collect();
            for id in stale {
                self.child_last_seen.remove(&id);
                self.scheduler.remove_child(id);
                self.trace_cell_release(asn, id);
            }
        }

        let Some(cell) = self.scheduler.cell(asn) else {
            return SlotIntent::Sleep;
        };
        match cell.action {
            CellAction::TxBeacon => {
                self.last_tx = Some(LastTx::Beacon);
                SlotIntent::Transmit {
                    offset: cell.offset,
                    frame: Frame::new(
                        self.id,
                        Dest::Broadcast,
                        Payload::Eb.frame_kind(),
                        Payload::Eb.frame_size(),
                        Payload::Eb,
                    ),
                    contention: cell.contention,
                }
            }
            CellAction::RxBeacon { .. } | CellAction::RxData => {
                SlotIntent::Listen { offset: cell.offset }
            }
            CellAction::Shared => match self.routing_queue.front() {
                Some(msg) => {
                    let (dest, payload) = (msg.dest, msg.payload);
                    self.last_tx = Some(match dest {
                        Dest::Broadcast => LastTx::RoutingBroadcast,
                        Dest::Unicast(to) => LastTx::RoutingUnicast { to },
                    });
                    SlotIntent::Transmit {
                        offset: cell.offset,
                        frame: Frame::new(
                            self.id,
                            dest,
                            payload.frame_kind(),
                            payload.frame_size(),
                            payload,
                        ),
                        contention: true,
                    }
                }
                None => SlotIntent::Listen { offset: cell.offset },
            },
            CellAction::TxData { to, .. } => match self.app_queue.front() {
                Some(item) => {
                    let pid = trace_pid(&item.packet);
                    let payload = Payload::Data(item.packet);
                    self.last_tx = Some(LastTx::Data { to });
                    SlotIntent::Transmit {
                        offset: cell.offset,
                        frame: Frame::new(
                            self.id,
                            Dest::Unicast(to),
                            payload.frame_kind(),
                            payload.frame_size(),
                            payload,
                        )
                        .with_trace_id(pid),
                        contention: cell.contention,
                    }
                }
                // Orchestra's RBS: with nothing to send, the node still
                // owns no rx duty here (its own rx cell is elsewhere).
                None => SlotIntent::Sleep,
            },
        }
    }

    fn on_frame(&mut self, asn: Asn, frame: &Frame<Payload>, rss: Dbm) {
        match &frame.payload {
            Payload::Eb => {
                // A scanning radio must acquire slot timing from the EB; in
                // real TSCH association this fails more often than not (the
                // mote wakes mid-beacon, or the timing offset exceeds the
                // guard). Model a 25 percent association success per EB.
                if self.synced_at.is_none()
                    && digs_sim::rng::uniform01(u64::from(self.id.0) ^ 0xeb, asn.0, 3, 1) < 0.25
                {
                    self.synced_at = Some(asn);
                    self.telemetry.synced_at = Some(asn);
                }
            }
            Payload::Dio(dio) => {
                if self.synced_at.is_some() {
                    let events = self.routing.on_dio(frame.src, dio, rss, asn);
                    self.process_routing_events(events, asn);
                    // Orchestra's sender-based mode: RPL gives no reliable
                    // child knowledge, so a node installs a receive cell
                    // for *every* neighbor it hears — the listening
                    // overhead that made receiver-based cells Orchestra's
                    // default (SenSys'15, Section 4.3).
                    self.scheduler.add_child(frame.src);
                    if self.child_last_seen.insert(frame.src, asn).is_none() {
                        self.trace_cell_alloc(asn, frame.src);
                    }
                }
            }
            Payload::JoinIn(_) | Payload::JoinedCallback(_) => {}
            Payload::Data(packet) => {
                if !frame.dst.addressed_to(self.id) || matches!(frame.dst, Dest::Broadcast) {
                    return;
                }
                // Observed traffic keeps the child registration fresh.
                self.scheduler.add_child(frame.src);
                if self.child_last_seen.insert(frame.src, asn).is_none() {
                    self.trace_cell_alloc(asn, frame.src);
                }
                if self.is_ap {
                    if self.trace.is_on() {
                        self.trace.record(
                            asn.0,
                            self.id.0,
                            EventKind::Delivered {
                                packet: trace_pid(packet),
                                latency_slots: asn.0.saturating_sub(packet.generated_at.0),
                            },
                        );
                    }
                    self.telemetry
                        .deliveries
                        .push(DeliveryRecord { packet: *packet, delivered_at: asn });
                } else if !self.app_queue.push(QueuedPacket { packet: *packet, failed_attempts: 0 })
                {
                    self.telemetry.queue_drops += 1;
                    if self.trace.is_on() {
                        self.trace.record(
                            asn.0,
                            self.id.0,
                            EventKind::QueueOverflow { packet: trace_pid(packet) },
                        );
                    }
                } else if self.trace.is_on() {
                    self.trace.record(
                        asn.0,
                        self.id.0,
                        EventKind::QueueEnq {
                            packet: trace_pid(packet),
                            depth: self.app_queue.len() as u32,
                        },
                    );
                }
            }
        }
    }

    fn reset(&mut self, asn: Asn) {
        // Cold reboot: RPL state, Orchestra cells, queues, children, and
        // sync are factory-fresh. Sequence numbers and telemetry survive —
        // harness accounting, not mote RAM.
        let p = self.provision;
        let seed = digs_sim::rng::mix(p.seed, asn.0, 0x001e_b007, 1);
        self.routing = RplRouting::new(self.id, self.is_ap, p.routing_config, seed, asn);
        self.scheduler = OrchestraScheduler::new(self.id, p.slotframes);
        self.app_queue = BoundedQueue::new(p.queue_capacity);
        self.routing_queue = BoundedQueue::new(p.queue_capacity);
        self.child_last_seen.clear();
        self.synced_at = if self.is_ap { Some(asn) } else { None };
        self.last_tx = None;
        self.traced_parent = None;
        self.traced_rank = self.routing.rank();
    }

    fn desync(&mut self, _asn: Asn) {
        if self.is_ap {
            return; // APs are wired time roots and cannot lose sync.
        }
        self.synced_at = None;
        self.last_tx = None;
    }

    fn on_tx_outcome(&mut self, asn: Asn, outcome: TxOutcome) {
        let Some(last) = self.last_tx.take() else {
            return;
        };
        match last {
            LastTx::Beacon => {}
            LastTx::RoutingBroadcast => {
                if outcome == TxOutcome::SentBroadcast {
                    self.routing_queue.pop();
                }
            }
            LastTx::RoutingUnicast { to } => match outcome {
                TxOutcome::Acked => {
                    self.routing_queue.pop();
                    let events = self.routing.on_tx_result(to, true, asn);
                    self.process_routing_events(events, asn);
                }
                TxOutcome::NoAck => {
                    if let Some(front) = self.routing_queue.front() {
                        if front.retries + 1 >= MAX_ROUTING_RETRIES {
                            self.routing_queue.pop();
                        } else if let Some(mut msg) = self.routing_queue.pop() {
                            msg.retries += 1;
                            self.routing_queue.push(msg);
                        }
                    }
                    let events = self.routing.on_tx_result(to, false, asn);
                    self.process_routing_events(events, asn);
                }
                _ => {}
            },
            LastTx::Data { to } => match outcome {
                TxOutcome::Acked => {
                    if let Some(item) = self.app_queue.pop() {
                        if self.trace.is_on() {
                            self.trace.record(
                                asn.0,
                                self.id.0,
                                EventKind::QueueDeq {
                                    packet: trace_pid(&item.packet),
                                    depth: self.app_queue.len() as u32,
                                },
                            );
                        }
                    }
                    self.telemetry.forwarded += 1;
                    let events = self.routing.on_tx_result(to, true, asn);
                    self.process_routing_events(events, asn);
                }
                TxOutcome::NoAck => {
                    if let Some(mut item) = self.app_queue.pop() {
                        item.failed_attempts = item.failed_attempts.saturating_add(1);
                        if item.failed_attempts >= MAX_DATA_RETRIES {
                            self.telemetry.retry_drops += 1;
                            if self.trace.is_on() {
                                self.trace.record(
                                    asn.0,
                                    self.id.0,
                                    EventKind::RetryDrop { packet: trace_pid(&item.packet) },
                                );
                            }
                        } else {
                            let mut rest: Vec<QueuedPacket> =
                                Vec::with_capacity(self.app_queue.len());
                            while let Some(p) = self.app_queue.pop() {
                                rest.push(p);
                            }
                            self.app_queue.push(item);
                            for p in rest {
                                self.app_queue.push(p);
                            }
                        }
                    }
                    let events = self.routing.on_tx_result(to, false, asn);
                    self.process_routing_events(events, asn);
                }
                // A CCA deferral keeps the packet for the next cycle
                // without consuming a MAC retry.
                TxOutcome::DeferredCca | TxOutcome::SentBroadcast => {}
            },
        }
    }
}
