//! Per-node protocol stacks driving the simulation engine.
//!
//! A stack owns everything one mote runs: time-sync state (EB scanning
//! before joining), the routing state machine, the autonomous scheduler,
//! the packet queues, and the bookkeeping the experiment harness reads
//! back (deliveries, parent changes, join times).

mod digs_stack;
mod orchestra_stack;
#[cfg(test)]
mod tests_stacks;
mod whart_stack;

pub use digs_stack::DigsStack;
pub use orchestra_stack::OrchestraStack;
pub use whart_stack::WhartStack;

use crate::payload::{DataPacket, Payload};
use digs_sim::channel::{ChannelOffset, NUM_CHANNELS};
use digs_sim::engine::{NodeStack, SlotIntent, TxOutcome};
use digs_sim::ids::NodeId;
use digs_sim::packet::{Dest, Frame};
use digs_sim::rf::Dbm;
use digs_sim::time::Asn;

/// A packet delivered to an access point.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct DeliveryRecord {
    /// The delivered packet.
    pub packet: DataPacket,
    /// When it arrived at the access point.
    pub delivered_at: Asn,
}

/// What the stack transmitted in the current slot (to interpret the
/// engine's `on_tx_outcome`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum LastTx {
    Beacon,
    RoutingBroadcast,
    RoutingUnicast { to: NodeId },
    Data { to: NodeId },
}

/// An application-queue entry: the packet plus how many scheduler cycles
/// it has been retried at this hop.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct QueuedPacket {
    pub packet: DataPacket,
    pub failed_attempts: u8,
}

/// A routing-queue entry with its retry budget.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct QueuedRoutingMsg {
    pub dest: Dest,
    pub payload: Payload,
    pub retries: u8,
}

/// Maximum CSMA/unicast retries for a routing-plane message before it is
/// abandoned (a fresher one will follow via Trickle).
pub(crate) const MAX_ROUTING_RETRIES: u8 = 8;

/// The flight-recorder identity of an application packet.
pub(crate) fn trace_pid(packet: &DataPacket) -> digs_trace::PacketId {
    digs_trace::PacketId { flow: packet.flow.0, seq: packet.seq, origin: packet.origin.0 }
}

/// Channel offset that makes the hopping sequence land on a fixed physical
/// scan channel: an unsynchronised node parks its radio on one channel and
/// waits for an EB (rotating the channel slowly so a jammed channel cannot
/// starve it).
pub(crate) fn scan_offset(asn: Asn) -> ChannelOffset {
    let scan_channel = (asn.0 / 128) % u64::from(NUM_CHANNELS);
    let off = (scan_channel + u64::from(NUM_CHANNELS) - asn.0 % u64::from(NUM_CHANNELS))
        % u64::from(NUM_CHANNELS);
    ChannelOffset::new(off as u8)
}

/// Instrumentation every stack exposes to the harness.
#[derive(Debug, Clone, Default)]
pub struct StackTelemetry {
    /// Packets this node generated as a flow source, per flow.
    pub generated: std::collections::BTreeMap<digs_sim::ids::FlowId, u32>,
    /// Packets delivered here (non-empty only on access points).
    pub deliveries: Vec<DeliveryRecord>,
    /// Every slot at which the parent set changed.
    pub parent_changes: Vec<Asn>,
    /// When the node synchronized (heard its first EB).
    pub synced_at: Option<Asn>,
    /// When the node joined the routing graph (selected its parents).
    pub joined_at: Option<Asn>,
    /// Packets dropped after exhausting retries.
    pub retry_drops: u64,
    /// Packets dropped on queue overflow.
    pub queue_drops: u64,
    /// Data frames this node forwarded onward (relay traffic).
    pub forwarded: u64,
}

/// The uniform view of both protocol stacks the network runner uses.
#[derive(Debug)]
pub enum ProtocolStack {
    /// The paper's stack.
    Digs(DigsStack),
    /// The Orchestra baseline stack.
    Orchestra(OrchestraStack),
    /// The centralized WirelessHART baseline stack.
    WirelessHart(WhartStack),
}

impl ProtocolStack {
    /// Telemetry for the harness.
    pub fn telemetry(&self) -> &StackTelemetry {
        match self {
            ProtocolStack::Digs(s) => s.telemetry(),
            ProtocolStack::Orchestra(s) => s.telemetry(),
            ProtocolStack::WirelessHart(s) => s.telemetry(),
        }
    }

    /// The node's current parents `(best, second)` (second is always `None`
    /// for Orchestra).
    pub fn parents(&self) -> (Option<NodeId>, Option<NodeId>) {
        match self {
            ProtocolStack::Digs(s) => s.parents(),
            ProtocolStack::Orchestra(s) => (s.parent(), None),
            // Centralized devices hold manager-provisioned source routes,
            // not distributed parent state.
            ProtocolStack::WirelessHart(_) => (None, None),
        }
    }

    /// The node's routing rank.
    pub fn rank(&self) -> digs_routing::Rank {
        match self {
            ProtocolStack::Digs(s) => s.rank(),
            ProtocolStack::Orchestra(s) => s.rank(),
            ProtocolStack::WirelessHart(_) => digs_routing::Rank::INFINITE,
        }
    }

    /// Whether the node has joined (synced + parents selected).
    pub fn is_joined(&self) -> bool {
        match self {
            ProtocolStack::Digs(s) => s.is_joined(),
            ProtocolStack::Orchestra(s) => s.is_joined(),
            // Provisioned by the manager before the data phase.
            ProtocolStack::WirelessHart(_) => true,
        }
    }

    /// Packets currently queued in the node's application queue(s).
    pub fn app_queue_len(&self) -> usize {
        match self {
            ProtocolStack::Digs(s) => s.app_queue_len(),
            ProtocolStack::Orchestra(s) => s.app_queue_len(),
            ProtocolStack::WirelessHart(s) => s.app_queue_len(),
        }
    }

    /// Installs the flight-recorder handle (shared with the engine). A
    /// default-constructed stack records nothing.
    pub fn set_trace(&mut self, trace: digs_trace::TraceHandle) {
        match self {
            ProtocolStack::Digs(s) => s.set_trace(trace),
            ProtocolStack::Orchestra(s) => s.set_trace(trace),
            ProtocolStack::WirelessHart(s) => s.set_trace(trace),
        }
    }
}

impl NodeStack for ProtocolStack {
    type Payload = Payload;

    fn slot_intent(&mut self, asn: Asn) -> SlotIntent<Payload> {
        match self {
            ProtocolStack::Digs(s) => s.slot_intent(asn),
            ProtocolStack::Orchestra(s) => s.slot_intent(asn),
            ProtocolStack::WirelessHart(s) => s.slot_intent(asn),
        }
    }

    fn on_frame(&mut self, asn: Asn, frame: &Frame<Payload>, rss: Dbm) {
        match self {
            ProtocolStack::Digs(s) => s.on_frame(asn, frame, rss),
            ProtocolStack::Orchestra(s) => s.on_frame(asn, frame, rss),
            ProtocolStack::WirelessHart(s) => s.on_frame(asn, frame, rss),
        }
    }

    fn on_tx_outcome(&mut self, asn: Asn, outcome: TxOutcome) {
        match self {
            ProtocolStack::Digs(s) => s.on_tx_outcome(asn, outcome),
            ProtocolStack::Orchestra(s) => s.on_tx_outcome(asn, outcome),
            ProtocolStack::WirelessHart(s) => s.on_tx_outcome(asn, outcome),
        }
    }

    fn reset(&mut self, asn: Asn) {
        match self {
            ProtocolStack::Digs(s) => s.reset(asn),
            ProtocolStack::Orchestra(s) => s.reset(asn),
            ProtocolStack::WirelessHart(s) => s.reset(asn),
        }
    }

    fn desync(&mut self, asn: Asn) {
        match self {
            ProtocolStack::Digs(s) => s.desync(asn),
            ProtocolStack::Orchestra(s) => s.desync(asn),
            ProtocolStack::WirelessHart(s) => s.desync(asn),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scan_offset_lands_on_fixed_channel() {
        // Within one 128-slot scan window, the physical channel is constant.
        let base = scan_offset(Asn(0)).hop(Asn(0));
        for asn in 0..128u64 {
            assert_eq!(scan_offset(Asn(asn)).hop(Asn(asn)), base);
        }
    }

    #[test]
    fn scan_channel_rotates_between_windows() {
        let a = scan_offset(Asn(0)).hop(Asn(0));
        let b = scan_offset(Asn(128)).hop(Asn(128));
        assert_ne!(a, b);
    }
}
