//! Runtime invariant auditor: structural safety checks over a live network.
//!
//! DiGS's correctness argument rests on a handful of distributed
//! invariants — parents are only ever selected at strictly lower rank (the
//! loop-avoidance rule for both the primary and the backup), Eq. 4 gives
//! every field device exclusive ownership of its dedicated cells, parents'
//! child tables track their actual children, and bounded queues stay
//! bounded. Under chaos (reboots, churn, desyncs, jamming) these are
//! exactly the properties that break first when an implementation is
//! wrong, so the auditor re-derives them from a state snapshot every N
//! slots and records every violation with the ASN and enough context to
//! debug it.
//!
//! ## Local views vs. global state
//!
//! The rank checks deliberately audit each node's **local view** — its own
//! rank against the rank it *believes* its parents hold (the neighbor-table
//! value its selection was based on) — not the parents' globally-current
//! ranks. In a distributed protocol the two legitimately disagree for up
//! to a Trickle interval after a parent's rank rises; comparing against
//! global ranks would flag that skew as a bug. A node whose own state is
//! internally inconsistent (a parent believed to be at its own rank or
//! deeper) has genuinely broken the selection rule, skew or no skew.
//!
//! Global loop-freedom is the complementary *eventual* property: belief
//! skew can close a transient cycle through no fault of any single node,
//! so [`check_loop_freedom`] reports what it sees and the caller (see
//! `Network::run_audited`) only records a loop that persists well past the
//! worst-case belief-refresh latency.
//!
//! The checks are pure functions over an [`AuditSnapshot`], so tests can
//! audit hand-corrupted snapshots without running a simulation (the
//! "deliberately broken scheduler" tests below do exactly that).

use digs_routing::graph::RoutingGraph;
use digs_routing::Rank;
use digs_sim::channel::ChannelOffset;
use digs_sim::ids::NodeId;
use digs_sim::time::Asn;
use std::collections::BTreeMap;

/// How long a child-table registration may outlive the child's last sign of
/// life before the auditor flags it: the stacks garbage-collect children
/// after 19 200 slots (192 s, three Trickle maximum intervals) of silence,
/// so anything older that is still registered means the GC is broken.
pub const CHILD_GRACE_SLOTS: u64 = 19_200;

/// The child-table GC sweep cadence. The auditor grants one extra sweep
/// period of slack past [`CHILD_GRACE_SLOTS`]: a registration crossing the
/// horizon is only evicted at the *next* sweep, and an audit sampled at a
/// slot boundary runs before that slot's sweep executes.
pub const GC_SWEEP_SLOTS: u64 = 64;

/// One dedicated transmission cell a node claims under Eq. 4.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct CellClaim {
    /// Application-slotframe slot of the claim.
    pub slot: u32,
    /// TSCH channel offset of the claim.
    pub offset: ChannelOffset,
}

/// A node's local view of one of its parents.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct ParentView {
    /// The selected parent.
    pub node: NodeId,
    /// The rank the child believes the parent holds (its neighbor-table
    /// entry) — the value the selection was based on.
    pub believed_rank: Rank,
}

/// Per-node state captured for auditing.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct NodeAudit {
    /// The node.
    pub node: NodeId,
    /// Whether the node is an access point.
    pub is_ap: bool,
    /// Whether the node's housekeeping is live: it holds TSCH
    /// synchronization and has held it long enough for at least one GC
    /// sweep. A desynced node is dormant (scanning for EBs): its
    /// child-table GC legitimately pauses until it re-associates, and a
    /// freshly-resynced node may still carry pre-desync registrations
    /// until its first sweep.
    pub synced: bool,
    /// The node's own routing rank.
    pub rank: Rank,
    /// Local view of the primary parent, if one is selected.
    pub best_parent: Option<ParentView>,
    /// Local view of the backup parent, if one is selected.
    pub second_parent: Option<ParentView>,
    /// Dedicated transmission cells the node currently claims (empty for
    /// unjoined nodes and access points).
    pub claims: Vec<CellClaim>,
    /// The node's scheduler child table with each child's last-heard time.
    pub children: Vec<(NodeId, Asn)>,
    /// Application queue length.
    pub queue_len: usize,
    /// Application queue capacity.
    pub queue_capacity: usize,
}

/// A consistent snapshot of the distributed state at one instant.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct AuditSnapshot {
    /// Snapshot time.
    pub asn: Asn,
    /// Everyone's parents and (globally-current) ranks.
    pub graph: RoutingGraph,
    /// Per-node scheduler, queue, and local-view routing state.
    pub nodes: Vec<NodeAudit>,
}

/// Which invariant a violation breaks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum InvariantKind {
    /// The union of primary and backup edges contains a cycle.
    RoutingLoop,
    /// A node holds a primary parent it believes to be at its own rank or
    /// deeper (the selection rule forbids same-rank links).
    RankInversion,
    /// A node holds a backup parent it believes to be at its own rank or
    /// deeper (the paper's second-parent loop-avoidance rule).
    SecondParentRank,
    /// Two nodes claim the same dedicated (slot, channel offset) cell.
    CellOwnership,
    /// A child-table registration outlived the garbage-collection horizon
    /// without the child actually using this node as a parent.
    ChildTable,
    /// A bounded queue holds more items than its capacity.
    QueueBound,
}

/// One recorded invariant violation.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct InvariantViolation {
    /// The broken invariant.
    pub kind: InvariantKind,
    /// When the auditor observed it.
    pub asn: Asn,
    /// The node the violation is attributed to.
    pub node: NodeId,
    /// Human-readable context (the other party, ranks, slots involved).
    pub detail: String,
}

impl std::fmt::Display for InvariantViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[asn {}] {:?} at node {}: {}", self.asn.0, self.kind, self.node.0, self.detail)
    }
}

/// Runs every check over a snapshot and collects all violations.
///
/// [`check_loop_freedom`] is included raw: callers sampling a *live*
/// network should debounce `RoutingLoop` findings across consecutive
/// audits (transient cycles from belief skew are legitimate);
/// `Network::run_audited` does exactly that.
pub fn audit(snapshot: &AuditSnapshot) -> Vec<InvariantViolation> {
    let mut violations = check_loop_freedom(snapshot);
    violations.extend(check_rank_monotonicity(snapshot));
    violations.extend(check_cell_ownership(snapshot));
    violations.extend(check_child_tables(snapshot));
    violations.extend(check_queue_bounds(snapshot));
    violations
}

/// The routing state must be acyclic over primary ∪ backup edges.
pub fn check_loop_freedom(snapshot: &AuditSnapshot) -> Vec<InvariantViolation> {
    let members = cycle_members(&snapshot.graph);
    // Attribute the cycle to the lowest-id node on a parent chain that
    // revisits itself (enough context to start debugging).
    let Some(culprit) = members.first().copied() else {
        return Vec::new();
    };
    vec![InvariantViolation {
        kind: InvariantKind::RoutingLoop,
        asn: snapshot.asn,
        node: culprit,
        detail: format!(
            "primary/backup parent edges contain a cycle through nodes {:?}",
            members.iter().map(|n| n.0).collect::<Vec<_>>()
        ),
    }]
}

/// Every node that sits on some parent-edge cycle, in id order — the
/// *identity* of the current loop state. `Network::run_audited` compares
/// these (with their parent edges) across consecutive audits: a genuinely
/// frozen loop keeps the same members and edges, while churn-induced
/// transient cycles keep changing shape.
pub fn cycle_members(graph: &RoutingGraph) -> Vec<NodeId> {
    if graph.is_dag() {
        return Vec::new();
    }
    graph.nodes().filter(|n| on_parent_cycle(graph, *n)).collect()
}

fn on_parent_cycle(graph: &RoutingGraph, start: NodeId) -> bool {
    // DFS over parent edges looking for a path back to `start`.
    let mut stack = graph.parents(start);
    let mut seen = std::collections::BTreeSet::new();
    while let Some(n) = stack.pop() {
        if n == start {
            return true;
        }
        if seen.insert(n) {
            stack.extend(graph.parents(n));
        }
    }
    false
}

/// Every node's local view must respect the selection rule: both parents
/// strictly below the node's own rank, as the node believes them to be.
pub fn check_rank_monotonicity(snapshot: &AuditSnapshot) -> Vec<InvariantViolation> {
    let mut violations = Vec::new();
    for node in &snapshot.nodes {
        if node.is_ap {
            continue;
        }
        if let Some(best) = node.best_parent {
            if best.believed_rank >= node.rank {
                violations.push(InvariantViolation {
                    kind: InvariantKind::RankInversion,
                    asn: snapshot.asn,
                    node: node.node,
                    detail: format!(
                        "primary parent {} believed at rank {} >= own rank {}",
                        best.node.0, best.believed_rank.0, node.rank.0
                    ),
                });
            }
        }
        if let Some(second) = node.second_parent {
            if second.believed_rank >= node.rank {
                violations.push(InvariantViolation {
                    kind: InvariantKind::SecondParentRank,
                    asn: snapshot.asn,
                    node: node.node,
                    detail: format!(
                        "backup parent {} believed at rank {} >= own rank {}",
                        second.node.0, second.believed_rank.0, node.rank.0
                    ),
                });
            }
        }
    }
    violations
}

/// Every dedicated (slot, channel offset) cell must have exactly one owner
/// — Eq. 4 partitions the application slotframe among the field devices, so
/// two claimants mean a scheduler bug (or an id collision).
pub fn check_cell_ownership(snapshot: &AuditSnapshot) -> Vec<InvariantViolation> {
    let mut owners: BTreeMap<(u32, ChannelOffset), NodeId> = BTreeMap::new();
    let mut violations = Vec::new();
    for node in &snapshot.nodes {
        for claim in &node.claims {
            match owners.insert((claim.slot, claim.offset), node.node) {
                None => {}
                Some(holder) if holder == node.node => {}
                Some(holder) => violations.push(InvariantViolation {
                    kind: InvariantKind::CellOwnership,
                    asn: snapshot.asn,
                    node: node.node,
                    detail: format!(
                        "claims app slot {} offset {} already owned by node {}",
                        claim.slot, claim.offset.0, holder.0
                    ),
                }),
            }
        }
    }
    violations
}

/// A registered child that has been silent past the GC horizon must have
/// been evicted; one still registered whose routing state does not name
/// this node as a parent is a leak (broken GC or a phantom registration).
/// Fresh registrations of departed children are deliberately tolerated —
/// over-listening until GC is how DiGS avoids losing packets during parent
/// swaps — and desynced nodes are skipped entirely: their housekeeping is
/// dormant until they re-associate.
pub fn check_child_tables(snapshot: &AuditSnapshot) -> Vec<InvariantViolation> {
    let mut violations = Vec::new();
    for node in &snapshot.nodes {
        if !node.synced {
            continue;
        }
        for (child, last_seen) in &node.children {
            let silent_for = snapshot.asn.0.saturating_sub(last_seen.0);
            if silent_for <= CHILD_GRACE_SLOTS + GC_SWEEP_SLOTS {
                continue;
            }
            let is_actual_child = snapshot
                .graph
                .entry(*child)
                .is_some_and(|e| e.best == Some(node.node) || e.second == Some(node.node));
            if !is_actual_child {
                violations.push(InvariantViolation {
                    kind: InvariantKind::ChildTable,
                    asn: snapshot.asn,
                    node: node.node,
                    detail: format!(
                        "child {} silent for {} slots (GC horizon {}) and no longer \
                         routes through this node",
                        child.0, silent_for, CHILD_GRACE_SLOTS
                    ),
                });
            }
        }
    }
    violations
}

/// Bounded queues must respect their bound.
pub fn check_queue_bounds(snapshot: &AuditSnapshot) -> Vec<InvariantViolation> {
    snapshot
        .nodes
        .iter()
        .filter(|n| n.queue_len > n.queue_capacity)
        .map(|n| InvariantViolation {
            kind: InvariantKind::QueueBound,
            asn: snapshot.asn,
            node: n.node,
            detail: format!("queue holds {} items, capacity {}", n.queue_len, n.queue_capacity),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use digs_routing::graph::GraphEntry;

    fn entry(best: Option<u16>, second: Option<u16>, rank: u16) -> GraphEntry {
        GraphEntry { best: best.map(NodeId), second: second.map(NodeId), rank: Rank(rank) }
    }

    fn node_audit(node: u16, rank: u16) -> NodeAudit {
        NodeAudit {
            node: NodeId(node),
            is_ap: false,
            synced: true,
            rank: Rank(rank),
            best_parent: None,
            second_parent: None,
            claims: Vec::new(),
            children: Vec::new(),
            queue_len: 0,
            queue_capacity: 8,
        }
    }

    fn view(node: u16, believed_rank: u16) -> Option<ParentView> {
        Some(ParentView { node: NodeId(node), believed_rank: Rank(believed_rank) })
    }

    /// A healthy snapshot modeled on the paper's Fig. 6 shape: APs 0 and 1,
    /// node 2 at rank 2 under both, node 3 at rank 3 relaying through 2.
    fn healthy() -> AuditSnapshot {
        let mut graph = RoutingGraph::new([NodeId(0), NodeId(1)]);
        graph.insert(NodeId(2), entry(Some(0), Some(1), 2));
        graph.insert(NodeId(3), entry(Some(2), Some(0), 3));
        let mut n2 = node_audit(2, 2);
        n2.best_parent = view(0, 1);
        n2.second_parent = view(1, 1);
        n2.claims = vec![
            CellClaim { slot: 1, offset: ChannelOffset::new(2) },
            CellClaim { slot: 2, offset: ChannelOffset::new(7) },
        ];
        n2.children = vec![(NodeId(3), Asn(990))];
        let mut n3 = node_audit(3, 3);
        n3.best_parent = view(2, 2);
        n3.second_parent = view(0, 1);
        n3.claims = vec![CellClaim { slot: 4, offset: ChannelOffset::new(3) }];
        AuditSnapshot { asn: Asn(1000), graph, nodes: vec![n2, n3] }
    }

    #[test]
    fn healthy_snapshot_is_clean() {
        assert!(audit(&healthy()).is_empty());
    }

    #[test]
    fn routing_loop_is_caught() {
        let mut snap = healthy();
        // 2 → 3 (backup) while 3 → 2 (primary): a two-node cycle.
        snap.graph.insert(NodeId(2), entry(Some(0), Some(3), 2));
        let violations = check_loop_freedom(&snap);
        assert_eq!(violations.len(), 1);
        assert_eq!(violations[0].kind, InvariantKind::RoutingLoop);
        assert_eq!(violations[0].asn, Asn(1000));
        assert!(audit(&snap).iter().any(|v| v.kind == InvariantKind::RoutingLoop));
    }

    #[test]
    fn rank_inversion_is_caught() {
        // Node 3 selected a primary parent it *believes* to be at its own
        // rank — the selection rule forbids same-rank links outright, so
        // this is a routing bug, not skew.
        let mut snap = healthy();
        snap.nodes[1].best_parent = view(2, 3);
        let violations = check_rank_monotonicity(&snap);
        assert_eq!(violations.len(), 1);
        assert_eq!(violations[0].kind, InvariantKind::RankInversion);
        assert_eq!(violations[0].node, NodeId(3));
        assert!(violations[0].detail.contains("rank 3"));
    }

    #[test]
    fn second_parent_rank_rule_is_caught() {
        // Node 2 (rank 2) believes its backup sits at rank 2: forbidden.
        let mut snap = healthy();
        snap.nodes[0].second_parent = view(1, 2);
        let violations = check_rank_monotonicity(&snap);
        assert_eq!(violations.len(), 1);
        assert_eq!(violations[0].kind, InvariantKind::SecondParentRank);
        assert_eq!(violations[0].node, NodeId(2));
    }

    #[test]
    fn stale_global_rank_is_not_flagged() {
        // Node 2's globally-current rank rose to 4 (its graph entry), but
        // node 3 still *believes* it at rank 2 — legitimate skew until the
        // next join-in reaches node 3, not a selection-rule violation.
        let mut snap = healthy();
        snap.graph.insert(NodeId(2), entry(Some(0), Some(1), 4));
        assert!(check_rank_monotonicity(&snap).is_empty());
    }

    #[test]
    fn detached_nodes_are_not_rank_checked() {
        let mut snap = healthy();
        let mut loner = node_audit(4, u16::MAX);
        loner.synced = false;
        snap.nodes.push(loner);
        assert!(check_rank_monotonicity(&snap).is_empty());
    }

    #[test]
    fn duplicate_cell_claim_is_caught() {
        // The "deliberately broken scheduler": two nodes derive the same
        // dedicated cell (as a buggy Eq. 4 with the wrong modulus would).
        let mut snap = healthy();
        snap.nodes[1].claims = vec![CellClaim { slot: 1, offset: ChannelOffset::new(2) }];
        let violations = check_cell_ownership(&snap);
        assert_eq!(violations.len(), 1);
        assert_eq!(violations[0].kind, InvariantKind::CellOwnership);
        assert!(violations[0].detail.contains("slot 1"));
        assert!(violations[0].detail.contains("node 2"));
    }

    #[test]
    fn same_node_may_reclaim_its_own_cell() {
        let mut snap = healthy();
        // Duplicate entries for one owner are not a conflict.
        let claim = snap.nodes[0].claims[0];
        snap.nodes[0].claims.push(claim);
        assert!(check_cell_ownership(&snap).is_empty());
    }

    #[test]
    fn leaked_child_registration_is_caught() {
        let mut snap = healthy();
        // Node 2 still holds a registration for node 4, which was last
        // heard 30 000 slots ago (past the 19 200-slot GC horizon) and does
        // not route through node 2.
        snap.asn = Asn(40_000);
        snap.graph.insert(NodeId(4), entry(Some(0), None, 2));
        snap.nodes[0].children.push((NodeId(4), Asn(10_000)));
        // Refresh node 3's registration so only the leak fires.
        snap.nodes[0].children[0].1 = Asn(39_000);
        let violations = check_child_tables(&snap);
        assert_eq!(violations.len(), 1);
        assert_eq!(violations[0].kind, InvariantKind::ChildTable);
        assert_eq!(violations[0].node, NodeId(2));
        assert!(violations[0].detail.contains("child 4"));
    }

    #[test]
    fn stale_child_still_routing_through_us_is_tolerated() {
        let mut snap = healthy();
        // Node 3 has been silent past the horizon but still lists node 2 as
        // its primary parent — GC would evict it, but it is a real child,
        // so the subset invariant holds.
        snap.asn = Asn(40_000);
        snap.nodes[0].children[0].1 = Asn(1_000);
        assert!(check_child_tables(&snap).is_empty());
    }

    #[test]
    fn fresh_registration_of_departed_child_is_tolerated() {
        let mut snap = healthy();
        // Node 3 switched both parents away from node 2 moments ago; the
        // still-fresh registration is legitimate over-listening.
        snap.graph.insert(NodeId(3), entry(Some(0), Some(1), 2));
        assert!(check_child_tables(&snap).is_empty());
    }

    #[test]
    fn desynced_nodes_child_table_is_dormant() {
        // Same leak as `leaked_child_registration_is_caught`, but the
        // holder lost sync: its GC is paused while it scans for EBs, so the
        // auditor must wait for it to re-associate.
        let mut snap = healthy();
        snap.asn = Asn(40_000);
        snap.graph.insert(NodeId(4), entry(Some(0), None, 2));
        snap.nodes[0].children = vec![(NodeId(4), Asn(10_000))];
        snap.nodes[0].synced = false;
        assert!(check_child_tables(&snap).is_empty());
    }

    #[test]
    fn queue_overflow_is_caught() {
        let mut snap = healthy();
        snap.nodes[1].queue_len = 9;
        let violations = check_queue_bounds(&snap);
        assert_eq!(violations.len(), 1);
        assert_eq!(violations[0].kind, InvariantKind::QueueBound);
        assert!(violations[0].detail.contains("9 items"));
    }

    #[test]
    fn violations_render_with_context() {
        let mut snap = healthy();
        snap.nodes[1].queue_len = 9;
        let v = &audit(&snap)[0];
        let rendered = v.to_string();
        assert!(rendered.contains("asn 1000"));
        assert!(rendered.contains("QueueBound"));
    }
}
