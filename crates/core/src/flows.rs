//! End-to-end data flows.
//!
//! A flow is a periodic packet stream from a source field device to the
//! access points (the paper's uplink evaluation: sources generate one
//! packet every 5 s on the testbeds, 10 s in the large-scale simulation).
//! A *flow set* is the collection of concurrently running flows the paper
//! samples 300 (Testbed A), 220 (Testbed B), or 300 (Cooja) times.

use digs_sim::ids::{FlowId, NodeId};
use digs_sim::rng;
use digs_sim::time::Asn;
use digs_sim::topology::Topology;

/// One periodic data flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct FlowSpec {
    /// Flow identifier (dense, 0-based within a run).
    pub id: FlowId,
    /// Source field device.
    pub source: NodeId,
    /// Packet generation period, in slots (500 = 5 s).
    pub period: u64,
    /// Generation phase offset, in slots (staggers sources).
    pub phase: u64,
}

impl FlowSpec {
    /// Whether the source generates a packet in this slot.
    pub fn generates_at(&self, asn: Asn) -> bool {
        asn.0 >= self.phase && (asn.0 - self.phase).is_multiple_of(self.period)
    }

    /// How many packets the flow generates in `[0, end)`.
    pub fn packets_by(&self, end: Asn) -> u32 {
        if end.0 <= self.phase {
            0
        } else {
            ((end.0 - self.phase - 1) / self.period + 1) as u32
        }
    }
}

/// Builds a flow set with `n` distinct sources drawn deterministically from
/// the topology's field devices, all with the given period and staggered
/// phases.
///
/// # Panics
///
/// Panics if the topology has fewer than `n` field devices or `period` is 0.
pub fn random_flow_set(topology: &Topology, n: usize, period: u64, seed: u64) -> Vec<FlowSpec> {
    assert!(period > 0, "flow period must be positive");
    let mut devices = topology.field_devices();
    assert!(devices.len() >= n, "not enough field devices for {n} flows");
    // Deterministic Fisher–Yates shuffle driven by the seed.
    for i in (1..devices.len()).rev() {
        let j = (rng::mix(seed, i as u64, 0xf10e, 3) % (i as u64 + 1)) as usize;
        devices.swap(i, j);
    }
    devices
        .into_iter()
        .take(n)
        .enumerate()
        .map(|(i, source)| FlowSpec {
            id: FlowId(i as u16),
            source,
            period,
            // Stagger phases evenly across the period.
            phase: (i as u64 * period) / n as u64,
        })
        .collect()
}

/// Builds a flow set from explicit sources (used by the worked examples
/// and micro-benchmarks that need fixed flows).
pub fn flow_set_from_sources(sources: &[NodeId], period: u64) -> Vec<FlowSpec> {
    assert!(period > 0, "flow period must be positive");
    sources
        .iter()
        .enumerate()
        .map(|(i, source)| FlowSpec {
            id: FlowId(i as u16),
            source: *source,
            period,
            phase: (i as u64 * period) / sources.len().max(1) as u64,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_schedule() {
        let f = FlowSpec { id: FlowId(0), source: NodeId(5), period: 500, phase: 100 };
        assert!(!f.generates_at(Asn(0)));
        assert!(f.generates_at(Asn(100)));
        assert!(!f.generates_at(Asn(101)));
        assert!(f.generates_at(Asn(600)));
    }

    #[test]
    fn packets_by_counts_generations() {
        let f = FlowSpec { id: FlowId(0), source: NodeId(5), period: 500, phase: 100 };
        assert_eq!(f.packets_by(Asn(100)), 0);
        assert_eq!(f.packets_by(Asn(101)), 1);
        assert_eq!(f.packets_by(Asn(600)), 1);
        assert_eq!(f.packets_by(Asn(601)), 2);
        assert_eq!(f.packets_by(Asn(5101)), 11);
    }

    #[test]
    fn random_flow_sets_are_deterministic_and_distinct() {
        let topo = Topology::testbed_a();
        let a = random_flow_set(&topo, 8, 500, 1);
        let b = random_flow_set(&topo, 8, 500, 1);
        let c = random_flow_set(&topo, 8, 500, 2);
        assert_eq!(a, b);
        assert_ne!(a, c);
        let sources: std::collections::HashSet<NodeId> = a.iter().map(|f| f.source).collect();
        assert_eq!(sources.len(), 8, "sources must be distinct");
        for f in &a {
            assert!(!topo.is_access_point(f.source));
        }
    }

    #[test]
    fn phases_are_staggered() {
        let topo = Topology::testbed_a();
        let set = random_flow_set(&topo, 8, 500, 1);
        let phases: std::collections::HashSet<u64> = set.iter().map(|f| f.phase).collect();
        assert!(phases.len() > 4, "phases should spread");
        assert!(set.iter().all(|f| f.phase < 500));
    }

    #[test]
    fn explicit_sources_preserved_in_order() {
        let set = flow_set_from_sources(&[NodeId(9), NodeId(4)], 100);
        assert_eq!(set[0].source, NodeId(9));
        assert_eq!(set[1].source, NodeId(4));
        assert_eq!(set[0].id, FlowId(0));
        assert_eq!(set[1].id, FlowId(1));
    }

    #[test]
    #[should_panic(expected = "not enough field devices")]
    fn too_many_flows_panics() {
        let topo = Topology::testbed_a_half();
        let _ = random_flow_set(&topo, 100, 500, 1);
    }
}
