//! `digs-cli` — run DiGS / Orchestra networks from the command line.
//!
//! ```text
//! digs-cli run [--topology T] [--protocol P] [--secs N] [--flows N]
//!              [--period-ms N] [--jammers N] [--seed N] [--json]
//! digs-cli topology [--topology T]
//! digs-cli graph [--topology T] [--protocol P] [--secs N] [--seed N]
//! digs-cli manager [--topology T] [--flows N]
//! ```
//!
//! Topologies: `testbed-a` (default), `testbed-a-half`, `testbed-b`,
//! `testbed-b-half`, `cooja`, or `random:<devices>:<side-m>`.

use digs::config::{NetworkConfig, Protocol};
use digs::network::Network;
use digs_sim::interference::Jammer;
use digs_sim::position::Position;
use digs_sim::rf::RfConfig;
use digs_sim::time::Asn;
use digs_sim::topology::Topology;
use std::collections::BTreeMap;
use std::process::ExitCode;

struct Args {
    command: String,
    options: BTreeMap<String, String>,
    json: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut argv = std::env::args().skip(1);
    let command = argv.next().ok_or_else(usage)?;
    let mut options = BTreeMap::new();
    let mut json = false;
    while let Some(flag) = argv.next() {
        if flag == "--json" {
            json = true;
            continue;
        }
        let name = flag
            .strip_prefix("--")
            .ok_or_else(|| format!("unexpected argument `{flag}`\n{}", usage()))?;
        let value = argv.next().ok_or_else(|| format!("flag --{name} needs a value"))?;
        options.insert(name.to_string(), value);
    }
    Ok(Args { command, options, json })
}

fn usage() -> String {
    "usage: digs-cli <run|topology|graph|manager> [--topology T] [--protocol P] \
     [--secs N] [--flows N] [--period-ms N] [--jammers N] [--seed N] [--json]"
        .to_string()
}

fn topology_from(name: &str) -> Result<Topology, String> {
    match name {
        "testbed-a" => Ok(Topology::testbed_a()),
        "testbed-a-half" => Ok(Topology::testbed_a_half()),
        "testbed-b" => Ok(Topology::testbed_b()),
        "testbed-b-half" => Ok(Topology::testbed_b_half()),
        "cooja" => Ok(Topology::cooja_150(7)),
        other => {
            if let Some(spec) = other.strip_prefix("random:") {
                let parts: Vec<&str> = spec.split(':').collect();
                if parts.len() != 2 {
                    return Err("random topology spec is random:<devices>:<side-m>".into());
                }
                let n: usize = parts[0].parse().map_err(|e| format!("bad device count: {e}"))?;
                let side: f64 = parts[1].parse().map_err(|e| format!("bad side length: {e}"))?;
                Ok(Topology::random_area(n, side, 7))
            } else {
                Err(format!("unknown topology `{other}`"))
            }
        }
    }
}

fn get<T: std::str::FromStr>(args: &Args, name: &str, default: T) -> Result<T, String>
where
    T::Err: std::fmt::Display,
{
    match args.options.get(name) {
        None => Ok(default),
        Some(v) => v.parse().map_err(|e| format!("bad --{name}: {e}")),
    }
}

fn build_network(args: &Args) -> Result<Network, String> {
    let topology = topology_from(args.options.get("topology").map_or("testbed-a", String::as_str))?;
    let protocol = match args.options.get("protocol").map_or("digs", String::as_str) {
        "digs" => Protocol::Digs,
        "orchestra" => Protocol::Orchestra,
        "wirelesshart" => Protocol::WirelessHart,
        other => return Err(format!("unknown protocol `{other}` (digs|orchestra|wirelesshart)")),
    };
    let seed: u64 = get(args, "seed", 1)?;
    let flows: usize = get(args, "flows", 4)?;
    let period_ms: u64 = get(args, "period-ms", 5000)?;
    let jammers: usize = get(args, "jammers", 0)?;

    let rf = if topology.name().starts_with("random") || topology.name().starts_with("cooja") {
        RfConfig::open_area()
    } else {
        RfConfig::indoor()
    };
    let mut builder = NetworkConfig::builder(topology)
        .protocol(protocol)
        .rf(rf)
        .seed(seed)
        .random_flows(flows, period_ms / 10, seed);
    for i in 0..jammers {
        let pos = Position::new(12.0 + 14.0 * i as f64, 8.0 + 5.0 * i as f64);
        builder = builder.jammer(Jammer::wifi(pos, [1u8, 6, 11][i % 3], Asn::from_secs(60)));
    }
    Ok(Network::new(builder.build()))
}

fn cmd_run(args: &Args) -> Result<(), String> {
    let secs: u64 = get(args, "secs", 300)?;
    let mut network = build_network(args)?;
    network.run_secs(secs);
    let results = network.results();
    if args.json {
        let out = serde_json::to_string_pretty(&results)
            .map_err(|e| format!("serialization failed: {e}"))?;
        println!("{out}");
        return Ok(());
    }
    println!("protocol        : {}", network.config().protocol.name());
    println!("topology        : {}", network.config().topology.name());
    println!("simulated       : {secs} s");
    println!("joined fraction : {:.3}", results.fraction_joined());
    println!("network PDR     : {:.3}", results.network_pdr());
    println!("worst flow PDR  : {:.3}", results.worst_flow_pdr());
    if let Some(lat) = results.median_latency_ms() {
        println!("median latency  : {lat:.0} ms");
    }
    println!("power/packet    : {:.4} mW", results.power_per_received_packet_mw());
    println!("parent changes  : {}", results.parent_change_times.len());
    println!("drops           : {} retry, {} queue", results.retry_drops, results.queue_drops);
    for flow in &results.flows {
        println!(
            "  {} src {}: {}/{} (PDR {:.2})",
            flow.flow,
            flow.source,
            flow.delivered,
            flow.generated,
            flow.pdr()
        );
    }
    Ok(())
}

fn cmd_topology(args: &Args) -> Result<(), String> {
    let topology = topology_from(args.options.get("topology").map_or("testbed-a", String::as_str))?;
    println!("name          : {}", topology.name());
    println!("nodes         : {}", topology.len());
    println!(
        "access points : {:?}",
        topology.access_points().iter().map(|a| a.0).collect::<Vec<_>>()
    );
    // Link census from the mean-RSS oracle.
    let rf = RfConfig::indoor();
    let mut usable = 0u32;
    let mut total = 0u32;
    for a in topology.node_ids() {
        for b in topology.node_ids() {
            if a < b {
                total += 1;
                let rss = rf.mean_rss(topology.distance(a, b));
                if rss.dbm() >= digs_sim::rf::RSS_MIN.dbm() {
                    usable += 1;
                }
            }
        }
    }
    println!("usable links  : {usable} of {total} pairs (mean-RSS ≥ RSSmin)");
    let mean_degree = 2.0 * f64::from(usable) / topology.len() as f64;
    println!("mean degree   : {mean_degree:.1}");
    Ok(())
}

fn cmd_graph(args: &Args) -> Result<(), String> {
    let secs: u64 = get(args, "secs", 150)?;
    let mut network = build_network(args)?;
    network.run_secs(secs);
    let graph = network.routing_graph();
    println!(
        "after {secs} s: joined {:.0}%, backup coverage {:.0}%, DAG: {}, reachable: {}",
        graph.fraction_joined() * 100.0,
        graph.fraction_with_backup() * 100.0,
        graph.is_dag(),
        graph.all_reachable()
    );
    for node in graph.nodes() {
        let e = graph.entry(node).expect("recorded");
        println!(
            "  {node}: {} best={} second={}",
            e.rank,
            e.best.map_or("-".to_string(), |p| p.to_string()),
            e.second.map_or("-".to_string(), |p| p.to_string()),
        );
    }
    Ok(())
}

fn cmd_manager(args: &Args) -> Result<(), String> {
    use digs_sim::link::LinkModel;
    use digs_whart::{LinkDb, NetworkManager, UpdateCostConfig};
    let topology = topology_from(args.options.get("topology").map_or("testbed-a", String::as_str))?;
    let flows: usize = get(args, "flows", 8)?;
    let model = LinkModel::new(&topology, RfConfig::indoor(), 1);
    let db = LinkDb::from_link_model(&model);
    let mut manager =
        NetworkManager::new(db, topology.access_points(), UpdateCostConfig::default());
    let mut sources = topology.field_devices();
    sources.reverse();
    sources.truncate(flows);
    let report =
        manager.full_update(&sources, 1000).map_err(|e| format!("scheduling failed: {e}"))?;
    println!("centralized WirelessHART update cycle for {}:", topology.name());
    println!("  {report}");
    let schedule = manager.schedule().expect("just computed");
    println!("  schedule cells: {}", schedule.cells().len());
    println!("  conflict-free : {}", schedule.is_conflict_free());
    Ok(())
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let result = match args.command.as_str() {
        "run" => cmd_run(&args),
        "topology" => cmd_topology(&args),
        "graph" => cmd_graph(&args),
        "manager" => cmd_manager(&args),
        other => Err(format!("unknown command `{other}`\n{}", usage())),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("{e}");
            ExitCode::FAILURE
        }
    }
}
