//! Network run configuration.

use crate::flows::{self, FlowSpec};
use digs_routing::RoutingConfig;
use digs_scheduling::SlotframeLengths;
use digs_sim::fault::FaultPlan;
use digs_sim::ids::NodeId;
use digs_sim::interference::Jammer;
use digs_sim::rf::RfConfig;
use digs_sim::topology::Topology;

/// Which protocol suite the network runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum Protocol {
    /// The paper's contribution: distributed graph routing + autonomous
    /// scheduling.
    Digs,
    /// The baseline: Orchestra scheduling over RPL.
    Orchestra,
    /// The centralized baseline: devices execute a schedule computed by
    /// the WirelessHART Network Manager (static during the run; the
    /// manager's reaction-time cost is modelled by `digs-whart`).
    WirelessHart,
}

impl Protocol {
    /// Short lowercase name for table labels.
    pub fn name(self) -> &'static str {
        match self {
            Protocol::Digs => "digs",
            Protocol::Orchestra => "orchestra",
            Protocol::WirelessHart => "wirelesshart",
        }
    }
}

/// Complete configuration of one simulated network run.
#[derive(Debug, Clone)]
pub struct NetworkConfig {
    /// Device placement.
    pub topology: Topology,
    /// Propagation environment.
    pub rf: RfConfig,
    /// Master seed (drives the channel realisation and every stack).
    pub seed: u64,
    /// Protocol suite under test.
    pub protocol: Protocol,
    /// Slotframe lengths (the paper uses 557/47/151 everywhere).
    pub slotframes: SlotframeLengths,
    /// Routing-layer tuning.
    pub routing: RoutingConfig,
    /// Scheduled transmission attempts per packet per slotframe (DiGS `A`).
    pub attempts: u8,
    /// The data flows to run.
    pub flows: Vec<FlowSpec>,
    /// Interference sources.
    pub jammers: Vec<Jammer>,
    /// Node-failure schedule.
    pub faults: FaultPlan,
    /// Per-node application queue capacity.
    pub queue_capacity: usize,
    /// Application slotframe cycles a packet may spend at one hop before
    /// being dropped (total link-layer persistence).
    pub max_cycles: u8,
    /// Flight-recorder ring capacity per node (events). `None` defers to
    /// the `DIGS_TRACE_CAP` environment variable; `Some(0)` forces tracing
    /// off regardless of the environment.
    pub trace_cap: Option<usize>,
    /// Telemetry sampling cadence in slots. `None` defers to the
    /// `DIGS_TELEMETRY_EPOCH` environment variable (unset or 0 = off);
    /// `Some(0)` forces telemetry off regardless of the environment.
    pub telemetry_epoch: Option<u64>,
    /// Maximum retained epoch snapshots (oldest dropped first). `None`
    /// defers to `DIGS_TELEMETRY_CAP` (default 4096); `Some(0)` forces
    /// telemetry off regardless of the environment.
    pub telemetry_cap: Option<usize>,
    /// Seconds after convergence before the health monitor's steady-state
    /// rules arm (`None` = the watchdog default). Large dense deployments
    /// need this sized up: link quality is only discovered by data
    /// traffic, so the first minutes after the flows start legitimately
    /// lose packets while ETX estimates correct themselves.
    pub health_settle_secs: Option<u64>,
    /// Parent changes per telemetry epoch the health monitor tolerates
    /// before raising a churn-storm alert (`None` = the watchdog default,
    /// sized for ~30-node testbeds). Scale this with device count:
    /// discovery-phase parent selection legitimately swaps more parents
    /// per epoch in larger deployments.
    pub health_churn_storm: Option<u32>,
    /// Schedule-randomization defense (DiGS only): a shared secret from
    /// which every node re-derives its application-cell placement each
    /// slotframe epoch, defeating schedule-learning jammers. `None` defers
    /// to the `DIGS_SCHED_RANDOMIZE` environment variable (unset, empty,
    /// or `0` = off); `Some(0)` forces the defense off regardless of the
    /// environment; any other value enables it.
    pub sched_randomize: Option<u64>,
}

impl NetworkConfig {
    /// Starts a builder with the paper's defaults.
    pub fn builder(topology: Topology) -> NetworkConfigBuilder {
        NetworkConfigBuilder {
            config: NetworkConfig {
                topology,
                rf: RfConfig::indoor(),
                seed: 1,
                protocol: Protocol::Digs,
                slotframes: SlotframeLengths::paper(),
                routing: RoutingConfig::default(),
                attempts: 3,
                flows: Vec::new(),
                jammers: Vec::new(),
                faults: FaultPlan::none(),
                // Contiki's queuebuf default: 8 packets per node.
                queue_capacity: 8,
                max_cycles: 3,
                trace_cap: None,
                telemetry_epoch: None,
                telemetry_cap: None,
                health_settle_secs: None,
                health_churn_storm: None,
                sched_randomize: None,
            },
        }
    }

    /// Resolves the schedule-randomization knob: an explicit builder value
    /// wins (`0` pinning the defense off), otherwise the
    /// `DIGS_SCHED_RANDOMIZE` environment variable decides (unset, empty,
    /// unparsable, or `0` = off). Returns the raw shared secret; the
    /// network derives the per-run nonce by mixing it with the seed.
    pub fn resolve_randomize(&self) -> Option<u64> {
        let raw = match self.sched_randomize {
            Some(v) => v,
            None => std::env::var("DIGS_SCHED_RANDOMIZE")
                .ok()
                .and_then(|s| s.trim().parse::<u64>().ok())
                .unwrap_or(0),
        };
        (raw != 0).then_some(raw)
    }
}

/// Builder for [`NetworkConfig`].
#[derive(Debug, Clone)]
pub struct NetworkConfigBuilder {
    config: NetworkConfig,
}

impl NetworkConfigBuilder {
    /// Sets the protocol suite.
    ///
    /// For [`Protocol::Orchestra`] this also calibrates the RPL parent
    /// failure threshold upward (16 consecutive losses): Contiki's RPL
    /// accumulates link statistics over many transmissions before reacting,
    /// which is what gives Orchestra its measured 20–95 s repair times in
    /// the paper's Fig. 4. Call [`NetworkConfigBuilder::routing`] *after*
    /// this to override.
    pub fn protocol(mut self, protocol: Protocol) -> Self {
        self.config.protocol = protocol;
        if protocol == Protocol::Orchestra {
            self.config.routing.parent_failure_threshold = 16;
        }
        self
    }

    /// Sets the master seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }

    /// Sets the propagation environment.
    pub fn rf(mut self, rf: RfConfig) -> Self {
        self.config.rf = rf;
        self
    }

    /// Sets the slotframe lengths.
    pub fn slotframes(mut self, lengths: SlotframeLengths) -> Self {
        self.config.slotframes = lengths;
        self
    }

    /// Sets routing-layer tuning.
    pub fn routing(mut self, routing: RoutingConfig) -> Self {
        self.config.routing = routing;
        self
    }

    /// Sets the scheduled attempts per packet (DiGS `A`).
    pub fn attempts(mut self, attempts: u8) -> Self {
        self.config.attempts = attempts;
        self
    }

    /// Installs an explicit flow set.
    pub fn flows(mut self, flows: Vec<FlowSpec>) -> Self {
        self.config.flows = flows;
        self
    }

    /// Installs a flow set with the given sources and period (slots).
    pub fn flows_from_sources(mut self, sources: &[NodeId], period: u64) -> Self {
        self.config.flows = flows::flow_set_from_sources(sources, period);
        self
    }

    /// Installs a deterministic random flow set.
    pub fn random_flows(mut self, n: usize, period: u64, seed: u64) -> Self {
        self.config.flows = flows::random_flow_set(&self.config.topology, n, period, seed);
        self
    }

    /// Adds an interference source.
    pub fn jammer(mut self, jammer: Jammer) -> Self {
        self.config.jammers.push(jammer);
        self
    }

    /// Installs the failure schedule.
    pub fn faults(mut self, faults: FaultPlan) -> Self {
        self.config.faults = faults;
        self
    }

    /// Sets the per-node queue capacity.
    pub fn queue_capacity(mut self, capacity: usize) -> Self {
        self.config.queue_capacity = capacity;
        self
    }

    /// Sets per-hop persistence in application slotframe cycles.
    pub fn max_cycles(mut self, cycles: u8) -> Self {
        self.config.max_cycles = cycles;
        self
    }

    /// Enables the flight recorder with the given per-node ring capacity
    /// (0 forces it off). Without this call the `DIGS_TRACE_CAP`
    /// environment variable decides.
    pub fn trace_cap(mut self, cap: usize) -> Self {
        self.config.trace_cap = Some(cap);
        self
    }

    /// Enables epoch telemetry sampling every `slots` slots (0 forces it
    /// off). Without this call the `DIGS_TELEMETRY_EPOCH` environment
    /// variable decides.
    pub fn telemetry_epoch(mut self, slots: u64) -> Self {
        self.config.telemetry_epoch = Some(slots);
        self
    }

    /// Caps the retained telemetry epochs (0 forces telemetry off).
    /// Without this call the `DIGS_TELEMETRY_CAP` environment variable
    /// decides, defaulting to 4096.
    pub fn telemetry_cap(mut self, cap: usize) -> Self {
        self.config.telemetry_cap = Some(cap);
        self
    }

    /// Sizes the health monitor's settle window (seconds after
    /// convergence before the steady-state alert rules arm). Without this
    /// call the watchdog default (10 s) applies — too short for large
    /// deployments whose link discovery takes minutes of data traffic.
    pub fn health_settle_secs(mut self, secs: u64) -> Self {
        self.config.health_settle_secs = Some(secs);
        self
    }

    /// Sets the churn-storm alert threshold (parent changes per telemetry
    /// epoch). Without this call the watchdog default (8) applies — sized
    /// for ~30-node testbeds, too twitchy for larger deployments.
    pub fn health_churn_storm(mut self, changes: u32) -> Self {
        self.config.health_churn_storm = Some(changes);
        self
    }

    /// Enables the schedule-randomization defense with the given shared
    /// secret (0 pins it off). Without this call the
    /// `DIGS_SCHED_RANDOMIZE` environment variable decides.
    pub fn randomize(mut self, secret: u64) -> Self {
        self.config.sched_randomize = Some(secret);
        self
    }

    /// Finalises the configuration.
    ///
    /// # Panics
    ///
    /// Panics if the slotframe lengths are invalid.
    pub fn build(self) -> NetworkConfig {
        self.config.slotframes.validate().expect("valid slotframes");
        self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_defaults_match_paper() {
        let c = NetworkConfig::builder(Topology::testbed_a()).build();
        assert_eq!(c.protocol, Protocol::Digs);
        assert_eq!(c.slotframes, SlotframeLengths::paper());
        assert_eq!(c.attempts, 3);
        assert!(c.flows.is_empty());
    }

    #[test]
    fn builder_sets_fields() {
        let c = NetworkConfig::builder(Topology::testbed_a())
            .protocol(Protocol::Orchestra)
            .seed(9)
            .random_flows(8, 500, 3)
            .queue_capacity(8)
            .build();
        assert_eq!(c.protocol, Protocol::Orchestra);
        assert_eq!(c.seed, 9);
        assert_eq!(c.flows.len(), 8);
        assert_eq!(c.queue_capacity, 8);
    }

    #[test]
    fn randomize_knob_resolves_explicit_values() {
        let on = NetworkConfig::builder(Topology::testbed_a()).randomize(7).build();
        assert_eq!(on.resolve_randomize(), Some(7));
        // An explicit zero pins the defense off even if the environment
        // would enable it.
        let off = NetworkConfig::builder(Topology::testbed_a()).randomize(0).build();
        assert_eq!(off.resolve_randomize(), None);
    }

    #[test]
    fn protocol_names() {
        assert_eq!(Protocol::Digs.name(), "digs");
        assert_eq!(Protocol::Orchestra.name(), "orchestra");
    }
}
