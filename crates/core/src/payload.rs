//! The frame payload carried over the simulated network.

use digs_routing::messages::{Dio, JoinIn, JoinedCallback};
use digs_sim::ids::{FlowId, NodeId};
use digs_sim::time::Asn;

/// An application data packet travelling from a source field device to the
/// access points.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct DataPacket {
    /// The flow this packet belongs to.
    pub flow: FlowId,
    /// Per-flow sequence number (0-based).
    pub seq: u32,
    /// Originating field device.
    pub origin: NodeId,
    /// When the packet was generated at the source.
    pub generated_at: Asn,
}

/// Every payload a frame can carry in this reproduction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Payload {
    /// Enhanced Beacon (time synchronization). Carries nothing the
    /// simulator needs beyond its presence.
    Eb,
    /// DiGS join-in broadcast.
    JoinIn(JoinIn),
    /// DiGS joined-callback unicast.
    JoinedCallback(JoinedCallback),
    /// RPL DIO broadcast (Orchestra baseline).
    Dio(Dio),
    /// Application data.
    Data(DataPacket),
}

impl Payload {
    /// On-air size of a frame carrying this payload, in bytes (MAC header
    /// and CRC included; values match typical Contiki frame sizes).
    pub fn frame_size(&self) -> u16 {
        match self {
            Payload::Eb => 50,
            Payload::JoinIn(_) | Payload::Dio(_) => 64,
            Payload::JoinedCallback(_) => 40,
            Payload::Data(_) => 90,
        }
    }

    /// The simulator traffic class for this payload.
    pub fn frame_kind(&self) -> digs_sim::packet::FrameKind {
        match self {
            Payload::Eb => digs_sim::packet::FrameKind::Beacon,
            Payload::JoinIn(_) | Payload::JoinedCallback(_) | Payload::Dio(_) => {
                digs_sim::packet::FrameKind::Routing
            }
            Payload::Data(_) => digs_sim::packet::FrameKind::Data,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use digs_sim::packet::FrameKind;

    #[test]
    fn frame_kinds_map_to_traffic_classes() {
        assert_eq!(Payload::Eb.frame_kind(), FrameKind::Beacon);
        assert_eq!(
            Payload::JoinIn(JoinIn {
                rank: digs_routing::Rank(2),
                etx_w: 1.0,
                best_parent: None,
                second_parent: None
            })
            .frame_kind(),
            FrameKind::Routing
        );
        let data = Payload::Data(DataPacket {
            flow: FlowId(0),
            seq: 1,
            origin: NodeId(3),
            generated_at: Asn(0),
        });
        assert_eq!(data.frame_kind(), FrameKind::Data);
    }

    #[test]
    fn frame_sizes_fit_802154() {
        for p in [
            Payload::Eb,
            Payload::JoinIn(JoinIn {
                rank: digs_routing::Rank(2),
                etx_w: 1.0,
                best_parent: None,
                second_parent: None,
            }),
            Payload::Data(DataPacket {
                flow: FlowId(0),
                seq: 0,
                origin: NodeId(0),
                generated_at: Asn(0),
            }),
        ] {
            assert!(p.frame_size() <= 127);
            assert!(p.frame_size() >= 23);
        }
    }
}
