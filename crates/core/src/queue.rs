//! Bounded per-node packet queues with drop accounting.

use std::collections::VecDeque;

/// A bounded FIFO queue; pushes beyond capacity drop the *newest* item
/// (drop-tail, as Contiki's queuebuf does) and are counted.
#[derive(Debug, Clone, Default)]
pub struct BoundedQueue<T> {
    items: VecDeque<T>,
    capacity: usize,
    drops: u64,
}

impl<T> BoundedQueue<T> {
    /// Creates a queue holding at most `capacity` items.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> BoundedQueue<T> {
        assert!(capacity > 0, "queue capacity must be positive");
        BoundedQueue { items: VecDeque::with_capacity(capacity), capacity, drops: 0 }
    }

    /// Enqueues an item; returns `false` (and counts a drop) when full.
    pub fn push(&mut self, item: T) -> bool {
        if self.items.len() >= self.capacity {
            self.drops += 1;
            false
        } else {
            self.items.push_back(item);
            true
        }
    }

    /// A reference to the head item.
    pub fn front(&self) -> Option<&T> {
        self.items.front()
    }

    /// Removes and returns the head item.
    pub fn pop(&mut self) -> Option<T> {
        self.items.pop_front()
    }

    /// Number of queued items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Items dropped because the queue was full.
    pub fn drops(&self) -> u64 {
        self.drops
    }

    /// Retains only items matching the predicate.
    pub fn retain(&mut self, f: impl FnMut(&T) -> bool) {
        self.items.retain(f);
    }

    /// Discards every queued item (a cold reboot wiping the mote's RAM);
    /// the drop counter is preserved.
    pub fn clear(&mut self) {
        self.items.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order() {
        let mut q = BoundedQueue::new(4);
        q.push(1);
        q.push(2);
        assert_eq!(q.front(), Some(&1));
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn overflow_drops_newest() {
        let mut q = BoundedQueue::new(2);
        assert!(q.push(1));
        assert!(q.push(2));
        assert!(!q.push(3));
        assert_eq!(q.drops(), 1);
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop(), Some(1));
    }

    #[test]
    fn retain_filters() {
        let mut q = BoundedQueue::new(8);
        for i in 0..6 {
            q.push(i);
        }
        q.retain(|x| x % 2 == 0);
        assert_eq!(q.len(), 3);
        assert_eq!(q.pop(), Some(0));
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _: BoundedQueue<i32> = BoundedQueue::new(0);
    }

    #[test]
    fn clear_empties_but_keeps_drop_count() {
        let mut q = BoundedQueue::new(2);
        q.push(1);
        q.push(2);
        q.push(3);
        assert_eq!(q.drops(), 1);
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.drops(), 1, "drop accounting survives a wipe");
        assert!(q.push(4));
    }
}
