//! Criterion microbenchmarks for the simulation engine: slot throughput
//! determines how many flow-set experiments fit in a benchmarking budget.

use criterion::{criterion_group, criterion_main, Criterion};
use digs::config::{NetworkConfig, Protocol};
use digs::network::Network;
use digs_sim::topology::Topology;

fn bench_engine(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine");
    group.sample_size(10);

    for (name, topo, flows) in [
        ("testbed_a_half_20n", Topology::testbed_a_half(), 2usize),
        ("testbed_a_50n", Topology::testbed_a(), 8),
    ] {
        group.bench_function(format!("digs_1s_sim_{name}"), |b| {
            // Pre-form the network once; measure steady-state slot cost.
            let config = NetworkConfig::builder(topo.clone())
                .protocol(Protocol::Digs)
                .seed(1)
                .random_flows(flows, 500, 1)
                .build();
            let mut network = Network::new(config);
            network.run_secs(60);
            b.iter(|| network.run(100))
        });
    }

    // Flight-recorder overhead: the same steady-state slot workload with
    // tracing explicitly off (no-op recorder) and on (bounded rings).
    // Comparing the pair against the default runs above bounds the cost of
    // both the disabled guards and live event recording.
    for (name, cap) in [("untraced", 0usize), ("traced", 65_536)] {
        group.bench_function(format!("digs_1s_sim_testbed_a_half_20n_{name}"), |b| {
            let config = NetworkConfig::builder(Topology::testbed_a_half())
                .protocol(Protocol::Digs)
                .seed(1)
                .random_flows(2, 500, 1)
                .trace_cap(cap)
                .build();
            let mut network = Network::new(config);
            network.run_secs(60);
            b.iter(|| network.run(100))
        });
    }

    // Telemetry overhead: the same steady-state workload with epoch
    // sampling pinned off (no sampler allocated at all) and on at the
    // default cadence. The pair bounds the cost of the per-epoch registry
    // scrape plus the run-loop chunking to epoch boundaries.
    for (name, epoch_slots) in [("telemetry_off", 0u64), ("telemetry_on", 1000)] {
        group.bench_function(format!("digs_1s_sim_testbed_a_half_20n_{name}"), |b| {
            let config = NetworkConfig::builder(Topology::testbed_a_half())
                .protocol(Protocol::Digs)
                .seed(1)
                .random_flows(2, 500, 1)
                .trace_cap(0)
                .telemetry_epoch(epoch_slots)
                .telemetry_cap(4096)
                .build();
            let mut network = Network::new(config);
            network.run_secs(60);
            b.iter(|| network.run(100))
        });
    }

    group.bench_function("orchestra_1s_sim_testbed_a_50n", |b| {
        let config = NetworkConfig::builder(Topology::testbed_a())
            .protocol(Protocol::Orchestra)
            .seed(1)
            .random_flows(8, 500, 1)
            .build();
        let mut network = Network::new(config);
        network.run_secs(60);
        b.iter(|| network.run(100))
    });

    group.finish();
}

criterion_group!(benches, bench_engine);
criterion_main!(benches);
