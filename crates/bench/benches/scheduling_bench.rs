//! Criterion microbenchmarks for the autonomous schedulers: per-slot cell
//! resolution is on every node's critical path (once per 10 ms slot on a
//! mote), so it must be fast and allocation-free.

use criterion::{criterion_group, criterion_main, Criterion};
use digs_routing::messages::ParentSlot;
use digs_scheduling::{DigsScheduler, OrchestraScheduler, SlotframeLengths};
use digs_sim::ids::NodeId;
use digs_sim::time::Asn;

fn bench_scheduling(c: &mut Criterion) {
    let mut digs = DigsScheduler::new(NodeId(25), 2, SlotframeLengths::paper(), 3);
    digs.set_parents(Some(NodeId(3)), Some(NodeId(7)));
    for child in 30..42u16 {
        digs.add_child(NodeId(child), ParentSlot::Best);
    }
    c.bench_function("digs_cell_resolution_12_children", |b| {
        let mut asn = 0u64;
        b.iter(|| {
            asn += 1;
            digs.cell(Asn(asn))
        })
    });

    let mut orchestra = OrchestraScheduler::new(NodeId(25), SlotframeLengths::paper());
    orchestra.set_parent(Some(NodeId(3)));
    for child in 30..42u16 {
        orchestra.add_child(NodeId(child));
    }
    c.bench_function("orchestra_cell_resolution_12_children", |b| {
        let mut asn = 0u64;
        b.iter(|| {
            asn += 1;
            orchestra.cell(Asn(asn))
        })
    });

    c.bench_function("digs_eq4_slot_computation", |b| {
        let s = DigsScheduler::new(NodeId(2), 2, SlotframeLengths::paper(), 3);
        let mut id = 2u16;
        b.iter(|| {
            id = 2 + (id + 1) % 48;
            s.tx_slot(NodeId(id), 1 + (id % 3) as u8)
        })
    });
}

criterion_group!(benches, bench_scheduling);
criterion_main!(benches);
