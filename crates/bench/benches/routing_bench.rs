//! Criterion microbenchmarks for the routing layer: Algorithm 1 event
//! processing, centralized graph construction, and graph validation.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use digs_routing::messages::JoinIn;
use digs_routing::{DigsRouting, Rank, RoutingConfig};
use digs_sim::ids::NodeId;
use digs_sim::link::LinkModel;
use digs_sim::rf::{Dbm, RfConfig};
use digs_sim::time::Asn;
use digs_sim::topology::Topology;
use digs_whart::{build_uplink_graph, LinkDb};

fn join_in(rank: u16, etx_w: f64) -> JoinIn {
    JoinIn { rank: Rank(rank), etx_w, best_parent: None, second_parent: None }
}

/// A device with a populated neighbor table.
fn loaded_device(neighbors: u16) -> DigsRouting {
    let mut d = DigsRouting::new(NodeId(100), false, RoutingConfig::default(), 1, Asn::ZERO);
    for i in 0..neighbors {
        let rank = 2 + i % 4;
        d.on_join_in(
            NodeId(i),
            &join_in(rank, f64::from(rank) * 1.3),
            Dbm(-60.0 - f64::from(i % 30)),
            Asn(u64::from(i)),
        );
    }
    d
}

fn bench_routing(c: &mut Criterion) {
    c.bench_function("alg1_join_in_30_neighbors", |b| {
        b.iter_batched(
            || loaded_device(30),
            |mut d| d.on_join_in(NodeId(31), &join_in(2, 1.0), Dbm(-62.0), Asn(1000)),
            BatchSize::SmallInput,
        )
    });

    c.bench_function("alg1_tx_result_feedback", |b| {
        b.iter_batched(
            || loaded_device(30),
            |mut d| d.on_tx_result(d.best_parent().expect("joined"), false, Asn(1000)),
            BatchSize::SmallInput,
        )
    });

    let topo = Topology::testbed_a();
    let model = LinkModel::new(&topo, RfConfig::deterministic(), 1);
    let db = LinkDb::from_link_model(&model);
    let roots = topo.access_points();
    c.bench_function("central_graph_50_nodes", |b| b.iter(|| build_uplink_graph(&db, &roots)));

    let graph = build_uplink_graph(&db, &roots);
    c.bench_function("graph_dag_validation_50_nodes", |b| b.iter(|| graph.is_dag()));
    c.bench_function("graph_reachability_50_nodes", |b| b.iter(|| graph.all_reachable()));
}

criterion_group!(benches, bench_routing);
criterion_main!(benches);
