//! Ablation — the weighted ETX of Eq. 1–3 replaced by the plain
//! accumulated ETX through the best parent.
//!
//! The weighted ETX folds the backup route's quality into the advertised
//! cost (with weights that reflect WirelessHART's two-then-backup retry
//! policy); this ablation quantifies what that contributes.

use digs::config::Protocol;
use digs::experiment;
use digs::scenarios;
use digs_metrics::format::{cdf_table, figure_header};
use digs_metrics::Cdf;

fn main() {
    let sets = digs_bench::sets(8);
    let secs = digs_bench::secs(420);
    println!(
        "{}",
        figure_header(
            "Ablation",
            "weighted ETX (Eq. 1-3) vs plain accumulated ETX (Testbed A, interference)"
        )
    );

    let weighted = digs_bench::run_seeds(
        |seed| scenarios::testbed_a_interference(Protocol::Digs, seed),
        sets,
        secs,
    );
    let plain = digs_bench::run_seeds(
        |seed| {
            let mut config = scenarios::testbed_a_interference(Protocol::Digs, seed);
            config.routing.use_weighted_etx = false;
            config
        },
        sets,
        secs,
    );

    let weighted_pdr = Cdf::new(experiment::flow_set_pdrs(&weighted)).expect("runs");
    let plain_pdr = Cdf::new(experiment::flow_set_pdrs(&plain)).expect("runs");
    println!("\nCDF of flow-set PDR");
    println!(
        "{}",
        cdf_table(&[("weighted-etx", &weighted_pdr), ("plain-etx", &plain_pdr)], "pdr", 10)
    );

    digs_bench::print_comparisons(&[
        ("mean PDR with weighted ETX", "-", weighted_pdr.mean()),
        ("mean PDR with plain ETX", "-", plain_pdr.mean()),
        ("worst-case set PDR, weighted", "-", weighted_pdr.min()),
        ("worst-case set PDR, plain", "-", plain_pdr.min()),
    ]);
}
