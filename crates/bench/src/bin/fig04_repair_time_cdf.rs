//! Fig. 4 — CDF of the repair time used by Orchestra to update routes and
//! transmission schedule when the network encounters controlled
//! interference from 1–4 jammers.
//!
//! Paper: repair time ranges 20–95 s with a median of 45 s.

use digs::config::Protocol;
use digs::network::Network;
use digs::scenarios;
use digs_metrics::format::{cdf_table, figure_header};
use digs_metrics::Cdf;
use digs_sim::time::Asn;
use digs_trace::EventKind;

fn main() {
    let sets = digs_bench::sets(6);
    let secs = digs_bench::secs(420);
    println!("{}", figure_header("Fig. 4", "CDF of Orchestra repair time under 1-4 jammers"));

    let jam_start = Asn::from_secs(scenarios::JAM_START_SECS);
    let mut all_repairs = Vec::new();
    for jammers in 1..=4usize {
        let results = digs_bench::run_seeds(
            move |seed| scenarios::testbed_a_jammer_sweep(Protocol::Orchestra, jammers, seed),
            sets,
            secs,
        );
        let repairs = digs::experiment::repair_times_secs(&results, jam_start, 10);
        println!(
            "{} jammer(s): {} repair events, median {:.1} s",
            jammers,
            repairs.len(),
            Cdf::new(repairs.iter().copied()).map_or(f64::NAN, |c| c.median())
        );
        all_repairs.extend(repairs);
    }

    match Cdf::new(all_repairs.iter().copied()) {
        Some(cdf) => {
            println!();
            println!("{}", cdf_table(&[("orchestra", &cdf)], "repair (s)", 10));
            digs_bench::print_comparisons(&[
                ("repair time min (s)", "20", cdf.min()),
                ("repair time median (s)", "45", cdf.median()),
                ("repair time max (s)", "95", cdf.max()),
            ]);
        }
        None => println!("no repair events observed — increase DIGS_SETS"),
    }

    // Flight-recorder drill-down: with DIGS_TRACE_CAP set, re-run the
    // 1-jammer scenario once with the recorder on and print the
    // parent-churn timeline hiding behind the aggregate CDF above.
    if digs_trace::TraceHandle::from_env().is_on() {
        let mut net = Network::new(scenarios::testbed_a_jammer_sweep(Protocol::Orchestra, 1, 1));
        net.run_secs(secs);
        let events = net.trace().events();
        let churn = digs_trace::churn_timeline(&events);
        let first_switch = churn
            .iter()
            .find(|e| e.asn >= jam_start.0 && matches!(e.kind, EventKind::ParentSwitch { .. }))
            .map(|e| (e.asn - jam_start.0) as f64 / 100.0);
        println!();
        println!(
            "flight recorder (1 jammer, seed 1): {} churn events, first parent switch {} after jamming began",
            churn.len(),
            first_switch.map_or("never".to_string(), |s| format!("{s:.1} s")),
        );
        for e in churn.iter().filter(|e| e.asn >= jam_start.0).take(20) {
            println!("  {e}");
        }
    }
}
