//! Bonus — all three systems end to end: DiGS, Orchestra, and the
//! centralized WirelessHART data plane on the same topology, clean and
//! with a mid-run relay failure.
//!
//! This is the experiment the paper *implies* with Fig. 3 but never runs
//! directly: the centralized schedule is flawless while nothing changes,
//! and blind for the full manager-update time once anything does. The
//! simulated manager cycle for Testbed A is ~500 s (Fig. 3), far longer
//! than this run's failure window — so the WirelessHART row shows the
//! no-repair worst case.

use digs::config::{NetworkConfig, Protocol};
use digs::network::Network;
use digs_metrics::format::figure_header;
use digs_sim::fault::{FaultPlan, Outage};
use digs_sim::time::Asn;
use digs_sim::topology::Topology;

fn config(protocol: Protocol, seed: u64) -> NetworkConfig {
    let topology = Topology::testbed_a();
    let mut flows = digs::scenarios::far_flow_set(&topology, 6, 500, seed);
    for f in &mut flows {
        f.phase += 6000; // 60 s warm-up for the distributed protocols
    }
    NetworkConfig::builder(topology).protocol(protocol).seed(seed).flows(flows).build()
}

fn main() {
    let seed = digs_bench::sets(3); // reuse the knob as a seed selector
    let secs = digs_bench::secs(360);
    println!("{}", figure_header("Bonus", "DiGS vs Orchestra vs centralized WirelessHART"));
    let victim = digs::experiment::shared_relay_victim(&config(Protocol::WirelessHart, seed));
    println!(
        "shared failed relay: {}\n",
        victim.map_or("none found (flows are single-hop)".into(), |v| v.to_string())
    );
    println!(
        "{:>14} | {:>9} | {:>13} | {:>11} | {:>9}",
        "protocol", "clean PDR", "PDR w/failure", "median lat", "mW/packet"
    );
    for protocol in [Protocol::Digs, Protocol::Orchestra, Protocol::WirelessHart] {
        let mut clean = Network::new(config(protocol, seed));
        clean.run_secs(secs);
        let clean_results = clean.results();

        let mut failed = Network::new(config(protocol, seed));
        failed.run_secs(120);
        if let Some(v) = victim {
            failed.set_fault_plan(FaultPlan::none().with(Outage::transient(
                v,
                Asn::from_secs(120),
                Asn::from_secs(240),
            )));
        }
        failed.run_secs(secs - 120);
        let failed_results = failed.results();

        println!(
            "{:>14} | {:>9.3} | {:>13.3} | {:>9.0}ms | {:>9.4}",
            protocol.name(),
            clean_results.network_pdr(),
            failed_results.network_pdr(),
            clean_results.median_latency_ms().unwrap_or(f64::NAN),
            clean_results.power_per_received_packet_mw(),
        );
        // With DIGS_TRACE_CAP set, decompose the clean-run latency into
        // the flight recorder's per-hop queueing/retransmission parts —
        // this is where DiGS's dedicated cells vs Orchestra's shared
        // slots actually show up.
        if clean.trace().is_on() {
            let b = digs_trace::latency_breakdown(&digs_trace::journeys(&clean.trace().events()));
            println!(
                "{:>14} | {:>5}/{} journeys | {:>4.1} hops | {:>5.1} queue + {:>5.1} retx of {:>6.1} slots | {} via backup",
                "  breakdown",
                b.complete,
                b.journeys,
                b.mean_hops,
                b.mean_queue_slots,
                b.mean_retx_slots,
                b.mean_latency_slots,
                b.used_backup,
            );
        }
    }
    // Fourth row: the centralized baseline *with* its manager's recovery
    // cycle modelled (Fig. 3 cost). The manager may find the victim
    // unroutable-around (the failure partitions a flow) — report that
    // instead of aborting the comparison.
    if let Some(v) = victim {
        match digs::experiment::run_whart_with_recovery(
            config(Protocol::WirelessHart, seed),
            v,
            120,
            secs,
        ) {
            Ok((results, delay)) => println!(
                "{:>14} | {:>9} | {:>13.3} | {:>11} | ({:.0}s manager cycle)",
                "whart+recover",
                "-",
                results.network_pdr(),
                "-",
                delay
            ),
            Err(err) => println!(
                "{:>14} | {:>9} | {:>13} | {:>11} | (unroutable: {err})",
                "whart+recover", "-", "unroutable", "-"
            ),
        }
    }
    println!();
    println!("expected shape: all three deliver when nothing changes; under the");
    println!("failure, DiGS degrades least (instant backup route), Orchestra");
    println!("repairs within tens of seconds, and the static WirelessHART");
    println!("schedule stays broken for the whole outage (its manager would");
    println!("need a ~500 s update cycle, per Fig. 3).");
}
