//! Fig. 9 — performance under DiGS and Orchestra when the network
//! encounters interference on Testbed A (50 nodes, 8 flows @ 5 s, three
//! WiFi-emulating jammers).
//!
//! Reproduces all six panels:
//! (a) CDF of flow-set PDR, (b) CDF of latency, (c)/(d) per-flow latency
//! boxplots, (e) CDF of power per received packet, (f) the packets-74–84
//! delivery micro-benchmark.
//!
//! Paper headline numbers: DiGS +8.3% mean PDR; 75% vs 12.5% of flow sets
//! ≥ 95% PDR; worst-case PDR 90.3% vs 76.0%; median latency 601.3 ms vs
//! 917.5 ms; mean latency 649.5 ms vs 1214.1 ms; power per received packet
//! −0.056 mW.

use digs::config::Protocol;
use digs::experiment;
use digs::scenarios;
use digs_metrics::format::{boxplot_table, cdf_table, figure_header};
use digs_metrics::{BoxplotStats, Cdf};

fn main() {
    let sets = digs_bench::sets(10);
    let secs = digs_bench::secs(420);
    println!("{}", figure_header("Fig. 9", "Testbed A under interference: DiGS vs Orchestra"));
    let (digs_runs, orch_runs) =
        digs_bench::run_both(scenarios::testbed_a_interference, sets, secs);

    // (a) CDF of flow-set PDR.
    let digs_pdr = Cdf::new(experiment::flow_set_pdrs(&digs_runs)).expect("runs");
    let orch_pdr = Cdf::new(experiment::flow_set_pdrs(&orch_runs)).expect("runs");
    println!("\n(a) CDF of flow-set PDR");
    println!("{}", cdf_table(&[("digs", &digs_pdr), ("orchestra", &orch_pdr)], "pdr", 10));

    // (b) CDF of end-to-end latency.
    let digs_lat = Cdf::new(experiment::all_latencies_ms(&digs_runs)).expect("deliveries");
    let orch_lat = Cdf::new(experiment::all_latencies_ms(&orch_runs)).expect("deliveries");
    println!("\n(b) CDF of end-to-end latency (ms)");
    println!("{}", cdf_table(&[("digs", &digs_lat), ("orchestra", &orch_lat)], "ms", 10));

    // (c)/(d) per-flow latency boxplots (first run of each protocol).
    for (panel, name, runs) in [("(c)", "orchestra", &orch_runs), ("(d)", "digs", &digs_runs)] {
        println!("\n{panel} per-flow latency boxplot under {name} (flow set 1, ms)");
        let rows: Vec<(String, BoxplotStats)> = runs[0]
            .flows
            .iter()
            .filter_map(|f| {
                BoxplotStats::of(&f.latencies_ms).map(|b| (format!("flow {}", f.flow.0), b))
            })
            .collect();
        println!("{}", boxplot_table(&rows));
    }

    // (e) CDF of power per received packet.
    let digs_ppp = Cdf::new(experiment::power_per_packet_samples(&digs_runs)).expect("runs");
    let orch_ppp = Cdf::new(experiment::power_per_packet_samples(&orch_runs)).expect("runs");
    println!("\n(e) CDF of power per received packet (mW)");
    println!("{}", cdf_table(&[("digs", &digs_ppp), ("orchestra", &orch_ppp)], "mW/pkt", 10));

    // (f) micro-benchmark: delivery of a packet window per flow during jam.
    // The jam starts at packet ≈ (JAM_START−WARMUP)/5 s = 12; look at the
    // window around it, scaled to the paper's 74–84 presentation.
    println!("\n(f) per-flow delivery around the jam onset (seq 10..=20, ■=delivered, ·=lost)");
    for (name, runs) in [("digs", &digs_runs), ("orchestra", &orch_runs)] {
        println!("  {name} (flow set 1):");
        for (flow, seqs) in experiment::delivery_microbench(&runs[0], 10, 20) {
            let line: String = seqs.iter().map(|(_, ok)| if *ok { '■' } else { '·' }).collect();
            println!("    flow {flow}: {line}");
        }
    }

    digs_bench::print_comparisons(&[
        ("DiGS mean PDR − Orchestra mean PDR", "+0.083", digs_pdr.mean() - orch_pdr.mean()),
        ("DiGS flow sets ≥ 95% PDR", "0.75", digs_pdr.fraction_at_or_above(0.95)),
        ("Orchestra flow sets ≥ 95% PDR", "0.125", orch_pdr.fraction_at_or_above(0.95)),
        ("DiGS worst-case set PDR", "0.903", digs_pdr.min()),
        ("Orchestra worst-case set PDR", "0.760", orch_pdr.min()),
        ("DiGS median latency (ms)", "601.3", digs_lat.median()),
        ("Orchestra median latency (ms)", "917.5", orch_lat.median()),
        ("DiGS mean latency (ms)", "649.5", digs_lat.mean()),
        ("Orchestra mean latency (ms)", "1214.1", orch_lat.mean()),
        ("power/packet DiGS − Orchestra (mW)", "-0.056", digs_ppp.mean() - orch_ppp.mean()),
    ]);

    // The same runs as the conformance gate's fig09 scenarios see them.
    let ctx = digs_conformance::MetricContext {
        repair_event_secs: Some(scenarios::JAM_START_SECS),
        repair_settle_secs: digs_conformance::matrix::REPAIR_SETTLE_SECS,
        window_start_slot: Some(scenarios::JAM_START_SECS * 100),
    };
    for (label, protocol, runs) in [
        ("fig09-digs", Protocol::Digs, &digs_runs),
        ("fig09-orchestra", Protocol::Orchestra, &orch_runs),
    ] {
        digs_bench::print_records(
            label,
            |seed| scenarios::testbed_a_interference(protocol, seed),
            runs,
            secs,
            ctx,
        );
    }
}
