//! Fig. 13 — network initialization: CDF of the time each of the 50
//! Testbed A nodes needs to join the network (synchronize and select its
//! preferred parent(s)) under DiGS and Orchestra.
//!
//! Paper: DiGS max 24.1 s vs Orchestra 23.0 s; means 15.4 s vs 14.3 s —
//! DiGS pays slightly more because every node selects one extra parent.

use digs::config::Protocol;
use digs::scenarios;
use digs_metrics::format::{cdf_table, figure_header};
use digs_metrics::Cdf;

fn main() {
    let sets = digs_bench::sets(8);
    let secs = digs_bench::secs(120);
    println!("{}", figure_header("Fig. 13", "Network initialization: per-node joining time CDF"));

    let mut samples = Vec::new();
    for protocol in [Protocol::Digs, Protocol::Orchestra] {
        let runs = digs_bench::run_seeds(
            move |seed| scenarios::initialization(protocol, seed),
            sets,
            secs,
        );
        // Exclude the access points (they are joined at t = 0 by
        // definition) and average the joining fraction.
        let join_times: Vec<f64> =
            runs.iter().flat_map(|r| r.join_times_secs()).filter(|t| *t > 0.0).collect();
        let joined_frac: f64 =
            runs.iter().map(|r| r.fraction_joined()).sum::<f64>() / runs.len() as f64;
        println!(
            "{}: {} joins observed, joined fraction {:.3}",
            protocol.name(),
            join_times.len(),
            joined_frac
        );
        samples.push((protocol, Cdf::new(join_times).expect("joins observed")));
    }

    let digs_cdf = &samples[0].1;
    let orch_cdf = &samples[1].1;
    println!();
    println!("{}", cdf_table(&[("digs", digs_cdf), ("orchestra", orch_cdf)], "join (s)", 10));
    digs_bench::print_comparisons(&[
        ("DiGS mean join time (s)", "15.4", digs_cdf.mean()),
        ("Orchestra mean join time (s)", "14.3", orch_cdf.mean()),
        ("DiGS max join time (s)", "24.1", digs_cdf.max()),
        ("Orchestra max join time (s)", "23.0", orch_cdf.max()),
        ("join-time penalty of DiGS (s, mean)", "+1.1", digs_cdf.mean() - orch_cdf.mean()),
    ]);
}
