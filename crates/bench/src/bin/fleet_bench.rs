//! Fleet throughput benchmark — headline number: simulated
//! node-seconds per core-second.
//!
//! Runs a standard mixed fleet workload (oil-field + factory-floor
//! template networks plus one sharded campus network) through
//! [`digs_fleet::run_fleet`] and records machine-readable results in
//! `bench_results/fleet_bench.json` and `BENCH_fleet.json`, seeding the
//! perf trajectory future PRs gate against. Simulation outcomes (PDR,
//! SLO verdict) are deterministic; only the wall-clock fields vary
//! between machines.
//!
//! ```text
//! cargo run --release -p digs-bench --bin fleet_bench [-- --networks N \
//!     --sharded-devices N --secs N --jobs N]
//! ```

use digs_fleet::{aggregate, FleetSpec, ShardedSpec, SloPolicy, Template};
use digs_json::Value;

fn arg(args: &[String], name: &str, default: u64) -> u64 {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn obj(fields: Vec<(&str, Value)>) -> Value {
    Value::Obj(fields.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let networks = arg(&args, "--networks", 64) as u32;
    let sharded_devices = arg(&args, "--sharded-devices", 500) as usize;
    let secs = arg(&args, "--secs", 600);
    let jobs = match arg(&args, "--jobs", 0) {
        0 => None,
        n => Some(n as usize),
    };

    let mut spec = FleetSpec::new()
        .secs(secs)
        .group(Template::OilField, networks.div_ceil(2), 1)
        .group(Template::FactoryFloor, networks / 2, 1);
    if sharded_devices > 0 {
        spec = spec.sharded(ShardedSpec::sized(
            format!("campus-{sharded_devices}"),
            sharded_devices,
            42,
        ));
    }

    let total_nodes = spec.total_nodes();
    let outcome = digs_fleet::run_fleet(&spec, jobs);
    let report = aggregate(&outcome.summaries, spec.secs);
    let breaches = report.breaches(&SloPolicy::default());
    let rate = outcome.node_secs as f64 / outcome.serial_equivalent.as_secs_f64().max(1e-9);
    let parallel_rate = outcome.node_secs as f64 / outcome.wall.as_secs_f64().max(1e-9);

    // Per-shard utilization: each shard's busy time relative to the
    // slowest shard in its network — the window-barrier stragglers.
    let sharded: Vec<Value> = outcome
        .shard_busy
        .iter()
        .map(|(name, busy)| {
            let max = busy.iter().map(|d| d.as_secs_f64()).fold(1e-9_f64, f64::max);
            obj(vec![
                ("name", Value::Str(name.clone())),
                ("shards", Value::num(busy.len() as f64)),
                (
                    "busy_secs",
                    Value::Arr(busy.iter().map(|d| Value::num(d.as_secs_f64())).collect()),
                ),
                (
                    "utilization",
                    Value::Arr(busy.iter().map(|d| Value::num(d.as_secs_f64() / max)).collect()),
                ),
            ])
        })
        .collect();

    let result = obj(vec![
        ("bench", Value::Str("fleet_bench".into())),
        ("networks", Value::num(report.networks as f64)),
        ("nodes", Value::num(total_nodes as f64)),
        ("secs", Value::num(secs as f64)),
        ("jobs", Value::num(outcome.jobs as f64)),
        ("wall_secs", Value::num(outcome.wall.as_secs_f64())),
        ("serial_equivalent_secs", Value::num(outcome.serial_equivalent.as_secs_f64())),
        ("node_secs", Value::num(outcome.node_secs as f64)),
        ("nodes_per_core_sec", Value::num(rate)),
        ("nodes_per_wall_sec", Value::num(parallel_rate)),
        ("fleet_pdr", Value::num(report.fleet_pdr)),
        ("latency_p50_ms", Value::opt(report.latency.quantile(50.0))),
        ("latency_p99_ms", Value::opt(report.latency.quantile(99.0))),
        ("slo_passed", Value::Bool(breaches.is_empty())),
        ("sharded", Value::Arr(sharded)),
    ]);

    let json = result.to_pretty() + "\n";
    for path in ["bench_results/fleet_bench.json", "BENCH_fleet.json"] {
        if let Err(e) = std::fs::write(path, &json) {
            eprintln!("fleet_bench: cannot write {path}: {e}");
            std::process::exit(1);
        }
    }
    println!("{}", report.render(&SloPolicy::default()));
    println!(
        "\nfleet_bench: {:.0} node-sec/core-sec ({:.0} node-sec/wall-sec on {} worker(s)), \
         wall {:.1} s — recorded to bench_results/fleet_bench.json",
        rate,
        parallel_rate,
        outcome.jobs,
        outcome.wall.as_secs_f64()
    );
}
