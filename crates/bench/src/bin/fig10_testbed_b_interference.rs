//! Fig. 10 — performance under DiGS and Orchestra when the network
//! encounters interference on Testbed B (44 nodes over two floors,
//! 6 flows @ 5 s, three jammers).
//!
//! Paper headline numbers: DiGS worst-case PDR 93.2%, median 94.5%,
//! p90 97.7% (beating Orchestra by 7.6 / 5.2 / 4.7 percentage points);
//! latency improvements 213.0 ms (worst-case) and 232.7 ms (median);
//! power per received packet −0.057 mW.

use digs::config::Protocol;
use digs::experiment;
use digs::scenarios;
use digs_metrics::format::{cdf_table, figure_header};
use digs_metrics::Cdf;

fn main() {
    let sets = digs_bench::sets(10);
    let secs = digs_bench::secs(420);
    println!("{}", figure_header("Fig. 10", "Testbed B under interference: DiGS vs Orchestra"));
    let (digs_runs, orch_runs) =
        digs_bench::run_both(scenarios::testbed_b_interference, sets, secs);

    let digs_pdr = Cdf::new(experiment::flow_set_pdrs(&digs_runs)).expect("runs");
    let orch_pdr = Cdf::new(experiment::flow_set_pdrs(&orch_runs)).expect("runs");
    println!("\n(a) CDF of flow-set PDR");
    println!("{}", cdf_table(&[("digs", &digs_pdr), ("orchestra", &orch_pdr)], "pdr", 10));

    let digs_lat = Cdf::new(experiment::all_latencies_ms(&digs_runs)).expect("deliveries");
    let orch_lat = Cdf::new(experiment::all_latencies_ms(&orch_runs)).expect("deliveries");
    println!("\n(b) CDF of end-to-end latency (ms)");
    println!("{}", cdf_table(&[("digs", &digs_lat), ("orchestra", &orch_lat)], "ms", 10));

    let digs_ppp = Cdf::new(experiment::power_per_packet_samples(&digs_runs)).expect("runs");
    let orch_ppp = Cdf::new(experiment::power_per_packet_samples(&orch_runs)).expect("runs");
    println!("\n(c) CDF of power per received packet (mW)");
    println!("{}", cdf_table(&[("digs", &digs_ppp), ("orchestra", &orch_ppp)], "mW/pkt", 10));

    digs_bench::print_comparisons(&[
        ("DiGS worst-case set PDR", "0.932", digs_pdr.min()),
        ("DiGS median set PDR", "0.945", digs_pdr.median()),
        ("DiGS p90 set PDR", "0.977", digs_pdr.percentile(90.0)),
        ("worst PDR gap (DiGS − Orch)", "+0.076", digs_pdr.min() - orch_pdr.min()),
        ("median PDR gap (DiGS − Orch)", "+0.052", digs_pdr.median() - orch_pdr.median()),
        ("median latency gap (Orch − DiGS, ms)", "232.7", orch_lat.median() - digs_lat.median()),
        ("power/packet DiGS − Orchestra (mW)", "-0.057", digs_ppp.mean() - orch_ppp.mean()),
    ]);

    let ctx = digs_conformance::MetricContext {
        repair_event_secs: Some(scenarios::JAM_START_SECS),
        repair_settle_secs: digs_conformance::matrix::REPAIR_SETTLE_SECS,
        window_start_slot: Some(scenarios::JAM_START_SECS * 100),
    };
    for (label, protocol, runs) in [
        ("fig10-digs", Protocol::Digs, &digs_runs),
        ("fig10-orchestra", Protocol::Orchestra, &orch_runs),
    ] {
        digs_bench::print_records(
            label,
            |seed| scenarios::testbed_b_interference(protocol, seed),
            runs,
            secs,
            ctx,
        );
    }
}
