//! Fig. 5 — per-flow PDR during the repair when the network encounters
//! interference from 1–4 jammers (Orchestra).
//!
//! Paper: median PDRs 0.90 / 0.87 / 0.845 / 0.825 for 1–4 jammers, with
//! large variations.

use digs::config::Protocol;
use digs::network::Network;
use digs::scenarios;
use digs_metrics::format::{boxplot_table, figure_header};
use digs_metrics::BoxplotStats;

fn main() {
    let sets = digs_bench::sets(6);
    let secs = digs_bench::secs(420);
    println!("{}", figure_header("Fig. 5", "Orchestra per-flow PDR during repair, 1-4 jammers"));

    let mut rows = Vec::new();
    let mut medians = Vec::new();
    for jammers in 1..=4usize {
        let mut pdrs = Vec::new();
        for seed in 1..=sets {
            let config = scenarios::testbed_a_jammer_sweep(Protocol::Orchestra, jammers, seed);
            let specs = config.flows.clone();
            let results = digs::experiment::run_for(config, secs);
            for (flow, spec) in results.flows.iter().zip(&specs) {
                let window = scenarios::JAM_START_SECS * 100;
                if let Some(p) = digs::experiment::windowed_flow_pdr(flow, spec, window) {
                    pdrs.push(p);
                }
            }
        }
        if let Some(stats) = BoxplotStats::of(&pdrs) {
            medians.push(stats.median);
            rows.push((format!("{jammers} jammer(s)"), stats));
        }
    }
    println!("{}", boxplot_table(&rows));
    let paper = [0.90, 0.87, 0.845, 0.825];
    let comparisons: Vec<(String, String, f64)> = medians
        .iter()
        .enumerate()
        .map(|(i, m)| (format!("median PDR with {} jammer(s)", i + 1), format!("{}", paper[i]), *m))
        .collect();
    let rows: Vec<(&str, &str, f64)> =
        comparisons.iter().map(|(a, b, c)| (a.as_str(), b.as_str(), *c)).collect();
    digs_bench::print_comparisons(&rows);

    // Flight-recorder drill-down: with DIGS_TRACE_CAP set, trace the
    // 4-jammer worst case once and relate the PDR dip to the packet
    // journeys the recorder reconstructs across the jammed window.
    if digs_trace::TraceHandle::from_env().is_on() {
        let mut net = Network::new(scenarios::testbed_a_jammer_sweep(Protocol::Orchestra, 4, 1));
        net.run_secs(secs);
        let events = net.trace().events();
        let journeys = digs_trace::journeys(&events);
        let jam = scenarios::JAM_START_SECS * 100;
        let jammed: Vec<_> =
            journeys.iter().filter(|j| j.generated_at.is_some_and(|g| g >= jam)).collect();
        let complete = jammed.iter().filter(|j| j.is_complete()).count();
        let retx: u32 =
            jammed.iter().map(|j| j.total_attempts().saturating_sub(j.hops.len() as u32)).sum();
        println!();
        println!(
            "flight recorder (4 jammers, seed 1): {} journeys generated under jamming, \
             {} delivered, {} retransmissions",
            jammed.len(),
            complete,
            retx,
        );
    }
}
