//! Ablation — DiGS with the backup parent disabled.
//!
//! Isolates the value of graph routing: with `use_second_parent = false`
//! the protocol degenerates to single-path routing (RPL-like) while
//! keeping the Eq. 4 autonomous schedule. The PDR gap under interference
//! shows how much of DiGS's resilience comes from the redundant route.

use digs::config::Protocol;
use digs::experiment;
use digs::scenarios;
use digs_metrics::format::{cdf_table, figure_header};
use digs_metrics::Cdf;

fn main() {
    let sets = digs_bench::sets(8);
    let secs = digs_bench::secs(420);
    println!(
        "{}",
        figure_header(
            "Ablation",
            "DiGS with vs without the backup parent (Testbed A, interference)"
        )
    );

    let full = digs_bench::run_seeds(
        |seed| scenarios::testbed_a_interference(Protocol::Digs, seed),
        sets,
        secs,
    );
    let ablated = digs_bench::run_seeds(
        |seed| {
            let mut config = scenarios::testbed_a_interference(Protocol::Digs, seed);
            config.routing.use_second_parent = false;
            config
        },
        sets,
        secs,
    );

    let full_pdr = Cdf::new(experiment::flow_set_pdrs(&full)).expect("runs");
    let ablated_pdr = Cdf::new(experiment::flow_set_pdrs(&ablated)).expect("runs");
    println!("\nCDF of flow-set PDR");
    println!(
        "{}",
        cdf_table(&[("graph-routing", &full_pdr), ("single-path", &ablated_pdr)], "pdr", 10)
    );

    let full_lat = Cdf::new(experiment::all_latencies_ms(&full)).expect("deliveries");
    let ablated_lat = Cdf::new(experiment::all_latencies_ms(&ablated)).expect("deliveries");
    digs_bench::print_comparisons(&[
        ("mean PDR with backup parent", "(higher)", full_pdr.mean()),
        ("mean PDR without backup parent", "(lower)", ablated_pdr.mean()),
        ("worst-case set PDR with backup", "(higher)", full_pdr.min()),
        ("worst-case set PDR without backup", "(lower)", ablated_pdr.min()),
        ("median latency with backup (ms)", "-", full_lat.median()),
        ("median latency without backup (ms)", "-", ablated_lat.median()),
    ]);
}
