//! Bonus — delivery timeline through jam onset and recovery: a
//! time-resolved view of the Fig. 9(f) micro-benchmark, as one sparkline
//! per protocol (5-second windows; the jammers switch on at 120 s).

use digs::config::Protocol;
use digs::network::Network;
use digs::scenarios;
use digs::timeline::{delivery_timeline, sparkline};
use digs_metrics::format::figure_header;

fn main() {
    let seed = digs_bench::sets(1);
    let secs = digs_bench::secs(420);
    println!("{}", figure_header("Bonus", "delivery timeline through jam onset (5 s windows)"));
    println!(
        "jammers on at {} s; glyphs: █ ≥99%  ▆ ≥90%  ▄ ≥70%  ▂ ≥40%  · below\n",
        scenarios::JAM_START_SECS
    );
    for protocol in [Protocol::Digs, Protocol::Orchestra] {
        let config = scenarios::testbed_a_interference(protocol, seed);
        let specs = config.flows.clone();
        let mut network = Network::new(config);
        network.run_secs(secs);
        let results = network.results();
        let timeline = delivery_timeline(&results, &specs, 5);
        println!("{:>10}: {}", protocol.name(), sparkline(&timeline));
        let jam_window = (scenarios::JAM_START_SECS / 5) as usize;
        let (pre, post): (Vec<_>, Vec<_>) = timeline
            .iter()
            .filter(|p| p.generated > 0)
            .partition(|p| (p.start_secs as u64) < scenarios::JAM_START_SECS);
        let mean = |points: &[&digs::timeline::TimelinePoint]| {
            let (d, g) =
                points.iter().fold((0u32, 0u32), |(d, g), p| (d + p.delivered, g + p.generated));
            if g == 0 {
                f64::NAN
            } else {
                f64::from(d) / f64::from(g)
            }
        };
        println!(
            "{:>10}  pre-jam PDR {:.3}, jammed PDR {:.3} (jam starts at window {jam_window})\n",
            "",
            mean(&pre.iter().collect::<Vec<_>>()),
            mean(&post.iter().collect::<Vec<_>>()),
        );
    }
}
