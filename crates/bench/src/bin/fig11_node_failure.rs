//! Fig. 11 — performance under DiGS and Orchestra when the network
//! encounters node failure on Testbed A: four nodes on the live routing
//! graph are switched off in turn.
//!
//! Paper: 6 of the 8 flows become disconnected under Orchestra while all
//! DiGS flows keep a 100% PDR; the Orchestra micro-benchmark loses packet
//! #34 and recovers after ~10 s; DiGS saves 9.01 mW per received packet.

use digs::config::Protocol;
use digs::experiment::{self, run_node_failure, run_node_failure_with_victims};
use digs::scenarios::{self, FAILURE_EACH_SECS, FAILURE_START_SECS};
use digs_metrics::format::{cdf_table, figure_header};
use digs_metrics::Cdf;

fn main() {
    let sets = digs_bench::sets(8);
    let secs = digs_bench::secs(420);
    println!("{}", figure_header("Fig. 11", "Testbed A with node failure: DiGS vs Orchestra"));

    let mut digs_runs = Vec::new();
    let mut orch_runs = Vec::new();
    for seed in 1..=sets {
        // Derive the victims once per seed from the live DiGS routing graph
        // (the paper turns off the same routing-graph nodes for both
        // protocols), then apply the identical failure schedule to both.
        let mut digs_cfg = scenarios::testbed_a_node_failure(Protocol::Digs, seed);
        digs_cfg.faults = digs_sim::fault::FaultPlan::none();
        let pilot = run_node_failure(digs_cfg, FAILURE_START_SECS, FAILURE_EACH_SECS, secs, 4);
        let victims = pilot.victims.clone();
        digs_runs.push(pilot.results);

        let mut orch_cfg = scenarios::testbed_a_node_failure(Protocol::Orchestra, seed);
        orch_cfg.faults = digs_sim::fault::FaultPlan::none();
        orch_runs.push(run_node_failure_with_victims(
            orch_cfg,
            &victims,
            FAILURE_START_SECS,
            FAILURE_EACH_SECS,
            secs,
        ));
    }

    // (a) PDR of each data flow (flow set 1).
    println!("\n(a) per-flow PDR (flow set 1)");
    println!("{:>8} | {:>8} | {:>10}", "flow", "digs", "orchestra");
    for (d, o) in digs_runs[0].flows.iter().zip(&orch_runs[0].flows) {
        println!("{:>8} | {:>8.3} | {:>10.3}", d.flow.0, d.pdr(), o.pdr());
    }

    // (b) micro-benchmark around the failure onset. The first failure hits
    // at packet ≈ (FAILURE_START − WARMUP)/5 s = 12.
    println!("\n(b) per-flow delivery around the failure (seq 10..=20, ■=delivered, ·=lost)");
    for (name, runs) in [("digs", &digs_runs), ("orchestra", &orch_runs)] {
        println!("  {name} (flow set 1):");
        for (flow, seqs) in experiment::delivery_microbench(&runs[0], 10, 20) {
            let line: String = seqs.iter().map(|(_, ok)| if *ok { '■' } else { '·' }).collect();
            println!("    flow {flow}: {line}");
        }
    }

    // (c) CDF of power per received packet.
    let digs_ppp = Cdf::new(experiment::power_per_packet_samples(&digs_runs)).expect("runs");
    let orch_ppp = Cdf::new(experiment::power_per_packet_samples(&orch_runs)).expect("runs");
    println!("\n(c) CDF of power per received packet (mW)");
    println!("{}", cdf_table(&[("digs", &digs_ppp), ("orchestra", &orch_ppp)], "mW/pkt", 10));

    let digs_pdr = Cdf::new(experiment::flow_set_pdrs(&digs_runs)).expect("runs");
    let orch_pdr = Cdf::new(experiment::flow_set_pdrs(&orch_runs)).expect("runs");
    let digs_degraded: usize =
        digs_runs.iter().flat_map(|r| r.flows.iter()).filter(|f| f.pdr() < 0.9).count();
    let orch_degraded: usize =
        orch_runs.iter().flat_map(|r| r.flows.iter()).filter(|f| f.pdr() < 0.9).count();
    digs_bench::print_comparisons(&[
        ("DiGS mean set PDR under failure", "1.00", digs_pdr.mean()),
        ("Orchestra mean set PDR under failure", "<1.00", orch_pdr.mean()),
        ("DiGS flows degraded (<90% PDR)", "0", digs_degraded as f64),
        ("Orchestra flows degraded (<90% PDR)", "~6 of 8/set", orch_degraded as f64),
        ("power/packet DiGS − Orchestra (mW)", "-9.01", digs_ppp.mean() - orch_ppp.mean()),
    ]);

    let ctx = digs_conformance::MetricContext {
        repair_event_secs: Some(FAILURE_START_SECS),
        repair_settle_secs: digs_conformance::matrix::REPAIR_SETTLE_SECS,
        window_start_slot: Some(FAILURE_START_SECS * 100),
    };
    for (label, protocol, runs) in [
        ("fig11-digs", Protocol::Digs, &digs_runs),
        ("fig11-orchestra", Protocol::Orchestra, &orch_runs),
    ] {
        digs_bench::print_records(
            label,
            |seed| scenarios::testbed_a_node_failure(protocol, seed),
            runs,
            secs,
            ctx,
        );
    }
}
