//! Fig. 3 — time consumed by the centralized WirelessHART Network Manager
//! to collect topology information, regenerate routes and schedule, and
//! disseminate them, for the four study topologies.
//!
//! Paper values: Half Testbed A 203 s, Full Testbed A 506 s,
//! Half Testbed B 191 s, Full Testbed B 443 s.

use digs_metrics::format::{bar_table, figure_header};
use digs_sim::link::LinkModel;
use digs_sim::rf::RfConfig;
use digs_sim::topology::Topology;
use digs_whart::{LinkDb, NetworkManager, UpdateCostConfig};

fn update_time(topology: &Topology, flows: usize) -> f64 {
    let model = LinkModel::new(topology, RfConfig::indoor(), 1);
    let db = LinkDb::from_link_model(&model);
    let mut manager =
        NetworkManager::new(db, topology.access_points(), UpdateCostConfig::default());
    // Sources: the farthest field devices (multi-hop flows, as in the
    // paper's workloads).
    let mut sources = topology.field_devices();
    sources.reverse();
    sources.truncate(flows);
    manager.full_update(&sources, 1000).expect("schedulable").total_secs()
}

fn main() {
    println!(
        "{}",
        figure_header("Fig. 3", "WirelessHART Network Manager route/schedule update time")
    );
    let rows = vec![
        ("Half Testbed A (20)".to_string(), update_time(&Topology::testbed_a_half(), 8)),
        ("Full Testbed A (50)".to_string(), update_time(&Topology::testbed_a(), 8)),
        ("Half Testbed B (19)".to_string(), update_time(&Topology::testbed_b_half(), 6)),
        ("Full Testbed B (44)".to_string(), update_time(&Topology::testbed_b(), 6)),
    ];
    println!("{}", bar_table("topology", "update (s)", &rows));
    digs_bench::print_comparisons(&[
        ("Half Testbed A update (s)", "203", rows[0].1),
        ("Full Testbed A update (s)", "506", rows[1].1),
        ("Half Testbed B update (s)", "191", rows[2].1),
        ("Full Testbed B update (s)", "443", rows[3].1),
    ]);
}
