//! Fig. 12 — simulation study with 150 nodes + 2 access points in a
//! 300 m × 300 m area (the paper's Cooja experiment): 20 flows @ 10 s,
//! five disturbers toggling every 5 minutes.
//!
//! Paper headline numbers: DiGS +16.3% mean PDR; 53% vs 11% of flow sets
//! ≥ 95% PDR; worst-case set PDR 86.7% vs 63.0%; median latency 1560 ms
//! vs 1950 ms; duty cycle per received packet +0.056% for DiGS.

use digs::config::Protocol;
use digs::experiment;
use digs::scenarios;
use digs_metrics::format::{cdf_table, figure_header};
use digs_metrics::Cdf;

fn main() {
    let sets = digs_bench::sets(5);
    let secs = digs_bench::secs(900);
    println!("{}", figure_header("Fig. 12", "150-node large-scale simulation: DiGS vs Orchestra"));
    let (digs_runs, orch_runs) = digs_bench::run_both(scenarios::large_scale, sets, secs);

    let digs_pdr = Cdf::new(experiment::flow_set_pdrs(&digs_runs)).expect("runs");
    let orch_pdr = Cdf::new(experiment::flow_set_pdrs(&orch_runs)).expect("runs");
    println!("\n(a) CDF of flow-set PDR");
    println!("{}", cdf_table(&[("digs", &digs_pdr), ("orchestra", &orch_pdr)], "pdr", 10));

    let digs_lat = Cdf::new(experiment::all_latencies_ms(&digs_runs)).expect("deliveries");
    let orch_lat = Cdf::new(experiment::all_latencies_ms(&orch_runs)).expect("deliveries");
    println!("\n(b) CDF of end-to-end latency (ms)");
    println!("{}", cdf_table(&[("digs", &digs_lat), ("orchestra", &orch_lat)], "ms", 10));

    let digs_dc = Cdf::new(experiment::duty_cycle_samples(&digs_runs)).expect("runs");
    let orch_dc = Cdf::new(experiment::duty_cycle_samples(&orch_runs)).expect("runs");
    println!("\n(c) CDF of radio duty cycle per received packet (%/pkt)");
    println!("{}", cdf_table(&[("digs", &digs_dc), ("orchestra", &orch_dc)], "%/pkt", 10));

    digs_bench::print_comparisons(&[
        ("DiGS mean PDR − Orchestra", "+0.163", digs_pdr.mean() - orch_pdr.mean()),
        ("DiGS flow sets ≥ 95% PDR", "0.53", digs_pdr.fraction_at_or_above(0.95)),
        ("Orchestra flow sets ≥ 95% PDR", "0.11", orch_pdr.fraction_at_or_above(0.95)),
        ("DiGS worst-case set PDR", "0.867", digs_pdr.min()),
        ("Orchestra worst-case set PDR", "0.630", orch_pdr.min()),
        ("DiGS median latency (ms)", "1560", digs_lat.median()),
        ("Orchestra median latency (ms)", "1950", orch_lat.median()),
        ("duty cycle/pkt DiGS − Orchestra (%)", "+0.056", digs_dc.mean() - orch_dc.mean()),
    ]);

    let ctx = digs_conformance::MetricContext::default();
    for (label, protocol, runs) in [
        ("fig12-digs", Protocol::Digs, &digs_runs),
        ("fig12-orchestra", Protocol::Orchestra, &orch_runs),
    ] {
        digs_bench::print_records(
            label,
            |seed| scenarios::large_scale(protocol, seed),
            runs,
            secs,
            ctx,
        );
    }
}
