//! Ablation — sweep of the application slotframe length.
//!
//! Validates the paper's Section VI-B analysis: a shorter application
//! slotframe lowers latency but raises the duty cycle; the analytical
//! skip probabilities (Eq. 6) are printed alongside for each length.

use digs::config::Protocol;
use digs::experiment;
use digs::scenarios;
use digs_metrics::format::figure_header;
use digs_metrics::Cdf;
use digs_scheduling::analysis::digs_skip_probabilities;
use digs_scheduling::SlotframeLengths;

fn main() {
    let sets = digs_bench::sets(4);
    let secs = digs_bench::secs(300);
    println!(
        "{}",
        figure_header("Ablation", "application slotframe length sweep (DiGS, Testbed A, clean)")
    );
    println!(
        "{:>8} | {:>10} | {:>12} | {:>12} | {:>12} | {:>10}",
        "L_app", "mean PDR", "median lat", "duty cycle", "p_skip(app)", "hyper-per."
    );

    for app_len in [53u32, 101, 151, 307] {
        let lengths = SlotframeLengths { app: app_len, ..SlotframeLengths::paper() };
        lengths.validate().expect("coprime");
        let runs = digs_bench::run_seeds(
            move |seed| {
                let mut config = scenarios::testbed_a_interference(Protocol::Digs, seed);
                config.jammers.clear();
                config.slotframes = lengths;
                config
            },
            sets,
            secs,
        );
        let pdr = Cdf::new(experiment::flow_set_pdrs(&runs)).expect("runs");
        let lat = Cdf::new(experiment::all_latencies_ms(&runs)).expect("deliveries");
        let duty: f64 =
            runs.iter().map(|r| r.mean_duty_cycle_percent()).sum::<f64>() / runs.len() as f64;
        let (_, _, p_skip_app) =
            digs_skip_probabilities((lengths.sync, lengths.routing, app_len), 2, 3);
        println!(
            "{:>8} | {:>10.3} | {:>10.0}ms | {:>11.3}% | {:>12.4} | {:>10}",
            app_len,
            pdr.mean(),
            lat.median(),
            duty,
            p_skip_app,
            lengths.hyper_period()
        );
    }
    println!();
    println!("expectation: latency grows ~linearly with L_app; duty cycle shrinks;");
    println!("Eq. 6 skip probabilities stay below a few percent throughout.");
}
