//! Soak — all three stacks through a long randomized chaos soak on
//! Testbed A: node churn, cold reboots, link flaps, clock desyncs, and
//! jammer bursts from a seeded [`digs_sim::fault::ChaosPlan`].
//!
//! While the chaos runs, the runtime invariant auditor
//! ([`digs::audit`]) samples the network every 10 s (routing DAG
//! loop-freedom, rank monotonicity, Eq. 4 cell ownership, child-table
//! consistency, queue bounds) and the convergence watchdog
//! ([`digs::watchdog`]) scores recovery from every injected fault. The
//! binary exits non-zero if the DiGS network violates any invariant —
//! this is the repo's robustness gate, not a paper figure.
//!
//! Knobs: `DIGS_SETS` selects the chaos seed, `DIGS_SECS` the total run
//! length (default 600 s: 120 s warm-up, 360 s of chaos, 120 s tail).

use digs::config::{NetworkConfig, Protocol};
use digs::network::Network;
use digs::watchdog::{self, WatchdogConfig};
use digs_metrics::format::figure_header;
use digs_sim::fault::{ChaosConfig, ChaosPlan};
use digs_sim::time::{Asn, SLOTS_PER_SECOND};
use digs_sim::topology::Topology;

/// Clean formation period before the first fault.
const WARMUP_SECS: u64 = 120;
/// Chaos-free tail so the last fault has room to recover.
const TAIL_SECS: u64 = 120;
/// Extra audited settle period appended to the DiGS run (after the
/// metrics are taken) before the final deep-quiet loop-freedom
/// assertion. Post-chaos re-convergence cascades: each join-in wave of
/// rank repair can close fresh transient cycles, and the churn has been
/// observed to outlast the last fault by ~140 s — a couple of Trickle
/// maximum intervals — before the graph goes quiet for good. The extra
/// settle gives the assertion a comfortable margin over that.
const FINAL_SETTLE_SECS: u64 = 180;
/// Auditor sampling period: every 10 s.
const AUDIT_EVERY_SLOTS: u64 = 10 * SLOTS_PER_SECOND;

fn main() {
    let seed = digs_bench::sets(3); // reuse the knob as a seed selector
    let secs = digs_bench::secs(600);
    assert!(
        secs > WARMUP_SECS + TAIL_SECS,
        "soak needs more than {} s to fit warm-up and tail",
        WARMUP_SECS + TAIL_SECS
    );
    let chaos_secs = secs - WARMUP_SECS - TAIL_SECS;

    println!("{}", figure_header("Soak", "randomized chaos: survival metrics + invariant audit"));

    let topology = Topology::testbed_a();
    let chaos_config = ChaosConfig::moderate(Asn::from_secs(WARMUP_SECS), chaos_secs);
    let plan = ChaosPlan::generate(&chaos_config, &topology, seed);
    println!(
        "chaos seed {seed}: {} events over {chaos_secs} s ({} outages/reboots, {} jammer bursts)\n",
        plan.events().len(),
        plan.faults().outages().len() + plan.faults().reboots().len(),
        plan.jammers().len(),
    );

    println!(
        "{:>14} | {:>7} | {:>9} | {:>11} | {:>9} | {:>10} | {:>10}",
        "protocol", "PDR", "min wPDR", "valley lost", "converged", "worst rec", "violations"
    );

    let mut digs_violations = Vec::new();
    let mut digs_window = Vec::new();
    for protocol in [Protocol::Digs, Protocol::Orchestra, Protocol::WirelessHart] {
        let mut flows = digs::scenarios::far_flow_set(&topology, 6, 500, seed);
        for f in &mut flows {
            f.phase += 60 * SLOTS_PER_SECOND; // let the network form first
        }
        let mut builder = NetworkConfig::builder(topology.clone())
            .protocol(protocol)
            .seed(seed)
            .flows(flows)
            .faults(plan.faults().clone());
        if protocol == Protocol::Digs {
            // Flight recorder for the robustness gate: if an invariant
            // breaks, the bounded per-node rings hold the event history
            // around the first violation for the post-mortem below.
            builder = builder.trace_cap(4096);
        }
        for jammer in plan.jammers() {
            builder = builder.jammer(jammer.clone());
        }
        let mut net = Network::new(builder.build());
        net.run_audited(secs * SLOTS_PER_SECOND, AUDIT_EVERY_SLOTS);
        let results = net.results();

        let specs = net.config().flows.clone();
        let events = watchdog::events_from_chaos(plan.events());
        let reports = watchdog::analyze(&results, &specs, &events, &WatchdogConfig::default());
        let summary = watchdog::summarize(&reports);

        println!(
            "{:>14} | {:>7.3} | {:>9.3} | {:>11} | {:>6}/{:<2} | {:>9} | {:>10}",
            protocol.name(),
            results.network_pdr(),
            summary.min_window_pdr,
            summary.total_packets_lost,
            summary.converged,
            summary.events,
            summary.worst_recovery_secs.map_or("-".to_string(), |s| format!("{s:.0}s")),
            results.invariant_violations.len(),
        );
        if protocol == Protocol::Digs {
            // Deep-quiet check: keep auditing through an extra settle
            // period, then demand a clean DAG — by now every belief-skew
            // cycle has had ample time to unwind, so a loop here is real.
            net.run_audited(FINAL_SETTLE_SECS * SLOTS_PER_SECOND, AUDIT_EVERY_SLOTS);
            digs_violations = net.violations().to_vec();
            digs_violations.extend(digs::audit::check_loop_freedom(&net.audit_snapshot()));
            digs_window = net.violation_window().to_vec();
            if digs_window.is_empty() && !digs_violations.is_empty() {
                // Violations found only by the final deep-quiet check (not
                // by run_audited): snapshot the trailing window ourselves.
                digs_window = digs_trace::window(
                    &net.trace().events(),
                    net.asn().0,
                    Network::VIOLATION_WINDOW_SLOTS,
                );
            }
        }
    }

    println!();
    if digs_violations.is_empty() {
        println!("OK: zero DiGS invariant violations across the soak");
    } else {
        println!("FAIL: {} DiGS invariant violation(s):", digs_violations.len());
        for v in &digs_violations {
            println!("  {v}");
        }
        println!();
        println!(
            "flight-recorder window around the first violation ({} events, last {} slots):",
            digs_window.len(),
            Network::VIOLATION_WINDOW_SLOTS
        );
        for e in &digs_window {
            println!("  {e}");
        }
        std::process::exit(1);
    }
    println!();
    println!("expected shape: DiGS keeps its structural invariants through every");
    println!("fault — parents stay strictly lower-rank, cells stay exclusively");
    println!("owned, and every transient routing cycle unwinds once the beliefs");
    println!("refresh. Its delivery dips harder than the baselines' while relays");
    println!("rejoin (a dead relay takes its dedicated cells with it), whereas");
    println!("Orchestra's shared slots degrade more gracefully and the static");
    println!("WirelessHART schedule only bleeds for faults on scheduled relays.");
}
