//! Shared harness for the per-figure benchmark binaries (`src/bin/`).
//!
//! Every binary regenerates one table or figure from the paper's
//! evaluation: it runs the corresponding scenario for a number of flow
//! sets, prints the same series the paper plots, and closes with a
//! paper-vs-measured comparison block for EXPERIMENTS.md.
//!
//! Scale knobs (the paper uses 300/220/300 flow sets; the defaults here
//! are sized for a laptop run):
//!
//! - `DIGS_SETS` — number of flow-set repetitions per protocol;
//! - `DIGS_SECS` — simulated seconds per run.

use digs::config::{NetworkConfig, Protocol};
use digs::results::RunResults;
use std::sync::mpsc;
use std::thread;

/// Number of flow sets to run, from `DIGS_SETS` (default `default`).
pub fn sets(default: u64) -> u64 {
    std::env::var("DIGS_SETS").ok().and_then(|s| s.parse().ok()).unwrap_or(default)
}

/// Simulated seconds per run, from `DIGS_SECS` (default `default`).
pub fn secs(default: u64) -> u64 {
    std::env::var("DIGS_SECS").ok().and_then(|s| s.parse().ok()).unwrap_or(default)
}

/// Runs `scenario(seed)` for seeds `1..=sets`, fanned out over the
/// available cores, each for `run_secs` simulated seconds.
pub fn run_seeds(
    scenario: impl Fn(u64) -> NetworkConfig + Send + Sync + Clone + 'static,
    sets: u64,
    run_secs: u64,
) -> Vec<RunResults> {
    let workers = thread::available_parallelism().map_or(1, |n| n.get()).min(sets.max(1) as usize);
    let (task_tx, task_rx) = mpsc::channel::<u64>();
    let task_rx = std::sync::Arc::new(std::sync::Mutex::new(task_rx));
    let (res_tx, res_rx) = mpsc::channel::<(u64, RunResults)>();
    for seed in 1..=sets {
        task_tx.send(seed).expect("queue open");
    }
    drop(task_tx);
    let mut handles = Vec::new();
    for _ in 0..workers {
        let task_rx = std::sync::Arc::clone(&task_rx);
        let res_tx = res_tx.clone();
        let scenario = scenario.clone();
        handles.push(thread::spawn(move || loop {
            let seed = {
                let guard = task_rx.lock().expect("not poisoned");
                match guard.recv() {
                    Ok(s) => s,
                    Err(_) => break,
                }
            };
            let results = digs::experiment::run_for(scenario(seed), run_secs);
            if res_tx.send((seed, results)).is_err() {
                break;
            }
        }));
    }
    drop(res_tx);
    let mut collected: Vec<(u64, RunResults)> = res_rx.into_iter().collect();
    for h in handles {
        let _ = h.join();
    }
    collected.sort_by_key(|(seed, _)| *seed);
    collected.into_iter().map(|(_, r)| r).collect()
}

/// Runs a scenario for both protocols; returns `(digs, orchestra)`.
pub fn run_both(
    scenario: impl Fn(Protocol, u64) -> NetworkConfig + Send + Sync + Clone + 'static,
    sets: u64,
    run_secs: u64,
) -> (Vec<RunResults>, Vec<RunResults>) {
    let s1 = scenario.clone();
    let digs = run_seeds(move |seed| s1(Protocol::Digs, seed), sets, run_secs);
    let orchestra = run_seeds(move |seed| scenario(Protocol::Orchestra, seed), sets, run_secs);
    (digs, orchestra)
}

/// Prints the standard paper-vs-measured closing block.
pub fn print_comparisons(rows: &[(&str, &str, f64)]) {
    println!();
    println!("paper vs measured");
    println!("{}", "-".repeat(72));
    for (metric, paper, measured) in rows {
        println!("{}", digs_metrics::format::compare_row(metric, paper, *measured));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use digs_sim::topology::Topology;

    #[test]
    fn env_knobs_default() {
        assert_eq!(sets(7), 7);
        assert_eq!(secs(60), 60);
    }

    #[test]
    fn run_seeds_returns_one_result_per_seed() {
        let scenario = |seed: u64| {
            NetworkConfig::builder(Topology::testbed_a_half())
                .protocol(Protocol::Digs)
                .seed(seed)
                .random_flows(1, 300, seed)
                .build()
        };
        let results = run_seeds(scenario, 2, 30);
        assert_eq!(results.len(), 2);
    }
}
