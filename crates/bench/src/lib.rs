//! Shared harness for the per-figure benchmark binaries (`src/bin/`).
//!
//! Every binary regenerates one table or figure from the paper's
//! evaluation: it runs the corresponding scenario for a number of flow
//! sets, prints the same series the paper plots, and closes with a
//! paper-vs-measured comparison block for EXPERIMENTS.md.
//!
//! Scale knobs (the paper uses 300/220/300 flow sets; the defaults here
//! are sized for a laptop run):
//!
//! - `DIGS_SETS` — number of flow-set repetitions per protocol;
//! - `DIGS_SECS` — simulated seconds per run.

use digs::config::{NetworkConfig, Protocol};
use digs::results::RunResults;
use digs_conformance::pool;

/// Number of flow sets to run, from `DIGS_SETS` (default `default`).
pub fn sets(default: u64) -> u64 {
    std::env::var("DIGS_SETS").ok().and_then(|s| s.parse().ok()).unwrap_or(default)
}

/// Simulated seconds per run, from `DIGS_SECS` (default `default`).
pub fn secs(default: u64) -> u64 {
    std::env::var("DIGS_SECS").ok().and_then(|s| s.parse().ok()).unwrap_or(default)
}

/// Runs `scenario(seed)` for seeds `1..=sets`, fanned out over the
/// available cores (the conformance harness's worker pool), each for
/// `run_secs` simulated seconds. Results come back in seed order.
pub fn run_seeds(
    scenario: impl Fn(u64) -> NetworkConfig + Send + Sync,
    sets: u64,
    run_secs: u64,
) -> Vec<RunResults> {
    let seeds: Vec<u64> = (1..=sets).collect();
    let jobs = pool::default_jobs(seeds.len());
    pool::par_map(seeds, jobs, |seed| digs::experiment::run_for(scenario(seed), run_secs))
}

/// Runs a scenario for both protocols; returns `(digs, orchestra)`.
pub fn run_both(
    scenario: impl Fn(Protocol, u64) -> NetworkConfig + Send + Sync,
    sets: u64,
    run_secs: u64,
) -> (Vec<RunResults>, Vec<RunResults>) {
    let digs = run_seeds(|seed| scenario(Protocol::Digs, seed), sets, run_secs);
    let orchestra = run_seeds(|seed| scenario(Protocol::Orchestra, seed), sets, run_secs);
    (digs, orchestra)
}

/// Prints the canonical `digs-conformance` JSONL record of every run
/// (seeds `1..=runs.len()`), regenerating each seed's config for its
/// flow specs. The figure binaries emit these after their tables so any
/// run's metrics can be diffed or fed to the gate's tooling.
pub fn print_records(
    scenario_label: &str,
    scenario: impl Fn(u64) -> NetworkConfig,
    runs: &[RunResults],
    run_secs: u64,
    ctx: digs_conformance::MetricContext,
) {
    println!("\ncanonical records ({scenario_label}, digs-conformance JSONL)");
    for (i, results) in runs.iter().enumerate() {
        let seed = i as u64 + 1;
        let config = scenario(seed);
        let record = digs_conformance::RunMetrics::from_results(
            scenario_label,
            config.protocol.name(),
            seed,
            run_secs,
            results,
            &config.flows,
            ctx,
        );
        println!("{}", record.to_line());
    }
}

/// Prints the standard paper-vs-measured closing block.
pub fn print_comparisons(rows: &[(&str, &str, f64)]) {
    println!();
    println!("paper vs measured");
    println!("{}", "-".repeat(72));
    for (metric, paper, measured) in rows {
        println!("{}", digs_metrics::format::compare_row(metric, paper, *measured));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use digs_sim::topology::Topology;

    #[test]
    fn env_knobs_default() {
        assert_eq!(sets(7), 7);
        assert_eq!(secs(60), 60);
    }

    #[test]
    fn run_seeds_returns_one_result_per_seed() {
        let scenario = |seed: u64| {
            NetworkConfig::builder(Topology::testbed_a_half())
                .protocol(Protocol::Digs)
                .seed(seed)
                .random_flows(1, 300, seed)
                .build()
        };
        let results = run_seeds(scenario, 2, 30);
        assert_eq!(results.len(), 2);
    }
}
