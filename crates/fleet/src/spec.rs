//! Fleet specifications: what to simulate, declaratively.

use digs::config::{NetworkConfig, Protocol};
use digs::scenarios;

/// A scenario template independent networks are stamped out from. Each
/// template is a promoted [`digs::scenarios`] deployment; the per-network
/// seed selects the flow set and the master RNG seed, so two networks of
/// the same template never share a channel realisation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Template {
    /// 47-node pipeline deployment ([`scenarios::oil_field`]).
    OilField,
    /// 82-node machine-hall deployment ([`scenarios::factory_floor`]).
    FactoryFloor,
}

impl Template {
    /// Short name used in labels, reports, and the CLI.
    pub fn name(self) -> &'static str {
        match self {
            Template::OilField => "oil-field",
            Template::FactoryFloor => "factory-floor",
        }
    }

    /// Nodes per network (access points + field devices).
    pub fn nodes(self) -> usize {
        match self {
            Template::OilField => 47,
            Template::FactoryFloor => 82,
        }
    }

    /// Instantiates the template for one network.
    pub fn config(self, seed: u64) -> NetworkConfig {
        match self {
            Template::OilField => scenarios::oil_field(Protocol::Digs, seed),
            Template::FactoryFloor => scenarios::factory_floor(Protocol::Digs, seed),
        }
    }
}

impl std::str::FromStr for Template {
    type Err = String;

    fn from_str(s: &str) -> Result<Template, String> {
        match s {
            "oil" | "oil-field" => Ok(Template::OilField),
            "factory" | "factory-floor" => Ok(Template::FactoryFloor),
            other => Err(format!("unknown template `{other}` (expected oil | factory)")),
        }
    }
}

/// A group of independent networks sharing one template.
#[derive(Debug, Clone)]
pub struct FleetGroup {
    /// The deployment template.
    pub template: Template,
    /// How many networks to stamp out.
    pub networks: u32,
    /// Seed of the group's first network; network `k` runs at
    /// `seed_base + k`.
    pub seed_base: u64,
}

impl FleetGroup {
    /// The label of network `k` — stable across runs, used for panic
    /// attribution and the worst-k table.
    pub fn label(&self, k: u32) -> String {
        format!("{}-{:04}/seed{}", self.template.name(), k, self.seed_base + u64::from(k))
    }
}

/// One spatially sharded large network: a row of `side` × `side` m
/// square strips, one shard per strip, that run their slot loops
/// independently and exchange boundary-interference state at
/// slotframe-window edges (see [`crate::shard`]).
#[derive(Debug, Clone)]
pub struct ShardedSpec {
    /// Network name (labels, reports).
    pub name: String,
    /// Total field devices across all shards.
    pub devices: usize,
    /// Maximum field devices per shard (each shard also gets two access
    /// points on its strip centerline).
    pub shard_devices: usize,
    /// Side of one square shard strip, meters — it bounds how far a
    /// device can sit from its strip-center access point, and therefore
    /// the hop depth the shard's slotframe latency must cover.
    pub side: f64,
    /// Master seed (drives placement, flows, and every shard's stacks).
    pub seed: u64,
    /// Monitor flows sourced per shard.
    pub flows_per_shard: usize,
}

impl ShardedSpec {
    /// A campus-scale default: `devices` devices in 100-device shards
    /// over 120 m × 120 m strips, 8 monitor flows each.
    pub fn sized(name: impl Into<String>, devices: usize, seed: u64) -> ShardedSpec {
        // The strip side is set by the latency budget, not the device
        // count: a 100-device shard needs a 307-slot Eq. 4 frame
        // (~3.1 s), routing hops cover 35–50 m under the open-area
        // model, and the route from a strip corner (~141 m out) must
        // land within the 30 s monitor period with margin. Growing
        // `devices` therefore adds strips instead of stretching them.
        ShardedSpec {
            name: name.into(),
            devices,
            shard_devices: 100,
            side: 120.0,
            seed,
            flows_per_shard: 8,
        }
    }

    /// Number of shards this spec partitions into.
    pub fn num_shards(&self) -> usize {
        self.devices.div_ceil(self.shard_devices.max(1)).max(1)
    }

    /// Total nodes including the two access points per shard.
    pub fn total_nodes(&self) -> usize {
        self.devices + 2 * self.num_shards()
    }
}

/// The complete fleet: independent network groups plus sharded large
/// networks, all run for the same simulated duration.
#[derive(Debug, Clone)]
pub struct FleetSpec {
    /// Groups of independent template networks.
    pub groups: Vec<FleetGroup>,
    /// Sharded single large networks.
    pub sharded: Vec<ShardedSpec>,
    /// Simulated seconds per network.
    pub secs: u64,
    /// Invariant-audit cadence in slots (see
    /// [`digs::network::Network::run_audited`]).
    pub audit_every: u64,
    /// Telemetry sampling cadence in slots (drives the per-network
    /// latency histograms and health alerts the fleet report aggregates).
    pub telemetry_epoch: u64,
}

impl FleetSpec {
    /// An empty fleet with the default cadences: 600 simulated seconds,
    /// audits every 20 s, telemetry epochs every 10 s. The duration is
    /// sized so lifetime PDR clears the SLO floors: link quality is only
    /// discovered by data traffic, and the first ~3 minutes of a run
    /// legitimately lose packets while ETX estimates correct themselves.
    pub fn new() -> FleetSpec {
        FleetSpec {
            groups: Vec::new(),
            sharded: Vec::new(),
            secs: 600,
            audit_every: 2_000,
            telemetry_epoch: 1_000,
        }
    }

    /// Adds a group of independent template networks.
    pub fn group(mut self, template: Template, networks: u32, seed_base: u64) -> FleetSpec {
        self.groups.push(FleetGroup { template, networks, seed_base });
        self
    }

    /// Adds a sharded large network.
    pub fn sharded(mut self, spec: ShardedSpec) -> FleetSpec {
        self.sharded.push(spec);
        self
    }

    /// Sets the simulated duration.
    pub fn secs(mut self, secs: u64) -> FleetSpec {
        self.secs = secs;
        self
    }

    /// Total networks (each shard counts toward its one network).
    pub fn networks(&self) -> usize {
        self.groups.iter().map(|g| g.networks as usize).sum::<usize>() + self.sharded.len()
    }

    /// Total simulated nodes across the fleet.
    pub fn total_nodes(&self) -> u64 {
        let independent: u64 =
            self.groups.iter().map(|g| u64::from(g.networks) * g.template.nodes() as u64).sum();
        let sharded: u64 = self.sharded.iter().map(|s| s.total_nodes() as u64).sum();
        independent + sharded
    }
}

impl Default for FleetSpec {
    fn default() -> FleetSpec {
        FleetSpec::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn template_parse_and_shape() {
        assert_eq!("oil".parse::<Template>().unwrap(), Template::OilField);
        assert_eq!("factory-floor".parse::<Template>().unwrap(), Template::FactoryFloor);
        assert!("refinery".parse::<Template>().is_err());
        // The advertised node counts must match the actual topologies.
        for t in [Template::OilField, Template::FactoryFloor] {
            assert_eq!(t.config(1).topology.len(), t.nodes(), "{}", t.name());
        }
    }

    #[test]
    fn group_labels_are_stable_and_distinct() {
        let g = FleetGroup { template: Template::OilField, networks: 3, seed_base: 10 };
        assert_eq!(g.label(0), "oil-field-0000/seed10");
        assert_eq!(g.label(2), "oil-field-0002/seed12");
    }

    #[test]
    fn fleet_arithmetic() {
        let spec = FleetSpec::new()
            .group(Template::OilField, 10, 1)
            .group(Template::FactoryFloor, 4, 1)
            .sharded(ShardedSpec::sized("big", 1000, 7));
        assert_eq!(spec.networks(), 15);
        // 10*47 + 4*82 + (1000 devices + 2 APs x 10 shards)
        assert_eq!(spec.total_nodes(), 470 + 328 + 1020);
    }

    #[test]
    fn sharded_partition_counts() {
        let s = ShardedSpec::sized("x", 1000, 1);
        assert_eq!(s.num_shards(), 10);
        assert_eq!(s.total_nodes(), 1020);
        let odd = ShardedSpec { devices: 501, ..s };
        assert_eq!(odd.num_shards(), 6);
    }
}
