//! # digs-fleet — plant-campus fleet simulation
//!
//! The paper simulates one network at a time; an operator runs a *fleet*:
//! dozens of plants, each with many independent DiGS networks, plus the
//! occasional site too large for a single 16-channel TSCH domain. This
//! crate simulates a whole campus in one invocation:
//!
//! - [`spec`] describes the fleet: groups of independent networks stamped
//!   out from scenario templates ([`spec::Template`]) with per-network
//!   seeds, plus spatially sharded single large networks
//!   ([`spec::ShardedSpec`]);
//! - [`runner`] fans the independent networks over the shared
//!   [`digs_pool`] executor (one simulation per worker, labeled panics,
//!   results in input order) and reduces each run to a
//!   [`runner::NetworkSummary`];
//! - [`shard`] runs one large network as strip-partitioned shards that
//!   each own their slot loop and exchange *boundary interference* state
//!   at slotframe-window edges: each shard's observed per-channel
//!   occupancy becomes an ambient-load jammer
//!   ([`digs_sim::interference::JammerKind::Ambient`]) installed in its
//!   neighbors, hash-gated so the exchange is deterministic and never
//!   perturbs any shard's random stream;
//! - [`aggregate`] merges the per-network summaries (latency histograms
//!   via [`digs_metrics::histogram::LogHistogram::merge`]) into a fleet
//!   SLO report — fleet-wide p50/p99 end-to-end latency, pooled PDR,
//!   health-alert and audit-violation network rates, worst-k networks —
//!   rendered as canonical JSON (byte-identical for identical spec +
//!   seed; wall-clock timings are deliberately excluded).
//!
//! Surfaced as `digs-cli fleet run|report` and the `fleet_bench` binary.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aggregate;
pub mod runner;
pub mod shard;
pub mod spec;

pub use aggregate::{aggregate, degrade_matching, FleetReport, SloPolicy};
pub use runner::{run_fleet, FleetOutcome, NetworkSummary};
pub use shard::ShardedOutcome;
pub use spec::{FleetGroup, FleetSpec, ShardedSpec, Template};
