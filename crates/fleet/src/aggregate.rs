//! Fleet-level aggregation: merge per-network summaries into one SLO
//! report, check it against a policy, and render it as canonical JSON
//! (byte-identical for identical spec + seed — wall-clock timings are
//! deliberately excluded) or a human-readable table.

use crate::runner::NetworkSummary;
use digs_json::Value;
use digs_metrics::histogram::LogHistogram;

/// How many worst networks the report names.
pub const WORST_K: usize = 5;

/// Wire names of the health rules, in [`crate::runner::NetworkSummary::alert_kinds`] order.
pub const ALERT_RULES: [&str; 4] =
    ["pdr-collapse", "churn-storm", "queue-saturation", "convergence-stall"];

/// Fleet service-level objectives. A breach makes `digs-cli fleet run`
/// exit non-zero (the CI gate).
#[derive(Debug, Clone, PartialEq)]
pub struct SloPolicy {
    /// Minimum pooled fleet PDR (delivered / generated across every
    /// network).
    pub fleet_pdr_floor: f64,
    /// Minimum per-network PDR — the single worst network may not fall
    /// below this.
    pub worst_network_pdr_floor: f64,
    /// Maximum fraction of networks with at least one health alert.
    pub max_alert_rate: f64,
    /// Maximum fraction of networks with at least one audit violation.
    pub max_violation_rate: f64,
}

impl SloPolicy {
    /// Defaults calibrated to clean (un-jammed, un-faulted) scenarios:
    /// pooled PDR ≥ 0.90, no network below 0.50, at most 5% of networks
    /// alerting, zero invariant violations anywhere. The alert ceiling
    /// sits above the measured clean realization tail (~3% of 1600
    /// template networks raise at least one discovery-phase alert over
    /// 600 s) and far below any fault signature (a jammed fleet alerts
    /// at tens of percent); violations stay zero-tolerance because a
    /// frozen invariant breach is an incident, not noise.
    pub fn new() -> SloPolicy {
        SloPolicy {
            fleet_pdr_floor: 0.90,
            worst_network_pdr_floor: 0.50,
            max_alert_rate: 0.05,
            max_violation_rate: 0.0,
        }
    }
}

impl Default for SloPolicy {
    fn default() -> SloPolicy {
        SloPolicy::new()
    }
}

/// The aggregated fleet SLO report.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetReport {
    /// Networks aggregated (shards count individually).
    pub networks: u64,
    /// Total nodes simulated.
    pub nodes: u64,
    /// Simulated seconds per network.
    pub secs: u64,
    /// Packets generated fleet-wide.
    pub generated: u64,
    /// Packets delivered fleet-wide.
    pub delivered: u64,
    /// Pooled fleet PDR (delivered / generated).
    pub fleet_pdr: f64,
    /// Mean of per-network PDRs.
    pub mean_network_pdr: f64,
    /// Mean fraction of nodes joined.
    pub mean_fraction_joined: f64,
    /// Merged end-to-end latency histogram, ms.
    pub latency: LogHistogram,
    /// Networks with at least one health alert.
    pub alert_networks: u64,
    /// Total health alerts.
    pub total_alerts: u64,
    /// Fleet-wide alerts by rule, in [`ALERT_RULES`] order.
    pub alert_kind_totals: [u64; 4],
    /// Networks with at least one audit violation.
    pub violation_networks: u64,
    /// Total audit violations.
    pub total_violations: u64,
    /// The worst [`WORST_K`] networks by PDR (label, pdr), ascending.
    pub worst: Vec<(String, f64)>,
    /// The [`WORST_K`] networks with the most health alerts
    /// (label, alerts), descending — empty when nothing alerted.
    pub alerting: Vec<(String, u64)>,
    /// The [`WORST_K`] networks with the most audit violations
    /// (label, violations), descending — empty when nothing violated.
    pub violating: Vec<(String, u64)>,
}

/// Merges per-network summaries into the fleet report. The latency
/// histograms merge per-bucket ([`LogHistogram::merge`]), so the fleet
/// quantiles agree with a single histogram fed every network's samples.
pub fn aggregate(summaries: &[NetworkSummary], secs: u64) -> FleetReport {
    let mut latency = LogHistogram::new();
    let mut generated = 0u64;
    let mut delivered = 0u64;
    let mut alerts = (0u64, 0u64);
    let mut alert_kind_totals = [0u64; 4];
    let mut violations = (0u64, 0u64);
    let mut pdr_sum = 0.0;
    let mut joined_sum = 0.0;
    let mut nodes = 0u64;
    for s in summaries {
        latency.merge(&s.latency);
        generated += s.generated;
        delivered += s.delivered;
        alerts = (alerts.0 + u64::from(s.alerts > 0), alerts.1 + s.alerts);
        for (total, kind) in alert_kind_totals.iter_mut().zip(&s.alert_kinds) {
            *total += kind;
        }
        violations = (violations.0 + u64::from(s.violations > 0), violations.1 + s.violations);
        pdr_sum += s.pdr;
        joined_sum += s.fraction_joined;
        nodes += u64::from(s.nodes);
    }
    let n = summaries.len().max(1) as f64;
    let mut by_pdr: Vec<(String, f64)> =
        summaries.iter().map(|s| (s.label.clone(), s.pdr)).collect();
    // Ascending by PDR; label breaks ties so the report is deterministic.
    by_pdr.sort_by(|a, b| a.1.total_cmp(&b.1).then_with(|| a.0.cmp(&b.0)));
    by_pdr.truncate(WORST_K);
    // Descending by count, label breaking ties — deterministic like the
    // worst-PDR table.
    let top_by = |count: fn(&NetworkSummary) -> u64| {
        let mut v: Vec<(String, u64)> = summaries
            .iter()
            .filter(|s| count(s) > 0)
            .map(|s| (s.label.clone(), count(s)))
            .collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        v.truncate(WORST_K);
        v
    };
    FleetReport {
        networks: summaries.len() as u64,
        nodes,
        secs,
        generated,
        delivered,
        fleet_pdr: if generated == 0 { 1.0 } else { delivered as f64 / generated as f64 },
        mean_network_pdr: pdr_sum / n,
        mean_fraction_joined: joined_sum / n,
        latency,
        alert_networks: alerts.0,
        total_alerts: alerts.1,
        alert_kind_totals,
        violation_networks: violations.0,
        total_violations: violations.1,
        worst: by_pdr,
        alerting: top_by(|s| s.alerts),
        violating: top_by(|s| s.violations),
    }
}

/// Test hook mirroring the conformance gate's `--inject-loss`: halve the
/// delivery metrics of summaries whose label contains `pattern`, to
/// demonstrate that a deliberate degradation trips the fleet SLO gate.
pub fn degrade_matching(summaries: &mut [NetworkSummary], pattern: &str) -> usize {
    let mut hit = 0;
    for s in summaries.iter_mut().filter(|s| s.label.contains(pattern)) {
        s.pdr *= 0.5;
        s.worst_flow_pdr *= 0.5;
        s.delivered /= 2;
        hit += 1;
    }
    hit
}

impl FleetReport {
    /// Fraction of networks with at least one health alert.
    pub fn alert_rate(&self) -> f64 {
        self.alert_networks as f64 / self.networks.max(1) as f64
    }

    /// Fraction of networks with at least one audit violation.
    pub fn violation_rate(&self) -> f64 {
        self.violation_networks as f64 / self.networks.max(1) as f64
    }

    /// Every SLO the report breaches under `policy` (empty = pass).
    pub fn breaches(&self, policy: &SloPolicy) -> Vec<String> {
        let mut out = Vec::new();
        if self.fleet_pdr < policy.fleet_pdr_floor {
            out.push(format!(
                "fleet PDR {:.4} below floor {:.4}",
                self.fleet_pdr, policy.fleet_pdr_floor
            ));
        }
        if let Some((label, pdr)) = self.worst.first() {
            if *pdr < policy.worst_network_pdr_floor {
                out.push(format!(
                    "worst network `{label}` PDR {:.4} below floor {:.4}",
                    pdr, policy.worst_network_pdr_floor
                ));
            }
        }
        if self.alert_rate() > policy.max_alert_rate {
            out.push(format!(
                "{} of {} networks alerting ({:.4} > {:.4})",
                self.alert_networks,
                self.networks,
                self.alert_rate(),
                policy.max_alert_rate
            ));
        }
        if self.violation_rate() > policy.max_violation_rate {
            out.push(format!(
                "{} of {} networks with audit violations ({:.4} > {:.4})",
                self.violation_networks,
                self.networks,
                self.violation_rate(),
                policy.max_violation_rate
            ));
        }
        out
    }

    /// The canonical JSON form — deterministic field order, no wall-clock
    /// timings, so two runs of the same spec + seed serialize to the same
    /// bytes.
    pub fn to_json(&self, policy: &SloPolicy) -> Value {
        let breaches = self.breaches(policy);
        let q = |p: f64| Value::opt(self.latency.quantile(p));
        Value::Obj(vec![
            ("networks".into(), Value::num(self.networks as f64)),
            ("nodes".into(), Value::num(self.nodes as f64)),
            ("secs".into(), Value::num(self.secs as f64)),
            ("generated".into(), Value::num(self.generated as f64)),
            ("delivered".into(), Value::num(self.delivered as f64)),
            ("fleet_pdr".into(), Value::num(self.fleet_pdr)),
            ("mean_network_pdr".into(), Value::num(self.mean_network_pdr)),
            ("mean_fraction_joined".into(), Value::num(self.mean_fraction_joined)),
            ("latency_samples".into(), Value::num(self.latency.count() as f64)),
            ("latency_p50_ms".into(), q(50.0)),
            ("latency_p99_ms".into(), q(99.0)),
            ("alert_networks".into(), Value::num(self.alert_networks as f64)),
            ("total_alerts".into(), Value::num(self.total_alerts as f64)),
            (
                "alerts_by_rule".into(),
                Value::Obj(
                    ALERT_RULES
                        .iter()
                        .zip(&self.alert_kind_totals)
                        .map(|(rule, &n)| (rule.to_string(), Value::num(n as f64)))
                        .collect(),
                ),
            ),
            ("violation_networks".into(), Value::num(self.violation_networks as f64)),
            ("total_violations".into(), Value::num(self.total_violations as f64)),
            (
                "worst_networks".into(),
                Value::Arr(
                    self.worst
                        .iter()
                        .map(|(label, pdr)| {
                            Value::Obj(vec![
                                ("label".into(), Value::Str(label.clone())),
                                ("pdr".into(), Value::num(*pdr)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "alerting_networks".into(),
                Value::Arr(
                    self.alerting
                        .iter()
                        .map(|(label, n)| {
                            Value::Obj(vec![
                                ("label".into(), Value::Str(label.clone())),
                                ("alerts".into(), Value::num(*n as f64)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "violating_networks".into(),
                Value::Arr(
                    self.violating
                        .iter()
                        .map(|(label, n)| {
                            Value::Obj(vec![
                                ("label".into(), Value::Str(label.clone())),
                                ("violations".into(), Value::num(*n as f64)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "slo".into(),
                Value::Obj(vec![
                    ("passed".into(), Value::Bool(breaches.is_empty())),
                    ("breaches".into(), Value::Arr(breaches.into_iter().map(Value::Str).collect())),
                ]),
            ),
        ])
    }

    /// Human-readable report.
    pub fn render(&self, policy: &SloPolicy) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let fmt_q =
            |p: f64| self.latency.quantile(p).map_or("-".to_string(), |v| format!("{v:.0} ms"));
        let _ = writeln!(out, "fleet SLO report");
        let _ = writeln!(
            out,
            "  networks        : {} ({} nodes, {} s simulated each)",
            self.networks, self.nodes, self.secs
        );
        let _ = writeln!(
            out,
            "  fleet PDR       : {:.4} ({} / {} packets; mean network {:.4})",
            self.fleet_pdr, self.delivered, self.generated, self.mean_network_pdr
        );
        let _ = writeln!(
            out,
            "  e2e latency     : p50 {} / p99 {} ({} samples)",
            fmt_q(50.0),
            fmt_q(99.0),
            self.latency.count()
        );
        let _ = writeln!(out, "  joined          : {:.3} mean fraction", self.mean_fraction_joined);
        let _ = writeln!(
            out,
            "  health alerts   : {} network(s), {} alert(s) (rate {:.4})",
            self.alert_networks,
            self.total_alerts,
            self.alert_rate()
        );
        if self.total_alerts > 0 {
            let kinds: Vec<String> = ALERT_RULES
                .iter()
                .zip(&self.alert_kind_totals)
                .filter(|(_, &n)| n > 0)
                .map(|(rule, n)| format!("{rule} {n}"))
                .collect();
            let _ = writeln!(out, "    by rule: {}", kinds.join(", "));
        }
        let _ = writeln!(
            out,
            "  audit violations: {} network(s), {} violation(s) (rate {:.4})",
            self.violation_networks,
            self.total_violations,
            self.violation_rate()
        );
        let _ = writeln!(out, "  worst networks  :");
        for (label, pdr) in &self.worst {
            let _ = writeln!(out, "    {pdr:.4}  {label}");
        }
        if !self.alerting.is_empty() {
            let _ = writeln!(out, "  most alerting   :");
            for (label, n) in &self.alerting {
                let _ = writeln!(out, "    {n:>6}  {label}");
            }
        }
        if !self.violating.is_empty() {
            let _ = writeln!(out, "  violating       :");
            for (label, n) in &self.violating {
                let _ = writeln!(out, "    {n:>6}  {label}");
            }
        }
        let breaches = self.breaches(policy);
        if breaches.is_empty() {
            let _ = writeln!(out, "  SLO             : PASSED");
        } else {
            let _ = writeln!(out, "  SLO             : FAILED");
            for b in &breaches {
                let _ = writeln!(out, "    breach: {b}");
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn summary(label: &str, pdr: f64, alerts: u64, violations: u64) -> NetworkSummary {
        let mut latency = LogHistogram::new();
        for v in [100, 200, 400] {
            latency.record(v);
        }
        NetworkSummary {
            label: label.into(),
            nodes: 47,
            flows: 6,
            generated: 100,
            delivered: (100.0 * pdr) as u64,
            pdr,
            worst_flow_pdr: pdr * 0.9,
            fraction_joined: 1.0,
            alerts,
            alert_kinds: [0, alerts, 0, 0],
            violations,
            latency,
        }
    }

    #[test]
    fn aggregation_pools_and_ranks() {
        let summaries =
            vec![summary("a", 0.99, 0, 0), summary("b", 0.80, 1, 0), summary("c", 0.95, 0, 2)];
        let report = aggregate(&summaries, 120);
        assert_eq!(report.networks, 3);
        assert_eq!(report.nodes, 141);
        assert_eq!(report.generated, 300);
        assert_eq!(report.delivered, 99 + 80 + 95);
        assert_eq!(report.alert_networks, 1);
        assert_eq!(report.alert_kind_totals, [0, 1, 0, 0]);
        assert_eq!(report.violation_networks, 1);
        assert_eq!(report.total_violations, 2);
        assert_eq!(report.alerting, vec![("b".to_string(), 1)]);
        assert_eq!(report.violating, vec![("c".to_string(), 2)]);
        assert_eq!(report.latency.count(), 9, "histograms merge");
        assert_eq!(report.worst[0], ("b".to_string(), 0.80));
        assert!((report.mean_network_pdr - (0.99 + 0.80 + 0.95) / 3.0).abs() < 1e-12);
    }

    #[test]
    fn worst_list_is_deterministic_under_ties() {
        let summaries = vec![summary("z", 0.9, 0, 0), summary("a", 0.9, 0, 0)];
        let report = aggregate(&summaries, 60);
        assert_eq!(report.worst[0].0, "a", "label breaks PDR ties");
    }

    #[test]
    fn slo_breaches_trip_on_each_axis() {
        let clean = aggregate(&[summary("a", 0.99, 0, 0)], 60);
        assert!(clean.breaches(&SloPolicy::new()).is_empty());

        let lossy = aggregate(&[summary("a", 0.40, 0, 0)], 60);
        let breaches = lossy.breaches(&SloPolicy::new());
        assert!(breaches.iter().any(|b| b.contains("fleet PDR")), "{breaches:?}");
        assert!(breaches.iter().any(|b| b.contains("worst network")), "{breaches:?}");

        let alerting = aggregate(&[summary("a", 0.99, 3, 0)], 60);
        assert!(alerting.breaches(&SloPolicy::new()).iter().any(|b| b.contains("alerting")));

        let violating = aggregate(&[summary("a", 0.99, 0, 1)], 60);
        assert!(violating
            .breaches(&SloPolicy::new())
            .iter()
            .any(|b| b.contains("audit violations")));
    }

    #[test]
    fn degrade_halves_matching_labels_and_trips_the_gate() {
        let mut summaries = vec![summary("oil-field-0000/seed1", 0.99, 0, 0)];
        assert_eq!(degrade_matching(&mut summaries, "factory"), 0);
        assert_eq!(degrade_matching(&mut summaries, "oil-field"), 1);
        assert!((summaries[0].pdr - 0.495).abs() < 1e-12);
        let report = aggregate(&summaries, 60);
        assert!(!report.breaches(&SloPolicy::new()).is_empty());
    }

    #[test]
    fn json_is_deterministic_and_excludes_wall_clock() {
        let summaries = vec![summary("a", 0.99, 0, 0), summary("b", 0.95, 0, 0)];
        let report = aggregate(&summaries, 120);
        let a = report.to_json(&SloPolicy::new()).to_compact();
        let b = aggregate(&summaries, 120).to_json(&SloPolicy::new()).to_compact();
        assert_eq!(a, b);
        assert!(a.contains("\"fleet_pdr\""));
        assert!(a.contains("\"slo\""));
        assert!(!a.contains("wall"), "timings must not leak into the canonical report");
    }
}
