//! Spatially sharded single large networks.
//!
//! A 1k–10k-node site exceeds what one 16-channel TSCH domain (and one
//! simulation loop) can carry, so the deployment area is partitioned into
//! vertical strips — one shard per strip, each with its own access point
//! at the strip center and an independent DiGS network over its devices.
//! Shards run their slot loops independently (fanned over the worker
//! pool) and meet only at *slotframe-window edges*, where each shard
//! publishes its observed per-channel occupancy ([`BoundaryLoad`]) and
//! installs its neighbors' loads as ambient-interference sources
//! ([`digs_sim::interference::JammerKind::Ambient`]) for the next window.
//!
//! Determinism: the exchanged state is a pure function of each shard's
//! deterministic run (committed-transmission counters), and ambient
//! emission is hash-gated on `(salt, asn, channel)` rather than drawn
//! from any engine's RNG — so the whole sharded run is reproducible
//! bit-for-bit regardless of worker count or scheduling order.

use crate::runner::{fleet_tuned, summarize, NetworkSummary};
use crate::spec::ShardedSpec;
use digs::config::{NetworkConfig, Protocol};
use digs::network::Network;
use digs::scenarios;
use digs_pool as pool;
use digs_sim::interference::Jammer;
use digs_sim::position::Position;
use digs_sim::rf::RfConfig;
use digs_sim::rng;
use digs_sim::time::SLOTS_PER_SECOND;
use digs_sim::topology::{Role, Topology};
use std::time::Duration;

/// Application-slotframe ladder for shard sizing: Eq. 4 needs
/// `A × devices` distinct cells, so pick the first prime comfortably
/// above `3 × devices` (all coprime with the paper's 557/47 frames).
fn app_slotframe(devices: usize) -> u32 {
    const LADDER: [u32; 7] = [149, 307, 457, 761, 1531, 2039, 3067];
    let need = 3 * (devices + 1);
    for p in LADDER {
        if p as usize > need {
            return p;
        }
    }
    panic!("shard of {devices} devices exceeds the slotframe ladder (max ~1020 devices)");
}

/// Per-shard device counts: as even as possible, earlier strips take the
/// remainder.
fn device_split(spec: &ShardedSpec) -> Vec<usize> {
    let shards = spec.num_shards();
    let base = spec.devices / shards;
    let extra = spec.devices % shards;
    (0..shards).map(|s| base + usize::from(s < extra)).collect()
}

/// Builds the strip topologies: shard `s` owns the square
/// `x ∈ [s·side, (s+1)·side) × y ∈ [0, side)`. Positions are in *global*
/// campus coordinates, so boundary distances — and therefore boundary
/// interference — are physical.
pub fn shard_topologies(spec: &ShardedSpec) -> Vec<Topology> {
    let strip_w = spec.side;
    device_split(spec)
        .into_iter()
        .enumerate()
        .map(|(s, count)| {
            // Two access points per strip, at the third points of the
            // centerline: DiGS routes over a two-parent uplink DAG, and a
            // single sink degenerates it (every near-AP relay funnels
            // through one listener and churns) — the same shape both
            // fleet templates use.
            let mut positions = vec![
                Position::new(strip_w * (s as f64 + 1.0 / 3.0), spec.side * 0.5),
                Position::new(strip_w * (s as f64 + 2.0 / 3.0), spec.side * 0.5),
            ];
            let mut roles = vec![Role::AccessPoint, Role::AccessPoint];
            let pseed = rng::mix(spec.seed, s as u64, 0x5aa4, 0);
            // Jittered grid, not uniform scatter: engineered campuses
            // instrument on a survey grid, and a uniform scatter grows
            // 7-hop wandering routes whose tail relays never stop
            // churning (the same lesson as the factory-floor template).
            let cols = (count as f64).sqrt().ceil().max(1.0) as usize;
            let rows = count.div_ceil(cols);
            for i in 0..count {
                let (r, c) = (i / cols, i % cols);
                let ju = rng::uniform01(pseed, i as u64, 1, 0) - 0.5;
                let jv = rng::uniform01(pseed, i as u64, 2, 0) - 0.5;
                let u = (c as f64 + 0.5 + ju * 0.4) / cols as f64;
                let v = (r as f64 + 0.5 + jv * 0.4) / rows as f64;
                positions.push(Position::new(strip_w * (s as f64 + u), spec.side * v));
                roles.push(Role::FieldDevice);
            }
            Topology::new(format!("{}-shard{}", spec.name, s), positions, roles)
        })
        .collect()
}

/// Builds the per-shard network configs (flows sourced far from the
/// shard's access point, slotframe sized to the shard).
pub fn shard_configs(spec: &ShardedSpec, secs: u64, telemetry_epoch: u64) -> Vec<NetworkConfig> {
    shard_topologies(spec)
        .into_iter()
        .enumerate()
        .map(|(s, topology)| {
            let devices = topology.len() - topology.num_access_points();
            let flows = spec.flows_per_shard.min(devices);
            let flow_seed = rng::mix(spec.seed, s as u64, 0xf10, 2);
            // 30 s monitor period: discovery-phase loss scales with the
            // traffic rate (every NACK burst swaps a parent and resets a
            // registration), so campus monitor flows poll at SCADA pace
            // rather than the templates' 5-10 s.
            let mut flow_set = scenarios::far_flow_set(&topology, flows, 3_000, flow_seed);
            for f in &mut flow_set {
                f.phase += scenarios::WARMUP_SECS * 100;
            }
            let slotframes = digs_scheduling::SlotframeLengths {
                app: app_slotframe(devices),
                ..digs_scheduling::SlotframeLengths::paper()
            };
            let config = NetworkConfig::builder(topology)
                .protocol(Protocol::Digs)
                .rf(RfConfig::open_area())
                .slotframes(slotframes)
                .seed(rng::mix(spec.seed, s as u64, 0x5a4d, 3))
                .flows(flow_set)
                // Same discovery-phase allowances as the fleet templates
                // (see `digs::scenarios`), scaled to the shard size: link
                // quality is only learned from data traffic, and a
                // 100-device shard legitimately swaps tens of parents per
                // epoch while ETX estimates settle.
                .health_settle_secs(300)
                .health_churn_storm((devices as u32 / 3).max(16))
                .build();
            fleet_tuned(config, secs, telemetry_epoch)
        })
        .collect()
}

/// One shard's observed channel occupancy over a slotframe window — the
/// state shards exchange at window edges.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BoundaryLoad {
    /// Committed transmissions per physical channel during the window.
    pub per_channel: [u64; 16],
    /// Window length in slots.
    pub window_slots: u64,
}

impl BoundaryLoad {
    /// The per-channel emission duty (per-mille) a neighbor should model:
    /// transmissions per slot, clamped to 1000‰.
    pub fn duty_pm(&self) -> [u16; 16] {
        let mut duty = [0u16; 16];
        if self.window_slots == 0 {
            return duty;
        }
        for (d, &tx) in duty.iter_mut().zip(&self.per_channel) {
            *d = ((tx * 1_000) / self.window_slots).min(1_000) as u16;
        }
        duty
    }
}

/// What a sharded-network run produced.
#[derive(Debug)]
pub struct ShardedOutcome {
    /// One summary per shard, labeled `name/shard<i>`.
    pub summaries: Vec<NetworkSummary>,
    /// Per-shard compute time (for the bench's utilization report).
    pub busy: Vec<Duration>,
    /// Slotframe windows executed.
    pub windows: u64,
    /// Ambient-jammer installations with nonzero duty — evidence the
    /// boundary exchange actually carried load.
    pub boundary_installs: u64,
}

/// Runs one sharded network: all shards advance one slotframe window per
/// round (fanned over the pool), then exchange boundary interference.
pub fn run_sharded(
    spec: &ShardedSpec,
    secs: u64,
    audit_every: u64,
    telemetry_epoch: u64,
    jobs: usize,
) -> ShardedOutcome {
    let configs = shard_configs(spec, secs, telemetry_epoch);
    let shards = configs.len();
    let strip_w = spec.side;
    // All shards exchange on the widest shard's application slotframe so
    // window edges line up across the fleet of shards.
    let window: u64 = configs.iter().map(|c| u64::from(c.slotframes.app)).max().unwrap_or(1);
    let tx_power = configs[0].rf.tx_power;
    eprintln!(
        "fleet: sharded `{}`: {} device(s) over {} shard(s), exchange every {} slots",
        spec.name, spec.devices, shards, window
    );

    let mut nets: Vec<(usize, Network)> =
        configs.into_iter().map(Network::new).enumerate().collect();
    let mut busy = vec![Duration::ZERO; shards];
    let mut prev_tx = vec![[0u64; 16]; shards];
    let mut windows = 0u64;
    let mut boundary_installs = 0u64;
    let total_slots = secs * SLOTS_PER_SECOND;
    let mut done = 0u64;
    while done < total_slots {
        let step = window.min(total_slots - done);
        let name = spec.name.clone();
        let timed = pool::par_map_labeled(
            nets,
            jobs,
            |_, (s, _)| format!("{name}/shard{s}@slot{done}"),
            move |(s, mut net)| {
                net.run_audited(step, audit_every);
                (s, net)
            },
        );
        nets = timed
            .into_iter()
            .map(|t| {
                busy[t.value.0] += t.elapsed;
                t.value
            })
            .collect();
        done += step;
        windows += 1;

        // Boundary exchange: what each shard transmitted this window
        // becomes its neighbors' ambient load for the next one.
        let loads: Vec<BoundaryLoad> = nets
            .iter()
            .zip(&prev_tx)
            .map(|((_, net), prev)| {
                let now = net.engine().stats().channel_tx;
                let mut per_channel = [0u64; 16];
                for (d, (n, p)) in per_channel.iter_mut().zip(now.iter().zip(prev)) {
                    *d = n - p;
                }
                BoundaryLoad { per_channel, window_slots: step }
            })
            .collect();
        for ((_, net), prev) in nets.iter().zip(&mut prev_tx) {
            *prev = net.engine().stats().channel_tx;
        }
        if done >= total_slots {
            break; // no window follows; skip the final install
        }
        for (s, (_, net)) in nets.iter_mut().enumerate() {
            let mut ambient = Vec::new();
            for nb in [s.checked_sub(1), (s + 1 < shards).then_some(s + 1)].into_iter().flatten() {
                let duty = loads[nb].duty_pm();
                if duty.iter().any(|&d| d > 0) {
                    // The neighbor's aggregate traffic, modelled as one
                    // source at its strip center (distance attenuation
                    // makes the coupling physical: strong at the shared
                    // boundary, negligible two strips away).
                    let position = Position::new(strip_w * (nb as f64 + 0.5), spec.side * 0.5);
                    let salt = rng::mix(spec.seed, nb as u64, 0xb0d7, 4);
                    ambient.push(Jammer::ambient(position, duty, tx_power, salt));
                    boundary_installs += 1;
                }
            }
            net.set_ambient_jammers(ambient);
        }
    }

    let summaries =
        nets.iter().map(|(s, net)| summarize(&format!("{}/shard{}", spec.name, s), net)).collect();
    ShardedOutcome { summaries, busy, windows, boundary_installs }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_spec() -> ShardedSpec {
        ShardedSpec {
            name: "tiny".into(),
            devices: 60,
            shard_devices: 30,
            side: 200.0,
            seed: 7,
            flows_per_shard: 2,
        }
    }

    #[test]
    fn slotframe_ladder_covers_shard_sizes() {
        assert_eq!(app_slotframe(40), 149);
        assert_eq!(app_slotframe(100), 307);
        assert_eq!(app_slotframe(150), 457);
        assert_eq!(app_slotframe(250), 761);
        assert_eq!(app_slotframe(500), 1531);
        assert_eq!(app_slotframe(1000), 3067);
    }

    #[test]
    fn strips_partition_the_area() {
        let spec = tiny_spec();
        let topos = shard_topologies(&spec);
        assert_eq!(topos.len(), 2);
        let strip_w = spec.side;
        for (s, topo) in topos.iter().enumerate() {
            assert_eq!(topo.len(), 32, "30 devices + 2 APs");
            assert_eq!(topo.num_access_points(), 2);
            for id in topo.node_ids() {
                let p = topo.position(id);
                let lo = strip_w * s as f64;
                assert!(p.x >= lo && p.x < lo + strip_w, "shard {s} leaked: {p}");
                assert!(p.y >= 0.0 && p.y <= spec.side);
            }
        }
    }

    #[test]
    fn uneven_devices_split_deterministically() {
        let spec = ShardedSpec { devices: 61, ..tiny_spec() };
        assert_eq!(device_split(&spec), vec![21, 20, 20]);
    }

    #[test]
    fn boundary_load_duty_is_clamped_per_mille() {
        let mut per_channel = [0u64; 16];
        per_channel[3] = 50;
        per_channel[7] = 2_000;
        let load = BoundaryLoad { per_channel, window_slots: 1_000 };
        let duty = load.duty_pm();
        assert_eq!(duty[3], 50);
        assert_eq!(duty[7], 1_000, "duty clamps at always-on");
        assert_eq!(duty[0], 0);
        assert_eq!(BoundaryLoad { per_channel, window_slots: 0 }.duty_pm(), [0u16; 16]);
    }

    #[test]
    fn sharded_run_is_deterministic_and_exchanges_load() {
        let spec = tiny_spec();
        let a = run_sharded(&spec, 150, 2_000, 1_000, 2);
        let b = run_sharded(&spec, 150, 2_000, 1_000, 1);
        assert_eq!(a.summaries.len(), 2);
        assert!(a.windows > 1, "the run must cross at least one exchange edge");
        assert!(a.boundary_installs > 0, "steady-state traffic must produce nonzero boundary load");
        // Same spec, different worker counts: identical outcomes.
        assert_eq!(a.summaries, b.summaries);
        assert_eq!(a.boundary_installs, b.boundary_installs);
        for s in &a.summaries {
            assert!(s.generated > 0, "{}: flows must generate traffic", s.label);
            assert!(s.pdr > 0.3, "{}: PDR collapsed to {}", s.label, s.pdr);
        }
    }
}
