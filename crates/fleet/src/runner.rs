//! Fans independent fleet networks over the shared worker pool and
//! reduces each run to a [`NetworkSummary`].

use crate::spec::FleetSpec;
use digs::config::NetworkConfig;
use digs::network::Network;
use digs_metrics::histogram::LogHistogram;
use digs_pool as pool;
use digs_sim::time::SLOTS_PER_SECOND;
use std::time::Duration;

/// Everything the fleet report needs from one network run. Latencies are
/// carried as a [`LogHistogram`] (ms), not raw samples, so aggregating a
/// thousand networks is a per-bucket add, and the merged quantiles agree
/// with a single pooled histogram (see the histogram's merge property).
#[derive(Debug, Clone, PartialEq)]
pub struct NetworkSummary {
    /// Stable network label (template/index/seed, or shard name).
    pub label: String,
    /// Nodes simulated.
    pub nodes: u32,
    /// Flows configured.
    pub flows: u32,
    /// Packets generated across all flows.
    pub generated: u64,
    /// Distinct packets delivered to an access point.
    pub delivered: u64,
    /// Mean per-flow PDR.
    pub pdr: f64,
    /// Worst per-flow PDR.
    pub worst_flow_pdr: f64,
    /// Fraction of nodes that joined.
    pub fraction_joined: f64,
    /// Health alerts the telemetry monitor raised.
    pub alerts: u64,
    /// Alerts by rule, indexed by [`crate::aggregate::ALERT_RULES`]
    /// (pdr-collapse, churn-storm, queue-saturation, convergence-stall).
    pub alert_kinds: [u64; 4],
    /// Invariant violations the runtime auditor recorded.
    pub violations: u64,
    /// End-to-end delivery latency, ms.
    pub latency: LogHistogram,
}

/// Runs one fleet network to completion (audited, telemetry on) and
/// summarizes it. `config` should already have its telemetry cadence and
/// trace capacity pinned (see [`fleet_tuned`]).
pub fn run_network(
    label: &str,
    config: NetworkConfig,
    secs: u64,
    audit_every: u64,
) -> NetworkSummary {
    let mut net = Network::new(config);
    net.run_audited(secs * SLOTS_PER_SECOND, audit_every);
    summarize(label, &net)
}

/// Reduces a finished network to its summary.
pub fn summarize(label: &str, net: &Network) -> NetworkSummary {
    use digs::telemetry::HealthRule;
    let results = net.results();
    let (alerts, alert_kinds, latency) = match net.telemetry() {
        Some(t) => {
            let mut kinds = [0u64; 4];
            for a in t.alerts() {
                let k = match a.rule {
                    HealthRule::PdrCollapse => 0,
                    HealthRule::ChurnStorm => 1,
                    HealthRule::QueueSaturation => 2,
                    HealthRule::ConvergenceStall => 3,
                };
                kinds[k] += 1;
            }
            (t.summary().alerts, kinds, t.latency_histogram().clone())
        }
        None => (0, [0; 4], LogHistogram::new()),
    };
    NetworkSummary {
        label: label.to_string(),
        nodes: net.config().topology.len() as u32,
        flows: results.flows.len() as u32,
        generated: u64::from(results.total_generated()),
        delivered: u64::from(results.total_delivered()),
        pdr: results.network_pdr(),
        worst_flow_pdr: results.worst_flow_pdr(),
        fraction_joined: results.fraction_joined(),
        alerts,
        alert_kinds,
        violations: results.invariant_violations.len() as u64,
        latency,
    }
}

/// Pins the per-run knobs the fleet requires for determinism and bounded
/// memory: tracing off (immune to `DIGS_TRACE_CAP`), telemetry at the
/// fleet cadence with a cap sized to the run length (no epoch is ever
/// dropped, so the latency histogram covers the whole run).
pub fn fleet_tuned(mut config: NetworkConfig, secs: u64, telemetry_epoch: u64) -> NetworkConfig {
    config.trace_cap = Some(0);
    config.telemetry_epoch = Some(telemetry_epoch);
    let epochs = if telemetry_epoch == 0 {
        0
    } else {
        (secs * SLOTS_PER_SECOND).div_ceil(telemetry_epoch) + 8
    };
    config.telemetry_cap = Some(epochs as usize);
    config
}

/// What one fleet invocation produced.
#[derive(Debug)]
pub struct FleetOutcome {
    /// Per-network summaries: independent networks in group order, then
    /// one summary per shard of each sharded network.
    pub summaries: Vec<NetworkSummary>,
    /// End-to-end wall-clock time.
    pub wall: Duration,
    /// Sum of per-run durations — what a serial sweep would have cost.
    pub serial_equivalent: Duration,
    /// Worker threads used.
    pub jobs: usize,
    /// Simulated node-seconds (Σ nodes × secs) — the numerator of the
    /// nodes-per-core-second headline.
    pub node_secs: u64,
    /// Per-shard busy time of each sharded network, for the bench's
    /// utilization report (empty without sharded specs).
    pub shard_busy: Vec<(String, Vec<Duration>)>,
}

/// Runs the whole fleet: independent networks fan out over the pool
/// (labeled panics, results in input order), then each sharded network
/// runs its windowed shard loop. Progress goes to stderr.
pub fn run_fleet(spec: &FleetSpec, jobs: Option<usize>) -> FleetOutcome {
    let mut tasks: Vec<(String, NetworkConfig)> = Vec::new();
    for group in &spec.groups {
        for k in 0..group.networks {
            let seed = group.seed_base + u64::from(k);
            let config = fleet_tuned(group.template.config(seed), spec.secs, spec.telemetry_epoch);
            tasks.push((group.label(k), config));
        }
    }
    let jobs = jobs.unwrap_or_else(|| pool::default_jobs(tasks.len().max(1))).max(1);
    eprintln!(
        "fleet: {} independent network(s) + {} sharded network(s), {} nodes total, \
         {} s simulated on {} worker(s)",
        tasks.len(),
        spec.sharded.len(),
        spec.total_nodes(),
        spec.secs,
        jobs
    );

    let wall_start = std::time::Instant::now();
    let secs = spec.secs;
    let audit_every = spec.audit_every;
    let timed = pool::par_map_labeled(
        tasks,
        jobs,
        |_, (label, _)| label.clone(),
        move |(label, config)| run_network(&label, config, secs, audit_every),
    );
    let mut serial_equivalent: Duration = timed.iter().map(|t| t.elapsed).sum();
    let mut summaries: Vec<NetworkSummary> = timed.into_iter().map(|t| t.value).collect();

    let mut shard_busy = Vec::new();
    for sharded in &spec.sharded {
        let outcome =
            crate::shard::run_sharded(sharded, spec.secs, audit_every, spec.telemetry_epoch, jobs);
        serial_equivalent += outcome.busy.iter().sum::<Duration>();
        shard_busy.push((sharded.name.clone(), outcome.busy.clone()));
        summaries.extend(outcome.summaries);
    }

    FleetOutcome {
        summaries,
        wall: wall_start.elapsed(),
        serial_equivalent,
        jobs,
        node_secs: spec.total_nodes() * spec.secs,
        shard_busy,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{FleetSpec, Template};

    #[test]
    fn fleet_tuned_pins_observation_knobs() {
        let config = fleet_tuned(Template::OilField.config(1), 120, 1_000);
        assert_eq!(config.trace_cap, Some(0));
        assert_eq!(config.telemetry_epoch, Some(1_000));
        // 120 s * 100 slots / 1000 = 12 epochs, plus slack — never dropped.
        assert_eq!(config.telemetry_cap, Some(20));
        let off = fleet_tuned(Template::OilField.config(1), 120, 0);
        assert_eq!(off.telemetry_cap, Some(0));
    }

    #[test]
    fn small_fleet_is_deterministic_and_summarized() {
        let spec = FleetSpec::new().group(Template::OilField, 2, 1).secs(150);
        let a = run_fleet(&spec, Some(2));
        let b = run_fleet(&spec, Some(1));
        assert_eq!(a.summaries.len(), 2);
        assert_eq!(a.node_secs, 2 * 47 * 150);
        // Same spec, different worker counts: identical summaries.
        assert_eq!(a.summaries, b.summaries);
        for s in &a.summaries {
            assert!(s.generated > 0, "{}: flows must generate traffic", s.label);
            // 150 s leaves only 90 s of traffic after warmup; deep
            // pipeline flows legitimately sit near 0.5 at some seeds.
            assert!(s.pdr > 0.3, "{}: PDR collapsed to {}", s.label, s.pdr);
            assert_eq!(s.nodes, 47);
            assert!(!s.latency.is_empty(), "{}: telemetry must record latencies", s.label);
        }
        // Different seeds must produce different runs.
        assert_ne!(a.summaries[0].generated, 0);
        assert_ne!(
            (a.summaries[0].delivered, a.summaries[0].latency.clone()),
            (a.summaries[1].delivered, a.summaries[1].latency.clone()),
            "distinct seeds should not produce identical runs"
        );
    }
}
