//! The DiGS autonomous scheduler (paper Section VI).
//!
//! Each node derives its entire TSCH schedule from local information only:
//! its node id, the number of access points, the slotframe lengths, and its
//! routing state (parents from [`digs_routing::DigsRouting`], children from
//! received joined-callbacks). No schedule negotiation or sharing occurs.
//!
//! - **Synchronization slotframe**: node *i* broadcasts its EB in slot
//!   `i mod L_sync` and listens in its best parent's slot.
//! - **Routing slotframe**: one fixed shared (CSMA) cell for join-in /
//!   joined-callback traffic, identical on all nodes.
//! - **Application slotframe**: Eq. 4 —
//!   `s = A·(NodeID − N_AP) − A + p` for attempt `p` (with the paper's
//!   1-based device numbering; equivalently `A·(id − N_AP) + p` for our
//!   0-based ids) — giving every field device `A` dedicated transmission
//!   cells per slotframe: attempts 1 to A−1 on the primary route and
//!   attempt A on the backup route. Parents derive the matching receive
//!   cells from their child tables.

use crate::slotframe::{
    combine, frame_offset, node_offset, Cell, CellAction, SlotframeLengths, TrafficClass,
    ROUTING_OFFSET, ROUTING_SLOT,
};
use digs_routing::messages::ParentSlot;
use digs_sim::ids::NodeId;
use digs_sim::time::Asn;
use std::collections::BTreeMap;

/// Default number of scheduled transmission attempts per packet per
/// application slotframe (two on the primary route, one on the backup).
pub const DEFAULT_ATTEMPTS: u8 = 3;

/// The autonomous scheduler state for one node.
#[derive(Debug, Clone, PartialEq)]
pub struct DigsScheduler {
    id: NodeId,
    num_aps: u16,
    lengths: SlotframeLengths,
    attempts: u8,
    best_parent: Option<NodeId>,
    second_parent: Option<NodeId>,
    /// Children and the role they assigned us.
    children: BTreeMap<NodeId, ParentSlot>,
}

impl DigsScheduler {
    /// Creates a scheduler for `id` in a network with `num_aps` access
    /// points.
    ///
    /// # Panics
    ///
    /// Panics if `attempts` is zero or the slotframe lengths are invalid.
    pub fn new(id: NodeId, num_aps: u16, lengths: SlotframeLengths, attempts: u8) -> DigsScheduler {
        assert!(
            (1..=8).contains(&attempts),
            "attempts must be in 1..=8 (WirelessHART schedules at most a handful)"
        );
        lengths.validate().expect("valid slotframe lengths");
        DigsScheduler {
            id,
            num_aps,
            lengths,
            attempts,
            best_parent: None,
            second_parent: None,
            children: BTreeMap::new(),
        }
    }

    /// This node's id.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// Number of scheduled attempts per packet (the paper's `A`).
    pub fn attempts(&self) -> u8 {
        self.attempts
    }

    /// The slotframe lengths the scheduler was built with.
    pub fn lengths(&self) -> SlotframeLengths {
        self.lengths
    }

    /// Whether this node is an access point.
    pub fn is_access_point(&self) -> bool {
        self.id.0 < self.num_aps
    }

    /// Updates the parent set (called on routing `ParentsChanged` events).
    /// The schedule updates instantly — this is the paper's headline
    /// property: "the transmission schedule is automatically determined and
    /// updated once the network topology changes".
    pub fn set_parents(&mut self, best: Option<NodeId>, second: Option<NodeId>) {
        self.best_parent = best;
        self.second_parent = second;
    }

    /// Registers a child (from a joined-callback with `selected = true`).
    pub fn add_child(&mut self, child: NodeId, slot: ParentSlot) {
        self.children.insert(child, slot);
    }

    /// Removes a child (revocation callback, or child death).
    pub fn remove_child(&mut self, child: NodeId) {
        self.children.remove(&child);
    }

    /// Currently registered children.
    pub fn children(&self) -> impl Iterator<Item = (NodeId, ParentSlot)> + '_ {
        self.children.iter().map(|(id, s)| (*id, *s))
    }

    /// Eq. 4: the application-slotframe slot of `node`'s attempt `p`
    /// (1-based).
    ///
    /// # Panics
    ///
    /// Panics if `node` is an access point (they originate no upstream
    /// data) or `p` is out of `1..=attempts`.
    pub fn tx_slot(&self, node: NodeId, p: u8) -> u32 {
        assert!(node.0 >= self.num_aps, "access points have no application transmission cells");
        assert!((1..=self.attempts).contains(&p), "attempt out of range");
        let device_index = u32::from(node.0 - self.num_aps);
        (u32::from(self.attempts) * device_index + u32::from(p)) % self.lengths.app
    }

    /// The parent targeted by attempt `p`: attempts `1..A` use the primary
    /// route; attempt `A` uses the backup route (falling back to the
    /// primary when no backup exists).
    pub fn attempt_target(&self, p: u8) -> Option<NodeId> {
        if p < self.attempts {
            self.best_parent
        } else {
            self.second_parent.or(self.best_parent)
        }
    }

    /// The sync-slotframe slot in which `node` broadcasts its EB.
    pub fn eb_slot(&self, node: NodeId) -> u32 {
        u32::from(node.0) % self.lengths.sync
    }

    /// Channel offset of `node`'s attempt-`p` application cell. Attempts
    /// are spread five offsets apart so a WiFi-wide jammer (four adjacent
    /// 802.15.4 channels) can cover at most one of a packet's scheduled
    /// attempts — the WirelessHART practice of retrying on a different
    /// channel. Both the transmitting child and the listening parent derive
    /// the same offset from `(node, p)` alone.
    pub fn attempt_offset(node: NodeId, p: u8) -> digs_sim::channel::ChannelOffset {
        digs_sim::channel::ChannelOffset::new(((node.0 % 16) as u8).wrapping_add(5 * (p - 1)) % 16)
    }

    /// Inverts Eq. 4: which attempt number would have `node` transmitting
    /// in application-slotframe offset `off`? Used by a parent to infer its
    /// role (primary vs backup) from an actually received data frame, which
    /// keeps the child table correct even when a joined-callback was lost.
    pub fn infer_attempt(&self, node: NodeId, off: u32) -> Option<u8> {
        if node.0 < self.num_aps {
            return None;
        }
        (1..=self.attempts).find(|p| self.tx_slot(node, *p) == off)
    }

    /// Resolves the combined cell for a slot (`None` = sleep).
    pub fn cell(&self, asn: Asn) -> Option<Cell> {
        combine(self.sync_cell(asn), self.routing_cell(asn), self.app_cell(asn))
    }

    fn sync_cell(&self, asn: Asn) -> Option<Cell> {
        let off = frame_offset(asn, self.lengths.sync);
        if off == self.eb_slot(self.id) {
            return Some(Cell {
                class: TrafficClass::Sync,
                action: CellAction::TxBeacon,
                offset: node_offset(self.id),
                contention: false,
            });
        }
        if let Some(bp) = self.best_parent {
            if off == self.eb_slot(bp) {
                return Some(Cell {
                    class: TrafficClass::Sync,
                    action: CellAction::RxBeacon { from: bp },
                    offset: node_offset(bp),
                    contention: false,
                });
            }
        }
        None
    }

    fn routing_cell(&self, asn: Asn) -> Option<Cell> {
        if frame_offset(asn, self.lengths.routing) == ROUTING_SLOT {
            Some(Cell {
                class: TrafficClass::Routing,
                action: CellAction::Shared,
                offset: ROUTING_OFFSET,
                contention: true,
            })
        } else {
            None
        }
    }

    fn app_cell(&self, asn: Asn) -> Option<Cell> {
        let off = frame_offset(asn, self.lengths.app);
        // Own transmission cells (field devices with a route only).
        if !self.is_access_point() {
            for p in 1..=self.attempts {
                if off == self.tx_slot(self.id, p) {
                    if let Some(target) = self.attempt_target(p) {
                        return Some(Cell {
                            class: TrafficClass::App,
                            action: CellAction::TxData { to: target, attempt: p },
                            offset: Self::attempt_offset(self.id, p),
                            contention: false,
                        });
                    }
                }
            }
        }
        // Receive cells derived from the child table. A parent listens in
        // *all* of a child's attempt cells regardless of its nominal role:
        // nominally, primary parents are reached on attempts 1..A and the
        // backup on attempt A, but listening to every attempt makes the
        // schedule immune to role-swap races (a Best↔SecondBest promotion
        // at the child re-maps its attempts instantly, while the parents
        // learn of it asynchronously). The cost is idle listening — the
        // energy overhead the paper attributes to DiGS.
        for child in self.children.keys() {
            for p in 1..=self.attempts {
                if off == self.tx_slot(*child, p) {
                    return Some(Cell {
                        class: TrafficClass::App,
                        action: CellAction::RxData,
                        offset: Self::attempt_offset(*child, p),
                        contention: false,
                    });
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The Fig. 7 configuration: slotframes 61/11/7, two APs (#1, #2 in the
    /// paper, ids 0 and 1 here) and two field devices (#3, #4 → ids 2, 3).
    fn example_scheduler(id: u16) -> DigsScheduler {
        DigsScheduler::new(NodeId(id), 2, SlotframeLengths::example(), 3)
    }

    #[test]
    fn eq4_matches_figure7() {
        // Paper: #3's three attempts land in app slots 1, 2, 3 and #4's in
        // slots 4, 5, 6 of the 7-slot application slotframe.
        let s = example_scheduler(2);
        assert_eq!(s.tx_slot(NodeId(2), 1), 1);
        assert_eq!(s.tx_slot(NodeId(2), 2), 2);
        assert_eq!(s.tx_slot(NodeId(2), 3), 3);
        assert_eq!(s.tx_slot(NodeId(3), 1), 4);
        assert_eq!(s.tx_slot(NodeId(3), 2), 5);
        assert_eq!(s.tx_slot(NodeId(3), 3), 6);
    }

    #[test]
    fn tx_slots_wrap_modulo_slotframe() {
        let s = example_scheduler(2);
        // Device index 2 (id 4): slots 3*2+p = 7, 8, 9 → wrap to 0, 1, 2.
        assert_eq!(s.tx_slot(NodeId(4), 1), 0);
        assert_eq!(s.tx_slot(NodeId(4), 2), 1);
        assert_eq!(s.tx_slot(NodeId(4), 3), 2);
    }

    #[test]
    #[should_panic(expected = "access points have no application transmission cells")]
    fn ap_tx_slot_panics() {
        let s = example_scheduler(2);
        let _ = s.tx_slot(NodeId(0), 1);
    }

    #[test]
    #[should_panic(expected = "attempt out of range")]
    fn attempt_zero_panics() {
        let s = example_scheduler(2);
        let _ = s.tx_slot(NodeId(2), 0);
    }

    #[test]
    fn attempts_route_primary_then_backup() {
        let mut s = example_scheduler(2);
        s.set_parents(Some(NodeId(0)), Some(NodeId(1)));
        assert_eq!(s.attempt_target(1), Some(NodeId(0)));
        assert_eq!(s.attempt_target(2), Some(NodeId(0)));
        assert_eq!(s.attempt_target(3), Some(NodeId(1)));
    }

    #[test]
    fn backup_attempt_falls_back_to_primary() {
        let mut s = example_scheduler(2);
        s.set_parents(Some(NodeId(0)), None);
        assert_eq!(s.attempt_target(3), Some(NodeId(0)));
    }

    #[test]
    fn eb_cell_in_own_slot() {
        let s = example_scheduler(2);
        // Node id 2 → EB slot 2 of the 61-slot sync slotframe.
        let cell = s.cell(Asn(2)).expect("EB cell");
        assert_eq!(cell.class, TrafficClass::Sync);
        assert_eq!(cell.action, CellAction::TxBeacon);
        assert!(!cell.contention);
    }

    #[test]
    fn listens_for_parent_beacon() {
        let mut s = example_scheduler(2);
        s.set_parents(Some(NodeId(0)), Some(NodeId(1)));
        // Parent id 0 → EB slot 0; but slot 0 is also the shared routing
        // slot — sync must win the combination (paper's Fig. 7 narrative:
        // nodes with sync traffic in the first slot use it for sync).
        let cell = s.cell(Asn(0)).expect("cell");
        assert_eq!(cell.class, TrafficClass::Sync);
        assert_eq!(cell.action, CellAction::RxBeacon { from: NodeId(0) });
    }

    #[test]
    fn routing_shared_slot_when_no_sync() {
        let s = example_scheduler(2);
        // ASN 11 → routing offset 0 (shared slot), sync offset 11 (no EB for
        // id 2 or parents), app offset 4 (no cells for a parent-less node).
        let cell = s.cell(Asn(11)).expect("cell");
        assert_eq!(cell.class, TrafficClass::Routing);
        assert_eq!(cell.action, CellAction::Shared);
        assert!(cell.contention);
    }

    #[test]
    fn app_tx_cell_after_joining() {
        let mut s = example_scheduler(2);
        s.set_parents(Some(NodeId(0)), Some(NodeId(1)));
        // ASN 8: sync off 8 (idle), routing off 8 (idle), app off 1 →
        // attempt 1 toward the primary parent.
        let cell = s.cell(Asn(8)).expect("cell");
        assert_eq!(cell.class, TrafficClass::App);
        assert_eq!(cell.action, CellAction::TxData { to: NodeId(0), attempt: 1 });
        assert!(!cell.contention);
    }

    #[test]
    fn unjoined_node_has_no_app_tx() {
        let s = example_scheduler(2);
        for asn in 0..4697u64 {
            if let Some(cell) = s.cell(Asn(asn)) {
                assert!(
                    !matches!(cell.action, CellAction::TxData { .. }),
                    "unjoined node scheduled a data tx at {asn}"
                );
            }
        }
    }

    #[test]
    fn parent_listens_in_primary_childs_slots() {
        let mut ap = example_scheduler(0);
        ap.add_child(NodeId(2), ParentSlot::Best);
        // Child 2's attempt cells are app slots 1, 2, 3; the parent listens
        // in all of them (role-agnostic over-listening).
        let mut rx_slots = Vec::new();
        for asn in 0..7u64 {
            if let Some(cell) = ap.cell(Asn(asn)) {
                if cell.action == CellAction::RxData {
                    rx_slots.push(asn);
                }
            }
        }
        assert_eq!(rx_slots, vec![1, 2, 3]);
    }

    #[test]
    fn backup_parent_listens_in_childs_attempt_slots() {
        let mut ap = example_scheduler(1);
        ap.add_child(NodeId(2), ParentSlot::SecondBest);
        let mut rx_slots = Vec::new();
        for asn in 0..7u64 {
            if let Some(cell) = ap.cell(Asn(asn)) {
                if cell.action == CellAction::RxData {
                    rx_slots.push(asn);
                }
            }
        }
        // Slot 1 is masked by this AP's own EB slot (sync priority); the
        // remaining attempt cells of the child are listened on.
        assert_eq!(rx_slots, vec![2, 3]);
    }

    #[test]
    fn removed_child_frees_rx_cells() {
        let mut ap = example_scheduler(0);
        ap.add_child(NodeId(2), ParentSlot::Best);
        ap.remove_child(NodeId(2));
        for asn in 0..7u64 {
            if let Some(cell) = ap.cell(Asn(asn)) {
                assert_ne!(cell.action, CellAction::RxData);
            }
        }
    }

    #[test]
    fn no_negotiation_identical_schedules_from_identical_state() {
        let mut a = example_scheduler(2);
        let mut b = example_scheduler(2);
        a.set_parents(Some(NodeId(0)), Some(NodeId(1)));
        b.set_parents(Some(NodeId(0)), Some(NodeId(1)));
        for asn in 0..4697u64 {
            assert_eq!(a.cell(Asn(asn)), b.cell(Asn(asn)));
        }
    }

    #[test]
    fn schedule_repeats_with_hyper_period() {
        let mut s = example_scheduler(2);
        s.set_parents(Some(NodeId(0)), Some(NodeId(1)));
        let hp = SlotframeLengths::example().hyper_period();
        for asn in 0..200u64 {
            assert_eq!(s.cell(Asn(asn)), s.cell(Asn(asn + hp)));
        }
    }

    #[test]
    fn paper_lengths_give_collision_free_cells_for_testbed_a() {
        // 48 field devices × 3 attempts = 144 distinct slots < 151: no two
        // devices share an application slot.
        let lengths = SlotframeLengths::paper();
        let s = DigsScheduler::new(NodeId(2), 2, lengths, 3);
        let mut used = std::collections::HashSet::new();
        for id in 2..50u16 {
            for p in 1..=3u8 {
                assert!(
                    used.insert(s.tx_slot(NodeId(id), p)),
                    "slot collision for node {id} attempt {p}"
                );
            }
        }
    }
}
