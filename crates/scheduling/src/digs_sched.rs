//! The DiGS autonomous scheduler (paper Section VI).
//!
//! Each node derives its entire TSCH schedule from local information only:
//! its node id, the number of access points, the slotframe lengths, and its
//! routing state (parents from [`digs_routing::DigsRouting`], children from
//! received joined-callbacks). No schedule negotiation or sharing occurs.
//!
//! - **Synchronization slotframe**: node *i* broadcasts its EB in slot
//!   `i mod L_sync` and listens in its best parent's slot.
//! - **Routing slotframe**: one fixed shared (CSMA) cell for join-in /
//!   joined-callback traffic, identical on all nodes.
//! - **Application slotframe**: Eq. 4 —
//!   `s = A·(NodeID − N_AP) − A + p` for attempt `p` (with the paper's
//!   1-based device numbering; equivalently `A·(id − N_AP) + p` for our
//!   0-based ids) — giving every field device `A` dedicated transmission
//!   cells per slotframe: attempts 1 to A−1 on the primary route and
//!   attempt A on the backup route. Parents derive the matching receive
//!   cells from their child tables.
//!
//! ## Schedule randomization (anti-jamming defense)
//!
//! Eq. 4 is static: a jammer that passively learns which `(slot, channel
//! offset)` cells carry traffic can concentrate its energy on exactly
//! those cells forever. The optional randomization pass defeats that by
//! re-drawing the *physical* placement of every application cell each
//! epoch (one application slotframe) from a network-wide shared nonce:
//!
//! - a Fisher–Yates permutation keyed on `(nonce, epoch)` maps each
//!   logical Eq. 4 slot to a physical slot — a bijection, so Eq. 4's
//!   exclusive-ownership property transfers verbatim to the physical
//!   schedule;
//! - a per-physical-slot channel-offset shift keyed on the same stream
//!   re-draws the cell's channel offset, so learned channel positions
//!   also go stale.
//!
//! Every node derives the identical permutation from the shared nonce
//! (provisioned like the slotframe lengths — no negotiation, preserving
//! the paper's autonomy property), so a child's transmit cell and its
//! parents' receive cells stay aligned. Logical coordinates remain the
//! stable identity of a cell: claims, callbacks, and Eq. 4 inversion all
//! operate in logical space and translate at the radio boundary.

use crate::slotframe::{
    combine, frame_offset, node_offset, Cell, CellAction, SlotframeLengths, TrafficClass,
    ROUTING_OFFSET, ROUTING_SLOT,
};
use digs_routing::messages::ParentSlot;
use digs_sim::channel::ChannelOffset;
use digs_sim::ids::NodeId;
use digs_sim::rng;
use digs_sim::time::Asn;
use std::cell::RefCell;
use std::collections::BTreeMap;

/// Default number of scheduled transmission attempts per packet per
/// application slotframe (two on the primary route, one on the backup).
pub const DEFAULT_ATTEMPTS: u8 = 3;

/// Salt separating the slot-permutation stream from other mix users.
const PERM_SALT: u64 = 0x51a7_0b1e;

/// Salt separating the channel-offset-shift stream.
const SHIFT_SALT: u64 = 0x0ff5_e7ed;

/// The slot permutation for one randomization epoch.
#[derive(Debug, Clone)]
struct EpochPerm {
    epoch: u64,
    /// `forward[logical] = physical` application slot.
    forward: Vec<u32>,
    /// `inverse[physical] = logical` application slot.
    inverse: Vec<u32>,
}

/// Memo for the most recently resolved epoch's permutation (interior
/// mutability: schedule lookup is logically `&self`).
#[derive(Debug, Clone, Default)]
struct PermCache(RefCell<Option<EpochPerm>>);

impl PartialEq for PermCache {
    /// The cache is derived data: schedulers with equal configuration are
    /// equal regardless of which epoch they last resolved.
    fn eq(&self, _other: &PermCache) -> bool {
        true
    }
}

/// Fisher–Yates keyed on `(nonce, epoch)`. The `% (i + 1)` modulo bias is
/// irrelevant here: the shuffle defeats schedule learning, it is not
/// cryptography.
fn build_perm(nonce: u64, epoch: u64, app_len: u32) -> EpochPerm {
    let mut forward: Vec<u32> = (0..app_len).collect();
    for i in (1..app_len as usize).rev() {
        let j = (rng::mix(nonce, epoch, i as u64, PERM_SALT) % (i as u64 + 1)) as usize;
        forward.swap(i, j);
    }
    let mut inverse = vec![0u32; app_len as usize];
    for (logical, &physical) in forward.iter().enumerate() {
        inverse[physical as usize] = logical as u32;
    }
    EpochPerm { epoch, forward, inverse }
}

/// The autonomous scheduler state for one node.
#[derive(Debug, Clone, PartialEq)]
pub struct DigsScheduler {
    id: NodeId,
    num_aps: u16,
    lengths: SlotframeLengths,
    attempts: u8,
    best_parent: Option<NodeId>,
    second_parent: Option<NodeId>,
    /// Children and the role they assigned us.
    children: BTreeMap<NodeId, ParentSlot>,
    /// Network-wide schedule-randomization nonce (`None` = the paper's
    /// static Eq. 4 placement).
    randomize: Option<u64>,
    /// Cached permutation for the last epoch queried.
    perm: PermCache,
}

impl DigsScheduler {
    /// Creates a scheduler for `id` in a network with `num_aps` access
    /// points.
    ///
    /// # Panics
    ///
    /// Panics if `attempts` is zero or the slotframe lengths are invalid.
    pub fn new(id: NodeId, num_aps: u16, lengths: SlotframeLengths, attempts: u8) -> DigsScheduler {
        assert!(
            (1..=8).contains(&attempts),
            "attempts must be in 1..=8 (WirelessHART schedules at most a handful)"
        );
        lengths.validate().expect("valid slotframe lengths");
        DigsScheduler {
            id,
            num_aps,
            lengths,
            attempts,
            best_parent: None,
            second_parent: None,
            children: BTreeMap::new(),
            randomize: None,
            perm: PermCache::default(),
        }
    }

    /// Enables (`Some`) or disables (`None`) per-epoch schedule
    /// randomization. The nonce must be identical network-wide: every node
    /// independently re-derives the same permutation from it, keeping a
    /// child's transmit cells aligned with its parents' receive cells
    /// without any negotiation.
    pub fn set_randomize(&mut self, nonce: Option<u64>) {
        self.randomize = nonce;
        self.perm.0.replace(None);
    }

    /// The active schedule-randomization nonce, if any.
    pub fn randomize(&self) -> Option<u64> {
        self.randomize
    }

    /// The randomization epoch an ASN falls in (one application slotframe
    /// per epoch).
    pub fn epoch_of(&self, asn: Asn) -> u64 {
        asn.0 / u64::from(self.lengths.app)
    }

    /// This node's id.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// Number of scheduled attempts per packet (the paper's `A`).
    pub fn attempts(&self) -> u8 {
        self.attempts
    }

    /// The slotframe lengths the scheduler was built with.
    pub fn lengths(&self) -> SlotframeLengths {
        self.lengths
    }

    /// Whether this node is an access point.
    pub fn is_access_point(&self) -> bool {
        self.id.0 < self.num_aps
    }

    /// Updates the parent set (called on routing `ParentsChanged` events).
    /// The schedule updates instantly — this is the paper's headline
    /// property: "the transmission schedule is automatically determined and
    /// updated once the network topology changes".
    pub fn set_parents(&mut self, best: Option<NodeId>, second: Option<NodeId>) {
        self.best_parent = best;
        self.second_parent = second;
    }

    /// Registers a child (from a joined-callback with `selected = true`).
    pub fn add_child(&mut self, child: NodeId, slot: ParentSlot) {
        self.children.insert(child, slot);
    }

    /// Removes a child (revocation callback, or child death).
    pub fn remove_child(&mut self, child: NodeId) {
        self.children.remove(&child);
    }

    /// Currently registered children.
    pub fn children(&self) -> impl Iterator<Item = (NodeId, ParentSlot)> + '_ {
        self.children.iter().map(|(id, s)| (*id, *s))
    }

    /// Eq. 4: the application-slotframe slot of `node`'s attempt `p`
    /// (1-based).
    ///
    /// # Panics
    ///
    /// Panics if `node` is an access point (they originate no upstream
    /// data) or `p` is out of `1..=attempts`.
    pub fn tx_slot(&self, node: NodeId, p: u8) -> u32 {
        assert!(node.0 >= self.num_aps, "access points have no application transmission cells");
        assert!((1..=self.attempts).contains(&p), "attempt out of range");
        let device_index = u32::from(node.0 - self.num_aps);
        (u32::from(self.attempts) * device_index + u32::from(p)) % self.lengths.app
    }

    /// The parent targeted by attempt `p`: attempts `1..A` use the primary
    /// route; attempt `A` uses the backup route (falling back to the
    /// primary when no backup exists).
    pub fn attempt_target(&self, p: u8) -> Option<NodeId> {
        if p < self.attempts {
            self.best_parent
        } else {
            self.second_parent.or(self.best_parent)
        }
    }

    /// The sync-slotframe slot in which `node` broadcasts its EB.
    pub fn eb_slot(&self, node: NodeId) -> u32 {
        u32::from(node.0) % self.lengths.sync
    }

    /// Channel offset of `node`'s attempt-`p` application cell. Attempts
    /// are spread five offsets apart so a WiFi-wide jammer (four adjacent
    /// 802.15.4 channels) can cover at most one of a packet's scheduled
    /// attempts — the WirelessHART practice of retrying on a different
    /// channel. Both the transmitting child and the listening parent derive
    /// the same offset from `(node, p)` alone.
    pub fn attempt_offset(node: NodeId, p: u8) -> digs_sim::channel::ChannelOffset {
        digs_sim::channel::ChannelOffset::new(((node.0 % 16) as u8).wrapping_add(5 * (p - 1)) % 16)
    }

    /// Inverts Eq. 4: which attempt number would have `node` transmitting
    /// in application-slotframe offset `off`? Used by a parent to infer its
    /// role (primary vs backup) from an actually received data frame, which
    /// keeps the child table correct even when a joined-callback was lost.
    pub fn infer_attempt(&self, node: NodeId, off: u32) -> Option<u8> {
        if node.0 < self.num_aps {
            return None;
        }
        (1..=self.attempts).find(|p| self.tx_slot(node, *p) == off)
    }

    /// Runs `f` against the permutation for `epoch`, (re)building the memo
    /// when the epoch rolled over since the last lookup.
    fn with_perm<R>(&self, nonce: u64, epoch: u64, f: impl FnOnce(&EpochPerm) -> R) -> R {
        let mut cached = self.perm.0.borrow_mut();
        if cached.as_ref().is_none_or(|p| p.epoch != epoch) {
            *cached = Some(build_perm(nonce, epoch, self.lengths.app));
        }
        f(cached.as_ref().expect("permutation just built"))
    }

    /// Maps a logical (Eq. 4) application slot to its physical slot in
    /// `asn`'s epoch — the identity without randomization.
    fn physical_slot(&self, logical: u32, asn: Asn) -> u32 {
        match self.randomize {
            None => logical,
            Some(nonce) => {
                self.with_perm(nonce, self.epoch_of(asn), |p| p.forward[logical as usize])
            }
        }
    }

    /// Inverse of [`Self::physical_slot`].
    fn logical_slot(&self, physical: u32, asn: Asn) -> u32 {
        match self.randomize {
            None => physical,
            Some(nonce) => {
                self.with_perm(nonce, self.epoch_of(asn), |p| p.inverse[physical as usize])
            }
        }
    }

    /// The channel-offset shift applied to a physical slot's application
    /// cell in `asn`'s epoch. Keyed on the *physical* slot, so the
    /// transmitting child and every listening parent — who agree on the
    /// physical slot by construction — derive the same shift.
    fn offset_shift(&self, physical: u32, asn: Asn) -> u8 {
        match self.randomize {
            None => 0,
            Some(nonce) => {
                (rng::mix(nonce, self.epoch_of(asn), u64::from(physical), SHIFT_SALT) % 16) as u8
            }
        }
    }

    fn cell_offset(&self, base: ChannelOffset, physical: u32, asn: Asn) -> ChannelOffset {
        ChannelOffset::new((base.0 + self.offset_shift(physical, asn)) % 16)
    }

    /// The physical application slot in which `node`'s attempt `p`
    /// transmits during `asn`'s epoch: [`Self::tx_slot`] for a static
    /// schedule, its epoch permutation under randomization.
    ///
    /// # Panics
    ///
    /// As [`Self::tx_slot`].
    pub fn scheduled_slot(&self, node: NodeId, p: u8, asn: Asn) -> u32 {
        self.physical_slot(self.tx_slot(node, p), asn)
    }

    /// The channel offset `node`'s attempt-`p` cell actually uses during
    /// `asn`'s epoch ([`Self::attempt_offset`] plus the epoch shift).
    ///
    /// # Panics
    ///
    /// As [`Self::tx_slot`].
    pub fn scheduled_offset(&self, node: NodeId, p: u8, asn: Asn) -> ChannelOffset {
        let physical = self.scheduled_slot(node, p, asn);
        self.cell_offset(Self::attempt_offset(node, p), physical, asn)
    }

    /// Epoch-aware variant of [`Self::infer_attempt`]: which attempt has
    /// `node` transmitting in `asn`'s slot? Receivers must use this (not
    /// the raw slotframe offset) when randomization may be active, since
    /// the physical slot de-randomizes to a different logical slot.
    pub fn infer_attempt_at(&self, node: NodeId, asn: Asn) -> Option<u8> {
        let off = frame_offset(asn, self.lengths.app);
        self.infer_attempt(node, self.logical_slot(off, asn))
    }

    /// Resolves the combined cell for a slot (`None` = sleep).
    pub fn cell(&self, asn: Asn) -> Option<Cell> {
        combine(self.sync_cell(asn), self.routing_cell(asn), self.app_cell(asn))
    }

    fn sync_cell(&self, asn: Asn) -> Option<Cell> {
        let off = frame_offset(asn, self.lengths.sync);
        if off == self.eb_slot(self.id) {
            return Some(Cell {
                class: TrafficClass::Sync,
                action: CellAction::TxBeacon,
                offset: node_offset(self.id),
                contention: false,
            });
        }
        if let Some(bp) = self.best_parent {
            if off == self.eb_slot(bp) {
                return Some(Cell {
                    class: TrafficClass::Sync,
                    action: CellAction::RxBeacon { from: bp },
                    offset: node_offset(bp),
                    contention: false,
                });
            }
        }
        None
    }

    fn routing_cell(&self, asn: Asn) -> Option<Cell> {
        if frame_offset(asn, self.lengths.routing) == ROUTING_SLOT {
            Some(Cell {
                class: TrafficClass::Routing,
                action: CellAction::Shared,
                offset: ROUTING_OFFSET,
                contention: true,
            })
        } else {
            None
        }
    }

    fn app_cell(&self, asn: Asn) -> Option<Cell> {
        let off = frame_offset(asn, self.lengths.app);
        // Cell identity lives in logical (Eq. 4) space; under randomization
        // this slot physically hosts a *different* logical slot's cell.
        let logical = self.logical_slot(off, asn);
        // Own transmission cells (field devices with a route only).
        if !self.is_access_point() {
            for p in 1..=self.attempts {
                if logical == self.tx_slot(self.id, p) {
                    if let Some(target) = self.attempt_target(p) {
                        return Some(Cell {
                            class: TrafficClass::App,
                            action: CellAction::TxData { to: target, attempt: p },
                            offset: self.cell_offset(Self::attempt_offset(self.id, p), off, asn),
                            contention: false,
                        });
                    }
                }
            }
        }
        // Receive cells derived from the child table. A parent listens in
        // *all* of a child's attempt cells regardless of its nominal role:
        // nominally, primary parents are reached on attempts 1..A and the
        // backup on attempt A, but listening to every attempt makes the
        // schedule immune to role-swap races (a Best↔SecondBest promotion
        // at the child re-maps its attempts instantly, while the parents
        // learn of it asynchronously). The cost is idle listening — the
        // energy overhead the paper attributes to DiGS.
        for child in self.children.keys() {
            for p in 1..=self.attempts {
                if logical == self.tx_slot(*child, p) {
                    return Some(Cell {
                        class: TrafficClass::App,
                        action: CellAction::RxData,
                        offset: self.cell_offset(Self::attempt_offset(*child, p), off, asn),
                        contention: false,
                    });
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The Fig. 7 configuration: slotframes 61/11/7, two APs (#1, #2 in the
    /// paper, ids 0 and 1 here) and two field devices (#3, #4 → ids 2, 3).
    fn example_scheduler(id: u16) -> DigsScheduler {
        DigsScheduler::new(NodeId(id), 2, SlotframeLengths::example(), 3)
    }

    #[test]
    fn eq4_matches_figure7() {
        // Paper: #3's three attempts land in app slots 1, 2, 3 and #4's in
        // slots 4, 5, 6 of the 7-slot application slotframe.
        let s = example_scheduler(2);
        assert_eq!(s.tx_slot(NodeId(2), 1), 1);
        assert_eq!(s.tx_slot(NodeId(2), 2), 2);
        assert_eq!(s.tx_slot(NodeId(2), 3), 3);
        assert_eq!(s.tx_slot(NodeId(3), 1), 4);
        assert_eq!(s.tx_slot(NodeId(3), 2), 5);
        assert_eq!(s.tx_slot(NodeId(3), 3), 6);
    }

    #[test]
    fn tx_slots_wrap_modulo_slotframe() {
        let s = example_scheduler(2);
        // Device index 2 (id 4): slots 3*2+p = 7, 8, 9 → wrap to 0, 1, 2.
        assert_eq!(s.tx_slot(NodeId(4), 1), 0);
        assert_eq!(s.tx_slot(NodeId(4), 2), 1);
        assert_eq!(s.tx_slot(NodeId(4), 3), 2);
    }

    #[test]
    #[should_panic(expected = "access points have no application transmission cells")]
    fn ap_tx_slot_panics() {
        let s = example_scheduler(2);
        let _ = s.tx_slot(NodeId(0), 1);
    }

    #[test]
    #[should_panic(expected = "attempt out of range")]
    fn attempt_zero_panics() {
        let s = example_scheduler(2);
        let _ = s.tx_slot(NodeId(2), 0);
    }

    #[test]
    fn attempts_route_primary_then_backup() {
        let mut s = example_scheduler(2);
        s.set_parents(Some(NodeId(0)), Some(NodeId(1)));
        assert_eq!(s.attempt_target(1), Some(NodeId(0)));
        assert_eq!(s.attempt_target(2), Some(NodeId(0)));
        assert_eq!(s.attempt_target(3), Some(NodeId(1)));
    }

    #[test]
    fn backup_attempt_falls_back_to_primary() {
        let mut s = example_scheduler(2);
        s.set_parents(Some(NodeId(0)), None);
        assert_eq!(s.attempt_target(3), Some(NodeId(0)));
    }

    #[test]
    fn eb_cell_in_own_slot() {
        let s = example_scheduler(2);
        // Node id 2 → EB slot 2 of the 61-slot sync slotframe.
        let cell = s.cell(Asn(2)).expect("EB cell");
        assert_eq!(cell.class, TrafficClass::Sync);
        assert_eq!(cell.action, CellAction::TxBeacon);
        assert!(!cell.contention);
    }

    #[test]
    fn listens_for_parent_beacon() {
        let mut s = example_scheduler(2);
        s.set_parents(Some(NodeId(0)), Some(NodeId(1)));
        // Parent id 0 → EB slot 0; but slot 0 is also the shared routing
        // slot — sync must win the combination (paper's Fig. 7 narrative:
        // nodes with sync traffic in the first slot use it for sync).
        let cell = s.cell(Asn(0)).expect("cell");
        assert_eq!(cell.class, TrafficClass::Sync);
        assert_eq!(cell.action, CellAction::RxBeacon { from: NodeId(0) });
    }

    #[test]
    fn routing_shared_slot_when_no_sync() {
        let s = example_scheduler(2);
        // ASN 11 → routing offset 0 (shared slot), sync offset 11 (no EB for
        // id 2 or parents), app offset 4 (no cells for a parent-less node).
        let cell = s.cell(Asn(11)).expect("cell");
        assert_eq!(cell.class, TrafficClass::Routing);
        assert_eq!(cell.action, CellAction::Shared);
        assert!(cell.contention);
    }

    #[test]
    fn app_tx_cell_after_joining() {
        let mut s = example_scheduler(2);
        s.set_parents(Some(NodeId(0)), Some(NodeId(1)));
        // ASN 8: sync off 8 (idle), routing off 8 (idle), app off 1 →
        // attempt 1 toward the primary parent.
        let cell = s.cell(Asn(8)).expect("cell");
        assert_eq!(cell.class, TrafficClass::App);
        assert_eq!(cell.action, CellAction::TxData { to: NodeId(0), attempt: 1 });
        assert!(!cell.contention);
    }

    #[test]
    fn unjoined_node_has_no_app_tx() {
        let s = example_scheduler(2);
        for asn in 0..4697u64 {
            if let Some(cell) = s.cell(Asn(asn)) {
                assert!(
                    !matches!(cell.action, CellAction::TxData { .. }),
                    "unjoined node scheduled a data tx at {asn}"
                );
            }
        }
    }

    #[test]
    fn parent_listens_in_primary_childs_slots() {
        let mut ap = example_scheduler(0);
        ap.add_child(NodeId(2), ParentSlot::Best);
        // Child 2's attempt cells are app slots 1, 2, 3; the parent listens
        // in all of them (role-agnostic over-listening).
        let mut rx_slots = Vec::new();
        for asn in 0..7u64 {
            if let Some(cell) = ap.cell(Asn(asn)) {
                if cell.action == CellAction::RxData {
                    rx_slots.push(asn);
                }
            }
        }
        assert_eq!(rx_slots, vec![1, 2, 3]);
    }

    #[test]
    fn backup_parent_listens_in_childs_attempt_slots() {
        let mut ap = example_scheduler(1);
        ap.add_child(NodeId(2), ParentSlot::SecondBest);
        let mut rx_slots = Vec::new();
        for asn in 0..7u64 {
            if let Some(cell) = ap.cell(Asn(asn)) {
                if cell.action == CellAction::RxData {
                    rx_slots.push(asn);
                }
            }
        }
        // Slot 1 is masked by this AP's own EB slot (sync priority); the
        // remaining attempt cells of the child are listened on.
        assert_eq!(rx_slots, vec![2, 3]);
    }

    #[test]
    fn removed_child_frees_rx_cells() {
        let mut ap = example_scheduler(0);
        ap.add_child(NodeId(2), ParentSlot::Best);
        ap.remove_child(NodeId(2));
        for asn in 0..7u64 {
            if let Some(cell) = ap.cell(Asn(asn)) {
                assert_ne!(cell.action, CellAction::RxData);
            }
        }
    }

    #[test]
    fn no_negotiation_identical_schedules_from_identical_state() {
        let mut a = example_scheduler(2);
        let mut b = example_scheduler(2);
        a.set_parents(Some(NodeId(0)), Some(NodeId(1)));
        b.set_parents(Some(NodeId(0)), Some(NodeId(1)));
        for asn in 0..4697u64 {
            assert_eq!(a.cell(Asn(asn)), b.cell(Asn(asn)));
        }
    }

    #[test]
    fn schedule_repeats_with_hyper_period() {
        let mut s = example_scheduler(2);
        s.set_parents(Some(NodeId(0)), Some(NodeId(1)));
        let hp = SlotframeLengths::example().hyper_period();
        for asn in 0..200u64 {
            assert_eq!(s.cell(Asn(asn)), s.cell(Asn(asn + hp)));
        }
    }

    #[test]
    fn paper_lengths_give_collision_free_cells_for_testbed_a() {
        // 48 field devices × 3 attempts = 144 distinct slots < 151: no two
        // devices share an application slot.
        let lengths = SlotframeLengths::paper();
        let s = DigsScheduler::new(NodeId(2), 2, lengths, 3);
        let mut used = std::collections::HashSet::new();
        for id in 2..50u16 {
            for p in 1..=3u8 {
                assert!(
                    used.insert(s.tx_slot(NodeId(id), p)),
                    "slot collision for node {id} attempt {p}"
                );
            }
        }
    }

    #[test]
    fn randomization_off_is_the_identity() {
        let s = example_scheduler(2);
        for asn in 0..50u64 {
            assert_eq!(s.scheduled_slot(NodeId(2), 1, Asn(asn)), s.tx_slot(NodeId(2), 1));
            assert_eq!(
                s.scheduled_offset(NodeId(2), 1, Asn(asn)),
                DigsScheduler::attempt_offset(NodeId(2), 1)
            );
        }
    }

    #[test]
    fn randomized_slots_stay_a_bijection_each_epoch() {
        let mut s = example_scheduler(2);
        s.set_randomize(Some(0xdead_beef));
        for epoch in 0..20u64 {
            let asn = Asn(epoch * 7);
            let mut seen = std::collections::HashSet::new();
            for logical in 0..7u32 {
                let phys = s.physical_slot(logical, asn);
                assert!(phys < 7);
                assert!(seen.insert(phys), "epoch {epoch}: physical slot {phys} reused");
                assert_eq!(s.logical_slot(phys, asn), logical, "inverse mismatch");
            }
        }
    }

    #[test]
    fn randomized_schedule_changes_across_epochs() {
        let mut s = DigsScheduler::new(NodeId(2), 2, SlotframeLengths::paper(), 3);
        s.set_randomize(Some(7));
        let placements: std::collections::HashSet<(u32, u8)> = (0..24u64)
            .map(|epoch| {
                let asn = Asn(epoch * 151);
                (s.scheduled_slot(NodeId(2), 1, asn), s.scheduled_offset(NodeId(2), 1, asn).0)
            })
            .collect();
        // 24 epochs over a 151 × 16 cell space: re-draws must not be stuck.
        assert!(placements.len() > 12, "only {} distinct placements", placements.len());
    }

    #[test]
    fn child_tx_and_parent_rx_cells_stay_aligned_under_randomization() {
        let nonce = Some(0x5eed);
        let mut child = example_scheduler(2);
        child.set_parents(Some(NodeId(0)), Some(NodeId(1)));
        child.set_randomize(nonce);
        let mut parent = example_scheduler(0);
        parent.add_child(NodeId(2), ParentSlot::Best);
        parent.set_randomize(nonce);
        let mut paired = 0;
        for asn in 0..4697u64 {
            let asn = Asn(asn);
            if let Some(tx) = child.cell(asn) {
                if let CellAction::TxData { .. } = tx.action {
                    // Whenever the child fires, the parent must be listening
                    // on the same channel offset (unless sync masked the
                    // parent's cell — its EB slot has priority).
                    if let Some(rx) = parent.cell(asn) {
                        if rx.action == CellAction::RxData {
                            assert_eq!(rx.offset, tx.offset, "offset mismatch at {asn:?}");
                            paired += 1;
                        }
                    }
                }
            }
        }
        assert!(paired > 1000, "only {paired} paired cells in a hyper-period");
    }

    #[test]
    fn infer_attempt_at_inverts_randomized_placement() {
        let mut s = example_scheduler(0);
        s.set_randomize(Some(42));
        for epoch in 0..10u64 {
            for p in 1..=3u8 {
                let slot = s.scheduled_slot(NodeId(2), p, Asn(epoch * 7));
                let asn = Asn(epoch * 7 + u64::from(slot));
                assert_eq!(s.infer_attempt_at(NodeId(2), asn), Some(p));
            }
        }
    }

    #[test]
    fn identical_nonces_give_identical_schedules() {
        let mk = || {
            let mut s = example_scheduler(2);
            s.set_parents(Some(NodeId(0)), Some(NodeId(1)));
            s.set_randomize(Some(99));
            s
        };
        let (a, b) = (mk(), mk());
        for asn in 0..4697u64 {
            assert_eq!(a.cell(Asn(asn)), b.cell(Asn(asn)));
        }
        // And the cache state never leaks into equality.
        assert_eq!(a, b);
    }
}
