//! Slotframes, traffic classes, cells, and schedule combination.
//!
//! Following Orchestra's design (adopted by DiGS), the network traffic is
//! separated into three classes, each with its own slotframe whose lengths
//! are chosen **mutually coprime** so that every pairwise slot alignment
//! recurs and no class is starved after priority combination.

use core::fmt;
use digs_sim::channel::ChannelOffset;
use digs_sim::ids::NodeId;
use digs_sim::time::Asn;

/// The three traffic classes, in descending combination priority
/// (paper Section VI: "The most critical synchronization traffic has the
/// highest priority, while the application traffic has the lowest").
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, serde::Serialize, serde::Deserialize,
)]
pub enum TrafficClass {
    /// Time synchronization (Enhanced Beacons). Highest priority.
    Sync,
    /// Routing signalling (join-in / joined-callback / DIO).
    Routing,
    /// Application data. Lowest priority.
    App,
}

impl fmt::Display for TrafficClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            TrafficClass::Sync => "sync",
            TrafficClass::Routing => "routing",
            TrafficClass::App => "app",
        };
        f.write_str(s)
    }
}

/// The three slotframe lengths.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub struct SlotframeLengths {
    /// Synchronization slotframe length, in slots.
    pub sync: u32,
    /// Routing slotframe length, in slots.
    pub routing: u32,
    /// Application slotframe length, in slots.
    pub app: u32,
}

impl SlotframeLengths {
    /// The paper's experimental configuration: 557 / 47 / 151.
    pub fn paper() -> SlotframeLengths {
        SlotframeLengths { sync: 557, routing: 47, app: 151 }
    }

    /// The paper's worked example (Fig. 7): 61 / 11 / 7.
    pub fn example() -> SlotframeLengths {
        SlotframeLengths { sync: 61, routing: 11, app: 7 }
    }

    /// Validates that the lengths are positive and pairwise coprime.
    pub fn validate(&self) -> Result<(), SlotframeError> {
        for (name, len) in [("sync", self.sync), ("routing", self.routing), ("app", self.app)] {
            if len == 0 {
                return Err(SlotframeError::ZeroLength { which: name });
            }
        }
        for (a, b, names) in [
            (self.sync, self.routing, ("sync", "routing")),
            (self.sync, self.app, ("sync", "app")),
            (self.routing, self.app, ("routing", "app")),
        ] {
            if gcd(a, b) != 1 {
                return Err(SlotframeError::NotCoprime { a: names.0, b: names.1 });
            }
        }
        Ok(())
    }

    /// The hyper-period after which the combined schedule repeats
    /// (product of the three lengths when coprime).
    pub fn hyper_period(&self) -> u64 {
        u64::from(self.sync) * u64::from(self.routing) * u64::from(self.app)
    }
}

/// Errors from [`SlotframeLengths::validate`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SlotframeError {
    /// A slotframe length was zero.
    ZeroLength {
        /// Which slotframe.
        which: &'static str,
    },
    /// Two slotframe lengths share a common factor.
    NotCoprime {
        /// First slotframe.
        a: &'static str,
        /// Second slotframe.
        b: &'static str,
    },
}

impl fmt::Display for SlotframeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SlotframeError::ZeroLength { which } => {
                write!(f, "{which} slotframe length must be positive")
            }
            SlotframeError::NotCoprime { a, b } => {
                write!(f, "{a} and {b} slotframe lengths must be coprime")
            }
        }
    }
}

impl std::error::Error for SlotframeError {}

fn gcd(mut a: u32, mut b: u32) -> u32 {
    while b != 0 {
        (a, b) = (b, a % b);
    }
    a
}

/// What a cell asks the node to do with its radio.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum CellAction {
    /// Broadcast an Enhanced Beacon.
    TxBeacon,
    /// Listen for the best parent's (time source's) Enhanced Beacon.
    RxBeacon {
        /// The time source whose beacon we expect.
        from: NodeId,
    },
    /// The shared routing cell: transmit pending routing traffic with
    /// CSMA/CA, otherwise listen.
    Shared,
    /// Transmit application data to a parent (dedicated or
    /// receiver-arbitrated, see [`Cell::contention`]).
    TxData {
        /// Next-hop parent.
        to: NodeId,
        /// Which transmission attempt this cell carries (1-based;
        /// WirelessHART sends attempts 1–2 on the primary route and
        /// attempt 3 on the backup route).
        attempt: u8,
    },
    /// Listen for application data from children.
    RxData,
}

/// A fully resolved cell for one slot, after schedule combination.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct Cell {
    /// Which traffic class won this slot.
    pub class: TrafficClass,
    /// The action to perform.
    pub action: CellAction,
    /// TSCH channel offset for the cell.
    pub offset: ChannelOffset,
    /// Whether transmissions in this cell contend (CSMA/CA).
    pub contention: bool,
}

/// Combines per-class candidate cells by priority: sync > routing > app
/// (paper Section VI, "Schedule Combination"). Returns `None` when every
/// class is idle this slot (the node sleeps).
pub fn combine(sync: Option<Cell>, routing: Option<Cell>, app: Option<Cell>) -> Option<Cell> {
    sync.or(routing).or(app)
}

/// Derives the channel offset used by a node's sender-owned cells
/// (beacons, DiGS data cells): a per-node offset spreads concurrent cells
/// across the 16 channels.
pub fn node_offset(id: NodeId) -> ChannelOffset {
    ChannelOffset::new((id.0 % 16) as u8)
}

/// The channel offset of the common shared routing cell.
pub const ROUTING_OFFSET: ChannelOffset = ChannelOffset(1);

/// The slot index (within the routing slotframe) of the common shared
/// routing cell.
pub const ROUTING_SLOT: u32 = 0;

/// Slot offset of a slotframe at an ASN.
pub fn frame_offset(asn: Asn, len: u32) -> u32 {
    asn.slotframe_offset(len)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_lengths_are_coprime() {
        assert_eq!(SlotframeLengths::paper().validate(), Ok(()));
        assert_eq!(SlotframeLengths::example().validate(), Ok(()));
    }

    #[test]
    fn example_hyper_period_matches_paper() {
        // The paper: 61 × 11 × 7 = 4697 slots.
        assert_eq!(SlotframeLengths::example().hyper_period(), 4697);
    }

    #[test]
    fn non_coprime_rejected() {
        let l = SlotframeLengths { sync: 10, routing: 4, app: 7 };
        assert_eq!(l.validate(), Err(SlotframeError::NotCoprime { a: "sync", b: "routing" }));
    }

    #[test]
    fn zero_length_rejected() {
        let l = SlotframeLengths { sync: 0, routing: 4, app: 7 };
        assert_eq!(l.validate(), Err(SlotframeError::ZeroLength { which: "sync" }));
    }

    #[test]
    fn combination_priority_order() {
        let mk = |class| Cell {
            class,
            action: CellAction::TxBeacon,
            offset: ChannelOffset::new(0),
            contention: false,
        };
        let sync = Some(mk(TrafficClass::Sync));
        let routing = Some(mk(TrafficClass::Routing));
        let app = Some(mk(TrafficClass::App));
        assert_eq!(combine(sync, routing, app).map(|c| c.class), Some(TrafficClass::Sync));
        assert_eq!(combine(None, routing, app).map(|c| c.class), Some(TrafficClass::Routing));
        assert_eq!(combine(None, None, app).map(|c| c.class), Some(TrafficClass::App));
        assert_eq!(combine(None, None, None), None);
    }

    #[test]
    fn traffic_class_priority_matches_ord() {
        assert!(TrafficClass::Sync < TrafficClass::Routing);
        assert!(TrafficClass::Routing < TrafficClass::App);
    }

    #[test]
    fn node_offsets_spread() {
        assert_eq!(node_offset(NodeId(0)), ChannelOffset(0));
        assert_eq!(node_offset(NodeId(5)), ChannelOffset(5));
        assert_eq!(node_offset(NodeId(21)), ChannelOffset(5));
    }

    #[test]
    fn gcd_works() {
        assert_eq!(gcd(12, 18), 6);
        assert_eq!(gcd(7, 13), 1);
        assert_eq!(gcd(0, 5), 5);
    }

    #[test]
    fn display_strings() {
        assert_eq!(TrafficClass::Sync.to_string(), "sync");
        assert_eq!(
            SlotframeError::ZeroLength { which: "app" }.to_string(),
            "app slotframe length must be positive"
        );
    }
}
