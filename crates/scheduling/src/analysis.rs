//! Analytical performance model (paper Section VI-B).
//!
//! - Eq. 5: contention probability of the shared routing slot under a
//!   Poisson traffic model;
//! - Eq. 6: probability that a slotframe's cell is skipped because a
//!   higher-priority slotframe claimed the slot during combination.

/// Eq. 5 — the contention probability of the shared routing slot:
///
/// ```text
/// pc = 1 − e^(−T·L/N)   if L ≥ N
/// pc = 1 − e^(−T)       otherwise
/// ```
///
/// where `t` is the average traffic load on the slot (Poisson), `n` the
/// number of nodes, and `l` the slotframe length.
///
/// # Panics
///
/// Panics if `t` is negative or `n` is zero.
pub fn contention_probability(t: f64, n: u32, l: u32) -> f64 {
    assert!(t >= 0.0, "traffic load cannot be negative");
    assert!(n > 0, "need at least one node");
    let exponent = if l >= n { t * f64::from(l) / f64::from(n) } else { t };
    1.0 - (-exponent).exp()
}

/// Occupancy description of one slotframe for the Eq. 6 skip model: its
/// length and how many of its slots carry scheduled (non-idle) cells for
/// the node under analysis.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SlotframeOccupancy {
    /// Slotframe length in slots.
    pub length: u32,
    /// Number of occupied (scheduled) slots per slotframe period.
    pub occupied: u32,
}

impl SlotframeOccupancy {
    /// Fraction of this slotframe's slots that are occupied.
    ///
    /// # Panics
    ///
    /// Panics if `occupied > length` or `length == 0`.
    pub fn density(&self) -> f64 {
        assert!(self.length > 0, "slotframe length must be positive");
        assert!(self.occupied <= self.length, "cannot occupy more slots than exist");
        f64::from(self.occupied) / f64::from(self.length)
    }
}

/// Eq. 6 — the probability that a given scheduled cell of slotframe `a` is
/// skipped because a slot of any *higher-priority* slotframe lands on it:
///
/// ```text
/// pskip(A) = 1 − Π_{B ∈ SF, pri(B) > pri(A)} (1 − p(conf_{A,B}))
/// ```
///
/// With coprime slotframe lengths every alignment is equally likely, so
/// `p(conf_{A,B})` is simply the occupancy density of `B`.
pub fn skip_probability(higher_priority: &[SlotframeOccupancy]) -> f64 {
    let survive: f64 = higher_priority.iter().map(|sf| 1.0 - sf.density()).product();
    1.0 - survive
}

/// Convenience: the skip probabilities of the three DiGS slotframes for a
/// node whose sync slotframe has `sync_occupied` busy slots (its own EB +
/// its parent's EB), whose routing slotframe has one shared slot, and whose
/// application slotframe has `app_occupied` busy slots.
///
/// Returns `(p_skip_sync, p_skip_routing, p_skip_app)`.
pub fn digs_skip_probabilities(
    lengths: (u32, u32, u32),
    sync_occupied: u32,
    app_occupied: u32,
) -> (f64, f64, f64) {
    let (sync_len, routing_len, app_len) = lengths;
    let sync = SlotframeOccupancy { length: sync_len, occupied: sync_occupied };
    let routing = SlotframeOccupancy { length: routing_len, occupied: 1 };
    let _app = SlotframeOccupancy { length: app_len, occupied: app_occupied };
    (
        skip_probability(&[]),              // sync: highest priority, never skipped
        skip_probability(&[sync]),          // routing: yields to sync
        skip_probability(&[sync, routing]), // app: yields to both
    )
}

/// Fraction of a slotframe's slots claimed by scheduled cells, clamped
/// to `[0, 1]`. Unlike [`SlotframeOccupancy::density`] this is total on
/// any input (a zero-length slotframe reads as fully utilized, and
/// over-claiming saturates at 1.0), which is what the telemetry gauge
/// needs: it observes live scheduler state mid-convergence, where
/// transient over-subscription is normal rather than a caller bug.
pub fn slotframe_utilization(claimed: usize, length: u32) -> f64 {
    if length == 0 {
        return 1.0;
    }
    (claimed as f64 / f64::from(length)).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slotframe_utilization_is_total_and_clamped() {
        assert_eq!(slotframe_utilization(0, 101), 0.0);
        assert!((slotframe_utilization(5, 101) - 5.0 / 101.0).abs() < 1e-12);
        assert_eq!(slotframe_utilization(101, 101), 1.0);
        assert_eq!(slotframe_utilization(500, 101), 1.0, "over-claiming saturates");
        assert_eq!(slotframe_utilization(3, 0), 1.0, "zero-length reads as full");
    }

    #[test]
    fn contention_zero_load_is_zero() {
        assert_eq!(contention_probability(0.0, 10, 47), 0.0);
    }

    #[test]
    fn contention_grows_with_load() {
        let low = contention_probability(0.1, 10, 47);
        let high = contention_probability(1.0, 10, 47);
        assert!(low < high);
        assert!(high < 1.0);
    }

    #[test]
    fn contention_branches_on_l_vs_n() {
        // L < N uses the plain 1 − e^{−T} branch.
        let small_l = contention_probability(0.5, 100, 47);
        assert!((small_l - (1.0 - (-0.5f64).exp())).abs() < 1e-12);
        // L ≥ N scales the exponent by L/N.
        let big_l = contention_probability(0.5, 10, 47);
        assert!((big_l - (1.0 - (-0.5f64 * 4.7).exp())).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "traffic load cannot be negative")]
    fn negative_load_panics() {
        let _ = contention_probability(-1.0, 10, 47);
    }

    #[test]
    fn skip_probability_empty_is_zero() {
        assert_eq!(skip_probability(&[]), 0.0);
    }

    #[test]
    fn skip_probability_composes() {
        let a = SlotframeOccupancy { length: 10, occupied: 1 };
        let b = SlotframeOccupancy { length: 5, occupied: 1 };
        let p = skip_probability(&[a, b]);
        assert!((p - (1.0 - 0.9 * 0.8)).abs() < 1e-12);
    }

    #[test]
    fn paper_config_skip_probabilities_are_low() {
        // Paper: "the probability of an application or routing slotframe to
        // be skipped is expected to be very low in practice". 557-slot sync
        // frame with 2 busy slots, 151-slot app frame with 3 busy slots.
        let (s, r, a) = digs_skip_probabilities((557, 47, 151), 2, 3);
        assert_eq!(s, 0.0);
        assert!(r < 0.01, "routing skip {r}");
        assert!(a < 0.03, "app skip {a}");
    }

    #[test]
    fn density_bounds() {
        let sf = SlotframeOccupancy { length: 4, occupied: 4 };
        assert_eq!(sf.density(), 1.0);
        assert_eq!(skip_probability(&[sf]), 1.0);
    }

    #[test]
    #[should_panic(expected = "cannot occupy more slots than exist")]
    fn over_occupancy_panics() {
        let _ = SlotframeOccupancy { length: 4, occupied: 5 }.density();
    }
}
