//! The Orchestra baseline scheduler (Duquennoy et al., SenSys 2015),
//! configured as in the paper's comparison.
//!
//! Orchestra schedules autonomously over RPL with a **single preferred
//! parent**. Its unicast cells come in two flavors:
//!
//! - **Sender-based (default here)**: every node owns one transmission
//!   cell per application slotframe at `id mod L_app`, directed to its
//!   preferred parent; the parent derives matching receive cells from its
//!   child set (learned from RPL's DAO signalling). This is the only mode
//!   whose sink capacity scales with the paper's configuration — a
//!   receiver-based cell at the paper's 151-slot application slotframe
//!   would cap each access point at 0.66 packets/s, below the offered
//!   load of the Testbed A workload — and it is the mode DiGS's Eq. 4
//!   structurally extends (with multiple attempts and a backup parent).
//! - **Receiver-based** (kept as an ablation): every node listens on one
//!   cell per unicast slotframe at `id mod L_unicast`; children of the
//!   same parent contend for the parent's cell.
//!
//! EBs and routing traffic use the same sync and shared-slot layout as
//! DiGS (the paper runs both protocols with identical slotframe lengths
//! 557/47/151).

use crate::slotframe::{
    combine, frame_offset, node_offset, Cell, CellAction, SlotframeLengths, TrafficClass,
    ROUTING_OFFSET, ROUTING_SLOT,
};
use digs_sim::ids::NodeId;
use digs_sim::time::Asn;
use std::collections::BTreeSet;

/// Unicast slotframe length for the receiver-based ablation mode.
pub const DEFAULT_UNICAST_LEN: u32 = 53;

/// Which Orchestra unicast-cell flavor to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum OrchestraMode {
    /// Sender-owned dedicated cells; receive cells derived from children.
    SenderBased,
    /// Receiver-owned shared cells; siblings contend.
    ReceiverBased {
        /// Length of the unicast slotframe.
        unicast_len: u32,
    },
}

/// The Orchestra scheduler state for one node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OrchestraScheduler {
    id: NodeId,
    lengths: SlotframeLengths,
    mode: OrchestraMode,
    preferred_parent: Option<NodeId>,
    /// Children (sender-based mode only): nodes whose preferred parent is
    /// us, learned from RPL signalling and observed traffic.
    children: BTreeSet<NodeId>,
}

impl OrchestraScheduler {
    /// Creates a sender-based scheduler for `id` (the paper's
    /// configuration).
    ///
    /// # Panics
    ///
    /// Panics if the slotframe lengths are invalid.
    pub fn new(id: NodeId, lengths: SlotframeLengths) -> OrchestraScheduler {
        Self::with_mode(id, lengths, OrchestraMode::SenderBased)
    }

    /// Creates a scheduler with an explicit unicast-cell mode.
    ///
    /// # Panics
    ///
    /// Panics if the slotframe lengths are invalid or a receiver-based
    /// unicast slotframe length is 0.
    pub fn with_mode(
        id: NodeId,
        lengths: SlotframeLengths,
        mode: OrchestraMode,
    ) -> OrchestraScheduler {
        lengths.validate().expect("valid slotframe lengths");
        if let OrchestraMode::ReceiverBased { unicast_len } = mode {
            assert!(unicast_len > 0, "unicast slotframe length must be positive");
        }
        OrchestraScheduler { id, lengths, mode, preferred_parent: None, children: BTreeSet::new() }
    }

    /// This node's id.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// The configured unicast mode.
    pub fn mode(&self) -> OrchestraMode {
        self.mode
    }

    /// Updates the preferred parent (on RPL parent change).
    pub fn set_parent(&mut self, parent: Option<NodeId>) {
        self.preferred_parent = parent;
    }

    /// Current preferred parent.
    pub fn parent(&self) -> Option<NodeId> {
        self.preferred_parent
    }

    /// Registers a child (sender-based mode; no-op semantics for
    /// receiver-based, which always listens in its own cell).
    pub fn add_child(&mut self, child: NodeId) {
        self.children.insert(child);
    }

    /// Unregisters a child.
    pub fn remove_child(&mut self, child: NodeId) {
        self.children.remove(&child);
    }

    /// Registered children.
    pub fn children(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.children.iter().copied()
    }

    /// The sender-based transmission slot of `node` in the application
    /// slotframe.
    pub fn sbs_tx_slot(&self, node: NodeId) -> u32 {
        u32::from(node.0) % self.lengths.app
    }

    /// The receiver-based cell slot owned by `node` (ablation mode).
    pub fn rbs_rx_slot(&self, node: NodeId, unicast_len: u32) -> u32 {
        u32::from(node.0) % unicast_len
    }

    /// The sync-slotframe slot in which `node` broadcasts its EB.
    pub fn eb_slot(&self, node: NodeId) -> u32 {
        u32::from(node.0) % self.lengths.sync
    }

    /// Resolves the combined cell for a slot (`None` = sleep).
    pub fn cell(&self, asn: Asn) -> Option<Cell> {
        combine(self.sync_cell(asn), self.routing_cell(asn), self.app_cell(asn))
    }

    fn sync_cell(&self, asn: Asn) -> Option<Cell> {
        let off = frame_offset(asn, self.lengths.sync);
        if off == self.eb_slot(self.id) {
            return Some(Cell {
                class: TrafficClass::Sync,
                action: CellAction::TxBeacon,
                offset: node_offset(self.id),
                contention: false,
            });
        }
        if let Some(p) = self.preferred_parent {
            if off == self.eb_slot(p) {
                return Some(Cell {
                    class: TrafficClass::Sync,
                    action: CellAction::RxBeacon { from: p },
                    offset: node_offset(p),
                    contention: false,
                });
            }
        }
        None
    }

    fn routing_cell(&self, asn: Asn) -> Option<Cell> {
        if frame_offset(asn, self.lengths.routing) == ROUTING_SLOT {
            Some(Cell {
                class: TrafficClass::Routing,
                action: CellAction::Shared,
                offset: ROUTING_OFFSET,
                contention: true,
            })
        } else {
            None
        }
    }

    fn app_cell(&self, asn: Asn) -> Option<Cell> {
        match self.mode {
            OrchestraMode::SenderBased => {
                let off = frame_offset(asn, self.lengths.app);
                if let Some(p) = self.preferred_parent {
                    if off == self.sbs_tx_slot(self.id) {
                        return Some(Cell {
                            class: TrafficClass::App,
                            action: CellAction::TxData { to: p, attempt: 1 },
                            offset: node_offset(self.id),
                            contention: false,
                        });
                    }
                }
                for child in &self.children {
                    if off == self.sbs_tx_slot(*child) {
                        return Some(Cell {
                            class: TrafficClass::App,
                            action: CellAction::RxData,
                            offset: node_offset(*child),
                            contention: false,
                        });
                    }
                }
                None
            }
            OrchestraMode::ReceiverBased { unicast_len } => {
                let off = frame_offset(asn, unicast_len);
                if let Some(p) = self.preferred_parent {
                    if off == self.rbs_rx_slot(p, unicast_len) {
                        return Some(Cell {
                            class: TrafficClass::App,
                            action: CellAction::TxData { to: p, attempt: 1 },
                            offset: node_offset(p),
                            contention: true, // siblings share the parent's cell
                        });
                    }
                }
                if off == self.rbs_rx_slot(self.id, unicast_len) {
                    return Some(Cell {
                        class: TrafficClass::App,
                        action: CellAction::RxData,
                        offset: node_offset(self.id),
                        contention: true,
                    });
                }
                None
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sbs(id: u16) -> OrchestraScheduler {
        OrchestraScheduler::new(NodeId(id), SlotframeLengths::example())
    }

    fn rbs(id: u16) -> OrchestraScheduler {
        OrchestraScheduler::with_mode(
            NodeId(id),
            SlotframeLengths::example(),
            OrchestraMode::ReceiverBased { unicast_len: 7 },
        )
    }

    #[test]
    fn sbs_transmits_in_own_cell() {
        let mut s = sbs(3);
        s.set_parent(Some(NodeId(5)));
        // ASN 10: app offset 3 (own SBS cell); sync offset 10 and routing
        // offset 10 are idle.
        let cell = s.cell(Asn(10)).expect("tx cell");
        assert_eq!(cell.action, CellAction::TxData { to: NodeId(5), attempt: 1 });
        assert!(!cell.contention, "SBS cells are dedicated");
        assert_eq!(cell.offset, node_offset(NodeId(3)));
    }

    #[test]
    fn sbs_parent_listens_in_childs_cell() {
        let mut p = sbs(5);
        p.add_child(NodeId(3));
        let cell = p.cell(Asn(10)).expect("rx cell");
        assert_eq!(cell.action, CellAction::RxData);
        assert_eq!(cell.offset, node_offset(NodeId(3)));
    }

    #[test]
    fn sbs_without_children_has_no_rx_cells() {
        let s = sbs(5);
        for asn in 0..4697u64 {
            if let Some(cell) = s.cell(Asn(asn)) {
                assert_ne!(cell.action, CellAction::RxData, "no children registered");
            }
        }
    }

    #[test]
    fn sbs_removed_child_frees_cell() {
        let mut p = sbs(5);
        p.add_child(NodeId(3));
        p.remove_child(NodeId(3));
        for asn in 0..700u64 {
            if let Some(cell) = p.cell(Asn(asn)) {
                assert_ne!(cell.action, CellAction::RxData);
            }
        }
    }

    #[test]
    fn rbs_owns_one_rx_cell_per_slotframe() {
        let s = rbs(3);
        let rx_cells: Vec<u64> = (0..77u64)
            .filter(|asn| matches!(s.cell(Asn(*asn)).map(|c| c.action), Some(CellAction::RxData)))
            .collect();
        assert!(!rx_cells.is_empty());
        assert!(rx_cells.iter().all(|asn| asn % 7 == 3));
    }

    #[test]
    fn rbs_transmits_in_parents_cell_with_contention() {
        let mut s = rbs(3);
        s.set_parent(Some(NodeId(5)));
        // ASN 12: unicast offset 12 % 7 = 5 (the parent's cell).
        let cell = s.cell(Asn(12)).expect("tx cell");
        assert_eq!(cell.action, CellAction::TxData { to: NodeId(5), attempt: 1 });
        assert!(cell.contention, "RBS cells are contention cells");
    }

    #[test]
    fn rbs_siblings_share_the_parents_cell() {
        let mut a = rbs(3);
        let mut b = rbs(4);
        a.set_parent(Some(NodeId(5)));
        b.set_parent(Some(NodeId(5)));
        let ca = a.cell(Asn(12)).expect("cell");
        let cb = b.cell(Asn(12)).expect("cell");
        assert_eq!(ca.action, cb.action);
        assert_eq!(ca.offset, cb.offset);
    }

    #[test]
    fn sync_beats_app() {
        let mut s = sbs(0);
        s.set_parent(Some(NodeId(1)));
        // ASN 0 is node 0's EB slot and also its SBS cell: sync wins.
        let cell = s.cell(Asn(0)).expect("cell");
        assert_eq!(cell.class, TrafficClass::Sync);
        assert_eq!(cell.action, CellAction::TxBeacon);
    }

    #[test]
    fn orphan_has_no_tx_cell() {
        let s = sbs(3);
        for asn in 0..4697u64 {
            if let Some(cell) = s.cell(Asn(asn)) {
                assert!(!matches!(cell.action, CellAction::TxData { .. }));
            }
        }
    }

    #[test]
    fn schedule_deterministic() {
        let mut a = sbs(7);
        let mut b = sbs(7);
        a.set_parent(Some(NodeId(2)));
        b.set_parent(Some(NodeId(2)));
        for asn in 0..1000u64 {
            assert_eq!(a.cell(Asn(asn)), b.cell(Asn(asn)));
        }
    }
}
