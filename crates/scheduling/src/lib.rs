//! # digs-scheduling — autonomous TSCH scheduling
//!
//! The scheduling layer of the DiGS (ICDCS 2018) reproduction:
//!
//! - [`slotframe`] — slotframe lengths, traffic classes, cells, and the
//!   priority-based schedule combination rule (sync > routing > application);
//! - [`digs_sched`] — **the paper's autonomous scheduler** (Section VI):
//!   every node derives its transmission and reception cells purely from its
//!   node id, the number of access points, and its routing state — no
//!   schedule negotiation with neighbors;
//! - [`orchestra`] — the Orchestra baseline (SenSys 2015): receiver-based
//!   unicast cells over RPL;
//! - [`analysis`] — the paper's Eq. 5 (shared-slot contention probability)
//!   and Eq. 6 (slotframe skip probability).
//!
//! Schedulers are pure functions of `(state, ASN) → cell`; the `digs` crate
//! turns cells into simulator slot intents.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod digs_sched;
pub mod orchestra;
pub mod slotframe;

pub use digs_sched::DigsScheduler;
pub use orchestra::OrchestraScheduler;
pub use slotframe::{Cell, CellAction, SlotframeLengths, TrafficClass};
