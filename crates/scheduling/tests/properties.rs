//! Property-based tests for the scheduling crate.

use digs_routing::messages::ParentSlot;
use digs_scheduling::analysis::{contention_probability, skip_probability, SlotframeOccupancy};
use digs_scheduling::slotframe::{combine, Cell, CellAction, TrafficClass};
use digs_scheduling::{DigsScheduler, OrchestraScheduler, SlotframeLengths};
use digs_sim::channel::ChannelOffset;
use digs_sim::ids::NodeId;
use digs_sim::time::Asn;
use proptest::prelude::*;

fn any_cell(class: TrafficClass) -> Cell {
    Cell { class, action: CellAction::TxBeacon, offset: ChannelOffset::new(0), contention: false }
}

proptest! {
    /// Schedule combination always returns the highest-priority non-idle
    /// class, and `None` only when every class is idle.
    #[test]
    fn combination_priority_total(s in any::<bool>(), r in any::<bool>(), a in any::<bool>()) {
        let sync = s.then(|| any_cell(TrafficClass::Sync));
        let routing = r.then(|| any_cell(TrafficClass::Routing));
        let app = a.then(|| any_cell(TrafficClass::App));
        let combined = combine(sync, routing, app);
        match combined {
            None => prop_assert!(!s && !r && !a),
            Some(cell) => {
                let expected = if s {
                    TrafficClass::Sync
                } else if r {
                    TrafficClass::Routing
                } else {
                    TrafficClass::App
                };
                prop_assert_eq!(cell.class, expected);
            }
        }
    }

    /// Over one full application slotframe, a joined DiGS node is offered
    /// exactly `A` transmission cells (minus any masked by higher-priority
    /// slotframes), and they target only its two parents.
    #[test]
    fn digs_tx_cells_per_frame(id in 2u16..50, frame in 0u64..20) {
        let lengths = SlotframeLengths::paper();
        let mut s = DigsScheduler::new(NodeId(id), 2, lengths, 3);
        s.set_parents(Some(NodeId(0)), Some(NodeId(1)));
        let start = frame * u64::from(lengths.app);
        let mut tx = 0;
        for asn in start..start + u64::from(lengths.app) {
            if let Some(cell) = s.cell(Asn(asn)) {
                if let CellAction::TxData { to, .. } = cell.action {
                    tx += 1;
                    prop_assert!(to == NodeId(0) || to == NodeId(1));
                }
            }
        }
        prop_assert!(tx <= 3);
        prop_assert!(tx >= 1, "higher-priority frames can mask at most 2 of 3 cells");
    }

    /// Attempt channel offsets are valid and distinct across a packet's
    /// attempts (the jam-resilience property).
    #[test]
    fn attempt_offsets_distinct(id in 0u16..1000) {
        let offs: Vec<u8> = (1..=3u8)
            .map(|p| DigsScheduler::attempt_offset(NodeId(id), p).0)
            .collect();
        prop_assert!(offs.iter().all(|o| *o < 16));
        prop_assert_ne!(offs[0], offs[1]);
        prop_assert_ne!(offs[1], offs[2]);
        prop_assert_ne!(offs[0], offs[2]);
    }

    /// An Orchestra node's schedule contains at most one data transmission
    /// cell per unicast slotframe.
    #[test]
    fn orchestra_single_attempt_per_frame(id in 2u16..50, parent in 0u16..2, frame in 0u64..20) {
        let lengths = SlotframeLengths::paper();
        let mut s = OrchestraScheduler::new(NodeId(id), lengths);
        s.set_parent(Some(NodeId(parent)));
        let start = frame * u64::from(lengths.app);
        let tx = (start..start + u64::from(lengths.app))
            .filter(|asn| {
                matches!(
                    s.cell(Asn(*asn)).map(|c| c.action),
                    Some(CellAction::TxData { .. })
                )
            })
            .count();
        prop_assert!(tx <= 1);
    }

    /// Eq. 5's contention probability is a valid probability, increasing
    /// in the offered load.
    #[test]
    fn eq5_is_probability(t1 in 0.0f64..5.0, t2 in 0.0f64..5.0, n in 1u32..300, l in 1u32..600) {
        let p1 = contention_probability(t1.min(t2), n, l);
        let p2 = contention_probability(t1.max(t2), n, l);
        prop_assert!((0.0..=1.0).contains(&p1));
        prop_assert!((0.0..=1.0).contains(&p2));
        prop_assert!(p1 <= p2 + 1e-12);
    }

    /// Eq. 6's skip probability grows monotonically as higher-priority
    /// slotframes are added, and stays a probability.
    #[test]
    fn eq6_monotone_in_interferers(
        frames in prop::collection::vec((1u32..600, 0u32..20), 0..6)
    ) {
        let occ: Vec<SlotframeOccupancy> = frames
            .iter()
            .map(|(len, occ)| SlotframeOccupancy { length: *len, occupied: (*occ).min(*len) })
            .collect();
        let mut prev = 0.0;
        for k in 0..=occ.len() {
            let p = skip_probability(&occ[..k]);
            prop_assert!((0.0..=1.0).contains(&p));
            prop_assert!(p >= prev - 1e-12);
            prev = p;
        }
    }

    /// Per-epoch schedule randomization preserves the Eq. 4 invariant:
    /// for any nonce and epoch, distinct `(node, attempt)` pairs still
    /// occupy distinct physical application slots (the permutation is a
    /// bijection, so it cannot introduce collisions).
    #[test]
    fn randomization_keeps_slots_collision_free(nonce in any::<u64>(), epoch in 0u64..1000) {
        let lengths = SlotframeLengths::paper();
        let mut s = DigsScheduler::new(NodeId(2), 2, lengths, 3);
        s.set_randomize(Some(nonce));
        let asn = Asn(epoch * u64::from(lengths.app));
        let mut seen = std::collections::BTreeSet::new();
        for id in 2u16..52 {
            for p in 1..=3u8 {
                let slot = s.scheduled_slot(NodeId(id), p, asn);
                prop_assert!(slot < lengths.app);
                prop_assert!(seen.insert(slot), "physical-slot collision at node {} attempt {}", id, p);
            }
        }
    }

    /// A transmitting child and a listening parent — independent scheduler
    /// instances sharing only the network-wide nonce — agree on the
    /// physical slot and shifted channel offset of every attempt, and the
    /// parent's epoch-aware inversion recovers the attempt number.
    #[test]
    fn randomization_keeps_child_and_parent_aligned(
        nonce in any::<u64>(), epoch in 0u64..1000, child in 2u16..50, p in 1u8..=3
    ) {
        let lengths = SlotframeLengths::paper();
        let mut tx = DigsScheduler::new(NodeId(child), 2, lengths, 3);
        let mut rx = DigsScheduler::new(NodeId(0), 2, lengths, 3);
        tx.set_randomize(Some(nonce));
        rx.set_randomize(Some(nonce));
        let frame_start = epoch * u64::from(lengths.app);
        let slot = tx.scheduled_slot(NodeId(child), p, Asn(frame_start));
        let asn = Asn(frame_start + u64::from(slot));
        prop_assert_eq!(rx.scheduled_slot(NodeId(child), p, asn), slot);
        let off = tx.scheduled_offset(NodeId(child), p, asn);
        prop_assert!(off.0 < 16);
        prop_assert_eq!(rx.scheduled_offset(NodeId(child), p, asn), off);
        prop_assert_eq!(rx.infer_attempt_at(NodeId(child), asn), Some(p));
    }

    /// With randomization off, the physical schedule is exactly Eq. 4 with
    /// the static per-attempt channel offsets, at every epoch.
    #[test]
    fn randomization_off_is_identity_everywhere(epoch in 0u64..1000, node in 2u16..50, p in 1u8..=3) {
        let lengths = SlotframeLengths::paper();
        let s = DigsScheduler::new(NodeId(2), 2, lengths, 3);
        let asn = Asn(epoch * u64::from(lengths.app));
        prop_assert_eq!(s.scheduled_slot(NodeId(node), p, asn), s.tx_slot(NodeId(node), p));
        prop_assert_eq!(
            s.scheduled_offset(NodeId(node), p, asn),
            DigsScheduler::attempt_offset(NodeId(node), p)
        );
    }

    /// Consecutive epochs actually reshuffle: the mapping a sniffer could
    /// learn in one epoch is stale in the next. (The chance two
    /// independent 151-slot permutations agree on all 150 tracked cells is
    /// negligible.)
    #[test]
    fn randomization_reshuffles_across_epochs(nonce in any::<u64>(), epoch in 0u64..1000) {
        let lengths = SlotframeLengths::paper();
        let mut s = DigsScheduler::new(NodeId(2), 2, lengths, 3);
        s.set_randomize(Some(nonce));
        let a = Asn(epoch * u64::from(lengths.app));
        let b = Asn((epoch + 1) * u64::from(lengths.app));
        let moved = (2u16..52)
            .flat_map(|id| (1..=3u8).map(move |p| (id, p)))
            .filter(|(id, p)| {
                s.scheduled_slot(NodeId(*id), *p, a) != s.scheduled_slot(NodeId(*id), *p, b)
            })
            .count();
        prop_assert!(moved > 0, "two consecutive epochs produced identical schedules");
    }

    /// The scheduler's receive cells always sit exactly on registered
    /// children's attempt slots.
    #[test]
    fn rx_cells_match_child_slots(child in 2u16..50, asn in 0u64..100_000) {
        let lengths = SlotframeLengths::paper();
        let mut parent = DigsScheduler::new(NodeId(0), 2, lengths, 3);
        parent.add_child(NodeId(child), ParentSlot::Best);
        if let Some(cell) = parent.cell(Asn(asn)) {
            if cell.action == CellAction::RxData {
                let off = Asn(asn).slotframe_offset(lengths.app);
                let matches_child = (1..=3u8).any(|p| parent.tx_slot(NodeId(child), p) == off);
                prop_assert!(matches_child, "rx cell at offset {} matches no attempt", off);
            }
        }
    }
}
