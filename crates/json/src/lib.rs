//! Minimal deterministic JSON: writer and reader for the conformance
//! harness's canonical records and golden files, and for the fleet's
//! SLO reports.
//!
//! The system `serde_json` cannot be relied on in every build environment
//! (offline builds substitute a stub), and determinism is a hard
//! requirement here: the same `RunMetrics` or fleet report must serialize
//! to the same bytes on every run, which is what the double-run
//! conformance test pins down. So, like `digs-trace`'s JSONL module, this
//! is a tiny hand-rolled implementation with a fixed field order (objects
//! preserve insertion order) and shortest-round-trip float formatting
//! (Rust's `{}` for `f64`, which is deterministic across platforms).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use core::fmt;

/// A JSON value. Objects preserve insertion order so encoding is
/// deterministic and diffs stay readable.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null` — used for absent optional metrics (e.g. no repair event).
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any finite number. Integers are written without a decimal point.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object with insertion-ordered fields.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Builds a number value; non-finite input becomes [`Value::Null`]
    /// (JSON has no `inf`/`NaN`, and "no data" is what they mean here —
    /// e.g. power per packet when nothing was delivered).
    pub fn num(x: f64) -> Value {
        if x.is_finite() {
            Value::Num(x)
        } else {
            Value::Null
        }
    }

    /// Builds a number from an optional float (absent or non-finite →
    /// `null`).
    pub fn opt(x: Option<f64>) -> Value {
        x.map_or(Value::Null, Value::num)
    }

    /// Looks up an object field.
    pub fn field(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a finite float, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serializes compactly (no whitespace) — the canonical form.
    pub fn to_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    /// Serializes with two-space indentation for checked-in golden files.
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String) {
        use std::fmt::Write;
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Num(n) => write_num(out, *n),
            Value::Str(s) => write_string(out, s),
            Value::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Value::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(out, k);
                    let _ = write!(out, ":");
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    fn write_pretty(&self, out: &mut String, indent: usize) {
        match self {
            Value::Arr(items) if !items.is_empty() => {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    out.push_str(&"  ".repeat(indent + 1));
                    item.write_pretty(out, indent + 1);
                }
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
                out.push(']');
            }
            Value::Obj(fields) if !fields.is_empty() => {
                out.push_str("{\n");
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    out.push_str(&"  ".repeat(indent + 1));
                    write_string(out, k);
                    out.push_str(": ");
                    v.write_pretty(out, indent + 1);
                }
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
                out.push('}');
            }
            other => other.write(out),
        }
    }
}

fn write_num(out: &mut String, n: f64) {
    use std::fmt::Write;
    debug_assert!(n.is_finite(), "use Value::num to map non-finite to null");
    if n.fract() == 0.0 && n.abs() < 1e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        // Rust's shortest round-trip formatting: deterministic and exact.
        let _ = write!(out, "{n}");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use std::fmt::Write;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Error from [`parse`], with a byte offset for context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte position the error occurred at.
    pub at: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parses one JSON document (trailing whitespace allowed, nothing else).
pub fn parse(text: &str) -> Result<Value, ParseError> {
    let mut r = Reader { bytes: text.as_bytes(), pos: 0 };
    let value = r.value()?;
    r.skip_ws();
    if r.pos != r.bytes.len() {
        return Err(r.err("trailing characters after JSON value"));
    }
    Ok(value)
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError { at: self.pos, message: message.into() }
    }

    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        match self.peek() {
            Some(c) if c == b => {
                self.pos += 1;
                Ok(())
            }
            other => Err(self.err(format!(
                "expected '{}', found {:?}",
                b as char,
                other.map(|c| c as char)
            ))),
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(c) if c.is_ascii_digit() || c == b'-' => self.number(),
            other => Err(self.err(format!("unexpected token {:?}", other.map(|c| c as char)))),
        }
    }

    fn literal(&mut self, text: &str, value: Value) -> Result<Value, ParseError> {
        self.skip_ws();
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.err(format!("bad literal, expected {text}")))
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(fields));
        }
        loop {
            let key = self.string()?;
            self.expect(b':')?;
            let value = self.value()?;
            fields.push((key, value));
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(fields));
                }
                other => {
                    return Err(self.err(format!(
                        "expected ',' or '}}' in object, found {:?}",
                        other.map(|c| c as char)
                    )))
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                other => {
                    return Err(self.err(format!(
                        "expected ',' or ']' in array, found {:?}",
                        other.map(|c| c as char)
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let Some(&b) = self.bytes.get(self.pos) else {
                return Err(self.err("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(s),
                b'\\' => {
                    let Some(&esc) = self.bytes.get(self.pos) else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            self.pos += 4;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|e| self.err(e.to_string()))?,
                                16,
                            )
                            .map_err(|e| self.err(e.to_string()))?;
                            s.push(char::from_u32(code).ok_or_else(|| self.err("bad code point"))?);
                        }
                        other => return Err(self.err(format!("bad escape '\\{}'", other as char))),
                    }
                }
                other => {
                    if other < 0x80 {
                        s.push(other as char);
                    } else {
                        let start = self.pos - 1;
                        let width = match other {
                            0xC0..=0xDF => 2,
                            0xE0..=0xEF => 3,
                            _ => 4,
                        };
                        let chunk = self
                            .bytes
                            .get(start..start + width)
                            .ok_or_else(|| self.err("truncated UTF-8"))?;
                        s.push_str(
                            std::str::from_utf8(chunk).map_err(|e| self.err(e.to_string()))?,
                        );
                        self.pos = start + width;
                    }
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        self.skip_ws();
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|e| self.err(e.to_string()))?;
        let n: f64 = text.parse().map_err(|_| self.err(format!("bad number \"{text}\"")))?;
        if !n.is_finite() {
            return Err(self.err(format!("non-finite number \"{text}\"")));
        }
        Ok(Value::Num(n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obj(fields: &[(&str, Value)]) -> Value {
        Value::Obj(fields.iter().map(|(k, v)| (k.to_string(), v.clone())).collect())
    }

    #[test]
    fn round_trips_every_value_kind() {
        let v = obj(&[
            ("null", Value::Null),
            ("flag", Value::Bool(true)),
            ("int", Value::Num(42.0)),
            ("neg", Value::Num(-7.0)),
            ("float", Value::Num(0.8437)),
            ("text", Value::Str("a \"quoted\" s\\ash\nline".into())),
            ("arr", Value::Arr(vec![Value::Num(1.0), Value::Null, Value::Bool(false)])),
            ("nested", obj(&[("k", Value::Num(1.5))])),
        ]);
        for text in [v.to_compact(), v.to_pretty()] {
            assert_eq!(parse(&text).expect("parse back"), v, "from: {text}");
        }
    }

    #[test]
    fn integers_have_no_decimal_point() {
        assert_eq!(Value::Num(8.0).to_compact(), "8");
        assert_eq!(Value::Num(-3.0).to_compact(), "-3");
        assert_eq!(Value::Num(0.5).to_compact(), "0.5");
    }

    #[test]
    fn non_finite_becomes_null() {
        assert_eq!(Value::num(f64::INFINITY), Value::Null);
        assert_eq!(Value::num(f64::NAN), Value::Null);
        assert_eq!(Value::opt(None), Value::Null);
        assert_eq!(Value::opt(Some(2.0)), Value::Num(2.0));
    }

    #[test]
    fn field_order_is_preserved() {
        let v = obj(&[("z", Value::Num(1.0)), ("a", Value::Num(2.0))]);
        assert_eq!(v.to_compact(), "{\"z\":1,\"a\":2}");
        let back = parse(&v.to_compact()).unwrap();
        assert_eq!(back.to_compact(), v.to_compact());
    }

    #[test]
    fn serialization_is_deterministic() {
        let v = obj(&[("pdr", Value::Num(0.9871234567)), ("lat", Value::Num(1430.5))]);
        assert_eq!(v.to_compact(), v.to_compact());
        assert_eq!(parse(&v.to_compact()).unwrap().to_compact(), v.to_compact());
    }

    #[test]
    fn accessors() {
        let v = obj(&[("n", Value::Num(3.0)), ("s", Value::Str("x".into()))]);
        assert_eq!(v.field("n").and_then(Value::as_u64), Some(3));
        assert_eq!(v.field("n").and_then(Value::as_f64), Some(3.0));
        assert_eq!(v.field("s").and_then(Value::as_str), Some("x"));
        assert_eq!(v.field("missing"), None);
        assert_eq!(Value::Num(1.5).as_u64(), None);
        assert_eq!(Value::Num(-1.0).as_u64(), None);
    }

    #[test]
    fn garbage_is_rejected() {
        assert!(parse("not json").is_err());
        assert!(parse("{\"a\":1,}").is_err());
        assert!(parse("{\"a\":1} extra").is_err());
        assert!(parse("[1 2]").is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn exponent_numbers_parse() {
        assert_eq!(parse("1e3").unwrap().as_f64(), Some(1000.0));
        assert_eq!(parse("-2.5e-2").unwrap().as_f64(), Some(-0.025));
    }
}
