//! Centralized reliable-graph construction (Han et al., RTAS 2011 style).
//!
//! The manager computes the uplink graph globally:
//!
//! 1. hop counts are computed from the access points by BFS over usable
//!    links;
//! 2. devices are processed in increasing hop count; each selects up to two
//!    parents from the already-ordered prefix (strictly smaller hop count,
//!    or equal hop count but earlier in the ordering), ranked by
//!    accumulated ETX;
//! 3. the ordering guarantees acyclicity; two parents give WirelessHART its
//!    required route diversity.

use crate::linkdb::LinkDb;
use digs_routing::graph::{GraphEntry, RoutingGraph};
use digs_routing::messages::Rank;
use digs_sim::ids::NodeId;
use std::collections::{BTreeMap, VecDeque};

/// Builds the uplink routing graph toward `roots` from the manager's link
/// database. Devices unreachable over usable links are left out of the
/// graph (they would stay unjoined in the real network too).
pub fn build_uplink_graph(db: &LinkDb, roots: &[NodeId]) -> RoutingGraph {
    // 1. Hop counts by BFS from all roots.
    let mut hops: BTreeMap<NodeId, u32> = roots.iter().map(|r| (*r, 0)).collect();
    let mut queue: VecDeque<NodeId> = roots.iter().copied().collect();
    while let Some(n) = queue.pop_front() {
        let h = hops[&n];
        for (m, _) in db.neighbors(n) {
            hops.entry(m).or_insert_with(|| {
                queue.push_back(m);
                h + 1
            });
        }
    }

    // 2. Order devices by (hop, id); accumulate path cost as we commit.
    let mut order: Vec<NodeId> = hops.keys().copied().filter(|n| !roots.contains(n)).collect();
    order.sort_by_key(|n| (hops[n], *n));

    let mut graph = RoutingGraph::new(roots.iter().copied());
    // Accumulated best-path cost, used for parent ranking.
    let mut path_cost: BTreeMap<NodeId, f64> = roots.iter().map(|r| (*r, 0.0)).collect();
    let mut committed: BTreeMap<NodeId, usize> =
        roots.iter().enumerate().map(|(i, r)| (*r, i)).collect();

    for (idx, node) in order.iter().enumerate() {
        let my_hop = hops[node];
        let my_order = roots.len() + idx;
        // Candidates: committed nodes with smaller hop, or equal hop but
        // earlier order (prevents cycles among same-hop nodes).
        let mut cands: Vec<(NodeId, f64)> = db
            .neighbors(*node)
            .into_iter()
            .filter_map(|(nbr, link_etx)| {
                let nbr_order = *committed.get(&nbr)?;
                let nbr_hop = hops[&nbr];
                let eligible = nbr_hop < my_hop || (nbr_hop == my_hop && nbr_order < my_order);
                if eligible {
                    Some((nbr, link_etx + path_cost.get(&nbr).copied().unwrap_or(f64::INFINITY)))
                } else {
                    None
                }
            })
            .collect();
        cands.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite").then(a.0.cmp(&b.0)));
        let best = cands.first().map(|(id, _)| *id);
        let second = cands.get(1).map(|(id, _)| *id);
        if let Some((_, best_cost)) = cands.first() {
            path_cost.insert(*node, *best_cost);
        }
        committed.insert(*node, my_order);
        graph.insert(
            *node,
            GraphEntry {
                best,
                second,
                rank: Rank((my_hop + 1).min(u32::from(u16::MAX - 1)) as u16),
            },
        );
    }
    graph
}

#[cfg(test)]
mod tests {
    use super::*;
    use digs_sim::link::LinkModel;
    use digs_sim::rf::RfConfig;
    use digs_sim::topology::Topology;

    fn line_db() -> LinkDb {
        // 0 (AP) — 2 — 3 — 4 chain plus cross links to give diversity.
        let mut db = LinkDb::with_nodes(5);
        db.insert(NodeId(0), NodeId(2), 1.0);
        db.insert(NodeId(1), NodeId(2), 1.5);
        db.insert(NodeId(0), NodeId(3), 2.0);
        db.insert(NodeId(2), NodeId(3), 1.0);
        db.insert(NodeId(3), NodeId(4), 1.0);
        db.insert(NodeId(2), NodeId(4), 2.5);
        db
    }

    #[test]
    fn graph_is_dag_and_reachable() {
        let g = build_uplink_graph(&line_db(), &[NodeId(0), NodeId(1)]);
        assert!(g.is_dag());
        assert!(g.all_reachable());
        assert_eq!(g.len(), 3);
    }

    #[test]
    fn every_device_gets_two_parents_when_possible() {
        let g = build_uplink_graph(&line_db(), &[NodeId(0), NodeId(1)]);
        // Node 2 borders both APs; node 3 can use AP0 and node 2; node 4
        // can use nodes 2 and 3.
        for n in [2u16, 3, 4] {
            assert_eq!(g.parents(NodeId(n)).len(), 2, "node {n}");
        }
    }

    #[test]
    fn best_parent_minimises_accumulated_cost() {
        let g = build_uplink_graph(&line_db(), &[NodeId(0), NodeId(1)]);
        // Node 2: AP0 at cost 1.0 beats AP1 at 1.5.
        assert_eq!(g.entry(NodeId(2)).expect("present").best, Some(NodeId(0)));
        // Node 3: through node 2 (1 + 1 = 2.0) ties direct AP0 (2.0);
        // deterministic tie-break by id favors AP0.
        assert_eq!(g.entry(NodeId(3)).expect("present").best, Some(NodeId(0)));
    }

    #[test]
    fn unreachable_device_left_out() {
        let mut db = line_db();
        db.remove_node(NodeId(3));
        db.remove(NodeId(2), NodeId(4));
        let g = build_uplink_graph(&db, &[NodeId(0), NodeId(1)]);
        assert!(g.entry(NodeId(4)).is_none(), "node 4 is cut off");
        assert!(g.all_reachable());
    }

    #[test]
    fn testbed_a_graph_is_well_formed() {
        let topo = Topology::testbed_a();
        let model = LinkModel::new(&topo, RfConfig::deterministic(), 1);
        let db = LinkDb::from_link_model(&model);
        let g = build_uplink_graph(&db, &topo.access_points());
        assert!(g.is_dag());
        assert!(g.all_reachable());
        assert_eq!(g.len(), 48, "every field device is attached");
        assert!(
            g.fraction_with_backup() > 0.9,
            "dense testbed should give almost everyone a backup: {}",
            g.fraction_with_backup()
        );
    }

    #[test]
    fn ranks_increase_from_roots() {
        let g = build_uplink_graph(&line_db(), &[NodeId(0), NodeId(1)]);
        let rank = |n: u16| g.entry(NodeId(n)).expect("present").rank;
        assert_eq!(rank(2), Rank(2));
        assert_eq!(rank(3), Rank(2)); // direct AP link exists
        assert!(rank(4) > Rank(2));
    }
}
