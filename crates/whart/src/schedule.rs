//! Centralized convergecast TDMA schedule construction.
//!
//! The Network Manager allocates dedicated `(slot, channel-offset)` cells
//! along every data flow's route: two attempts per hop on the primary path
//! plus one attempt toward the backup parent, each hop strictly after the
//! previous one so a packet generated at the start of the superframe
//! reaches an access point within it. Cells are conflict-free: a node is
//! never scheduled twice in a slot and a `(slot, offset)` pair is never
//! reused.

use core::fmt;
use digs_routing::graph::RoutingGraph;
use digs_sim::channel::{ChannelOffset, NUM_CHANNELS};
use digs_sim::ids::{FlowId, NodeId};
use std::collections::{BTreeMap, BTreeSet};

/// One dedicated cell in the central schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct CentralCell {
    /// Slot within the superframe.
    pub slot: u32,
    /// TSCH channel offset.
    pub offset: ChannelOffset,
    /// Transmitting node.
    pub tx: NodeId,
    /// Receiving node.
    pub rx: NodeId,
    /// Flow the cell serves.
    pub flow: FlowId,
    /// Attempt number (1–2 primary, 3 backup).
    pub attempt: u8,
}

/// Errors from central schedule construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScheduleError {
    /// A flow's source has no route in the graph.
    UnroutedSource {
        /// The offending source.
        source: NodeId,
    },
    /// The superframe is too short to fit every flow.
    SuperframeFull {
        /// The flow that did not fit.
        flow: FlowId,
    },
}

impl fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScheduleError::UnroutedSource { source } => {
                write!(f, "flow source {source} has no route to an access point")
            }
            ScheduleError::SuperframeFull { flow } => {
                write!(f, "superframe too short to schedule {flow}")
            }
        }
    }
}

impl std::error::Error for ScheduleError {}

/// A centrally computed superframe schedule.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct CentralSchedule {
    length: u32,
    cells: Vec<CentralCell>,
}

impl CentralSchedule {
    /// Builds the schedule for the given flows over the routing graph.
    ///
    /// `sources` lists each flow's source device; flow *i* gets
    /// [`FlowId`]`(i)`. Each hop gets two primary attempts and, where a
    /// backup parent exists, one backup attempt; the packet then continues
    /// from the primary parent.
    ///
    /// # Errors
    ///
    /// Returns an error if a source is unrouted or the superframe is full.
    ///
    /// # Panics
    ///
    /// Panics if `length` is zero.
    pub fn build(
        graph: &RoutingGraph,
        sources: &[NodeId],
        length: u32,
    ) -> Result<CentralSchedule, ScheduleError> {
        assert!(length > 0, "superframe length must be positive");
        let roots: BTreeSet<NodeId> = graph.roots().collect();
        let mut cells = Vec::new();
        // busy[slot] = nodes occupied in that slot; used (slot, offset) pairs.
        let mut busy: BTreeMap<u32, BTreeSet<NodeId>> = BTreeMap::new();
        let mut used: BTreeSet<(u32, u8)> = BTreeSet::new();

        for (i, src) in sources.iter().enumerate() {
            let flow = FlowId(i as u16);
            let mut node = *src;
            let mut prev_slot: Option<u32> = None;
            while !roots.contains(&node) {
                let entry = graph
                    .entry(node)
                    .filter(|e| e.best.is_some())
                    .ok_or(ScheduleError::UnroutedSource { source: *src })?;
                let best = entry.best.expect("filtered");
                // Two primary attempts, then one backup attempt if present.
                let mut hop_targets = vec![(best, 1u8), (best, 2)];
                if let Some(second) = entry.second {
                    hop_targets.push((second, 3));
                }
                for (target, attempt) in hop_targets {
                    let slot =
                        Self::allocate(length, prev_slot, node, target, &mut busy, &mut used)
                            .ok_or(ScheduleError::SuperframeFull { flow })?;
                    let offset = Self::free_offset(slot, &used).expect("checked in allocate");
                    used.insert((slot, offset.0));
                    busy.entry(slot).or_default().extend([node, target]);
                    cells.push(CentralCell { slot, offset, tx: node, rx: target, flow, attempt });
                    // The packet progresses from the *primary* attempts.
                    if attempt <= 2 {
                        prev_slot = Some(slot);
                    }
                }
                node = best;
            }
        }
        cells.sort_by_key(|c| (c.slot, c.offset.0));
        Ok(CentralSchedule { length, cells })
    }

    /// Builds a **downlink** schedule: source-routed command flows from the
    /// access points to each destination device, following the reverse of
    /// the uplink primary paths (the downlink graph of the paper's footnote
    /// 2). Each hop gets two attempts; downlink routes are source routes,
    /// so there is no backup branch.
    ///
    /// Flow *i* (id `FlowId(i)`) delivers to `destinations[i]`.
    ///
    /// # Errors
    ///
    /// Returns an error if a destination is unrouted or the superframe is
    /// full.
    ///
    /// # Panics
    ///
    /// Panics if `length` is zero.
    pub fn build_downlink(
        graph: &RoutingGraph,
        destinations: &[NodeId],
        length: u32,
    ) -> Result<CentralSchedule, ScheduleError> {
        assert!(length > 0, "superframe length must be positive");
        let mut cells = Vec::new();
        let mut busy: BTreeMap<u32, BTreeSet<NodeId>> = BTreeMap::new();
        let mut used: BTreeSet<(u32, u8)> = BTreeSet::new();

        for (i, dest) in destinations.iter().enumerate() {
            let flow = FlowId(i as u16);
            let path = graph
                .primary_downlink_path(*dest)
                .ok_or(ScheduleError::UnroutedSource { source: *dest })?;
            let mut prev_slot: Option<u32> = None;
            for hop in path.windows(2) {
                let (tx, rx) = (hop[0], hop[1]);
                for attempt in 1..=2u8 {
                    let slot = Self::allocate(length, prev_slot, tx, rx, &mut busy, &mut used)
                        .ok_or(ScheduleError::SuperframeFull { flow })?;
                    let offset = Self::free_offset(slot, &used).expect("checked in allocate");
                    used.insert((slot, offset.0));
                    busy.entry(slot).or_default().extend([tx, rx]);
                    cells.push(CentralCell { slot, offset, tx, rx, flow, attempt });
                    prev_slot = Some(slot);
                }
            }
        }
        cells.sort_by_key(|c| (c.slot, c.offset.0));
        Ok(CentralSchedule { length, cells })
    }

    /// First slot strictly after `prev_slot` where both nodes are free and
    /// a channel offset remains.
    fn allocate(
        length: u32,
        prev_slot: Option<u32>,
        a: NodeId,
        b: NodeId,
        busy: &mut BTreeMap<u32, BTreeSet<NodeId>>,
        used: &mut BTreeSet<(u32, u8)>,
    ) -> Option<u32> {
        let start = prev_slot.map_or(0, |s| s + 1);
        (start..length).find(|slot| {
            let nodes_free =
                busy.get(slot).is_none_or(|set| !set.contains(&a) && !set.contains(&b));
            nodes_free && Self::free_offset(*slot, used).is_some()
        })
    }

    fn free_offset(slot: u32, used: &BTreeSet<(u32, u8)>) -> Option<ChannelOffset> {
        (0..NUM_CHANNELS).find(|off| !used.contains(&(slot, *off))).map(ChannelOffset)
    }

    /// Superframe length in slots.
    pub fn length(&self) -> u32 {
        self.length
    }

    /// All cells, ordered by slot then offset.
    pub fn cells(&self) -> &[CentralCell] {
        &self.cells
    }

    /// Cells involving a node (as transmitter or receiver) — the portion of
    /// the schedule the manager must disseminate to that device.
    pub fn cells_of(&self, node: NodeId) -> Vec<&CentralCell> {
        self.cells.iter().filter(|c| c.tx == node || c.rx == node).collect()
    }

    /// Validates conflict-freedom (used in tests and debug assertions).
    pub fn is_conflict_free(&self) -> bool {
        let mut node_busy = BTreeSet::new();
        let mut ch_busy = BTreeSet::new();
        for c in &self.cells {
            if !node_busy.insert((c.slot, c.tx)) || !node_busy.insert((c.slot, c.rx)) {
                return false;
            }
            if !ch_busy.insert((c.slot, c.offset.0)) {
                return false;
            }
        }
        true
    }

    /// End-to-end latency bound of a flow within the superframe: the last
    /// primary-attempt slot of the flow, in slots.
    pub fn flow_span(&self, flow: FlowId) -> Option<u32> {
        self.cells.iter().filter(|c| c.flow == flow && c.attempt <= 2).map(|c| c.slot).max()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use digs_routing::graph::GraphEntry;
    use digs_routing::messages::Rank;

    /// AP 0, AP 1; chain 2→0, 3→2 (backup 0), 4→3 (backup 2).
    fn graph() -> RoutingGraph {
        let mut g = RoutingGraph::new([NodeId(0), NodeId(1)]);
        g.insert(
            NodeId(2),
            GraphEntry { best: Some(NodeId(0)), second: Some(NodeId(1)), rank: Rank(2) },
        );
        g.insert(
            NodeId(3),
            GraphEntry { best: Some(NodeId(2)), second: Some(NodeId(0)), rank: Rank(3) },
        );
        g.insert(
            NodeId(4),
            GraphEntry { best: Some(NodeId(3)), second: Some(NodeId(2)), rank: Rank(4) },
        );
        g
    }

    #[test]
    fn single_flow_schedules_along_path() {
        let s = CentralSchedule::build(&graph(), &[NodeId(4)], 100).expect("fits");
        assert!(s.is_conflict_free());
        // 3 hops × 3 attempts = 9 cells.
        assert_eq!(s.cells().len(), 9);
        // Slots strictly increase along the primary path.
        let primary: Vec<u32> =
            s.cells().iter().filter(|c| c.attempt == 1).map(|c| c.slot).collect();
        assert!(primary.windows(2).all(|w| w[1] > w[0]));
    }

    #[test]
    fn multiple_flows_do_not_conflict() {
        let s = CentralSchedule::build(&graph(), &[NodeId(4), NodeId(3), NodeId(2)], 200)
            .expect("fits");
        assert!(s.is_conflict_free());
    }

    #[test]
    fn backup_attempt_targets_second_parent() {
        let s = CentralSchedule::build(&graph(), &[NodeId(2)], 100).expect("fits");
        let backup = s.cells().iter().find(|c| c.attempt == 3).expect("backup cell");
        assert_eq!(backup.rx, NodeId(1));
    }

    #[test]
    fn superframe_too_small_errors() {
        let err = CentralSchedule::build(&graph(), &[NodeId(4)], 3).expect_err("cannot fit");
        assert!(matches!(err, ScheduleError::SuperframeFull { .. }));
    }

    #[test]
    fn unrouted_source_errors() {
        let mut g = graph();
        g.insert(NodeId(9), GraphEntry { best: None, second: None, rank: Rank::INFINITE });
        let err = CentralSchedule::build(&g, &[NodeId(9)], 100).expect_err("no route");
        assert_eq!(err, ScheduleError::UnroutedSource { source: NodeId(9) });
    }

    #[test]
    fn cells_of_node_cover_tx_and_rx() {
        let s = CentralSchedule::build(&graph(), &[NodeId(4)], 100).expect("fits");
        let of3 = s.cells_of(NodeId(3));
        assert!(of3.iter().any(|c| c.tx == NodeId(3)));
        assert!(of3.iter().any(|c| c.rx == NodeId(3)));
    }

    #[test]
    fn downlink_schedules_along_reversed_path() {
        let s = CentralSchedule::build_downlink(&graph(), &[NodeId(4)], 100).expect("fits");
        assert!(s.is_conflict_free());
        // 3 hops x 2 attempts = 6 cells, starting at an access point.
        assert_eq!(s.cells().len(), 6);
        assert_eq!(s.cells()[0].tx, NodeId(0), "downlink starts at the AP");
        let last = s.cells().last().expect("cells");
        assert_eq!(last.rx, NodeId(4), "downlink ends at the device");
        // Slots strictly increase along the route.
        let slots: Vec<u32> = s.cells().iter().map(|c| c.slot).collect();
        assert!(slots.windows(2).all(|w| w[1] > w[0]));
    }

    #[test]
    fn downlink_to_unrouted_device_errors() {
        let mut g = graph();
        g.insert(NodeId(9), GraphEntry { best: None, second: None, rank: Rank::INFINITE });
        let err = CentralSchedule::build_downlink(&g, &[NodeId(9)], 100).expect_err("no route");
        assert_eq!(err, ScheduleError::UnroutedSource { source: NodeId(9) });
    }

    #[test]
    fn downlink_multiple_destinations_conflict_free() {
        let s = CentralSchedule::build_downlink(&graph(), &[NodeId(4), NodeId(3), NodeId(2)], 200)
            .expect("fits");
        assert!(s.is_conflict_free());
        assert_eq!(s.cells().len(), 6 + 4 + 2);
    }

    #[test]
    fn flow_span_reflects_path_depth() {
        let s = CentralSchedule::build(&graph(), &[NodeId(4), NodeId(2)], 200).expect("fits");
        let deep = s.flow_span(FlowId(0)).expect("flow 0");
        let shallow = s.flow_span(FlowId(1)).expect("flow 1");
        assert!(deep > shallow, "3-hop flow ends later than 1-hop flow");
    }
}
