//! The centralized Network Manager and its update-cycle cost model.
//!
//! When the network experiences dynamics (node/link failure, topology
//! change) the manager must run a full cycle:
//!
//! 1. **collect** fresh health reports from every device (frames travel
//!    over the mesh, one management frame per hop),
//! 2. **recompute** the routing graph and the TDMA schedule,
//! 3. **disseminate** each device's routes and schedule slice back over
//!    the mesh.
//!
//! Management traffic in WirelessHART is confined to sparse management
//! slots (the advertisement/join superframe), so the collection and
//! dissemination phases dominate: at roughly one management frame per
//! second of mesh progress, updating a 50-node testbed takes minutes —
//! Fig. 3 reports 203 s / 506 s / 191 s / 443 s for the four topologies.
//! The cost model below reproduces that shape from the realized topology
//! depths and table sizes.

use crate::graph::build_uplink_graph;
use crate::linkdb::LinkDb;
use crate::schedule::{CentralSchedule, ScheduleError};
use core::fmt;
use digs_routing::graph::RoutingGraph;
use digs_sim::ids::NodeId;

/// Cost-model parameters for a manager update cycle.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct UpdateCostConfig {
    /// Health-report frames each device sends per collection round.
    pub report_frames: u32,
    /// Base frames to carry one device's route table downstream.
    pub route_table_frames: u32,
    /// Schedule cells that fit in one dissemination frame.
    pub cells_per_frame: u32,
    /// Frames of fixed network-wide overhead per update cycle (superframe
    /// reconfiguration broadcast and scheduled activation), independent of
    /// network size.
    pub fixed_overhead_frames: u64,
    /// Management frames the network can move per second (management slots
    /// are sparse: WirelessHART dedicates roughly one advertisement/
    /// management slot per second-long superframe).
    pub mgmt_frames_per_second: f64,
    /// Manager computation throughput, in graph-construction operations
    /// per second (a fast host; compute is not the bottleneck).
    pub compute_ops_per_second: f64,
}

impl Default for UpdateCostConfig {
    fn default() -> UpdateCostConfig {
        UpdateCostConfig {
            report_frames: 2,
            route_table_frames: 2,
            cells_per_frame: 4,
            fixed_overhead_frames: 42,
            mgmt_frames_per_second: 0.61,
            compute_ops_per_second: 5e6,
        }
    }
}

/// Breakdown of one full manager update cycle.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct UpdateReport {
    /// Mesh frames spent collecting health reports.
    pub collection_frames: u64,
    /// Mesh frames spent disseminating routes and schedules.
    pub dissemination_frames: u64,
    /// Abstract compute operations for graph + schedule construction.
    pub compute_ops: u64,
    /// Collection phase duration, seconds.
    pub collection_secs: f64,
    /// Compute phase duration, seconds.
    pub compute_secs: f64,
    /// Dissemination phase duration, seconds.
    pub dissemination_secs: f64,
}

impl UpdateReport {
    /// Total update-cycle duration, seconds — the quantity Fig. 3 plots.
    pub fn total_secs(&self) -> f64 {
        self.collection_secs + self.compute_secs + self.dissemination_secs
    }
}

impl fmt::Display for UpdateReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "update: {:.1}s (collect {:.1}s, compute {:.3}s, disseminate {:.1}s)",
            self.total_secs(),
            self.collection_secs,
            self.compute_secs,
            self.dissemination_secs
        )
    }
}

/// The centralized WirelessHART Network Manager.
#[derive(Debug, Clone)]
pub struct NetworkManager {
    db: LinkDb,
    roots: Vec<NodeId>,
    cost: UpdateCostConfig,
    graph: RoutingGraph,
    schedule: Option<CentralSchedule>,
    updates: u64,
}

impl NetworkManager {
    /// Creates a manager over an initial link database.
    pub fn new(db: LinkDb, roots: Vec<NodeId>, cost: UpdateCostConfig) -> NetworkManager {
        let graph = build_uplink_graph(&db, &roots);
        NetworkManager { db, roots, cost, graph, schedule: None, updates: 0 }
    }

    /// The manager's current routing graph.
    pub fn graph(&self) -> &RoutingGraph {
        &self.graph
    }

    /// The manager's current schedule, if one has been computed.
    pub fn schedule(&self) -> Option<&CentralSchedule> {
        self.schedule.as_ref()
    }

    /// The link database (mutable: the caller applies link/node events
    /// before requesting an update).
    pub fn link_db_mut(&mut self) -> &mut LinkDb {
        &mut self.db
    }

    /// Number of full update cycles performed.
    pub fn updates_performed(&self) -> u64 {
        self.updates
    }

    /// Runs a full update cycle: collect → recompute → disseminate.
    ///
    /// `sources` are the data-flow sources to schedule and
    /// `superframe_len` the superframe length in slots.
    ///
    /// # Errors
    ///
    /// Propagates schedule-construction failures.
    pub fn full_update(
        &mut self,
        sources: &[NodeId],
        superframe_len: u32,
    ) -> Result<UpdateReport, ScheduleError> {
        // Recompute.
        self.graph = build_uplink_graph(&self.db, &self.roots);
        let schedule = CentralSchedule::build(&self.graph, sources, superframe_len)?;

        // Collection: every attached device sends `report_frames`, each
        // travelling depth hops to reach an access point.
        let collection_frames: u64 = self
            .graph
            .nodes()
            .map(|n| u64::from(self.depth(n)) * u64::from(self.cost.report_frames))
            .sum();

        // Dissemination: each device receives its route table plus its
        // slice of the schedule, again over depth hops.
        let dissemination_frames: u64 = self
            .graph
            .nodes()
            .map(|n| {
                let cells = schedule.cells_of(n).len() as u32;
                let frames =
                    self.cost.route_table_frames + cells.div_ceil(self.cost.cells_per_frame);
                u64::from(self.depth(n)) * u64::from(frames)
            })
            .sum();

        // Compute: graph construction is ~E log V; schedule ~cells × length
        // probes. Orders of magnitude only — it is minutes of mesh traffic
        // vs milliseconds of laptop compute, as in the paper.
        let e = self.db.num_links() as u64;
        let v = self.db.num_nodes().max(2) as u64;
        let compute_ops = e * v.ilog2() as u64 + schedule.cells().len() as u64 * 64;

        let dissemination_total = dissemination_frames + self.cost.fixed_overhead_frames;
        let report = UpdateReport {
            collection_frames,
            dissemination_frames: dissemination_total,
            compute_ops,
            collection_secs: collection_frames as f64 / self.cost.mgmt_frames_per_second,
            compute_secs: compute_ops as f64 / self.cost.compute_ops_per_second,
            dissemination_secs: dissemination_total as f64 / self.cost.mgmt_frames_per_second,
        };
        self.schedule = Some(schedule);
        self.updates += 1;
        Ok(report)
    }

    /// Reacts to a reported node failure: scrubs the node from the link
    /// database and runs a full update (this is precisely what makes the
    /// centralized design slow).
    ///
    /// # Errors
    ///
    /// Propagates schedule-construction failures.
    pub fn on_node_failure(
        &mut self,
        failed: NodeId,
        sources: &[NodeId],
        superframe_len: u32,
    ) -> Result<UpdateReport, ScheduleError> {
        self.db.remove_node(failed);
        self.full_update(sources, superframe_len)
    }

    /// Hop depth of a device in the current graph (rank − 1; roots are 0).
    fn depth(&self, node: NodeId) -> u32 {
        self.graph.entry(node).map_or(0, |e| u32::from(e.rank.0.saturating_sub(1)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use digs_sim::link::LinkModel;
    use digs_sim::rf::RfConfig;
    use digs_sim::topology::Topology;

    fn manager_for(topo: &Topology) -> NetworkManager {
        let model = LinkModel::new(topo, RfConfig::deterministic(), 1);
        let db = LinkDb::from_link_model(&model);
        NetworkManager::new(db, topo.access_points(), UpdateCostConfig::default())
    }

    fn default_sources(topo: &Topology, k: usize) -> Vec<NodeId> {
        topo.field_devices().into_iter().rev().take(k).collect()
    }

    #[test]
    fn update_takes_minutes_at_testbed_scale() {
        let topo = Topology::testbed_a();
        let mut m = manager_for(&topo);
        let report = m.full_update(&default_sources(&topo, 8), 500).expect("schedulable");
        let t = report.total_secs();
        assert!((100.0..1200.0).contains(&t), "expected minutes-scale update, got {t:.1}s");
        assert!(report.compute_secs < 1.0, "compute is not the bottleneck");
        assert_eq!(m.updates_performed(), 1);
    }

    #[test]
    fn bigger_network_takes_longer() {
        let half = Topology::testbed_a_half();
        let full = Topology::testbed_a();
        let mut mh = manager_for(&half);
        let mut mf = manager_for(&full);
        let th = mh.full_update(&default_sources(&half, 8), 500).expect("ok").total_secs();
        let tf = mf.full_update(&default_sources(&full, 8), 500).expect("ok").total_secs();
        assert!(tf > th * 1.5, "full ({tf:.0}s) should dwarf half ({th:.0}s)");
    }

    #[test]
    fn node_failure_triggers_full_recompute() {
        let topo = Topology::testbed_a();
        let mut m = manager_for(&topo);
        let sources = default_sources(&topo, 8);
        m.full_update(&sources, 500).expect("ok");
        // Fail a relay that is not one of the sources.
        let victim = m.graph().nodes().find(|n| !sources.contains(n)).expect("some relay");
        let report = m.on_node_failure(victim, &sources, 500).expect("ok");
        assert!(report.total_secs() > 60.0);
        assert_eq!(m.updates_performed(), 2);
        assert!(m.graph().entry(victim).is_none(), "victim scrubbed");
    }

    #[test]
    fn schedule_is_stored_and_conflict_free() {
        let topo = Topology::testbed_a_half();
        let mut m = manager_for(&topo);
        m.full_update(&default_sources(&topo, 4), 500).expect("ok");
        let s = m.schedule().expect("present");
        assert!(s.is_conflict_free());
        assert!(!s.cells().is_empty());
    }

    #[test]
    fn report_display_mentions_phases() {
        let topo = Topology::testbed_a_half();
        let mut m = manager_for(&topo);
        let r = m.full_update(&default_sources(&topo, 4), 500).expect("ok");
        let s = r.to_string();
        assert!(s.contains("collect"));
        assert!(s.contains("disseminate"));
    }
}
