//! # digs-whart — the centralized WirelessHART baseline
//!
//! DiGS's point of comparison (paper Sections III–IV): a WirelessHART
//! network is run by a central **Network Manager** that collects topology
//! information from every device, computes reliable graph routes and a TDMA
//! schedule centrally, and disseminates them to all devices. The management
//! loop is what makes the standard slow to react to dynamics — Fig. 3 shows
//! 203–506 s per update on the paper's testbeds.
//!
//! - [`linkdb`] — the manager's link-state database (built from device
//!   health reports; in simulation, from the link-model oracle);
//! - [`graph`] — centralized reliable-graph construction in the style of
//!   Han et al. (RTAS 2011): every device gets at least two parents closer
//!   to the access points, ordered to keep the graph acyclic;
//! - [`schedule`] — centralized convergecast TDMA schedule construction
//!   with dedicated, conflict-free cells along every route;
//! - [`manager`] — the Network Manager tying the pieces together, plus the
//!   update-cycle cost model that reproduces Fig. 3.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod graph;
pub mod linkdb;
pub mod manager;
pub mod schedule;

pub use graph::build_uplink_graph;
pub use linkdb::LinkDb;
pub use manager::{NetworkManager, UpdateCostConfig, UpdateReport};
pub use schedule::CentralSchedule;
