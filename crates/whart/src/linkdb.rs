//! The Network Manager's link-state database.
//!
//! In a real WirelessHART network every device periodically reports its
//! neighbor signal levels to the manager. In the simulation the database is
//! seeded from the link-model oracle using exactly the paper's RSS→ETX
//! mapping, which is what the devices themselves would have reported.

use digs_sim::ids::NodeId;
use digs_sim::link::LinkModel;
use digs_sim::rf::initial_etx_from_rss;
use std::collections::BTreeMap;

/// Minimum mean RSS (dBm) at which the manager considers a link usable for
/// routing — the paper's `RSSmin`; below it the ETX mapping saturates and
/// the link is effectively beyond communication range.
pub const USABLE_RSS_DBM: f64 = -90.0;

/// Symmetric link costs known to the manager.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LinkDb {
    // Key is (min, max) — link costs are symmetric at this granularity.
    etx: BTreeMap<(NodeId, NodeId), f64>,
    nodes: usize,
}

impl LinkDb {
    /// Builds the database from device-reported signal levels (the
    /// link-model oracle), keeping links whose mean RSS is at least
    /// [`USABLE_RSS_DBM`].
    pub fn from_link_model(model: &LinkModel) -> LinkDb {
        let n = model.len();
        let mut etx = BTreeMap::new();
        for a in 0..n as u16 {
            for b in (a + 1)..n as u16 {
                let rss = model.mean_rss(NodeId(a), NodeId(b));
                if rss.dbm() >= USABLE_RSS_DBM {
                    etx.insert((NodeId(a), NodeId(b)), initial_etx_from_rss(rss));
                }
            }
        }
        LinkDb { etx, nodes: n }
    }

    /// Creates an empty database for `nodes` devices (tests build links
    /// manually).
    pub fn with_nodes(nodes: usize) -> LinkDb {
        LinkDb { etx: BTreeMap::new(), nodes }
    }

    /// Records a link cost (symmetric).
    ///
    /// # Panics
    ///
    /// Panics if `a == b` or the cost is below 1.
    pub fn insert(&mut self, a: NodeId, b: NodeId, etx: f64) {
        assert_ne!(a, b, "no self links");
        assert!(etx >= 1.0, "ETX is at least 1");
        let key = if a < b { (a, b) } else { (b, a) };
        self.etx.insert(key, etx);
    }

    /// Removes a link (e.g. reported failed); returns whether it existed.
    pub fn remove(&mut self, a: NodeId, b: NodeId) -> bool {
        let key = if a < b { (a, b) } else { (b, a) };
        self.etx.remove(&key).is_some()
    }

    /// Removes every link of a node (node failure).
    pub fn remove_node(&mut self, node: NodeId) {
        self.etx.retain(|(a, b), _| *a != node && *b != node);
    }

    /// The ETX of a link, if usable.
    pub fn etx(&self, a: NodeId, b: NodeId) -> Option<f64> {
        let key = if a < b { (a, b) } else { (b, a) };
        self.etx.get(&key).copied()
    }

    /// Usable neighbors of a node, in id order.
    pub fn neighbors(&self, node: NodeId) -> Vec<(NodeId, f64)> {
        let mut out: Vec<(NodeId, f64)> = self
            .etx
            .iter()
            .filter_map(|((a, b), cost)| {
                if *a == node {
                    Some((*b, *cost))
                } else if *b == node {
                    Some((*a, *cost))
                } else {
                    None
                }
            })
            .collect();
        out.sort_by_key(|x| x.0);
        out
    }

    /// Number of devices covered.
    pub fn num_nodes(&self) -> usize {
        self.nodes
    }

    /// Number of usable links.
    pub fn num_links(&self) -> usize {
        self.etx.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use digs_sim::rf::RfConfig;
    use digs_sim::topology::Topology;

    #[test]
    fn oracle_database_is_symmetric() {
        let topo = Topology::testbed_a();
        let model = LinkModel::new(&topo, RfConfig::deterministic(), 1);
        let db = LinkDb::from_link_model(&model);
        assert_eq!(db.etx(NodeId(3), NodeId(7)), db.etx(NodeId(7), NodeId(3)));
        assert!(db.num_links() > 0);
        assert_eq!(db.num_nodes(), 50);
    }

    #[test]
    fn distant_links_are_excluded() {
        let topo = Topology::cooja_150(1);
        let model = LinkModel::new(&topo, RfConfig::deterministic(), 1);
        let db = LinkDb::from_link_model(&model);
        // A 300 m network cannot be a full mesh of usable links.
        let full_mesh = 152 * 151 / 2;
        assert!(db.num_links() < full_mesh / 2, "links = {}", db.num_links());
    }

    #[test]
    fn insert_and_remove() {
        let mut db = LinkDb::with_nodes(3);
        db.insert(NodeId(1), NodeId(0), 1.5);
        assert_eq!(db.etx(NodeId(0), NodeId(1)), Some(1.5));
        assert!(db.remove(NodeId(0), NodeId(1)));
        assert!(!db.remove(NodeId(0), NodeId(1)));
        assert_eq!(db.etx(NodeId(0), NodeId(1)), None);
    }

    #[test]
    fn remove_node_clears_its_links() {
        let mut db = LinkDb::with_nodes(4);
        db.insert(NodeId(0), NodeId(1), 1.0);
        db.insert(NodeId(1), NodeId(2), 1.0);
        db.insert(NodeId(2), NodeId(3), 1.0);
        db.remove_node(NodeId(1));
        assert_eq!(db.num_links(), 1);
        assert!(db.neighbors(NodeId(1)).is_empty());
        assert_eq!(db.neighbors(NodeId(2)), vec![(NodeId(3), 1.0)]);
    }

    #[test]
    #[should_panic(expected = "no self links")]
    fn self_link_panics() {
        let mut db = LinkDb::with_nodes(2);
        db.insert(NodeId(1), NodeId(1), 1.0);
    }
}
