//! A std-only worker pool for fanning independent simulations out over
//! the available cores.
//!
//! Each task is one deterministic simulation: tasks share no mutable
//! state, so a plain channel-fed pool is all the parallelism the matrix
//! needs. Results come back in input order regardless of completion
//! order, and per-task wall-clock durations are captured so the gate can
//! report its serial-equivalent time (the sum of per-run durations) next
//! to the actual wall clock.

use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

/// Output of [`par_map_timed`] for one task.
#[derive(Debug, Clone)]
pub struct Timed<T> {
    /// The task's result.
    pub value: T,
    /// How long the task ran on its worker.
    pub elapsed: Duration,
}

/// Default worker count: one per available core, capped by the task
/// count.
pub fn default_jobs(tasks: usize) -> usize {
    thread::available_parallelism().map_or(1, |n| n.get()).min(tasks.max(1))
}

/// Runs `f` over `items` on `jobs` worker threads and returns the
/// results in input order. With `jobs <= 1` (or a single item) the work
/// runs inline on the caller's thread — same results, no threads.
pub fn par_map<I, O, F>(items: Vec<I>, jobs: usize, f: F) -> Vec<O>
where
    I: Send,
    O: Send,
    F: Fn(I) -> O + Send + Sync,
{
    par_map_timed(items, jobs, f).into_iter().map(|t| t.value).collect()
}

/// Like [`par_map`], but also reports each task's wall-clock duration.
pub fn par_map_timed<I, O, F>(items: Vec<I>, jobs: usize, f: F) -> Vec<Timed<O>>
where
    I: Send,
    O: Send,
    F: Fn(I) -> O + Send + Sync,
{
    let jobs = jobs.min(items.len()).max(1);
    if jobs == 1 {
        return items
            .into_iter()
            .map(|item| {
                let start = Instant::now();
                let value = f(item);
                Timed { value, elapsed: start.elapsed() }
            })
            .collect();
    }

    let n = items.len();
    let (task_tx, task_rx) = mpsc::channel::<(usize, I)>();
    let task_rx = Arc::new(Mutex::new(task_rx));
    let (res_tx, res_rx) = mpsc::channel::<(usize, Timed<O>)>();
    for task in items.into_iter().enumerate() {
        task_tx.send(task).expect("queue open");
    }
    drop(task_tx);

    // Scoped threads: borrow `f` instead of requiring 'static closures.
    let mut results: Vec<Option<Timed<O>>> = std::iter::repeat_with(|| None).take(n).collect();
    thread::scope(|scope| {
        for _ in 0..jobs {
            let task_rx = Arc::clone(&task_rx);
            let res_tx = res_tx.clone();
            let f = &f;
            scope.spawn(move || loop {
                let (index, item) = {
                    let guard = task_rx.lock().expect("not poisoned");
                    match guard.recv() {
                        Ok(task) => task,
                        Err(_) => break,
                    }
                };
                let start = Instant::now();
                let value = f(item);
                if res_tx.send((index, Timed { value, elapsed: start.elapsed() })).is_err() {
                    break;
                }
            });
        }
        drop(res_tx);
        for (index, timed) in res_rx {
            results[index] = Some(timed);
        }
    });
    results.into_iter().map(|r| r.expect("every task completed")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_input_order() {
        let out = par_map((0..64u64).collect(), 4, |x| x * x);
        assert_eq!(out, (0..64u64).map(|x| x * x).collect::<Vec<_>>());
    }

    #[test]
    fn single_job_runs_inline() {
        let out = par_map(vec![1, 2, 3], 1, |x| x + 1);
        assert_eq!(out, vec![2, 3, 4]);
    }

    #[test]
    fn empty_input_is_fine() {
        let out: Vec<u32> = par_map(Vec::<u32>::new(), 8, |x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn timed_durations_are_recorded() {
        let out = par_map_timed(vec![10u64, 20], 2, |x| {
            thread::sleep(Duration::from_millis(x));
            x
        });
        assert_eq!(out.len(), 2);
        for t in &out {
            assert!(t.elapsed >= Duration::from_millis(t.value / 2));
        }
    }

    #[test]
    fn borrows_environment_without_static() {
        let factor = 3u64;
        let out = par_map(vec![1, 2], 2, |x| x * factor);
        assert_eq!(out, vec![3, 6]);
    }
}
