//! The canonical per-run metric record.
//!
//! Every simulation in the conformance matrix — and every figure binary
//! that wants machine-readable output — reduces to one [`RunMetrics`]
//! record: the paper's headline metrics plus the robustness counters.
//! The JSON encoding is canonical (fixed field order, shortest
//! round-trip floats, `null` for absent values), so identical runs
//! produce byte-identical lines; the double-run determinism test pins
//! exactly that.

use crate::json::{self, Value};
use digs::flows::FlowSpec;
use digs::results::RunResults;
use digs_sim::time::Asn;

/// Context a raw [`RunResults`] cannot supply on its own: which window
/// and repair event the scenario defines.
#[derive(Debug, Clone, Copy, Default)]
pub struct MetricContext {
    /// When the disturbance (jammer start / first failure) struck,
    /// seconds into the run — enables the repair-time metric.
    pub repair_event_secs: Option<u64>,
    /// Quiet period that ends a repair burst, seconds (only read when
    /// `repair_event_secs` is set).
    pub repair_settle_secs: u64,
    /// Start of the "during repair" PDR window, slots — enables the
    /// Fig. 5 windowed-PDR metrics.
    pub window_start_slot: Option<u64>,
}

/// One run's canonical metrics. Field order here is the canonical JSON
/// field order.
#[derive(Debug, Clone, PartialEq)]
pub struct RunMetrics {
    /// Scenario name (matrix key, e.g. `fig09-digs`).
    pub scenario: String,
    /// Protocol short name.
    pub protocol: String,
    /// Flow-set seed of the run.
    pub seed: u64,
    /// Simulated seconds.
    pub secs: u64,
    /// Mean per-flow PDR (the paper's flow-set PDR).
    pub pdr: f64,
    /// Worst per-flow PDR.
    pub worst_flow_pdr: f64,
    /// Median end-to-end latency, ms (`None` if nothing delivered).
    pub median_latency_ms: Option<f64>,
    /// Worst-case end-to-end latency across all flows, ms.
    pub worst_latency_ms: Option<f64>,
    /// Mean per-node radio duty cycle, percent.
    pub duty_cycle_percent: f64,
    /// Network radio power per delivered packet, mW (`None` when nothing
    /// was delivered — the metric is infinite there).
    pub power_per_packet_mw: Option<f64>,
    /// Radio energy per delivered packet, mJ (`None` as above).
    pub energy_per_packet_mj: Option<f64>,
    /// Repair time after the scenario's disturbance, seconds (`None`
    /// without a disturbance or without repair activity).
    pub repair_time_secs: Option<f64>,
    /// Median per-flow PDR inside the disturbance window (Fig. 5).
    pub windowed_pdr_median: Option<f64>,
    /// Worst per-flow PDR inside the disturbance window.
    pub windowed_pdr_worst: Option<f64>,
    /// Fraction of nodes that joined.
    pub fraction_joined: f64,
    /// Mean join time over joined nodes, seconds (Fig. 13).
    pub mean_join_secs: Option<f64>,
    /// Parent-set changes across all nodes.
    pub parent_changes: u64,
    /// Packets dropped after exhausting retries.
    pub retry_drops: u64,
    /// Packets dropped on queue overflow.
    pub queue_drops: u64,
    /// Invariant violations recorded by the runtime auditor (0 for
    /// unaudited runs).
    pub audit_violations: u64,
    /// Telemetry epochs sampled (`None` when telemetry was off — the
    /// golden aggregator skips absent metrics, so gate runs with
    /// telemetry pinned off are unaffected).
    pub telemetry_epochs: Option<u64>,
    /// Health alerts the telemetry monitor raised (`None` as above).
    pub health_alerts: Option<u64>,
    /// Lowest non-idle epoch PDR the telemetry stream saw (`None` when
    /// telemetry was off or no epoch carried traffic).
    pub epoch_pdr_min: Option<f64>,
}

/// The scalar metrics a golden check can reference, in canonical order.
pub const METRIC_KEYS: &[&str] = &[
    "pdr",
    "worst_flow_pdr",
    "median_latency_ms",
    "worst_latency_ms",
    "duty_cycle_percent",
    "power_per_packet_mw",
    "energy_per_packet_mj",
    "repair_time_secs",
    "windowed_pdr_median",
    "windowed_pdr_worst",
    "fraction_joined",
    "mean_join_secs",
    "parent_changes",
    "retry_drops",
    "queue_drops",
    "audit_violations",
    "telemetry_epochs",
    "health_alerts",
    "epoch_pdr_min",
];

impl RunMetrics {
    /// Reduces a finished run to its canonical record.
    pub fn from_results(
        scenario: &str,
        protocol: &str,
        seed: u64,
        secs: u64,
        results: &RunResults,
        specs: &[FlowSpec],
        ctx: MetricContext,
    ) -> RunMetrics {
        let mut latency = digs_metrics::StreamingSummary::new();
        for l in results.all_latencies_ms() {
            latency.push(l);
        }
        let worst_latency_ms = latency.max();
        let delivered = results.total_delivered();
        let energy_per_packet_mj = if delivered == 0 {
            None
        } else {
            let total_mj: f64 = results.nodes.iter().map(|n| n.energy_mj).sum();
            Some(total_mj / f64::from(delivered))
        };
        let repair_time_secs = ctx.repair_event_secs.and_then(|event| {
            results.repair_time_secs(Asn::from_secs(event), ctx.repair_settle_secs * 100)
        });
        let (windowed_pdr_median, windowed_pdr_worst) = match ctx.window_start_slot {
            None => (None, None),
            Some(start) => {
                let mut pdrs: Vec<f64> = results
                    .flows
                    .iter()
                    .zip(specs)
                    .filter_map(|(flow, spec)| {
                        digs::experiment::windowed_flow_pdr(flow, spec, start)
                    })
                    .collect();
                pdrs.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
                if pdrs.is_empty() {
                    (None, None)
                } else {
                    (Some(digs_metrics::stats::percentile_sorted(&pdrs, 50.0)), Some(pdrs[0]))
                }
            }
        };
        let mut join = digs_metrics::StreamingSummary::new();
        for t in results.join_times_secs() {
            join.push(t);
        }
        let mean_join_secs = join.mean();
        let power = results.power_per_received_packet_mw();
        RunMetrics {
            scenario: scenario.to_string(),
            protocol: protocol.to_string(),
            seed,
            secs,
            pdr: results.network_pdr(),
            worst_flow_pdr: results.worst_flow_pdr(),
            median_latency_ms: results.median_latency_ms(),
            worst_latency_ms,
            duty_cycle_percent: results.mean_duty_cycle_percent(),
            power_per_packet_mw: power.is_finite().then_some(power),
            energy_per_packet_mj,
            repair_time_secs,
            windowed_pdr_median,
            windowed_pdr_worst,
            fraction_joined: results.fraction_joined(),
            mean_join_secs,
            parent_changes: results.parent_change_times.len() as u64,
            retry_drops: results.retry_drops,
            queue_drops: results.queue_drops,
            audit_violations: results.invariant_violations.len() as u64,
            telemetry_epochs: None,
            health_alerts: None,
            epoch_pdr_min: None,
        }
    }

    /// Attaches a run's telemetry summary (when telemetry was enabled).
    pub fn attach_telemetry(&mut self, summary: &digs::telemetry::TelemetrySummary) {
        self.telemetry_epochs = Some(summary.epochs);
        self.health_alerts = Some(summary.alerts);
        self.epoch_pdr_min = summary.epoch_pdr_min;
    }

    /// The value of one scalar metric by key, `None` when absent for
    /// this run (so it contributes no sample to the aggregate).
    pub fn metric(&self, key: &str) -> Option<f64> {
        match key {
            "pdr" => Some(self.pdr),
            "worst_flow_pdr" => Some(self.worst_flow_pdr),
            "median_latency_ms" => self.median_latency_ms,
            "worst_latency_ms" => self.worst_latency_ms,
            "duty_cycle_percent" => Some(self.duty_cycle_percent),
            "power_per_packet_mw" => self.power_per_packet_mw,
            "energy_per_packet_mj" => self.energy_per_packet_mj,
            "repair_time_secs" => self.repair_time_secs,
            "windowed_pdr_median" => self.windowed_pdr_median,
            "windowed_pdr_worst" => self.windowed_pdr_worst,
            "fraction_joined" => Some(self.fraction_joined),
            "mean_join_secs" => self.mean_join_secs,
            "parent_changes" => Some(self.parent_changes as f64),
            "retry_drops" => Some(self.retry_drops as f64),
            "queue_drops" => Some(self.queue_drops as f64),
            "audit_violations" => Some(self.audit_violations as f64),
            "telemetry_epochs" => self.telemetry_epochs.map(|v| v as f64),
            "health_alerts" => self.health_alerts.map(|v| v as f64),
            "epoch_pdr_min" => self.epoch_pdr_min,
            _ => None,
        }
    }

    /// The canonical JSON value (fixed field order).
    pub fn to_value(&self) -> Value {
        Value::Obj(vec![
            ("scenario".into(), Value::Str(self.scenario.clone())),
            ("protocol".into(), Value::Str(self.protocol.clone())),
            ("seed".into(), Value::Num(self.seed as f64)),
            ("secs".into(), Value::Num(self.secs as f64)),
            ("pdr".into(), Value::num(self.pdr)),
            ("worst_flow_pdr".into(), Value::num(self.worst_flow_pdr)),
            ("median_latency_ms".into(), Value::opt(self.median_latency_ms)),
            ("worst_latency_ms".into(), Value::opt(self.worst_latency_ms)),
            ("duty_cycle_percent".into(), Value::num(self.duty_cycle_percent)),
            ("power_per_packet_mw".into(), Value::opt(self.power_per_packet_mw)),
            ("energy_per_packet_mj".into(), Value::opt(self.energy_per_packet_mj)),
            ("repair_time_secs".into(), Value::opt(self.repair_time_secs)),
            ("windowed_pdr_median".into(), Value::opt(self.windowed_pdr_median)),
            ("windowed_pdr_worst".into(), Value::opt(self.windowed_pdr_worst)),
            ("fraction_joined".into(), Value::num(self.fraction_joined)),
            ("mean_join_secs".into(), Value::opt(self.mean_join_secs)),
            ("parent_changes".into(), Value::Num(self.parent_changes as f64)),
            ("retry_drops".into(), Value::Num(self.retry_drops as f64)),
            ("queue_drops".into(), Value::Num(self.queue_drops as f64)),
            ("audit_violations".into(), Value::Num(self.audit_violations as f64)),
            ("telemetry_epochs".into(), Value::opt(self.telemetry_epochs.map(|v| v as f64))),
            ("health_alerts".into(), Value::opt(self.health_alerts.map(|v| v as f64))),
            ("epoch_pdr_min".into(), Value::opt(self.epoch_pdr_min)),
        ])
    }

    /// One canonical JSONL line (no trailing newline).
    pub fn to_line(&self) -> String {
        self.to_value().to_compact()
    }

    /// Decodes a record from its JSON value.
    ///
    /// # Errors
    ///
    /// Returns a message naming the first missing or ill-typed field.
    pub fn from_value(v: &Value) -> Result<RunMetrics, String> {
        let str_field = |k: &str| {
            v.field(k).and_then(Value::as_str).map(str::to_string).ok_or(format!("missing {k}"))
        };
        let u64_field = |k: &str| v.field(k).and_then(Value::as_u64).ok_or(format!("missing {k}"));
        let f64_field = |k: &str| v.field(k).and_then(Value::as_f64).ok_or(format!("missing {k}"));
        let opt_field = |k: &str| match v.field(k) {
            None | Some(Value::Null) => Ok(None),
            Some(x) => x.as_f64().map(Some).ok_or(format!("bad {k}")),
        };
        Ok(RunMetrics {
            scenario: str_field("scenario")?,
            protocol: str_field("protocol")?,
            seed: u64_field("seed")?,
            secs: u64_field("secs")?,
            pdr: f64_field("pdr")?,
            worst_flow_pdr: f64_field("worst_flow_pdr")?,
            median_latency_ms: opt_field("median_latency_ms")?,
            worst_latency_ms: opt_field("worst_latency_ms")?,
            duty_cycle_percent: f64_field("duty_cycle_percent")?,
            power_per_packet_mw: opt_field("power_per_packet_mw")?,
            energy_per_packet_mj: opt_field("energy_per_packet_mj")?,
            repair_time_secs: opt_field("repair_time_secs")?,
            windowed_pdr_median: opt_field("windowed_pdr_median")?,
            windowed_pdr_worst: opt_field("windowed_pdr_worst")?,
            fraction_joined: f64_field("fraction_joined")?,
            mean_join_secs: opt_field("mean_join_secs")?,
            parent_changes: u64_field("parent_changes")?,
            retry_drops: u64_field("retry_drops")?,
            queue_drops: u64_field("queue_drops")?,
            audit_violations: u64_field("audit_violations")?,
            telemetry_epochs: opt_field("telemetry_epochs")?.map(|v| v as u64),
            health_alerts: opt_field("health_alerts")?.map(|v| v as u64),
            epoch_pdr_min: opt_field("epoch_pdr_min")?,
        })
    }

    /// Parses one canonical JSONL line.
    ///
    /// # Errors
    ///
    /// Returns a message on malformed JSON or a missing field.
    pub fn from_line(line: &str) -> Result<RunMetrics, String> {
        let v = json::parse(line).map_err(|e| e.to_string())?;
        RunMetrics::from_value(&v)
    }
}

/// Encodes records as canonical JSONL (one line each, trailing newline).
pub fn to_jsonl(records: &[RunMetrics]) -> String {
    let mut out = String::new();
    for r in records {
        out.push_str(&r.to_line());
        out.push('\n');
    }
    out
}

/// Parses canonical JSONL back into records (blank lines skipped).
///
/// # Errors
///
/// Returns the first line's error, 1-indexed.
pub fn from_jsonl(text: &str) -> Result<Vec<RunMetrics>, String> {
    text.lines()
        .enumerate()
        .filter(|(_, l)| !l.trim().is_empty())
        .map(|(i, l)| RunMetrics::from_line(l).map_err(|e| format!("line {}: {e}", i + 1)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use digs::config::Protocol;
    use digs::flows::flow_set_from_sources;
    use digs_sim::ids::NodeId;
    use digs_sim::topology::Topology;

    fn sample() -> RunMetrics {
        let config = digs::config::NetworkConfig::builder(Topology::testbed_a_half())
            .protocol(Protocol::Digs)
            .seed(7)
            .flows(flow_set_from_sources(&[NodeId(10), NodeId(15)], 300))
            .build();
        let specs = config.flows.clone();
        let results = digs::experiment::run_for(config, 60);
        RunMetrics::from_results(
            "unit-test",
            "digs",
            7,
            60,
            &results,
            &specs,
            MetricContext {
                repair_event_secs: Some(10),
                repair_settle_secs: 10,
                window_start_slot: Some(1000),
            },
        )
    }

    #[test]
    fn record_round_trips_through_canonical_json() {
        let m = sample();
        let line = m.to_line();
        let back = RunMetrics::from_line(&line).expect("parse back");
        assert_eq!(back, m);
        assert_eq!(back.to_line(), line, "re-encoding is stable");
    }

    #[test]
    fn jsonl_round_trips() {
        let m = sample();
        let records = vec![m.clone(), m];
        let text = to_jsonl(&records);
        assert_eq!(from_jsonl(&text).expect("parse"), records);
    }

    #[test]
    fn every_metric_key_resolves() {
        let m = sample();
        for key in METRIC_KEYS {
            // Keys must at least be known (absent values are fine).
            let _ = m.metric(key);
        }
        assert_eq!(m.metric("no-such-metric"), None);
        assert_eq!(m.metric("pdr"), Some(m.pdr));
    }

    #[test]
    fn absent_metrics_encode_as_null() {
        let mut m = sample();
        m.repair_time_secs = None;
        let line = m.to_line();
        assert!(line.contains("\"repair_time_secs\":null"), "{line}");
        let back = RunMetrics::from_line(&line).unwrap();
        assert_eq!(back.repair_time_secs, None);
    }

    #[test]
    fn missing_field_is_an_error() {
        assert!(RunMetrics::from_line("{\"scenario\":\"x\"}").is_err());
        assert!(RunMetrics::from_line("not json").is_err());
    }
}
