//! # digs-conformance — golden-run conformance harness
//!
//! Turns the DiGS reproduction's paper-figure scenarios into an enforced
//! regression suite:
//!
//! - [`matrix`] defines the scenario × seed matrix (Figs. 4/5, 9–13, the
//!   three-way comparison, the chaos soak) with shared immutable
//!   topology setup hoisted out of the per-seed loop;
//! - [`pool`] fans the deterministic simulations out over the available
//!   cores (one run per worker, results in input order);
//! - [`metrics`] reduces every run to a canonical [`metrics::RunMetrics`]
//!   JSON record — byte-identical for identical seed + config;
//! - [`golden`] aggregates per-scenario distributions (median, p90, min,
//!   max) and derives explicit per-metric tolerance bands for the
//!   checked-in `goldens/*.json` baselines;
//! - [`report`] compares fresh aggregates against a golden and renders
//!   the human-readable diff table;
//! - [`gate`] orchestrates the whole thing behind `digs-cli gate`.
//!
//! The [`json`] module is the deterministic JSON writer/reader the
//! records and goldens share (ordered fields, shortest round-trip float
//! formatting, `null` for absent metrics).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod gate;
pub mod golden;
pub mod json;
pub mod matrix;
pub mod metrics;
pub mod pool;
pub mod report;

pub use gate::{run_gate, GateOptions, GateOutcome};
pub use matrix::{MatrixKind, ScenarioSpec};
pub use metrics::{MetricContext, RunMetrics};
