//! # digs-conformance — golden-run conformance harness
//!
//! Turns the DiGS reproduction's paper-figure scenarios into an enforced
//! regression suite:
//!
//! - [`matrix`] defines the scenario × seed matrix (Figs. 4/5, 9–13, the
//!   three-way comparison, the chaos soak) with shared immutable
//!   topology setup hoisted out of the per-seed loop;
//! - [`pool`] (the shared [`digs_pool`] crate, re-exported) fans the
//!   deterministic simulations out over the available cores (one run per
//!   worker, results in input order, panics labeled with scenario/seed);
//! - [`metrics`] reduces every run to a canonical [`metrics::RunMetrics`]
//!   JSON record — byte-identical for identical seed + config;
//! - [`golden`] aggregates per-scenario distributions (median, p90, min,
//!   max) and derives explicit per-metric tolerance bands for the
//!   checked-in `goldens/*.json` baselines;
//! - [`report`] compares fresh aggregates against a golden and renders
//!   the human-readable diff table;
//! - [`gate`] orchestrates the whole thing behind `digs-cli gate`.
//!
//! The [`json`] module (the shared [`digs_json`] crate, re-exported) is
//! the deterministic JSON writer/reader the records, goldens, and fleet
//! reports share (ordered fields, shortest round-trip float formatting,
//! `null` for absent metrics).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod gate;
pub mod golden;
pub mod matrix;
pub mod metrics;
pub mod report;

/// The shared worker pool (promoted to its own crate so the gate, the
/// benchmarks, and the fleet runner share one executor); re-exported
/// under the historical `digs_conformance::pool` path.
pub use digs_pool as pool;

/// The deterministic JSON writer/reader (promoted to its own crate so
/// the fleet report shares it without a dependency cycle); re-exported
/// under the historical `digs_conformance::json` path.
pub use digs_json as json;

pub use gate::{run_gate, GateOptions, GateOutcome};
pub use matrix::{MatrixKind, ScenarioSpec};
pub use metrics::{MetricContext, RunMetrics};
