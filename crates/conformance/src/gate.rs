//! The conformance gate: run the scenario × seed matrix in parallel,
//! aggregate, and compare against (or bless) the golden baseline.

use crate::golden::{aggregate, Golden};
use crate::matrix::{MatrixKind, ScenarioSpec};
use crate::metrics::{self, RunMetrics};
use crate::pool;
use crate::report::Report;
use std::path::PathBuf;
use std::time::Duration;

/// Options for one gate invocation.
#[derive(Debug, Clone)]
pub struct GateOptions {
    /// Which matrix tier to run.
    pub matrix: MatrixKind,
    /// The seed sweep (must match the golden's unless blessing).
    pub seeds: Vec<u64>,
    /// Directory holding `small.json` / `full.json` baselines.
    pub goldens_dir: PathBuf,
    /// Rewrite the baseline from this run instead of comparing.
    pub bless: bool,
    /// Worker threads (default: one per core).
    pub jobs: Option<usize>,
    /// Override every scenario's simulated seconds (clamped to each
    /// scenario's minimum). Goldens record the value; a mismatch fails.
    pub secs: Option<u64>,
    /// Emit the canonical records as JSONL on stdout (progress and
    /// tables go to stderr).
    pub json: bool,
    /// Test hook: halve the delivery metrics of scenarios whose name
    /// contains this substring, to demonstrate that a deliberate PDR
    /// regression trips the gate.
    pub inject_loss: Option<String>,
    /// Append the markdown diff table to this file on failure (CI step
    /// summaries).
    pub summary: Option<PathBuf>,
}

impl GateOptions {
    /// Defaults: full matrix, seeds 1–8, `goldens/`, compare mode.
    pub fn new() -> GateOptions {
        GateOptions {
            matrix: MatrixKind::Full,
            seeds: (1..=8).collect(),
            goldens_dir: PathBuf::from("goldens"),
            bless: false,
            jobs: None,
            secs: None,
            json: false,
            inject_loss: None,
            summary: None,
        }
    }

    /// The golden file this invocation reads or writes.
    pub fn golden_path(&self) -> PathBuf {
        self.goldens_dir.join(format!("{}.json", self.matrix.name()))
    }
}

impl Default for GateOptions {
    fn default() -> Self {
        GateOptions::new()
    }
}

/// What a gate invocation produced.
#[derive(Debug)]
pub struct GateOutcome {
    /// Every run's canonical record, scenario-major then seed order.
    pub records: Vec<RunMetrics>,
    /// The comparison (absent in bless mode).
    pub report: Option<Report>,
    /// End-to-end wall-clock time of the matrix.
    pub wall: Duration,
    /// Sum of per-run durations — what a serial sweep would have cost.
    pub serial_equivalent: Duration,
    /// Worker threads used.
    pub jobs: usize,
    /// Whether the gate passed (always true after a bless).
    pub passed: bool,
}

fn degrade(record: &mut RunMetrics) {
    record.pdr *= 0.5;
    record.worst_flow_pdr *= 0.5;
    record.windowed_pdr_median = record.windowed_pdr_median.map(|v| v * 0.5);
    record.windowed_pdr_worst = record.windowed_pdr_worst.map(|v| v * 0.5);
}

/// Runs the gate. Progress goes to stderr, human-readable results to
/// stdout (or stderr with `json`, which reserves stdout for records).
///
/// # Errors
///
/// Returns a message on I/O failures, a missing or stale golden, or a
/// seed/duration mismatch with the golden. A tolerance breach is NOT an
/// error — it comes back as `passed: false` with the diff in `report`.
pub fn run_gate(opts: &GateOptions) -> Result<GateOutcome, String> {
    if opts.seeds.is_empty() {
        return Err("empty seed sweep".into());
    }
    let specs = opts.matrix.scenarios(opts.secs);
    let say = |line: &str| {
        if opts.json {
            eprintln!("{line}");
        } else {
            println!("{line}");
        }
    };

    // One task per (scenario, seed); the specs' shared topologies were
    // hoisted when the matrix was built.
    let tasks: Vec<(usize, u64)> =
        (0..specs.len()).flat_map(|i| opts.seeds.iter().map(move |s| (i, *s))).collect();
    let jobs = opts.jobs.unwrap_or_else(|| pool::default_jobs(tasks.len())).max(1);
    eprintln!(
        "gate: {} matrix, {} scenarios x {} seeds = {} runs on {} worker(s)",
        opts.matrix.name(),
        specs.len(),
        opts.seeds.len(),
        tasks.len(),
        jobs
    );
    let wall_start = std::time::Instant::now();
    // Labeled fan-out: if a run panics, the pool reports which
    // scenario/seed fell over instead of a bare join failure.
    let timed = pool::par_map_labeled(
        tasks,
        jobs,
        |_, (i, seed)| format!("{}/seed{}", specs[*i].name, seed),
        |(i, seed)| specs[i].run(seed),
    );
    let wall = wall_start.elapsed();
    let serial_equivalent: Duration = timed.iter().map(|t| t.elapsed).sum();
    let mut records: Vec<RunMetrics> = timed.into_iter().map(|t| t.value).collect();

    if let Some(pattern) = &opts.inject_loss {
        let mut hit = 0;
        for r in records.iter_mut().filter(|r| r.scenario.contains(pattern.as_str())) {
            degrade(r);
            hit += 1;
        }
        eprintln!("gate: injected 2x loss into {hit} record(s) matching `{pattern}` (test hook)");
    }

    if opts.json {
        print!("{}", metrics::to_jsonl(&records));
    }

    // Group scenario-major (the task order already is).
    let per_seed = opts.seeds.len();
    let groups: Vec<(&ScenarioSpec, Vec<RunMetrics>)> = specs
        .iter()
        .zip(records.chunks(per_seed))
        .map(|(spec, chunk)| (spec, chunk.to_vec()))
        .collect();

    let speedup = serial_equivalent.as_secs_f64() / wall.as_secs_f64().max(1e-9);
    say("");
    say(&format!(
        "{:<24} {:>7} {:>10} {:>12} {:>10}",
        "scenario", "pdr~", "worstPDR~", "repair~ (s)", "checks"
    ));
    for (spec, group) in &groups {
        let aggs = aggregate(group);
        let get = |k: &str| {
            aggs.iter()
                .find(|(key, _)| key == k)
                .map_or("-".to_string(), |(_, v)| format!("{v:.3}"))
        };
        say(&format!(
            "{:<24} {:>7} {:>10} {:>12} {:>10}",
            spec.name,
            get("pdr.median"),
            get("worst_flow_pdr.median"),
            get("repair_time_secs.median"),
            aggs.len(),
        ));
    }
    say("");
    say(&format!(
        "wall clock {:.1} s vs serial-equivalent {:.1} s ({speedup:.1}x on {jobs} worker(s))",
        wall.as_secs_f64(),
        serial_equivalent.as_secs_f64(),
    ));

    let golden_path = opts.golden_path();
    if opts.bless {
        let golden = Golden::bless(opts.matrix.name(), &opts.seeds, &groups);
        std::fs::create_dir_all(&opts.goldens_dir)
            .map_err(|e| format!("creating {}: {e}", opts.goldens_dir.display()))?;
        std::fs::write(&golden_path, golden.to_pretty())
            .map_err(|e| format!("writing {}: {e}", golden_path.display()))?;
        let checks: usize = golden.scenarios.iter().map(|s| s.checks.len()).sum();
        say(&format!(
            "blessed {} ({} scenarios, {checks} checks)",
            golden_path.display(),
            golden.scenarios.len()
        ));
        return Ok(GateOutcome {
            records,
            report: None,
            wall,
            serial_equivalent,
            jobs,
            passed: true,
        });
    }

    let text = std::fs::read_to_string(&golden_path).map_err(|e| {
        format!("reading {}: {e} (run with --bless to create the baseline)", golden_path.display())
    })?;
    let golden = Golden::parse(&text).map_err(|e| format!("{}: {e}", golden_path.display()))?;
    if golden.seeds != opts.seeds {
        return Err(format!(
            "seed sweep mismatch: golden {} was blessed over seeds {:?}, this run uses {:?} \
             (pass the same --seeds, or --bless to rebase)",
            golden_path.display(),
            golden.seeds,
            opts.seeds
        ));
    }
    for (spec, _) in &groups {
        if let Some(sg) = golden.scenario(&spec.name) {
            if sg.secs != spec.secs {
                return Err(format!(
                    "duration mismatch for {}: golden blessed at {} s, this run uses {} s \
                     (drop --secs, or --bless to rebase)",
                    spec.name, sg.secs, spec.secs
                ));
            }
        }
    }

    let fresh: Vec<(String, Vec<(String, f64)>)> =
        groups.iter().map(|(spec, group)| (spec.name.clone(), aggregate(group))).collect();
    let report = Report::compare(&golden, &fresh);
    say("");
    if report.passed() {
        say(&format!(
            "gate PASSED: {} checks within tolerance of {}",
            report.total(),
            golden_path.display()
        ));
    } else {
        let table = report.diff_table();
        say(&format!(
            "gate FAILED: {} of {} checks breached {}:",
            report.failures().len(),
            report.total(),
            golden_path.display()
        ));
        say("");
        for line in table.lines() {
            say(line);
        }
        if let Some(summary) = &opts.summary {
            use std::io::Write;
            let mut file = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(summary)
                .map_err(|e| format!("opening {}: {e}", summary.display()))?;
            write!(
                file,
                "## Conformance gate failed ({} of {} checks)\n\n{}\n",
                report.failures().len(),
                report.total(),
                report.diff_table_markdown()
            )
            .map_err(|e| format!("writing {}: {e}", summary.display()))?;
        }
    }
    let passed = report.passed();
    Ok(GateOutcome { records, report: Some(report), wall, serial_equivalent, jobs, passed })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn degrade_halves_delivery_metrics() {
        let mut r = RunMetrics {
            scenario: "x".into(),
            protocol: "digs".into(),
            seed: 1,
            secs: 60,
            pdr: 0.9,
            worst_flow_pdr: 0.8,
            median_latency_ms: None,
            worst_latency_ms: None,
            duty_cycle_percent: 1.0,
            power_per_packet_mw: None,
            energy_per_packet_mj: None,
            repair_time_secs: None,
            windowed_pdr_median: Some(0.9),
            windowed_pdr_worst: None,
            fraction_joined: 1.0,
            mean_join_secs: None,
            parent_changes: 0,
            retry_drops: 0,
            queue_drops: 0,
            audit_violations: 0,
            telemetry_epochs: None,
            health_alerts: None,
            epoch_pdr_min: None,
        };
        degrade(&mut r);
        assert!((r.pdr - 0.45).abs() < 1e-12);
        assert!((r.windowed_pdr_median.unwrap() - 0.45).abs() < 1e-12);
        assert_eq!(r.windowed_pdr_worst, None);
    }

    #[test]
    fn golden_path_follows_matrix_tier() {
        let mut opts = GateOptions::new();
        opts.matrix = MatrixKind::Small;
        opts.goldens_dir = PathBuf::from("/tmp/g");
        assert_eq!(opts.golden_path(), PathBuf::from("/tmp/g/small.json"));
    }

    #[test]
    fn empty_seed_sweep_is_rejected() {
        let mut opts = GateOptions::new();
        opts.seeds.clear();
        assert!(run_gate(&opts).is_err());
    }
}
