//! Golden baselines: per-scenario aggregate checks with explicit
//! tolerance bands.
//!
//! Blessing (`digs-cli gate --bless`) aggregates the fresh records into
//! per-scenario distributions (median, p90, min, max per metric) and
//! derives a `[lo, hi]` band for each gated aggregate from the tolerance
//! policy in [`band`]. The checked-in golden stores the observed value
//! *and* the band, so a later gate run needs no policy knowledge — it
//! just compares, and the diff table can show how far outside the band
//! an observation landed.
//!
//! Two checks encode paper bounds rather than pure self-consistency:
//!
//! - `windowed_pdr_median.median` (the Fig. 5 "PDR during repair"
//!   metric) is floored at the paper's median minus a small slack — the
//!   old eyeball check was flagged "too forgiving" in EXPERIMENTS.md and
//!   is now a hard assertion;
//! - `repair_time_secs.median` (Fig. 4) gets a tight ±40 % band instead
//!   of the loose range overlap noted there.

use crate::json::{self, Value};
use crate::matrix::ScenarioSpec;
use crate::metrics::{RunMetrics, METRIC_KEYS};

/// The aggregate statistics a check can gate on.
pub const STATS: &[&str] = &["median", "p90", "min", "max"];

/// Computes one aggregate statistic over a metric's samples.
pub fn aggregate_stat(samples: &[f64], stat: &str) -> Option<f64> {
    if samples.is_empty() {
        return None;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    match stat {
        "median" => Some(digs_metrics::stats::percentile_sorted(&sorted, 50.0)),
        "p90" => Some(digs_metrics::stats::percentile_sorted(&sorted, 90.0)),
        "min" => Some(sorted[0]),
        "max" => Some(*sorted.last().expect("non-empty")),
        _ => None,
    }
}

/// All aggregates for one scenario's records, as `("metric.stat", value)`
/// pairs in canonical order. Metrics absent from every record contribute
/// nothing.
pub fn aggregate(records: &[RunMetrics]) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    for key in METRIC_KEYS {
        let samples: Vec<f64> = records.iter().filter_map(|r| r.metric(key)).collect();
        if samples.is_empty() {
            continue;
        }
        for stat in STATS {
            if let Some(v) = aggregate_stat(&samples, stat) {
                out.push((format!("{key}.{stat}"), v));
            }
        }
    }
    out
}

/// The aggregates each scenario is gated on. Everything else is recorded
/// but not checked (p90/max of most metrics track the gated stats and
/// would only double-report the same regression).
const GATED: &[&str] = &[
    "pdr.median",
    "pdr.min",
    "worst_flow_pdr.median",
    "worst_flow_pdr.min",
    "median_latency_ms.median",
    "worst_latency_ms.median",
    "duty_cycle_percent.median",
    "power_per_packet_mw.median",
    "energy_per_packet_mj.median",
    "repair_time_secs.median",
    "windowed_pdr_median.median",
    "windowed_pdr_worst.min",
    "fraction_joined.min",
    "mean_join_secs.median",
    "audit_violations.max",
];

/// Derives the `[lo, hi]` tolerance band for a gated aggregate observed
/// at `observed`. `floor` is an optional absolute lower bound (the
/// paper-derived Fig. 5 floor) that tightens `lo` upward; `ceiling` is an
/// optional absolute upper bound (the adversarial-gate attack ceiling)
/// that tightens `hi` downward — an attack scenario whose victim PDR
/// *recovers* above the ceiling means the attack stopped working, which
/// is just as much a conformance failure as a regression.
pub fn band(key: &str, observed: f64, floor: Option<f64>, ceiling: Option<f64>) -> (f64, f64) {
    // Ratio metrics: absolute slack, upper bound clamped to 1.
    let ratio = |slack_lo: f64, slack_hi: f64| {
        ((observed - slack_lo).max(0.0), (observed + slack_hi).min(1.0))
    };
    // Scale metrics: relative slack with an absolute slack floor.
    let rel = |fraction: f64, abs_floor: f64| {
        let slack = (observed.abs() * fraction).max(abs_floor);
        ((observed - slack).max(0.0), observed + slack)
    };
    let (lo, hi) = match key {
        "pdr.median" => ratio(0.04, 0.04),
        "pdr.min" => ratio(0.08, 1.0),
        "worst_flow_pdr.median" => ratio(0.08, 0.08),
        "worst_flow_pdr.min" => ratio(0.15, 1.0),
        "median_latency_ms.median" => rel(0.30, 20.0),
        "worst_latency_ms.median" => rel(0.60, 50.0),
        "duty_cycle_percent.median" => rel(0.25, 0.05),
        "power_per_packet_mw.median" => rel(0.30, 0.01),
        "energy_per_packet_mj.median" => rel(0.30, 0.5),
        // Fig. 4: tightened from the old "range overlaps" eyeball check.
        "repair_time_secs.median" => rel(0.40, 2.0),
        // Fig. 5: tight absolute band; `floor` adds the paper bound.
        "windowed_pdr_median.median" => ratio(0.03, 0.03),
        "windowed_pdr_worst.min" => ratio(0.10, 1.0),
        "fraction_joined.min" => ratio(0.05, 1.0),
        "mean_join_secs.median" => rel(0.40, 5.0),
        // Robustness: violations may never exceed the blessed count
        // (zero on a healthy tree), and a later drop to zero is fine.
        "audit_violations.max" => (0.0, observed),
        _ => rel(0.50, 1.0),
    };
    let (lo, hi) = match floor {
        Some(f) => (lo.max(f), hi.max(f)),
        None => (lo, hi),
    };
    match ceiling {
        Some(c) => (lo.min(c), hi.min(c)),
        None => (lo, hi),
    }
}

/// One gated aggregate with its blessed value and tolerance band.
#[derive(Debug, Clone, PartialEq)]
pub struct Check {
    /// `metric.stat` key, e.g. `pdr.median`.
    pub metric: String,
    /// The aggregate at bless time.
    pub observed: f64,
    /// Inclusive lower bound.
    pub lo: f64,
    /// Inclusive upper bound.
    pub hi: f64,
}

impl Check {
    /// Whether `value` satisfies the band.
    pub fn passes(&self, value: f64) -> bool {
        value >= self.lo && value <= self.hi
    }
}

/// One scenario's golden baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioGolden {
    /// Matrix key.
    pub name: String,
    /// Simulated seconds the baseline was blessed at.
    pub secs: u64,
    /// The gated aggregates.
    pub checks: Vec<Check>,
}

/// A checked-in golden baseline for one matrix tier.
#[derive(Debug, Clone, PartialEq)]
pub struct Golden {
    /// Matrix tier name (`small` / `full`).
    pub matrix: String,
    /// The seeds the baseline was blessed over. A gate run must use the
    /// same sweep — different seeds sample a different distribution and
    /// comparing them would be meaningless.
    pub seeds: Vec<u64>,
    /// Per-scenario baselines, in matrix order.
    pub scenarios: Vec<ScenarioGolden>,
}

impl Golden {
    /// Blesses fresh records into a golden baseline. `groups` pairs each
    /// scenario spec with its per-seed records.
    pub fn bless(
        matrix: &str,
        seeds: &[u64],
        groups: &[(&ScenarioSpec, Vec<RunMetrics>)],
    ) -> Golden {
        let scenarios = groups
            .iter()
            .map(|(spec, records)| {
                let aggregates = aggregate(records);
                let checks = aggregates
                    .iter()
                    .filter(|(key, _)| GATED.contains(&key.as_str()))
                    .map(|(key, observed)| {
                        let is_windowed = key == "windowed_pdr_median.median";
                        let floor = is_windowed.then_some(spec.windowed_pdr_floor).flatten();
                        let ceiling = is_windowed.then_some(spec.windowed_pdr_ceiling).flatten();
                        let (lo, hi) = band(key, *observed, floor, ceiling);
                        Check { metric: key.clone(), observed: *observed, lo, hi }
                    })
                    .collect();
                ScenarioGolden { name: spec.name.clone(), secs: spec.secs, checks }
            })
            .collect();
        Golden { matrix: matrix.to_string(), seeds: seeds.to_vec(), scenarios }
    }

    /// Finds a scenario baseline by name.
    pub fn scenario(&self, name: &str) -> Option<&ScenarioGolden> {
        self.scenarios.iter().find(|s| s.name == name)
    }

    /// Serializes to the checked-in pretty JSON form.
    pub fn to_pretty(&self) -> String {
        let scenarios = self
            .scenarios
            .iter()
            .map(|s| {
                let checks = s
                    .checks
                    .iter()
                    .map(|c| {
                        Value::Obj(vec![
                            ("metric".into(), Value::Str(c.metric.clone())),
                            ("observed".into(), Value::num(c.observed)),
                            ("lo".into(), Value::num(c.lo)),
                            ("hi".into(), Value::num(c.hi)),
                        ])
                    })
                    .collect();
                Value::Obj(vec![
                    ("name".into(), Value::Str(s.name.clone())),
                    ("secs".into(), Value::Num(s.secs as f64)),
                    ("checks".into(), Value::Arr(checks)),
                ])
            })
            .collect();
        Value::Obj(vec![
            ("matrix".into(), Value::Str(self.matrix.clone())),
            (
                "seeds".into(),
                Value::Arr(self.seeds.iter().map(|s| Value::Num(*s as f64)).collect()),
            ),
            ("scenarios".into(), Value::Arr(scenarios)),
        ])
        .to_pretty()
    }

    /// Parses a golden file.
    ///
    /// # Errors
    ///
    /// Returns a message on malformed JSON or missing fields.
    pub fn parse(text: &str) -> Result<Golden, String> {
        let v = json::parse(text).map_err(|e| e.to_string())?;
        let matrix =
            v.field("matrix").and_then(Value::as_str).ok_or("golden missing `matrix`")?.to_string();
        let seeds = v
            .field("seeds")
            .and_then(Value::as_arr)
            .ok_or("golden missing `seeds`")?
            .iter()
            .map(|s| s.as_u64().ok_or("bad seed".to_string()))
            .collect::<Result<Vec<u64>, String>>()?;
        let mut scenarios = Vec::new();
        for s in v.field("scenarios").and_then(Value::as_arr).ok_or("golden missing `scenarios`")? {
            let name = s
                .field("name")
                .and_then(Value::as_str)
                .ok_or("scenario missing `name`")?
                .to_string();
            let secs = s.field("secs").and_then(Value::as_u64).ok_or("scenario missing `secs`")?;
            let mut checks = Vec::new();
            for c in s.field("checks").and_then(Value::as_arr).ok_or("scenario missing `checks`")? {
                checks.push(Check {
                    metric: c
                        .field("metric")
                        .and_then(Value::as_str)
                        .ok_or("check missing `metric`")?
                        .to_string(),
                    observed: c
                        .field("observed")
                        .and_then(Value::as_f64)
                        .ok_or("check missing `observed`")?,
                    lo: c.field("lo").and_then(Value::as_f64).ok_or("check missing `lo`")?,
                    hi: c.field("hi").and_then(Value::as_f64).ok_or("check missing `hi`")?,
                });
            }
            scenarios.push(ScenarioGolden { name, secs, checks });
        }
        Ok(Golden { matrix, seeds, scenarios })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(seed: u64, pdr: f64) -> RunMetrics {
        RunMetrics {
            scenario: "t".into(),
            protocol: "digs".into(),
            seed,
            secs: 60,
            pdr,
            worst_flow_pdr: pdr - 0.1,
            median_latency_ms: Some(300.0),
            worst_latency_ms: Some(900.0),
            duty_cycle_percent: 1.2,
            power_per_packet_mw: Some(0.4),
            energy_per_packet_mj: Some(20.0),
            repair_time_secs: Some(8.0),
            windowed_pdr_median: Some(0.97),
            windowed_pdr_worst: Some(0.9),
            fraction_joined: 1.0,
            mean_join_secs: Some(18.0),
            parent_changes: 40,
            retry_drops: 2,
            queue_drops: 0,
            audit_violations: 0,
            telemetry_epochs: None,
            health_alerts: None,
            epoch_pdr_min: None,
        }
    }

    #[test]
    fn aggregates_cover_present_metrics() {
        let records = vec![record(1, 0.9), record(2, 1.0), record(3, 0.95)];
        let aggs = aggregate(&records);
        let get = |k: &str| aggs.iter().find(|(key, _)| key == k).map(|(_, v)| *v);
        assert_eq!(get("pdr.min"), Some(0.9));
        assert_eq!(get("pdr.max"), Some(1.0));
        assert_eq!(get("pdr.median"), Some(0.95));
        assert_eq!(get("audit_violations.max"), Some(0.0));
    }

    #[test]
    fn absent_metrics_produce_no_aggregates() {
        let mut r = record(1, 0.9);
        r.repair_time_secs = None;
        let aggs = aggregate(&[r]);
        assert!(aggs.iter().all(|(k, _)| !k.starts_with("repair_time_secs")));
    }

    #[test]
    fn bands_clamp_ratios_to_unit_interval() {
        let (lo, hi) = band("pdr.median", 0.99, None, None);
        assert!(lo < 0.99 && hi <= 1.0);
        let (lo, _) = band("pdr.min", 0.05, None, None);
        assert!(lo >= 0.0);
    }

    #[test]
    fn repair_band_is_tight_but_not_degenerate() {
        let (lo, hi) = band("repair_time_secs.median", 10.0, None, None);
        assert!((lo - 6.0).abs() < 1e-9 && (hi - 14.0).abs() < 1e-9);
        // Small medians fall back to the absolute slack.
        let (lo, hi) = band("repair_time_secs.median", 1.0, None, None);
        assert!(lo == 0.0 && hi == 3.0);
    }

    #[test]
    fn paper_floor_tightens_the_lower_bound() {
        let (lo, _) = band("windowed_pdr_median.median", 0.97, Some(0.85), None);
        assert!((lo - 0.94).abs() < 1e-9, "band slack wins when above the floor");
        let (lo, _) = band("windowed_pdr_median.median", 0.86, Some(0.85), None);
        assert!((lo - 0.85).abs() < 1e-9, "floor wins when the band dips below it");
    }

    #[test]
    fn attack_ceiling_tightens_the_upper_bound() {
        // A collapsed victim PDR sits far under the ceiling: the band's
        // own slack applies unchanged.
        let (lo, hi) = band("windowed_pdr_median.median", 0.11, None, Some(0.65));
        assert!((lo - 0.08).abs() < 1e-9 && (hi - 0.14).abs() < 1e-9);
        // An observation near the ceiling clamps `hi` down — a recovering
        // victim means the attack stopped working, which must fail the
        // gate rather than slide through as drift.
        let (_, hi) = band("windowed_pdr_median.median", 0.64, None, Some(0.65));
        assert!((hi - 0.65).abs() < 1e-9, "ceiling wins when the band rises above it");
        // Floor and ceiling compose without crossing.
        let (lo, hi) = band("windowed_pdr_median.median", 0.5, Some(0.4), Some(0.6));
        assert!(lo <= hi && (lo - 0.47).abs() < 1e-9 && (hi - 0.53).abs() < 1e-9);
    }

    #[test]
    fn violations_band_pins_increases() {
        let c = {
            let (lo, hi) = band("audit_violations.max", 0.0, None, None);
            Check { metric: "audit_violations.max".into(), observed: 0.0, lo, hi }
        };
        assert!(c.passes(0.0));
        assert!(!c.passes(1.0));
    }

    #[test]
    fn golden_round_trips_through_pretty_json() {
        let specs = crate::matrix::small_matrix(Some(60));
        let spec = &specs[0];
        let records = vec![record(1, 0.9), record(2, 0.95)];
        let golden = Golden::bless("small", &[1, 2], &[(spec, records)]);
        let text = golden.to_pretty();
        let back = Golden::parse(&text).expect("parse");
        assert_eq!(back, golden);
        assert!(!golden.scenarios[0].checks.is_empty());
    }
}
