//! Comparing fresh aggregates against a golden baseline and rendering
//! the human-readable diff table.

use crate::golden::Golden;

/// Outcome of one golden check against the fresh run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Status {
    /// Inside the tolerance band.
    Pass,
    /// Outside the band.
    Breach,
    /// The fresh run produced no value for this aggregate (a metric
    /// silently disappearing is a regression, not a pass).
    Missing,
    /// The scenario ran but is absent from the golden (the matrix grew;
    /// re-bless to accept it).
    Unblessed,
}

impl Status {
    fn label(self) -> &'static str {
        match self {
            Status::Pass => "ok",
            Status::Breach => "BREACH",
            Status::Missing => "MISSING",
            Status::Unblessed => "UNBLESSED",
        }
    }
}

/// One row of the comparison.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Scenario name.
    pub scenario: String,
    /// `metric.stat` key.
    pub metric: String,
    /// Band lower bound from the golden.
    pub lo: f64,
    /// Band upper bound from the golden.
    pub hi: f64,
    /// The value observed at bless time.
    pub blessed: f64,
    /// The fresh aggregate, if the run produced one.
    pub observed: Option<f64>,
    /// The verdict.
    pub status: Status,
}

/// The full comparison outcome.
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// Every check's outcome, in golden order.
    pub findings: Vec<Finding>,
}

impl Report {
    /// Compares fresh per-scenario aggregates against the golden.
    /// `fresh` pairs each scenario name with its `("metric.stat",
    /// value)` aggregates.
    pub fn compare(golden: &Golden, fresh: &[(String, Vec<(String, f64)>)]) -> Report {
        let mut findings = Vec::new();
        for sg in &golden.scenarios {
            let aggregates = fresh.iter().find(|(name, _)| *name == sg.name).map(|(_, a)| a);
            for check in &sg.checks {
                let observed = aggregates
                    .and_then(|a| a.iter().find(|(k, _)| *k == check.metric))
                    .map(|(_, v)| *v);
                let status = match observed {
                    None => Status::Missing,
                    Some(v) if check.passes(v) => Status::Pass,
                    Some(_) => Status::Breach,
                };
                findings.push(Finding {
                    scenario: sg.name.clone(),
                    metric: check.metric.clone(),
                    lo: check.lo,
                    hi: check.hi,
                    blessed: check.observed,
                    observed,
                    status,
                });
            }
        }
        // Scenarios the golden has never seen: fail loudly so a grown
        // matrix cannot ship ungated.
        for (name, _) in fresh {
            if golden.scenario(name).is_none() {
                findings.push(Finding {
                    scenario: name.clone(),
                    metric: "-".into(),
                    lo: f64::NAN,
                    hi: f64::NAN,
                    blessed: f64::NAN,
                    observed: None,
                    status: Status::Unblessed,
                });
            }
        }
        Report { findings }
    }

    /// Rows that failed.
    pub fn failures(&self) -> Vec<&Finding> {
        self.findings.iter().filter(|f| f.status != Status::Pass).collect()
    }

    /// Whether every check passed.
    pub fn passed(&self) -> bool {
        self.findings.iter().all(|f| f.status == Status::Pass)
    }

    /// Number of checks compared.
    pub fn total(&self) -> usize {
        self.findings.len()
    }

    /// The plain-text diff table of failing checks (empty string when
    /// everything passed).
    pub fn diff_table(&self) -> String {
        self.render(self.failures(), false)
    }

    /// The same diff table as GitHub-flavoured markdown (for CI step
    /// summaries).
    pub fn diff_table_markdown(&self) -> String {
        self.render(self.failures(), true)
    }

    fn render(&self, rows: Vec<&Finding>, markdown: bool) -> String {
        if rows.is_empty() {
            return String::new();
        }
        let fmt_num = |v: f64| {
            if v.is_nan() {
                "-".to_string()
            } else if v.abs() >= 100.0 {
                format!("{v:.1}")
            } else {
                format!("{v:.4}")
            }
        };
        let mut out = String::new();
        if markdown {
            out.push_str("| scenario | metric | band (lo..hi) | blessed | observed | status |\n");
            out.push_str("|---|---|---|---|---|---|\n");
            for f in rows {
                out.push_str(&format!(
                    "| {} | {} | {}..{} | {} | {} | {} |\n",
                    f.scenario,
                    f.metric,
                    fmt_num(f.lo),
                    fmt_num(f.hi),
                    fmt_num(f.blessed),
                    f.observed.map_or("-".to_string(), fmt_num),
                    f.status.label(),
                ));
            }
        } else {
            out.push_str(&format!(
                "{:<24} {:<28} {:>17} {:>9} {:>9}  {}\n",
                "scenario", "metric", "band (lo..hi)", "blessed", "observed", "status"
            ));
            out.push_str(&format!("{}\n", "-".repeat(98)));
            for f in rows {
                out.push_str(&format!(
                    "{:<24} {:<28} {:>8}..{:>7} {:>9} {:>9}  {}\n",
                    f.scenario,
                    f.metric,
                    fmt_num(f.lo),
                    fmt_num(f.hi),
                    fmt_num(f.blessed),
                    f.observed.map_or("-".to_string(), fmt_num),
                    f.status.label(),
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::golden::{Check, ScenarioGolden};

    fn golden() -> Golden {
        Golden {
            matrix: "small".into(),
            seeds: vec![1, 2],
            scenarios: vec![ScenarioGolden {
                name: "fig09-digs".into(),
                secs: 420,
                checks: vec![
                    Check { metric: "pdr.median".into(), observed: 0.95, lo: 0.91, hi: 1.0 },
                    Check {
                        metric: "repair_time_secs.median".into(),
                        observed: 8.0,
                        lo: 4.0,
                        hi: 12.0,
                    },
                ],
            }],
        }
    }

    #[test]
    fn passing_comparison_is_clean() {
        let fresh = vec![(
            "fig09-digs".to_string(),
            vec![("pdr.median".to_string(), 0.94), ("repair_time_secs.median".to_string(), 9.0)],
        )];
        let report = Report::compare(&golden(), &fresh);
        assert!(report.passed());
        assert_eq!(report.total(), 2);
        assert!(report.diff_table().is_empty());
    }

    #[test]
    fn breach_produces_a_diff_row() {
        let fresh = vec![(
            "fig09-digs".to_string(),
            vec![("pdr.median".to_string(), 0.5), ("repair_time_secs.median".to_string(), 9.0)],
        )];
        let report = Report::compare(&golden(), &fresh);
        assert!(!report.passed());
        let table = report.diff_table();
        assert!(table.contains("pdr.median") && table.contains("BREACH"), "{table}");
        assert!(!table.contains("repair_time_secs"), "passing rows stay out of the diff");
        let md = report.diff_table_markdown();
        assert!(md.starts_with("| scenario |"), "{md}");
    }

    #[test]
    fn missing_metric_fails() {
        let fresh = vec![("fig09-digs".to_string(), vec![("pdr.median".to_string(), 0.94)])];
        let report = Report::compare(&golden(), &fresh);
        assert!(!report.passed());
        assert!(report.diff_table().contains("MISSING"));
    }

    #[test]
    fn unblessed_scenario_fails() {
        let fresh = vec![
            (
                "fig09-digs".to_string(),
                vec![
                    ("pdr.median".to_string(), 0.94),
                    ("repair_time_secs.median".to_string(), 9.0),
                ],
            ),
            ("brand-new".to_string(), vec![("pdr.median".to_string(), 1.0)]),
        ];
        let report = Report::compare(&golden(), &fresh);
        assert!(!report.passed());
        assert!(report.diff_table().contains("UNBLESSED"));
    }
}
